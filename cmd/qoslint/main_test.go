package main

import (
	"encoding/json"
	"strings"
	"testing"

	"probqos/internal/lint"
)

// fixture points at the floateq fixture package relative to this test's
// working directory; its import path within the module is outside the
// deterministic set, so only the module-wide analyzers can fire on it.
const fixture = "../../internal/lint/testdata/src/floateq"

func TestRunReportsFindingsAndExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "[floateq]") {
		t.Errorf("output lacks a floateq finding:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !strings.Contains(line, "floateq.go:") {
			t.Errorf("finding not positioned in the fixture file: %s", line)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 3 {
		t.Fatalf("%d findings, want 3: %+v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "floateq" || f.Line == 0 || f.Col == 0 || f.File == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestRunDisableSilencesAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-disable", "floateq", fixture}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestRunEnableSelectsOnlyNamed(t *testing.T) {
	var out, errOut strings.Builder
	// Enabling an analyzer that cannot fire on this fixture must exit clean.
	code := run([]string{"-enable", "maprange", fixture}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	for _, flag := range []string{"-enable", "-disable"} {
		t.Run(flag, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run([]string{flag, "nosuch", fixture}, &out, &errOut); code != 2 {
				t.Fatalf("exit code %d, want 2", code)
			}
			msg := errOut.String()
			if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
				t.Errorf("stderr lacks unknown-analyzer diagnostic: %s", msg)
			}
			// The diagnostic must list every valid name so the misspelling
			// is correctable without reading the source.
			for _, a := range lint.All() {
				if !strings.Contains(msg, a.Name) {
					t.Errorf("diagnostic omits valid analyzer %q: %s", a.Name, msg)
				}
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output lacks analyzer %s:\n%s", a.Name, out.String())
		}
	}
}
