// Command qoslint runs the repo's determinism and durability analyzers
// (internal/lint) over module packages and reports findings as
//
//	file:line:col: [analyzer] message
//
// exiting 1 if anything fired and 2 on usage or load errors. It is
// report-only by design: there is no -fix, because every finding is either a
// real bug to reason about or an intentional boundary to annotate with
// //qoslint:allow <analyzer> <reason>.
//
// Usage:
//
//	go run ./cmd/qoslint ./...
//	go run ./cmd/qoslint -json ./internal/durability
//	go run ./cmd/qoslint -disable floateq,maprange ./...
//	go run ./cmd/qoslint -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"probqos/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qoslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array instead of text")
		list    = fs.Bool("list", false, "list the registered analyzers and exit")
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: qoslint [flags] [packages]\n\nAnalyzes module packages (default ./...) for determinism and durability\ninvariant violations. Report-only: no -fix exists or will.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "qoslint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "qoslint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "qoslint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "qoslint: %v\n", err)
		return 2
	}
	// The Program holds every loaded package — targets plus the module
	// dependencies type-checking pulled in — so the interprocedural
	// analyzers (dettaint) can chase calls across package boundaries even
	// when only a subtree was requested.
	prog := lint.NewProgram(loader.Packages(), lint.Names())
	findings, err := lint.RunProgram(prog, pkgs, analyzers, lint.Names())
	if err != nil {
		fmt.Fprintf(stderr, "qoslint: %v\n", err)
		return 2
	}
	for i := range findings {
		findings[i].File = relPath(findings[i].File)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "qoslint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := make(map[string]bool)
		if csv == "" {
			return set, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var selected []*lint.Analyzer
	for _, a := range lint.All() {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}

// relPath shortens an absolute finding path to be relative to the working
// directory when possible.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
