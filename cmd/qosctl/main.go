// Command qosctl is the command-line client for qosd: each subcommand is
// one move in the §5 negotiation dialog.
//
// Usage:
//
//	qosctl [-addr host:port] [-timeout D] [-retries N] [-v] quote -nodes N -exec SECONDS [-max K]
//	qosctl [...] accept -session ID -offer K
//	qosctl [...] job ID
//	qosctl [...] jobs
//	qosctl [...] state
//	qosctl [...] fault -node N [-at T] [-after SECONDS]
//	qosctl [...] advance [-to T] [-by SECONDS]
//	qosctl [...] report [-n N]
//	qosctl [...] trace [-id TRACEID]
//
// Responses are printed as indented JSON; non-2xx responses become errors
// carrying the server's message.
//
// Every call sends a fresh X-Qos-Trace ID, and all retry attempts of one
// call reuse that ID, so a retried request correlates to a single trace
// server-side. With -v the trace ID and the server's Server-Timing span
// breakdown are printed on stderr. `report` fetches the live promise
// conformance ledger (/qos/conformance); `trace` fetches Chrome
// trace_event JSON from /debug/trace — load it in chrome://tracing or
// Perfetto.
//
// Requests time out (-timeout, default 10s) and transient failures are
// retried with exponential backoff and jitter (-retries, default 3): GETs
// on any transport error, POSTs only when the connection was refused
// outright (nothing reached the server, so the request cannot have taken
// effect), and either on a 503 — the server's explicit "not now, retry"
// while degraded, draining, or at its admission limit.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"syscall"
	"time"

	"probqos"
)

func main() {
	if err := run(os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qosctl:", err)
		os.Exit(1)
	}
}

func run(out, errw io.Writer, args []string) error {
	fs := flag.NewFlagSet("qosctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9120", "qosd address")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	retries := fs.Int("retries", 3, "retry budget for transient failures")
	verbose := fs.Bool("v", false, "print the trace ID and server span timings on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand: quote, accept, job, jobs, state, fault, advance, report, or trace")
	}
	c := client{
		base:    "http://" + *addr,
		out:     out,
		errw:    errw,
		http:    &http.Client{Timeout: *timeout},
		retries: *retries,
		verbose: *verbose,
	}
	cmd, args := rest[0], rest[1:]
	switch cmd {
	case "quote":
		return c.quote(args)
	case "accept":
		return c.accept(args)
	case "job":
		if len(args) != 1 {
			return fmt.Errorf("usage: qosctl job ID")
		}
		return c.call("GET", "/v1/jobs/"+args[0], nil)
	case "jobs":
		return c.call("GET", "/v1/jobs", nil)
	case "state":
		return c.call("GET", "/v1/state", nil)
	case "fault":
		return c.fault(args)
	case "advance":
		return c.advance(args)
	case "report":
		return c.report(args)
	case "trace":
		return c.trace(args)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

type client struct {
	base    string
	out     io.Writer
	errw    io.Writer
	http    *http.Client
	retries int
	verbose bool
}

func (c client) quote(args []string) error {
	fs := flag.NewFlagSet("quote", flag.ContinueOnError)
	nodes := fs.Int("nodes", 0, "job size in nodes")
	exec := fs.Int64("exec", 0, "execution time in seconds, excluding checkpoints")
	max := fs.Int("max", 0, "cap on offers returned (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body := map[string]any{"nodes": *nodes, "exec_seconds": *exec}
	if *max > 0 {
		body["max_quotes"] = *max
	}
	return c.call("POST", "/v1/quote", body)
}

func (c client) accept(args []string) error {
	fs := flag.NewFlagSet("accept", flag.ContinueOnError)
	session := fs.String("session", "", "session id from the quote response")
	offer := fs.Int("offer", 1, "1-based rank of the accepted offer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return c.call("POST", "/v1/accept", map[string]any{"session_id": *session, "offer": *offer})
}

func (c client) fault(args []string) error {
	fs := flag.NewFlagSet("fault", flag.ContinueOnError)
	node := fs.Int("node", 0, "node to fail")
	at := fs.Int64("at", 0, "absolute virtual instant of the failure")
	after := fs.Int64("after", 0, "failure delay in virtual seconds from now")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body := map[string]any{"node": *node}
	if *at > 0 {
		body["at"] = *at
	}
	if *after > 0 {
		body["after_seconds"] = *after
	}
	return c.call("POST", "/v1/faults", body)
}

func (c client) advance(args []string) error {
	fs := flag.NewFlagSet("advance", flag.ContinueOnError)
	to := fs.Int64("to", 0, "absolute virtual instant to advance to")
	by := fs.Int64("by", 0, "virtual seconds to advance by")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body := map[string]any{}
	if *to > 0 {
		body["to"] = *to
	}
	if *by > 0 {
		body["by_seconds"] = *by
	}
	return c.call("POST", "/v1/advance", body)
}

func (c client) report(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	n := fs.Int("n", -1, "promise rows to include (-1 = server default, 0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/qos/conformance"
	if *n >= 0 {
		path += "?n=" + url.QueryEscape(strconv.Itoa(*n))
	}
	return c.call("GET", path, nil)
}

func (c client) trace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	id := fs.String("id", "", "only export spans of this trace ID (empty = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/debug/trace"
	if *id != "" {
		path += "?trace=" + url.QueryEscape(*id)
	}
	return c.call("GET", path, nil)
}

// Retry backoff: base doubles each attempt up to the cap, and half the
// delay is re-rolled as jitter so synchronized clients spread out.
const (
	backoffBase = 100 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// traceHeader carries the request trace ID; qosd echoes it back and tags
// every server-side span of the request with it.
const traceHeader = "X-Qos-Trace"

// call performs one API request — with retries for transient failures —
// and pretty-prints the JSON response. One trace ID is minted per call and
// reused across every retry attempt, so all attempts of a logical request
// land in the same server-side trace.
func (c client) call(method, path string, body any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	traceID := probqos.NewTraceID()
	resp, respBody, err := c.doRetry(method, path, data, traceID)
	if err != nil {
		return err
	}
	if c.verbose {
		c.printTiming(traceID, resp)
	}
	return c.render(resp, respBody)
}

// printTiming reports where a call's time went: the trace ID to fetch the
// full trace later (qosctl trace -id ...) and the server's per-span
// Server-Timing breakdown, when tracing is enabled server-side.
func (c client) printTiming(traceID string, resp *http.Response) {
	fmt.Fprintf(c.errw, "trace %s\n", traceID)
	if st := resp.Header.Get("Server-Timing"); st != "" {
		fmt.Fprintf(c.errw, "server-timing %s\n", st)
	}
}

// doRetry issues the request, rebuilding it for each attempt so the body
// reader is fresh. A request is retried when we know it is safe to repeat:
// GETs after any transport error (idempotent), POSTs only when the
// connection was refused (the server never saw the request), and both after
// a 503, which qosd sends precisely when an operation was rejected before
// taking effect (degraded, draining, or admission-limited).
func (c client) doRetry(method, path string, body []byte, traceID string) (*http.Response, []byte, error) {
	delay := backoffBase
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return nil, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if traceID != "" {
			req.Header.Set(traceHeader, traceID)
		}
		resp, err := c.http.Do(req)
		var respBody []byte
		if err == nil {
			respBody, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				err = fmt.Errorf("reading response: %w", err)
				resp = nil
			}
		}
		retryable := false
		switch {
		case err != nil && method == "GET":
			retryable = true
		case err != nil:
			retryable = errors.Is(err, syscall.ECONNREFUSED)
		case resp.StatusCode == http.StatusServiceUnavailable:
			retryable = true
		}
		if !retryable || attempt >= c.retries {
			return resp, respBody, err
		}
		time.Sleep(delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1)))
		if delay *= 2; delay > backoffCap {
			delay = backoffCap
		}
	}
}

// render prints a successful response or turns an error response into an
// error carrying the server's message.
func (c client) render(resp *http.Response, data []byte) error {
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(data), "", "  "); err != nil {
		buf.Write(data)
	}
	fmt.Fprintln(c.out, buf.String())
	return nil
}
