package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"probqos"
)

// startServer runs a qosd service on a loopback port and returns its
// address.
func startServer(t *testing.T) string {
	t.Helper()
	trace, err := probqos.NewFailureTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := probqos.NewQoSService(probqos.NewQoSServiceConfig(trace))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	addr, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestDialogRoundTrip(t *testing.T) {
	addr := startServer(t)

	var out bytes.Buffer
	if err := run(&out, io.Discard, []string{"-addr", addr, "quote", "-nodes", "2", "-exec", "600"}); err != nil {
		t.Fatalf("quote: %v", err)
	}
	var quote struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(out.Bytes(), &quote); err != nil || quote.SessionID == "" {
		t.Fatalf("quote output %q: %v", out.String(), err)
	}

	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "accept", "-session", quote.SessionID, "-offer", "1"}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	var acc struct {
		JobID int `json:"job_id"`
	}
	if err := json.Unmarshal(out.Bytes(), &acc); err != nil || acc.JobID == 0 {
		t.Fatalf("accept output %q: %v", out.String(), err)
	}

	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "advance", "-by", "86400"}); err != nil {
		t.Fatalf("advance: %v", err)
	}
	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "job", "1"}); err != nil {
		t.Fatalf("job: %v", err)
	}
	if !strings.Contains(out.String(), `"completed"`) {
		t.Fatalf("job output lacks completed state: %s", out.String())
	}

	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "state"}); err != nil {
		t.Fatalf("state: %v", err)
	}
	if !strings.Contains(out.String(), `"completed": 1`) {
		t.Fatalf("state output: %s", out.String())
	}
}

func TestServerErrorsSurface(t *testing.T) {
	addr := startServer(t)
	err := run(&bytes.Buffer{}, io.Discard, []string{"-addr", addr, "accept", "-session", "q-404", "-offer", "1"})
	if err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Fatalf("error not surfaced: %v", err)
	}
}

// flakyServer serves 503 for the first fail requests, then delegates to
// ok. It returns the qosctl -addr form of its address and a hit counter.
func flakyServer(t *testing.T, fail int64, ok http.HandlerFunc) (string, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= fail {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error": "service draining"}`))
			return
		}
		ok(w, r)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), &hits
}

func TestRetriesTransient503(t *testing.T) {
	okJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"jobs": []}`))
	}

	// A GET and a POST should both survive two 503s within the default
	// retry budget of three.
	for _, args := range [][]string{
		{"jobs"},
		{"advance", "-by", "60"},
	} {
		addr, hits := flakyServer(t, 2, okJSON)
		var out bytes.Buffer
		if err := run(&out, io.Discard, append([]string{"-addr", addr}, args...)); err != nil {
			t.Fatalf("%v after 503s: %v", args, err)
		}
		if got := hits.Load(); got != 3 {
			t.Errorf("%v made %d requests, want 3", args, got)
		}
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	addr, hits := flakyServer(t, 1<<30, nil)
	err := run(&bytes.Buffer{}, io.Discard, []string{"-addr", addr, "-retries", "1", "jobs"})
	if err == nil || !strings.Contains(err.Error(), "service draining") {
		t.Fatalf("exhausted retries should surface the 503 error, got: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("made %d requests, want 2 (1 try + 1 retry)", got)
	}
}

func TestNoRetryOnHardErrors(t *testing.T) {
	// A 4xx is a definitive answer; retrying would just repeat it.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error": "no such job"}`))
	}))
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")
	if err := run(&bytes.Buffer{}, io.Discard, []string{"-addr", addr, "job", "7"}); err == nil {
		t.Fatal("404 did not surface as an error")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("made %d requests for a 404, want 1", got)
	}
}

func TestGetRetriesConnectionRefused(t *testing.T) {
	// Grab a port, then close the listener so every dial is refused: the
	// GET must exhaust its retry budget rather than give up immediately.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	err := run(&bytes.Buffer{}, io.Discard, []string{"-addr", addr, "-retries", "1", "jobs"})
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("want connection-refused error, got: %v", err)
	}
}

// startTracedServer is startServer with request tracing enabled.
func startTracedServer(t *testing.T) string {
	t.Helper()
	trace, err := probqos.NewFailureTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := probqos.NewQoSServiceConfig(trace)
	cfg.Tracer = probqos.NewTracer(4096)
	svc, err := probqos.NewQoSService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	addr, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestVerbosePrintsTraceAndServerTiming(t *testing.T) {
	addr := startTracedServer(t)

	var out, errw bytes.Buffer
	if err := run(&out, &errw, []string{"-addr", addr, "-v", "quote", "-nodes", "2", "-exec", "600"}); err != nil {
		t.Fatalf("quote: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(errw.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "trace ") {
		t.Fatalf("verbose output missing trace line: %q", errw.String())
	}
	traceID := strings.TrimPrefix(lines[0], "trace ")
	if len(traceID) != 16 {
		t.Errorf("trace ID %q: want 16 hex chars", traceID)
	}
	if !strings.HasPrefix(lines[1], "server-timing ") || !strings.Contains(lines[1], "quote;dur=") {
		t.Errorf("verbose output missing quote span timing: %q", lines[1])
	}

	// The printed ID must fetch that request's server-side spans.
	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "trace", "-id", traceID}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	var chrome struct {
		Events []struct {
			Name string `json:"name"`
			Args map[string]string
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &chrome); err != nil {
		t.Fatalf("trace output is not JSON: %v\n%s", err, out.String())
	}
	if len(chrome.Events) == 0 {
		t.Fatalf("no spans exported for trace %s", traceID)
	}
	for _, ev := range chrome.Events {
		if ev.Args["trace"] != traceID {
			t.Errorf("span %q has trace %q, want %s", ev.Name, ev.Args["trace"], traceID)
		}
	}
}

func TestVerboseWithoutServerTracing(t *testing.T) {
	// Against an untraced server, -v still prints the client's trace ID
	// (the header is echoed even when tracing is off) but no timings.
	addr := startServer(t)
	var errw bytes.Buffer
	if err := run(&bytes.Buffer{}, &errw, []string{"-addr", addr, "-v", "state"}); err != nil {
		t.Fatalf("state: %v", err)
	}
	if !strings.HasPrefix(errw.String(), "trace ") {
		t.Fatalf("verbose output missing trace line: %q", errw.String())
	}
	if strings.Contains(errw.String(), "server-timing") {
		t.Errorf("untraced server should yield no server-timing: %q", errw.String())
	}
}

func TestRetriesReuseTraceID(t *testing.T) {
	var ids []string
	addr, _ := flakyServer(t, 2, func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"jobs": []}`))
	})
	// Wrap: capture the header on every attempt, including the 503s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids = append(ids, r.Header.Get("X-Qos-Trace"))
		r.URL.Host = addr
		resp, err := http.Get("http://" + addr + r.URL.Path)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(srv.Close)

	front := strings.TrimPrefix(srv.URL, "http://")
	if err := run(&bytes.Buffer{}, io.Discard, []string{"-addr", front, "jobs"}); err != nil {
		t.Fatalf("jobs: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("made %d attempts, want 3", len(ids))
	}
	for _, id := range ids {
		if id == "" || id != ids[0] {
			t.Fatalf("retry attempts changed trace ID: %v", ids)
		}
	}
}

func TestReportSubcommand(t *testing.T) {
	addr := startServer(t)

	var out bytes.Buffer
	if err := run(&out, io.Discard, []string{"-addr", addr, "quote", "-nodes", "2", "-exec", "600"}); err != nil {
		t.Fatalf("quote: %v", err)
	}
	var quote struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(out.Bytes(), &quote); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "accept", "-session", quote.SessionID, "-offer", "1"}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "advance", "-by", "86400"}); err != nil {
		t.Fatalf("advance: %v", err)
	}

	out.Reset()
	if err := run(&out, io.Discard, []string{"-addr", addr, "report"}); err != nil {
		t.Fatalf("report: %v", err)
	}
	var rep struct {
		Settled     int     `json:"settled"`
		Kept        int     `json:"kept"`
		KeepingRate float64 `json:"keeping_rate"`
		Entries     []struct {
			Outcome string `json:"outcome"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report output: %v\n%s", err, out.String())
	}
	if rep.Settled != 1 || rep.Kept != 1 || rep.KeepingRate != 1 {
		t.Errorf("report: settled=%d kept=%d rate=%g, want 1/1/1\n%s",
			rep.Settled, rep.Kept, rep.KeepingRate, out.String())
	}
	if len(rep.Entries) != 1 || rep.Entries[0].Outcome != "kept" {
		t.Errorf("report entries: %+v", rep.Entries)
	}
}

func TestTraceSubcommandAgainstUntracedServer(t *testing.T) {
	addr := startServer(t)
	err := run(&bytes.Buffer{}, io.Discard, []string{"-addr", addr, "trace"})
	if err == nil || !strings.Contains(err.Error(), "tracing disabled") {
		t.Fatalf("want tracing-disabled error, got: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, io.Discard, nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run(&bytes.Buffer{}, io.Discard, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(&bytes.Buffer{}, io.Discard, []string{"job"}); err == nil {
		t.Error("job without id accepted")
	}
}
