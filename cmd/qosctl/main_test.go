package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"probqos"
)

// startServer runs a qosd service on a loopback port and returns its
// address.
func startServer(t *testing.T) string {
	t.Helper()
	trace, err := probqos.NewFailureTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := probqos.NewQoSService(probqos.NewQoSServiceConfig(trace))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	addr, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestDialogRoundTrip(t *testing.T) {
	addr := startServer(t)

	var out bytes.Buffer
	if err := run(&out, []string{"-addr", addr, "quote", "-nodes", "2", "-exec", "600"}); err != nil {
		t.Fatalf("quote: %v", err)
	}
	var quote struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(out.Bytes(), &quote); err != nil || quote.SessionID == "" {
		t.Fatalf("quote output %q: %v", out.String(), err)
	}

	out.Reset()
	if err := run(&out, []string{"-addr", addr, "accept", "-session", quote.SessionID, "-offer", "1"}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	var acc struct {
		JobID int `json:"job_id"`
	}
	if err := json.Unmarshal(out.Bytes(), &acc); err != nil || acc.JobID == 0 {
		t.Fatalf("accept output %q: %v", out.String(), err)
	}

	out.Reset()
	if err := run(&out, []string{"-addr", addr, "advance", "-by", "86400"}); err != nil {
		t.Fatalf("advance: %v", err)
	}
	out.Reset()
	if err := run(&out, []string{"-addr", addr, "job", "1"}); err != nil {
		t.Fatalf("job: %v", err)
	}
	if !strings.Contains(out.String(), `"completed"`) {
		t.Fatalf("job output lacks completed state: %s", out.String())
	}

	out.Reset()
	if err := run(&out, []string{"-addr", addr, "state"}); err != nil {
		t.Fatalf("state: %v", err)
	}
	if !strings.Contains(out.String(), `"completed": 1`) {
		t.Fatalf("state output: %s", out.String())
	}
}

func TestServerErrorsSurface(t *testing.T) {
	addr := startServer(t)
	err := run(&bytes.Buffer{}, []string{"-addr", addr, "accept", "-session", "q-404", "-offer", "1"})
	if err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Fatalf("error not surfaced: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"job"}); err == nil {
		t.Error("job without id accepted")
	}
}
