package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter collects run's output under a lock and signals the first
// write, which carries the bound address.
type syncWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	first chan struct{}
	once  sync.Once
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	w.once.Do(func() { close(w.first) })
	return n, err
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestRunServesAndDrains(t *testing.T) {
	out := &syncWriter{first: make(chan struct{})}
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		errs <- run(out, []string{"-addr", "127.0.0.1:0", "-nodes", "8", "-seed", "3"}, stop)
	}()

	select {
	case <-out.first:
	case err := <-errs:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("qosd never announced its address")
	}
	line := strings.SplitN(out.String(), "\n", 2)[0]
	fields := strings.Fields(line)
	if len(fields) < 4 {
		t.Fatalf("unexpected announcement %q", line)
	}
	base := "http://" + fields[3]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %s", resp.Status)
	}

	resp, err = http.Post(base+"/v1/quote", "application/json",
		strings.NewReader(`{"nodes": 2, "exec_seconds": 600}`))
	if err != nil {
		t.Fatal(err)
	}
	var quote struct {
		SessionID string `json:"session_id"`
		Quotes    []struct {
			Offer int `json:"offer"`
		} `json:"quotes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&quote); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || quote.SessionID == "" || len(quote.Quotes) == 0 {
		t.Fatalf("quote over HTTP failed: %s %+v", resp.Status, quote)
	}

	resp, err = http.Post(base+"/v1/accept", "application/json",
		strings.NewReader(fmt.Sprintf(`{"session_id": %q, "offer": 1}`, quote.SessionID)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("accept over HTTP: %s", resp.Status)
	}

	close(stop)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("qosd did not drain after stop")
	}
}

// startRun launches run in the background and waits for the announcement
// line, returning the API base URL, the stop channel, the error channel,
// and the output collector.
func startRun(t *testing.T, args []string) (string, chan struct{}, chan error, *syncWriter) {
	t.Helper()
	out := &syncWriter{first: make(chan struct{})}
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() { errs <- run(out, args, stop) }()
	select {
	case <-out.first:
	case err := <-errs:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("qosd never announced its address")
	}
	fields := strings.Fields(strings.SplitN(out.String(), "\n", 2)[0])
	if len(fields) < 4 {
		t.Fatalf("unexpected announcement %q", out.String())
	}
	return "http://" + fields[3], stop, errs, out
}

// drain stops a startRun daemon and fails the test if it errors or hangs.
func drain(t *testing.T, stop chan struct{}, errs chan error) {
	t.Helper()
	close(stop)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("qosd did not drain after stop")
	}
}

func TestRunRecoversFromDataDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-nodes", "8", "-seed", "3", "-data-dir", dir}

	// First life: admit a job, then drain cleanly.
	base, stop, errs, out := startRun(t, args)
	resp, err := http.Post(base+"/v1/quote", "application/json",
		strings.NewReader(`{"nodes": 2, "exec_seconds": 600}`))
	if err != nil {
		t.Fatal(err)
	}
	var quote struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&quote); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || quote.SessionID == "" {
		t.Fatalf("quote over HTTP failed: %s", resp.Status)
	}
	resp, err = http.Post(base+"/v1/accept", "application/json",
		strings.NewReader(fmt.Sprintf(`{"session_id": %q, "offer": 1}`, quote.SessionID)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("accept over HTTP: %s", resp.Status)
	}
	drain(t, stop, errs)
	if !strings.Contains(out.String(), "fresh state") {
		t.Errorf("first boot should report fresh state, got:\n%s", out.String())
	}

	// Second life: the admitted job must survive the restart.
	base, stop, errs, out = startRun(t, args)
	resp, err = http.Get(base + "/v1/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || job.ID != 1 {
		t.Fatalf("job 1 did not survive restart: %s %+v", resp.Status, job)
	}
	drain(t, stop, errs)
	if !strings.Contains(out.String(), "clean shutdown") {
		t.Errorf("restart should report clean shutdown, got:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, []string{"-nodes", "0"}, nil); err == nil {
		t.Error("zero-node cluster accepted")
	}
	if err := run(&bytes.Buffer{}, []string{"-failures", "/does/not/exist"}, nil); err == nil {
		t.Error("missing trace file accepted")
	}
}
