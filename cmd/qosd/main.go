// Command qosd serves the paper's §5 deadline-negotiation dialog as a
// long-running HTTP/JSON daemon over a live cluster state.
//
// Usage:
//
//	qosd [-addr host:port] [-nodes N] [-failures trace.csv] [-seed S]
//	     [-a accuracy] [-speedup X] [-ttl-mins M] [-max-quotes K]
//	     [-max-outstanding J] [-data-dir DIR] [-snapshot-every N]
//	     [-trace-spans N]
//
// Without -failures a synthetic trace matching the paper's AIX failure
// data is generated for the cluster. The virtual clock is manual by
// default (drive it with POST /v1/advance); -speedup X makes one wall
// second advance the clock by X virtual seconds.
//
// With -data-dir the daemon is crash-safe: every state mutation is
// appended to a write-ahead log in DIR before it is applied, compacted
// into snapshots on a risk-based cadence, and replayed on restart so
// admitted jobs and their deadline promises survive a kill -9.
//
// With -trace-spans N every request is traced: responses carry an
// X-Qos-Trace ID and Server-Timing header, and /debug/trace exports the
// last N spans as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// API: POST /v1/quote, POST /v1/accept, GET /v1/jobs, GET /v1/jobs/{id},
// POST /v1/faults, POST /v1/advance, GET /v1/state, GET /qos/conformance,
// GET /debug/trace, plus /metrics, /healthz, and /snapshot from the
// instrumentation layer. See cmd/qosctl for a command-line client and
// README.md for a curl walkthrough.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"probqos"
)

func main() {
	if err := run(os.Stdout, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "qosd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until stop closes or a termination
// signal arrives. A nil stop means "signals only" (production); tests pass
// their own channel. The bound address is printed on out as the first
// line, so callers binding :0 can discover the port.
func run(out io.Writer, args []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("qosd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:9120", "listen address for the negotiation API")
		nodes       = fs.Int("nodes", 128, "cluster size")
		failureFile = fs.String("failures", "", "failure trace CSV (default: synthetic AIX-like trace)")
		seed        = fs.Int64("seed", 0, "seed for the synthetic failure trace")
		accuracy    = fs.Float64("a", 0.5, "event prediction accuracy in [0,1]")
		speedup     = fs.Float64("speedup", 0, "virtual seconds per wall second (0 = manual clock via /v1/advance)")
		ttlMins     = fs.Float64("ttl-mins", 60, "session TTL in virtual minutes: how long a quote stands")
		maxQuotes   = fs.Int("max-quotes", 8, "maximum offers per quote request")
		maxOut      = fs.Int("max-outstanding", 0, "admission limit on open promises (0 = unlimited)")
		dataDir     = fs.String("data-dir", "", "durable state directory (empty = memory only)")
		snapEvery   = fs.Int("snapshot-every", 0, "hard cap on WAL records between snapshots (0 = default)")
		traceSpans  = fs.Int("trace-spans", 0, "request-tracing span budget (0 = tracing disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	trace, err := loadFailures(*failureFile, *nodes, *seed)
	if err != nil {
		return err
	}

	cfg := probqos.NewQoSServiceConfig(trace)
	cfg.Nodes = *nodes
	cfg.Accuracy = *accuracy
	cfg.Speedup = *speedup
	cfg.SessionTTL = probqos.Duration(*ttlMins * 60)
	cfg.MaxQuotes = *maxQuotes
	cfg.MaxOutstanding = *maxOut
	cfg.DataDir = *dataDir
	cfg.SnapshotEvery = *snapEvery
	if *traceSpans > 0 {
		cfg.Tracer = probqos.NewTracer(*traceSpans)
	}

	svc, err := probqos.NewQoSService(cfg)
	if err != nil {
		return err
	}
	bound, err := svc.Start(*addr)
	if err != nil {
		svc.Close()
		return err
	}
	fmt.Fprintf(out, "qosd listening on %s (%d nodes, a=%.2f, speedup=%g)\n",
		bound, *nodes, *accuracy, *speedup)
	if *traceSpans > 0 {
		fmt.Fprintf(out, "qosd tracing on (%d-span budget; X-Qos-Trace, Server-Timing, /debug/trace)\n",
			*traceSpans)
	}
	if info := svc.RecoveryInfo(); info.Enabled {
		kind := "fresh state"
		if info.SnapshotLoaded || info.RecordsReplayed > 0 {
			kind = "clean shutdown"
			if !info.Clean {
				kind = "crash recovery"
			}
		}
		fmt.Fprintf(out, "qosd durable in %s (%s: snapshot=%v, replayed=%d records)\n",
			*dataDir, kind, info.SnapshotLoaded, info.RecordsReplayed)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(out, "qosd: %v, draining\n", s)
	case <-stop:
	}
	return svc.Close()
}

// loadFailures reads a failure trace CSV, or generates the synthetic
// AIX-like trace when path is empty.
func loadFailures(path string, nodes int, seed int64) (*probqos.FailureTrace, error) {
	if path == "" {
		return probqos.GenerateFailureTrace(
			probqos.RawLogConfig{Nodes: nodes, Seed: seed}, probqos.FilterConfig{Seed: seed})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return probqos.ParseFailureTrace(nodes, f)
}
