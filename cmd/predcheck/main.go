// Command predcheck audits the event predictor against a failure trace:
// per-failure detection rate, windowed false-positive rate, and mean
// reported confidence, across a range of accuracies. It verifies the §4.3
// construction (detection rate ≈ a, zero false positives, predictions
// capped at a) on any trace, synthetic or parsed.
//
// Usage:
//
//	predcheck [-trace file.csv] [-nodes N] [-window-hours H] [-a LIST] [-seed S]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"probqos"
	"probqos/internal/predict"
	"probqos/internal/table"
	"probqos/internal/units"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "predcheck:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("predcheck", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "failure trace CSV (default: synthetic)")
		nodes     = fs.Int("nodes", 128, "cluster size")
		windowHrs = fs.Float64("window-hours", 24, "audit window width in hours")
		accList   = fs.String("a", "0,0.1,0.3,0.5,0.7,0.9,1", "comma-separated accuracies to audit")
		seed      = fs.Int64("seed", 0, "synthetic trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		trace *probqos.FailureTrace
		err   error
	)
	if *tracePath == "" {
		trace, err = probqos.GenerateFailureTrace(
			probqos.RawLogConfig{Nodes: *nodes, Seed: *seed}, probqos.FilterConfig{Seed: *seed})
	} else {
		var f *os.File
		if f, err = os.Open(*tracePath); err == nil {
			defer f.Close()
			trace, err = probqos.ParseFailureTrace(*nodes, f)
		}
	}
	if err != nil {
		return err
	}

	window := units.Duration(*windowHrs * float64(units.Hour))
	t := table.New(
		fmt.Sprintf("Predictor audit: %d failures, %.1fh windows", trace.Len(), window.Hours()),
		"Accuracy (a)", "Detected", "Detection rate", "False positives", "FP rate", "Mean confidence")
	for _, field := range strings.Split(*accList, ",") {
		a, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return fmt.Errorf("accuracy %q: %w", field, err)
		}
		p, err := predict.NewTrace(trace, a)
		if err != nil {
			return err
		}
		audit := predict.Run(p, trace, window)
		t.Add(
			table.Float(a, 2),
			strconv.Itoa(audit.Detected),
			table.Float(audit.DetectionRate(), 3),
			strconv.Itoa(audit.FalsePositives),
			table.Float(audit.FalsePositiveRate(), 4),
			table.Float(audit.MeanConfidence, 3),
		)
	}
	return t.WriteText(out)
}
