package main

import (
	"strings"
	"testing"
)

func TestRunAuditsAccuracies(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-a", "0,0.5,1", "-window-hours", "12"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Detection rate") {
		t.Errorf("audit table missing:\n%s", out)
	}
	// The zero-accuracy row must show zero detections; the full-accuracy
	// row must detect everything; nobody may report false positives.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "1.00") || !strings.Contains(last, "1.000") {
		t.Errorf("a=1 row wrong: %q", last)
	}
}

func TestRunRejectsBadAccuracyList(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-a", "0.5,zebra"}); err == nil {
		t.Error("bad accuracy list accepted")
	}
}
