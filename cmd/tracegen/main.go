// Command tracegen generates the synthetic inputs of the reproduction:
// SWF job logs in the NASA/SDSC regimes, raw RAS event logs, and filtered
// failure traces.
//
// Usage:
//
//	tracegen -kind workload -log NASA|SDSC [-jobs N] [-load F] [-seed S] [-o file]
//	tracegen -kind rawlog   [-nodes N] [-days D] [-episodes E] [-seed S] [-o file]
//	tracegen -kind failures [-nodes N] [-days D] [-episodes E] [-seed S] [-o file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"probqos"
	"probqos/internal/units"
	"probqos/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "workload", "what to generate: workload, rawlog, failures")
		logName  = fs.String("log", "SDSC", "workload regime: NASA or SDSC")
		jobs     = fs.Int("jobs", 10000, "workload job count")
		load     = fs.Float64("load", 0, "offered load target (0 = per-log default)")
		nodes    = fs.Int("nodes", 128, "cluster size")
		days     = fs.Int("days", 365, "raw log / failure trace span in days")
		episodes = fs.Int("episodes", 1021, "fault episodes (filtered failures)")
		seed     = fs.Int64("seed", 0, "random seed")
		outPath  = fs.String("o", "", "output file (default stdout)")
		stats    = fs.Bool("stats", false, "print a distribution profile to stderr (workload kind only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	switch *kind {
	case "workload":
		log, err := probqos.GenerateWorkload(*logName, probqos.WorkloadConfig{
			Jobs: *jobs, Seed: *seed, ClusterNodes: *nodes, Load: *load,
		})
		if err != nil {
			return err
		}
		if *stats {
			if _, err := workload.BuildProfile(log).WriteTo(os.Stderr); err != nil {
				return err
			}
		}
		return log.WriteSWF(out)
	case "rawlog":
		raw := probqos.GenerateRawRASLog(rawConfig(*nodes, *days, *episodes, *seed))
		return probqos.WriteRawRASLog(out, raw)
	case "failures":
		trace, err := probqos.GenerateFailureTrace(
			rawConfig(*nodes, *days, *episodes, *seed), probqos.FilterConfig{Seed: *seed})
		if err != nil {
			return err
		}
		return trace.WriteCSV(out)
	}
	return fmt.Errorf("unknown kind %q (want workload, rawlog, or failures)", *kind)
}

func rawConfig(nodes, days, episodes int, seed int64) probqos.RawLogConfig {
	return probqos.RawLogConfig{
		Nodes:    nodes,
		Span:     probqos.Duration(days) * units.Day,
		Episodes: episodes,
		Seed:     seed,
	}
}
