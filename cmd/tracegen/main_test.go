package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWorkloadKind(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-kind", "workload", "-log", "NASA", "-jobs", "50"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "; Workload: NASA") {
		t.Errorf("SWF header missing:\n%s", sb.String()[:100])
	}
	if got := strings.Count(sb.String(), "\n"); got < 50 {
		t.Errorf("only %d lines", got)
	}
}

func TestRunFailuresKind(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	var sb strings.Builder
	if err := run(&sb, []string{"-kind", "failures", "-days", "30", "-episodes", "40", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "time,node,detectability") {
		t.Errorf("trace header missing:\n%s", string(data[:80]))
	}
}

func TestRunRawLogKind(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-kind", "rawlog", "-days", "10", "-episodes", "20"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FATAL") && !strings.Contains(sb.String(), "FAILURE") {
		t.Error("raw log has no critical events")
	}
}

func TestRunUnknownKind(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-kind", "nonsense"}); err == nil {
		t.Error("unknown kind accepted")
	}
}
