// Command qossweep regenerates the paper's tables and figures: parameter
// sweeps over prediction accuracy a and user strategy U, printed as the
// same rows/series the paper reports.
//
// Usage:
//
//	qossweep [-exp all|list|table1|table2|fig1..fig12|headline|ablation-*]
//	         [-jobs N] [-seed S] [-workers W] [-csv] [-serve addr]
//
// "-exp list" prints the available experiments. Full scale (10,000 jobs)
// regenerates everything in a few minutes; -jobs 2000 gives a fast preview
// with the same shapes.
//
// -serve exposes the sweep live over HTTP while it runs: /metrics carries
// Prometheus gauges for points done/queued, elapsed seconds, and an ETA, so
// multi-hour sweeps can be watched from a browser or scraped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"probqos/internal/experiment"
	"probqos/internal/obs"
	"probqos/internal/table"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qossweep:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("qossweep", flag.ContinueOnError)
	var (
		expFlag = fs.String("exp", "all", "experiment ID, comma-separated IDs, 'all', or 'list'")
		jobs    = fs.Int("jobs", 10000, "workload size (the paper uses 10000)")
		seed    = fs.Int64("seed", 0, "synthetic trace seed")
		workers = fs.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		asCSV   = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outDir  = fs.String("outdir", "", "also write each experiment's tables as CSV files into this directory")
		serve   = fs.String("serve", "", "serve sweep progress on this address (/metrics, /healthz, /snapshot)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *expFlag == "list" {
		for _, exp := range experiment.All() {
			fmt.Fprintf(out, "%-22s %s\n", exp.ID, exp.Title)
		}
		return nil
	}

	var selected []experiment.Experiment
	if *expFlag == "all" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			exp, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -exp list)", id)
			}
			selected = append(selected, exp)
		}
	}

	env := experiment.NewEnv()
	env.JobCount = *jobs
	env.Seed = *seed
	env.Workers = *workers

	if *serve != "" {
		reg := obs.NewRegistry()
		srv := obs.NewServer(reg, nil, nil)
		addr, err := srv.Start(*serve)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "serving sweep metrics on http://%s/metrics\n", addr)
		var (
			gQueued  = reg.Gauge("probqos_sweep_points_total", "Simulation points queued so far (grows as experiments prefetch).", nil)
			gDone    = reg.Gauge("probqos_sweep_points_done", "Simulation points computed so far.", nil)
			gElapsed = reg.Gauge("probqos_sweep_elapsed_seconds", "Wall-clock seconds since the sweep started.", nil)
			gETA     = reg.Gauge("probqos_sweep_eta_seconds", "Estimated seconds to finish the points queued so far.", nil)
			start    = time.Now()
		)
		env.Progress = func(done, queued int) {
			elapsed := time.Since(start).Seconds()
			gDone.Set(float64(done))
			gQueued.Set(float64(queued))
			gElapsed.Set(elapsed)
			if done > 0 {
				gETA.Set(elapsed / float64(done) * float64(queued-done))
			}
		}
	}

	// Experiments run concurrently over the shared Env (each one also
	// parallelizes its own points; the Env's simulation semaphore bounds the
	// stack), then render in input order — byte-identical to a serial loop,
	// including stopping at the first failed experiment.
	results := experiment.RunAll(env, selected, *workers)
	for i, res := range results {
		exp := res.Exp
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "== %s: %s\n", exp.ID, exp.Title)
		fmt.Fprintf(out, "   paper: %s\n", exp.Paper)
		if res.Err != nil {
			return fmt.Errorf("%s: %w", exp.ID, res.Err)
		}
		for k, t := range res.Tables {
			fmt.Fprintln(out)
			if *asCSV {
				if err := t.WriteCSV(out); err != nil {
					return err
				}
			} else if err := t.WriteText(out); err != nil {
				return err
			}
			if *outDir != "" {
				if err := writeCSVFile(*outDir, exp.ID, k, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSVFile(dir, id string, index int, t *table.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := id + ".csv"
	if index > 0 {
		name = fmt.Sprintf("%s_%d.csv", id, index)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
