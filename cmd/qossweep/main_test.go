package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-exp", "list"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig1", "fig12", "headline", "ablation-checkpoint"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-exp", "table1", "-jobs", "300"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NASA") || !strings.Contains(sb.String(), "paper:") {
		t.Errorf("experiment output wrong:\n%s", sb.String())
	}
}

func TestRunCommaSeparatedCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-exp", "table1,table2", "-jobs", "200", "-csv"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Job Log,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "== table2") {
		t.Errorf("second experiment missing:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(&sb, []string{"-exp", "table2", "-jobs", "100", "-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "N (nodes)") {
		t.Errorf("csv content wrong: %s", data)
	}
}

func TestRunServeFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-exp", "table1", "-jobs", "200", "-serve", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serving sweep metrics on http://127.0.0.1:") {
		t.Errorf("serve banner missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "NASA") {
		t.Errorf("sweep output missing:\n%s", sb.String())
	}
}
