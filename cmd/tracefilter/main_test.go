package main

import (
	"bytes"
	"strings"
	"testing"

	"probqos"
)

func TestRunFiltersStdinToStdout(t *testing.T) {
	raw := probqos.GenerateRawRASLog(probqos.RawLogConfig{Episodes: 30, Seed: 2})
	var in bytes.Buffer
	if err := probqos.WriteRawRASLog(&in, raw); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&in, &out, []string{"-nodes", "128"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "time,node,detectability") {
		t.Errorf("output is not a trace CSV:\n%s", out.String()[:80])
	}
	// The filtered trace parses back.
	trace, err := probqos.ParseFailureTrace(128, strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 || trace.Len() > 30 {
		t.Errorf("filtered %d failures from 30 episodes", trace.Len())
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("not a raw log\n"), &out, nil); err == nil {
		t.Error("garbage input accepted")
	}
}
