// Command tracefilter runs the failure-filtering pipeline of §4.3 on a raw
// RAS event log: it isolates FATAL/FAILURE events, coalesces clusters that
// share a root cause, assigns static detectabilities, and emits a
// simulator-ready failure trace.
//
// Usage:
//
//	tracefilter [-nodes N] [-window SECONDS] [-seed S] [-in raw.log] [-o trace.csv] [-stats]
//
// Reads the raw log from stdin unless -in is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"probqos"
	"probqos/internal/failure"
	"probqos/internal/units"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracefilter:", err)
		os.Exit(1)
	}
}

func run(stdin io.Reader, stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracefilter", flag.ContinueOnError)
	var (
		nodes   = fs.Int("nodes", 128, "cluster size the trace applies to")
		window  = fs.Int64("window", 300, "root-cause coalescing window in seconds")
		seed    = fs.Int64("seed", 0, "detectability assignment seed")
		inPath  = fs.String("in", "", "raw RAS log file (default stdin)")
		outPath = fs.String("o", "", "output trace CSV (default stdout)")
		stats   = fs.Bool("stats", false, "print trace statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	raw, err := probqos.ParseRawRASLog(in)
	if err != nil {
		return err
	}

	trace, err := probqos.FilterRawLog(raw, *nodes, probqos.FilterConfig{
		Window: probqos.Duration(*window) * units.Second,
		Seed:   *seed,
	})
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := trace.WriteCSV(out); err != nil {
		return err
	}
	if *stats {
		if _, err := failure.AnalyzeRawLog(raw).WriteTo(os.Stderr); err != nil {
			return err
		}
		s := trace.Stats()
		fmt.Fprintf(os.Stderr, "failures kept:  %d\n", s.Failures)
		fmt.Fprintf(os.Stderr, "span:           %.1f days\n", s.Span.Hours()/24)
		fmt.Fprintf(os.Stderr, "cluster MTBF:   %.2f h\n", s.ClusterMTBF.Hours())
		fmt.Fprintf(os.Stderr, "node MTBF:      %.1f weeks\n", s.NodeMTBF.Hours()/(24*7))
		fmt.Fprintf(os.Stderr, "failures/day:   %.2f\n", s.PerDay)
	}
	return nil
}
