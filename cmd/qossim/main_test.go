package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTextOutput(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-log", "NASA", "-jobs", "120", "-a", "0.7", "-u", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"QoS", "utilization", "lost work", "checkpoints"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-jobs", "80", "-json"}); err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if _, ok := report["QoS"]; !ok {
		t.Errorf("JSON missing QoS: %v", report)
	}
}

func TestRunSideFiles(t *testing.T) {
	dir := t.TempDir()
	perjob := filepath.Join(dir, "jobs.csv")
	failrec := filepath.Join(dir, "fails.csv")
	journal := filepath.Join(dir, "journal.jsonl")
	var sb strings.Builder
	err := run(&sb, []string{
		"-jobs", "60", "-perjob", perjob, "-failrec", failrec,
		"-journal", journal, "-calibration", "-breakdown",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{perjob, failrec, journal} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if !strings.Contains(sb.String(), "promise reliability") {
		t.Error("calibration section missing")
	}
	if !strings.Contains(sb.String(), "by job size") {
		t.Error("breakdown section missing")
	}
}

func TestRunPolicyAndVariantFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-jobs", "50", "-policy", "periodic"},
		{"-jobs", "50", "-policy", "never"},
		{"-jobs", "50", "-no-deadline-skip", "-no-fault-aware", "-no-negotiate", "-pure-forecast"},
		{"-jobs", "50", "-horizon-hours", "12"},
	} {
		var sb strings.Builder
		if err := run(&sb, args); err != nil {
			t.Errorf("args %v: %v", args, err)
		}
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-policy", "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run(&sb, []string{"-log", "/does/not/exist.swf"}); err == nil {
		t.Error("missing SWF accepted")
	}
}

func TestRunSWFWorkload(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "log.swf")
	f, err := os.Create(swf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1 0 -1 600 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-log", swf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(1 jobs)") {
		t.Errorf("SWF workload not loaded:\n%s", sb.String())
	}
}

func TestRunMonitorPredictor(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-jobs", "60", "-log", "NASA", "-monitor", "-u", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "QoS") {
		t.Errorf("monitor run output wrong:\n%s", sb.String())
	}
	if err := run(&sb, []string{"-monitor", "-failures", "/tmp/nonexistent.csv"}); err == nil {
		t.Error("monitor with -failures should be rejected")
	}
}

func TestRunJSONFoldsSections(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-jobs", "80", "-json", "-breakdown", "-calibration", "-profile"})
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		QoS         *float64         `json:"QoS"`
		Breakdown   []map[string]any `json:"breakdown"`
		Calibration *struct {
			Bins           []map[string]any `json:"bins"`
			Overconfidence *float64         `json:"overconfidence"`
		} `json:"calibration"`
		Profile []struct {
			Phase string `json:"phase"`
			Calls uint64 `json:"calls"`
		} `json:"profile"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if payload.QoS == nil {
		t.Error("report fields missing")
	}
	if len(payload.Breakdown) == 0 {
		t.Error("breakdown not folded into JSON")
	}
	if payload.Calibration == nil || len(payload.Calibration.Bins) == 0 || payload.Calibration.Overconfidence == nil {
		t.Errorf("calibration not folded into JSON: %+v", payload.Calibration)
	}
	if len(payload.Profile) == 0 || payload.Profile[0].Phase != "dispatch" || payload.Profile[0].Calls == 0 {
		t.Errorf("profile not folded into JSON: %+v", payload.Profile)
	}
	// The folded document is the whole output: nothing printed around it.
	var extra any
	dec := json.NewDecoder(strings.NewReader(sb.String()))
	if err := dec.Decode(&extra); err != nil {
		t.Fatal(err)
	}
	if dec.More() {
		t.Error("trailing content after the JSON document")
	}
}

func TestRunJSONOmitsSectionsByDefault(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-jobs", "60", "-json"}); err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"breakdown", "calibration", "profile"} {
		if _, ok := report[key]; ok {
			t.Errorf("%s present without its flag", key)
		}
	}
}

func TestRunObservabilityFlags(t *testing.T) {
	series := filepath.Join(t.TempDir(), "series.csv")
	var sb strings.Builder
	err := run(&sb, []string{
		"-jobs", "80", "-serve", "127.0.0.1:0", "-profile",
		"-series", series, "-sample-mins", "30",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "serving metrics on http://127.0.0.1:") {
		t.Errorf("serve banner missing:\n%s", out)
	}
	if !strings.Contains(out, "phase profile (wall-clock):") || !strings.Contains(out, "dispatch") {
		t.Errorf("phase profile missing:\n%s", out)
	}
	data, err := os.ReadFile(series)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("series CSV too short:\n%s", data)
	}
	if !strings.HasPrefix(lines[0], "time_s,queue_depth,") {
		t.Errorf("series header = %q", lines[0])
	}
}

func TestRunRejectsBadSampleCadence(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-jobs", "20", "-profile", "-sample-mins", "0"}); err == nil {
		t.Error("non-positive -sample-mins accepted")
	}
}
