package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTextOutput(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-log", "NASA", "-jobs", "120", "-a", "0.7", "-u", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"QoS", "utilization", "lost work", "checkpoints"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-jobs", "80", "-json"}); err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if _, ok := report["QoS"]; !ok {
		t.Errorf("JSON missing QoS: %v", report)
	}
}

func TestRunSideFiles(t *testing.T) {
	dir := t.TempDir()
	perjob := filepath.Join(dir, "jobs.csv")
	failrec := filepath.Join(dir, "fails.csv")
	journal := filepath.Join(dir, "journal.jsonl")
	var sb strings.Builder
	err := run(&sb, []string{
		"-jobs", "60", "-perjob", perjob, "-failrec", failrec,
		"-journal", journal, "-calibration", "-breakdown",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{perjob, failrec, journal} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if !strings.Contains(sb.String(), "promise reliability") {
		t.Error("calibration section missing")
	}
	if !strings.Contains(sb.String(), "by job size") {
		t.Error("breakdown section missing")
	}
}

func TestRunPolicyAndVariantFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-jobs", "50", "-policy", "periodic"},
		{"-jobs", "50", "-policy", "never"},
		{"-jobs", "50", "-no-deadline-skip", "-no-fault-aware", "-no-negotiate", "-pure-forecast"},
		{"-jobs", "50", "-horizon-hours", "12"},
	} {
		var sb strings.Builder
		if err := run(&sb, args); err != nil {
			t.Errorf("args %v: %v", args, err)
		}
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-policy", "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run(&sb, []string{"-log", "/does/not/exist.swf"}); err == nil {
		t.Error("missing SWF accepted")
	}
}

func TestRunSWFWorkload(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "log.swf")
	f, err := os.Create(swf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1 0 -1 600 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-log", swf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(1 jobs)") {
		t.Errorf("SWF workload not loaded:\n%s", sb.String())
	}
}

func TestRunMonitorPredictor(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-jobs", "60", "-log", "NASA", "-monitor", "-u", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "QoS") {
		t.Errorf("monitor run output wrong:\n%s", sb.String())
	}
	if err := run(&sb, []string{"-monitor", "-failures", "/tmp/nonexistent.csv"}); err == nil {
		t.Error("monitor with -failures should be rejected")
	}
}
