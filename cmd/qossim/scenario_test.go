package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testScenario = `name: cli-smoke
description: two tiny jobs on a quiet fleet
seed: 7
fleet:
  nodes: 8
  accuracy: 0.9
  user_risk: 0.5
  checkpoint:
    interval_s: 3600
    overhead_s: 720
  downtime_s: 120
  policy: risk
events:
  - at_s: 0
    action: arrival_burst
    burst:
      jobs: 2
      min_nodes: 1
      max_nodes: 2
      min_exec_s: 600
      max_exec_s: 1200
assertions:
  - type: min_completed
    min: 2
`

func writeScenario(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSubcommandExecutesScenario(t *testing.T) {
	path := writeScenario(t, "smoke.yaml", testScenario)
	var sb strings.Builder
	if err := run(&sb, []string{"run", path}); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Scenario string `json:"scenario"`
		OK       bool   `json:"ok"`
		Jobs     struct {
			Completed int `json:"completed"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid report JSON: %v\n%s", err, sb.String())
	}
	if report.Scenario != "cli-smoke" || !report.OK || report.Jobs.Completed != 2 {
		t.Errorf("report = %+v, want cli-smoke ok with 2 completed", report)
	}
}

func TestRunSubcommandFailsOnBrokenAssertions(t *testing.T) {
	impossible := strings.Replace(testScenario, "min: 2", "min: 99", 1)
	path := writeScenario(t, "impossible.yaml", impossible)
	var sb strings.Builder
	err := run(&sb, []string{"run", path})
	if err == nil || !strings.Contains(err.Error(), "assertions failed in 1 of 1 scenarios") {
		t.Fatalf("err = %v, want assertion failure", err)
	}
	// The report is still printed, with ok: false, so the failure is
	// inspectable from stdout alone.
	if !strings.Contains(sb.String(), `"ok": false`) {
		t.Errorf("failing report not printed:\n%s", sb.String())
	}
}

func TestValidateSubcommandAcceptsDirectory(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.yaml", "b.yaml"} {
		content := strings.Replace(testScenario, "cli-smoke", strings.TrimSuffix(name, ".yaml"), 1)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := run(&sb, []string{"validate", dir}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 ||
		!strings.Contains(lines[0], "ok ") || !strings.Contains(lines[0], "a.yaml (a: 1 events, 1 assertions)") ||
		!strings.Contains(lines[1], "b.yaml (b: 1 events, 1 assertions)") {
		t.Errorf("validate output:\n%s", sb.String())
	}
}

// TestValidateSubcommandPositionedErrors pins the property the subcommand
// exists for: a malformed file is rejected with file:line:col pointing at
// the offending token.
func TestValidateSubcommandPositionedErrors(t *testing.T) {
	path := writeScenario(t, "bad.yaml", "name: broken\nseed: soon\n")
	var sb strings.Builder
	err := run(&sb, []string{"validate", path})
	if err == nil {
		t.Fatal("malformed scenario accepted")
	}
	if want := path + ":2:7: seed must be an integer"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want position %q", err, want)
	}
}

func TestScenarioSubcommandArgErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"run"}); err == nil {
		t.Error("run with no paths accepted")
	}
	if err := run(&sb, []string{"validate", t.TempDir()}); err == nil {
		t.Error("empty directory accepted")
	}
	if err := run(&sb, []string{"run", filepath.Join(t.TempDir(), "missing.yaml")}); err == nil {
		t.Error("missing file accepted")
	}
}

// TestScenarioSubcommandsRejectEmptyDirectories pins the exit-non-zero
// contract for both subcommands when a directory expands to zero scenario
// files — a CI gate pointed at an empty or misnamed zoo directory must fail
// loudly, not report success having simulated nothing.
func TestScenarioSubcommandsRejectEmptyDirectories(t *testing.T) {
	for _, sub := range []string{"run", "validate"} {
		t.Run(sub, func(t *testing.T) {
			dir := t.TempDir()
			// Entries a scenario walk must ignore: a subdirectory and a
			// non-scenario extension.
			if err := os.Mkdir(filepath.Join(dir, "nested"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not a scenario"), 0o644); err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			err := run(&sb, []string{sub, dir})
			if err == nil {
				t.Fatalf("%s on a scenario-free directory succeeded", sub)
			}
			if !strings.Contains(err.Error(), "no scenarios found") {
				t.Errorf("err = %v, want a 'no scenarios found' message", err)
			}
		})
	}
}
