package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"probqos"
)

// The scenario subcommands:
//
//	qossim run <scenario.yaml|dir>...       execute scenarios, print reports
//	qossim validate <scenario.yaml|dir>...  check files, report positioned errors
//
// Directories expand to their *.yaml, *.yml, and *.json entries in name
// order (the zoo layout). run exits non-zero when any scenario's
// assertions fail; validate exits non-zero when any file is malformed,
// with file:line:col on every complaint.

// scenarioFiles expands the path arguments into a flat scenario file list.
func scenarioFiles(paths []string) ([]string, error) {
	if len(paths) == 0 {
		return nil, errors.New("no scenario files or directories given")
	}
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		entries, err := os.ReadDir(p) // sorted by name
		if err != nil {
			return nil, err
		}
		before := len(files)
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			switch filepath.Ext(e.Name()) {
			case ".yaml", ".yml", ".json":
				files = append(files, filepath.Join(p, e.Name()))
			}
		}
		if len(files) == before {
			return nil, fmt.Errorf("no scenarios found: directory %s holds no scenario files", p)
		}
	}
	// Defense in depth: run/validate on an empty list would "succeed"
	// without simulating anything, which reads as a green CI gate.
	if len(files) == 0 {
		return nil, fmt.Errorf("no scenarios found in %s", strings.Join(paths, ", "))
	}
	return files, nil
}

// runScenarios executes each scenario and prints its report as JSON.
func runScenarios(out io.Writer, args []string) error {
	files, err := scenarioFiles(args)
	if err != nil {
		return err
	}
	var failed []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		rep, err := probqos.RunScenario(f, data)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
		if !rep.OK {
			failed = append(failed, rep.Scenario)
			for _, a := range rep.Failed() {
				fmt.Fprintf(os.Stderr, "qossim: %s: assertion %s failed: %s\n", rep.Scenario, a.Type, a.Detail)
			}
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("assertions failed in %d of %d scenarios: %s",
			len(failed), len(files), strings.Join(failed, ", "))
	}
	return nil
}

// validateScenarios decodes each file, reporting every problem with its
// source position.
func validateScenarios(out io.Writer, args []string) error {
	files, err := scenarioFiles(args)
	if err != nil {
		return err
	}
	var errs []error
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s, err := probqos.DecodeScenario(f, data)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		fmt.Fprintf(out, "ok %s (%s: %d events, %d assertions)\n", f, s.Name, len(s.Events), len(s.Asserts))
	}
	return errors.Join(errs...)
}
