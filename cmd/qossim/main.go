// Command qossim runs a single probabilistic-QoS simulation and prints its
// metrics: one (workload, failure trace, a, U) point of the paper's
// evaluation. It also executes declarative scenario files (see
// internal/scenario) through two subcommands.
//
// Usage:
//
//	qossim [-log NASA|SDSC|file.swf] [-failures trace.csv] [-jobs N]
//	       [-a accuracy] [-u risk] [-seed S] [-policy risk|periodic|never]
//	       [-no-deadline-skip] [-no-fault-aware] [-no-negotiate]
//	       [-pure-forecast] [-journal out.jsonl] [-json]
//	       [-serve addr] [-hold] [-profile] [-series out.csv] [-sample-mins M]
//	qossim run <scenario.yaml|dir>...
//	qossim validate <scenario.yaml|dir>...
//
// run executes each scenario deterministically and prints its report as
// JSON, exiting non-zero if any declared assertion fails; validate checks
// scenario files and reports malformed input with file:line:col positions.
// A directory argument expands to its *.yaml, *.yml, and *.json entries.
//
// Without -failures a synthetic trace matching the paper's AIX failure
// data (1021 failures/year on 128 nodes, MTBF 8.5 h) is generated.
//
// Observability: -serve exposes /metrics (Prometheus text), /healthz, and
// /snapshot while the run executes (-hold keeps serving after it finishes);
// -profile prints the per-phase wall-clock breakdown; -series writes the
// sampled cluster time series (queue depth, nodes busy, lost work, mean
// promise) as CSV, one point per -sample-mins of simulated time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"probqos"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qossim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenarios(out, args[1:])
		case "validate":
			return validateScenarios(out, args[1:])
		}
	}
	fs := flag.NewFlagSet("qossim", flag.ContinueOnError)
	var (
		logName      = fs.String("log", "SDSC", "workload: NASA, SDSC, or a path to an SWF file")
		failureFile  = fs.String("failures", "", "failure trace CSV (default: synthetic AIX-like trace)")
		jobs         = fs.Int("jobs", 10000, "job count for synthetic workloads")
		accuracy     = fs.Float64("a", 0.5, "event prediction accuracy in [0,1]")
		userRisk     = fs.Float64("u", 0.5, "user risk strategy U in [0,1]")
		seed         = fs.Int64("seed", 0, "seed for synthetic traces")
		nodes        = fs.Int("nodes", 128, "cluster size")
		policyName   = fs.String("policy", "risk", "checkpoint policy: risk, periodic, never")
		noSkip       = fs.Bool("no-deadline-skip", false, "disable deadline-driven checkpoint skipping")
		noFaultAware = fs.Bool("no-fault-aware", false, "disable prediction-driven node selection")
		noNegotiate  = fs.Bool("no-negotiate", false, "users take the first quote regardless of U")
		pureForecast = fs.Bool("pure-forecast", false, "disable the MTBF floor in checkpoint risk")
		horizonHours = fs.Float64("horizon-hours", 0, "prediction accuracy half-life in hours (0 = static predictor)")
		useMonitor   = fs.Bool("monitor", false, "predict with the working health monitor instead of the idealized oracle (synthetic failures only)")
		journalPath  = fs.String("journal", "", "write the event journal (JSON lines) to this file")
		perJobPath   = fs.String("perjob", "", "write per-job records as CSV to this file")
		failRecPath  = fs.String("failrec", "", "write per-failure records as CSV to this file")
		calibration  = fs.Bool("calibration", false, "print the promise reliability diagram")
		breakdown    = fs.Bool("breakdown", false, "print per-size-class metrics")
		asJSON       = fs.Bool("json", false, "emit the metrics report as JSON")
		serveAddr    = fs.String("serve", "", "serve live /metrics, /healthz, /snapshot on this address during the run")
		hold         = fs.Bool("hold", false, "with -serve: keep serving after the run until interrupted")
		profile      = fs.Bool("profile", false, "report the per-phase wall-clock breakdown")
		seriesPath   = fs.String("series", "", "write the sampled cluster time series as CSV to this file")
		sampleMins   = fs.Float64("sample-mins", 15, "cluster-state sampling cadence in simulated minutes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	log, err := loadWorkload(*logName, *jobs, *seed, *nodes)
	if err != nil {
		return err
	}
	trace, err := loadFailures(*failureFile, *nodes, *seed)
	if err != nil {
		return err
	}

	cfg := probqos.NewSimConfig(log, trace)
	if *useMonitor {
		if *failureFile != "" {
			return fmt.Errorf("-monitor needs the synthetic failure pipeline (raw log + telemetry); it cannot be used with -failures")
		}
		raw := probqos.GenerateRawRASLog(probqos.RawLogConfig{Nodes: *nodes, Seed: *seed})
		telemetry, err := probqos.GenerateTelemetry(probqos.TelemetryConfig{Nodes: *nodes, Seed: *seed}, raw)
		if err != nil {
			return err
		}
		monitor, err := probqos.NewHealthMonitor(telemetry, raw, probqos.MonitorConfig{})
		if err != nil {
			return err
		}
		cfg.Predictor = monitor
	}
	cfg.Nodes = *nodes
	cfg.Accuracy = *accuracy
	cfg.UserRisk = *userRisk
	cfg.DeadlineSkip = !*noSkip
	cfg.FaultAware = !*noFaultAware
	cfg.Negotiate = !*noNegotiate
	cfg.BaseRateFloor = !*pureForecast
	cfg.PredictionHalfLife = probqos.Duration(*horizonHours * 3600)
	switch *policyName {
	case "risk":
		cfg.Policy = probqos.PolicyRiskBased
	case "periodic":
		cfg.Policy = probqos.PolicyPeriodic
	case "never":
		cfg.Policy = probqos.PolicyNever
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	var journal interface {
		probqos.Observer
		Close() error
	}
	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jw := probqos.NewJournalWriter(f)
		cfg.Observer = jw
		journal = jw
	}

	var instrument *probqos.Instrument
	if *serveAddr != "" || *profile || *seriesPath != "" {
		if *sampleMins <= 0 {
			return fmt.Errorf("-sample-mins must be positive, got %v", *sampleMins)
		}
		reg := probqos.NewMetricsRegistry()
		instrument = probqos.NewInstrument(reg, probqos.Duration(*sampleMins*60))
		cfg.Probe = instrument
		cfg.Observer = probqos.MultiObserver(cfg.Observer, instrument)
		if *serveAddr != "" {
			srv := probqos.NewMetricsServer(reg, instrument)
			addr, err := srv.Start(*serveAddr)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", addr)
		}
	}

	res, err := probqos.Run(cfg)
	if err != nil {
		return err
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return err
		}
	}
	if instrument != nil {
		instrument.Flush()
	}
	report := probqos.Metrics(res)
	if *perJobPath != "" {
		f, err := os.Create(*perJobPath)
		if err != nil {
			return err
		}
		if err := res.WriteJobsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *failRecPath != "" {
		f, err := os.Create(*failRecPath)
		if err != nil {
			return err
		}
		if err := res.WriteFailuresCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			return err
		}
		if err := instrument.WriteSeriesCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *asJSON {
		// Fold the optional sections in as nested objects so -breakdown,
		// -calibration, and -profile compose with -json.
		type calibrationJSON struct {
			Bins           []probqos.CalibrationBin `json:"bins"`
			Overconfidence float64                  `json:"overconfidence"`
		}
		payload := struct {
			probqos.Report
			Breakdown   []probqos.ClassReport `json:"breakdown,omitempty"`
			Calibration *calibrationJSON      `json:"calibration,omitempty"`
			Profile     []probqos.PhaseStat   `json:"profile,omitempty"`
		}{Report: report}
		if *breakdown {
			payload.Breakdown = probqos.MetricsBySize(res)
		}
		if *calibration {
			bins := probqos.Calibration(res, 10)
			payload.Calibration = &calibrationJSON{Bins: bins, Overconfidence: probqos.Overconfidence(bins)}
		}
		if *profile {
			payload.Profile = instrument.Report()
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			return err
		}
		return holdOpen(out, *hold, *serveAddr)
	}
	performed, skipped := res.TotalCheckpoints()
	fmt.Fprintf(out, "workload           %s (%d jobs)\n", log.Name, len(log.Jobs))
	fmt.Fprintf(out, "failure trace      %d failures\n", trace.Len())
	fmt.Fprintf(out, "accuracy a         %.2f\n", *accuracy)
	fmt.Fprintf(out, "user risk U        %.2f\n", *userRisk)
	fmt.Fprintf(out, "QoS                %.4f\n", report.QoS)
	fmt.Fprintf(out, "utilization        %.4f (raw occupancy %.4f)\n",
		report.Utilization, report.OccupiedFraction)
	fmt.Fprintf(out, "lost work          %.3e node-s\n", report.LostWork.NodeSeconds())
	fmt.Fprintf(out, "job failures       %d\n", report.JobFailures)
	fmt.Fprintf(out, "deadline misses    %.2f%% of jobs (%.2f%% of work)\n",
		100*report.DeadlineMissRate, 100*report.WorkMissRate)
	fmt.Fprintf(out, "mean promise       %.4f (observed success %.4f)\n",
		report.MeanPromise, report.ObservedSuccess)
	fmt.Fprintf(out, "mean wait          %.1f s\n", report.MeanWaitSeconds)
	fmt.Fprintf(out, "bounded slowdown   %.2f\n", report.MeanBoundedSlowdown)
	fmt.Fprintf(out, "checkpoints        %d performed, %d skipped\n", performed, skipped)
	fmt.Fprintf(out, "span               %.1f days\n", report.Span.Hours()/24)
	if *breakdown {
		fmt.Fprintln(out, "\nby job size:")
		for _, c := range probqos.MetricsBySize(res) {
			if c.Jobs == 0 {
				continue
			}
			fmt.Fprintf(out, "  %-12s %6d jobs  %4.1f%% of work  QoS %.4f  miss %.3f  fail %.3f  lost %.2e\n",
				c.Label, c.Jobs, 100*c.WorkShare, c.QoS, c.MissRate, c.FailureRate, c.LostWork.NodeSeconds())
		}
	}
	if *calibration {
		bins := probqos.Calibration(res, 10)
		fmt.Fprintln(out, "\npromise reliability (promised -> observed):")
		for _, b := range bins {
			if b.Jobs == 0 {
				continue
			}
			fmt.Fprintf(out, "  [%.1f,%.1f)  %6d jobs  promised %.3f  observed %.3f  work share %.1f%%\n",
				b.Lo, b.Hi, b.Jobs, b.PromisedMean, b.Observed, 100*b.WorkShare)
		}
		fmt.Fprintf(out, "  worst overconfidence: %.4f\n", probqos.Overconfidence(bins))
	}
	if *profile {
		fmt.Fprintln(out, "\nphase profile (wall-clock):")
		if err := instrument.WriteReport(out); err != nil {
			return err
		}
	}
	return holdOpen(out, *hold, *serveAddr)
}

// holdOpen blocks forever when -serve -hold asked the endpoint to outlive
// the run, so operators can inspect a finished simulation's metrics.
func holdOpen(out io.Writer, hold bool, serveAddr string) error {
	if !hold || serveAddr == "" {
		return nil
	}
	fmt.Fprintln(out, "run complete; serving until interrupted")
	select {}
}

func loadWorkload(name string, jobs int, seed int64, nodes int) (*probqos.JobLog, error) {
	switch strings.ToUpper(name) {
	case "NASA", "SDSC":
		return probqos.GenerateWorkload(strings.ToUpper(name),
			probqos.WorkloadConfig{Jobs: jobs, Seed: seed, ClusterNodes: nodes})
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return probqos.ParseSWF(name, f)
}

func loadFailures(path string, nodes int, seed int64) (*probqos.FailureTrace, error) {
	if path == "" {
		return probqos.GenerateFailureTrace(
			probqos.RawLogConfig{Nodes: nodes, Seed: seed}, probqos.FilterConfig{Seed: seed})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return probqos.ParseFailureTrace(nodes, f)
}
