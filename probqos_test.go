package probqos_test

import (
	"bytes"
	"strings"
	"testing"

	"probqos"
)

func TestPublicQuickstartFlow(t *testing.T) {
	log := probqos.GenerateNASAWorkload(probqos.WorkloadConfig{Jobs: 300, Seed: 2})
	trace, err := probqos.GenerateFailureTrace(probqos.RawLogConfig{Seed: 2}, probqos.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := probqos.NewSimConfig(log, trace)
	cfg.Accuracy = 0.7
	cfg.UserRisk = 0.5
	res, err := probqos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report := probqos.Metrics(res)
	if report.QoS <= 0 || report.QoS > 1 {
		t.Errorf("QoS = %v", report.QoS)
	}
	if report.Utilization <= 0 || report.Utilization > 1 {
		t.Errorf("utilization = %v", report.Utilization)
	}
	if len(res.Jobs) != 300 {
		t.Errorf("jobs = %d", len(res.Jobs))
	}
}

func TestPublicSystemNegotiation(t *testing.T) {
	// One detectable failure on every node at t=5000 makes the first quote
	// risky; the dialog must offer a later, better one.
	var events []probqos.FailureEvent
	for n := 0; n < 16; n++ {
		events = append(events, probqos.FailureEvent{Time: 5000, Node: n, Detectability: 0.4})
	}
	trace, err := probqos.NewFailureTrace(16, events)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := probqos.NewSystem(16, trace, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	quotes := sys.Quotes(0, 16, 2*probqos.Hour, 4)
	if len(quotes) < 2 {
		t.Fatalf("quotes = %+v", quotes)
	}
	if quotes[0].Success >= quotes[len(quotes)-1].Success {
		t.Errorf("later quotes should promise more: %+v", quotes)
	}

	user, err := probqos.NewUser(0.9)
	if err != nil {
		t.Fatal(err)
	}
	q, offers, err := sys.Submit(1, 0, 16, 2*probqos.Hour, user)
	if err != nil {
		t.Fatal(err)
	}
	if q.Success < 0.9 || offers < 2 {
		t.Errorf("accepted %+v after %d offers", q, offers)
	}
	// The reservation is committed: an identical second submission cannot
	// get the same slot.
	q2, _, err := sys.Submit(2, 0, 16, 2*probqos.Hour, user)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Candidate.Start == q.Candidate.Start {
		t.Error("second job reserved the same slot")
	}
	sys.Release(2)
	if got := sys.Nodes(); got != 16 {
		t.Errorf("Nodes = %d", got)
	}
	if pf := sys.PFail([]int{0}, 0, 10000); pf != 0.4 {
		t.Errorf("PFail = %v, want 0.4", pf)
	}
}

func TestPublicPlannedDuration(t *testing.T) {
	trace, err := probqos.NewFailureTrace(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := probqos.NewSystem(4, trace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 2.5 intervals of work -> 2 checkpoint requests -> +2C.
	if got := sys.PlannedDuration(9000); got != 9000+2*720 {
		t.Errorf("PlannedDuration = %v", got)
	}
	if got := sys.PlannedDuration(0); got != 0 {
		t.Errorf("PlannedDuration(0) = %v", got)
	}
}

func TestPublicJournal(t *testing.T) {
	log := probqos.GenerateNASAWorkload(probqos.WorkloadConfig{Jobs: 20, Seed: 3})
	trace, err := probqos.GenerateFailureTrace(probqos.RawLogConfig{Seed: 3}, probqos.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	journal := probqos.NewJournalWriter(&buf)
	cfg := probqos.NewSimConfig(log, trace)
	cfg.Observer = journal
	if _, err := probqos.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"arrival"`) {
		t.Error("journal missing arrival notes")
	}
}

func TestPublicSWFRoundTrip(t *testing.T) {
	orig := probqos.GenerateSDSCWorkload(probqos.WorkloadConfig{Jobs: 50, Seed: 4})
	var buf bytes.Buffer
	if err := orig.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := probqos.ParseSWF("SDSC", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Jobs) != len(orig.Jobs) {
		t.Errorf("round trip: %d -> %d jobs", len(orig.Jobs), len(parsed.Jobs))
	}
}

func TestPublicRawLogFiltering(t *testing.T) {
	raw := probqos.GenerateRawRASLog(probqos.RawLogConfig{Episodes: 50, Seed: 5})
	trace, err := probqos.FilterRawLog(raw, 128, probqos.FilterConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 || trace.Len() > 50 {
		t.Errorf("filtered %d failures from 50 episodes", trace.Len())
	}
	pred, err := probqos.NewTracePredictor(trace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e := trace.At(0)
	pf := pred.PFail([]int{e.Node}, e.Time, e.Time+1)
	if e.Detectability <= 0.5 && pf != e.Detectability {
		t.Errorf("PFail = %v, want %v", pf, e.Detectability)
	}
}

func TestPublicExtensions(t *testing.T) {
	// Stochastic failures + decaying predictor + profile + merge.
	trace, err := probqos.GenerateStochasticFailures(probqos.StochasticConfig{
		Kind: probqos.FailuresWeibull, Nodes: 64, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Nodes() != 64 || trace.Len() == 0 {
		t.Fatalf("stochastic trace: nodes=%d len=%d", trace.Nodes(), trace.Len())
	}
	pred, err := probqos.NewDecayingPredictor(trace, 0.8, 6*probqos.Hour)
	if err != nil {
		t.Fatal(err)
	}
	e := trace.At(0)
	if pf := pred.PFail([]int{e.Node}, e.Time, e.Time+1); pf < 0 || pf > 0.8 {
		t.Errorf("decaying PFail = %v", pf)
	}

	a := probqos.GenerateNASAWorkload(probqos.WorkloadConfig{Jobs: 50, Seed: 1})
	b := probqos.GenerateSDSCWorkload(probqos.WorkloadConfig{Jobs: 50, Seed: 1})
	merged := probqos.MergeWorkloads("mixed", a, b)
	if len(merged.Jobs) != 100 {
		t.Errorf("merged jobs = %d", len(merged.Jobs))
	}
	profile := probqos.ProfileWorkload(merged)
	if profile.Characteristics.Jobs != 100 || profile.RuntimeP90 <= 0 {
		t.Errorf("profile = %+v", profile)
	}

	// Size-class breakdown over a tiny run.
	jobs := &probqos.JobLog{Name: "x", Jobs: []probqos.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 50}}}
	empty, err := probqos.NewFailureTrace(128, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := probqos.Run(probqos.NewSimConfig(jobs, empty))
	if err != nil {
		t.Fatal(err)
	}
	classes := probqos.MetricsBySize(res)
	found := false
	for _, c := range classes {
		if c.Jobs == 1 && c.QoS == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("breakdown did not place the job: %+v", classes)
	}
}

func TestPublicRoundTripsAndHelpers(t *testing.T) {
	// Raw RAS log round trip through the facade.
	raw := probqos.GenerateRawRASLog(probqos.RawLogConfig{Episodes: 20, Seed: 9})
	var buf bytes.Buffer
	if err := probqos.WriteRawRASLog(&buf, raw); err != nil {
		t.Fatal(err)
	}
	parsed, err := probqos.ParseRawRASLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(raw) {
		t.Errorf("raw round trip: %d -> %d", len(raw), len(parsed))
	}

	// Failure trace round trip.
	trace, err := probqos.FilterRawLog(raw, 128, probqos.FilterConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	reparsed, err := probqos.ParseFailureTrace(128, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Len() != trace.Len() {
		t.Errorf("trace round trip: %d -> %d", trace.Len(), reparsed.Len())
	}

	// Named generation and Table 2 constants.
	if _, err := probqos.GenerateWorkload("SDSC", probqos.WorkloadConfig{Jobs: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := probqos.GenerateWorkload("unknown", probqos.WorkloadConfig{}); err == nil {
		t.Error("unknown workload name accepted")
	}
	params := probqos.DefaultCheckpointParams()
	if params.Interval != 3600 || params.Overhead != 720 {
		t.Errorf("Table 2 params = %+v", params)
	}

	// Calibration over a tiny run.
	jobs := &probqos.JobLog{Name: "x", Jobs: []probqos.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 50}}}
	empty, err := probqos.NewFailureTrace(128, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := probqos.Run(probqos.NewSimConfig(jobs, empty))
	if err != nil {
		t.Fatal(err)
	}
	bins := probqos.Calibration(res, 4)
	if probqos.Overconfidence(bins) != 0 {
		t.Errorf("failure-free run cannot be overconfident: %+v", bins)
	}
}

func TestPublicHealthMonitor(t *testing.T) {
	raw := probqos.GenerateRawRASLog(probqos.RawLogConfig{Nodes: 16, Episodes: 30, Span: 20 * probqos.Day, Seed: 4})
	telemetry, err := probqos.GenerateTelemetry(probqos.TelemetryConfig{Nodes: 16, Span: 20 * probqos.Day, Seed: 4}, raw)
	if err != nil {
		t.Fatal(err)
	}
	monitor, err := probqos.NewHealthMonitor(telemetry, raw, probqos.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := probqos.FilterRawLog(raw, 16, probqos.FilterConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	jobs := probqos.GenerateNASAWorkload(probqos.WorkloadConfig{Jobs: 80, Seed: 4, ClusterNodes: 16})
	cfg := probqos.NewSimConfig(jobs, trace)
	cfg.Nodes = 16
	cfg.UserRisk = 0.5
	cfg.Predictor = monitor
	res, err := probqos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 80 {
		t.Errorf("completed %d jobs", len(res.Jobs))
	}
}
