// Package probqos reproduces "Probabilistic QoS Guarantees for
// Supercomputing Systems" (Oliner, Rudolph, Sahoo, Moreira, Gupta; DSN
// 2005): a supercomputing control system that makes promises of the form
// "job j can be completed by deadline d with probability p" and keeps them
// using event prediction, fault-aware scheduling, and cooperative
// checkpointing.
//
// The package is the public face of the library. It exposes:
//
//   - synthetic workload and failure-trace generators calibrated to the
//     paper's NASA/SDSC logs and AIX failure data (plus an SWF parser for
//     real archive logs);
//   - the live control system (System) that quotes and negotiates
//     deadlines against a failure forecast;
//   - the trace-driven simulator (Run) that replays a whole job log and
//     measures QoS, utilization, and lost work;
//   - the experiment harness that regenerates every table and figure of
//     the paper (see cmd/qossweep and bench_test.go).
//
// Quick start:
//
//	log := probqos.GenerateNASAWorkload(probqos.WorkloadConfig{Jobs: 1000})
//	trace, _ := probqos.GenerateFailureTrace(probqos.RawLogConfig{}, probqos.FilterConfig{})
//	cfg := probqos.NewSimConfig(log, trace)
//	cfg.Accuracy, cfg.UserRisk = 0.7, 0.5
//	result, _ := probqos.Run(cfg)
//	report := probqos.Metrics(result)
//	fmt.Printf("QoS %.3f, utilization %.3f\n", report.QoS, report.Utilization)
package probqos

import (
	"io"

	"probqos/internal/checkpoint"
	"probqos/internal/core"
	"probqos/internal/eventlog"
	"probqos/internal/failure"
	"probqos/internal/health"
	"probqos/internal/metrics"
	"probqos/internal/negotiate"
	"probqos/internal/obs"
	"probqos/internal/predict"
	"probqos/internal/scenario"
	"probqos/internal/service"
	"probqos/internal/sim"
	"probqos/internal/trace"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// Primitive quantities. Times are integer seconds since trace start; work
// is node-seconds.
type (
	Time     = units.Time
	Duration = units.Duration
	Work     = units.Work
)

// Time constants re-exported for convenience.
const (
	Second = units.Second
	Minute = units.Minute
	Hour   = units.Hour
	Day    = units.Day
	Week   = units.Week
	Year   = units.Year
)

// Workload types.
type (
	// Job is one parallel job: arrival, size in nodes, and execution time.
	Job = workload.Job
	// JobLog is an arrival-ordered job log.
	JobLog = workload.Log
	// WorkloadConfig parameterizes the synthetic workload generators.
	WorkloadConfig = workload.GenConfig
	// LogCharacteristics are the Table 1 aggregates of a job log.
	LogCharacteristics = workload.Characteristics
)

// Failure-substrate types.
type (
	// FailureEvent is one filtered failure with its static detectability.
	FailureEvent = failure.Event
	// FailureTrace is a filtered failure trace over a cluster.
	FailureTrace = failure.Trace
	// RawEvent is one unfiltered RAS log event.
	RawEvent = failure.RawEvent
	// RawLogConfig parameterizes the raw RAS log generator.
	RawLogConfig = failure.RawConfig
	// FilterConfig parameterizes the failure-filtering pipeline.
	FilterConfig = failure.FilterConfig
)

// Control-system and simulation types.
type (
	// Predictor forecasts partition failures.
	Predictor = predict.Predictor
	// CheckpointParams holds the interval I and overhead C.
	CheckpointParams = checkpoint.Params
	// CheckpointPolicy decides whether to perform a requested checkpoint.
	CheckpointPolicy = checkpoint.Policy
	// User is the simulated user risk strategy U.
	User = negotiate.User
	// Quote is one (deadline, probability of success) offer.
	Quote = negotiate.Quote
	// System is the live control system: quotes, negotiation, reservation.
	System = core.System
	// SimConfig assembles one simulation run.
	SimConfig = sim.Config
	// Result is everything a simulation run produces.
	Result = sim.Result
	// JobRecord is the per-job outcome of a run.
	JobRecord = sim.JobRecord
	// FailureRecord is one failure as it played out in a run.
	FailureRecord = sim.FailureRecord
	// Report holds the paper's metrics (QoS, utilization, lost work, ...).
	Report = metrics.Report
	// Note is one line of the simulation journal.
	Note = sim.Note
	// Observer receives journal notes during a run.
	Observer = sim.Observer
)

// Checkpoint policies.
var (
	// PolicyRiskBased is the paper's Equation 1 rule.
	PolicyRiskBased CheckpointPolicy = checkpoint.RiskBased{}
	// PolicyPeriodic always performs checkpoints.
	PolicyPeriodic CheckpointPolicy = checkpoint.Periodic{}
	// PolicyNever never checkpoints.
	PolicyNever CheckpointPolicy = checkpoint.Never{}
)

// GenerateNASAWorkload returns a synthetic job log in the NASA iPSC/860
// regime of Table 1 (power-of-two sizes, short runtimes, lighter load).
func GenerateNASAWorkload(cfg WorkloadConfig) *JobLog { return workload.GenerateNASA(cfg) }

// GenerateSDSCWorkload returns a synthetic job log in the SDSC SP regime of
// Table 1 (arbitrary sizes, long heavy-tailed runtimes, heavier load).
func GenerateSDSCWorkload(cfg WorkloadConfig) *JobLog { return workload.GenerateSDSC(cfg) }

// GenerateWorkload returns the named synthetic log ("NASA" or "SDSC").
func GenerateWorkload(name string, cfg WorkloadConfig) (*JobLog, error) {
	return workload.Generate(name, cfg)
}

// ParseSWF reads a Standard Workload Format job log (real archive logs
// drop in unchanged).
func ParseSWF(name string, r io.Reader) (*JobLog, error) { return workload.ParseSWF(name, r) }

// WorkloadProfile is a distributional summary of a job log.
type WorkloadProfile = workload.Profile

// ProfileWorkload computes size/runtime/work-concentration statistics of a
// log, beyond the Table 1 aggregates.
func ProfileWorkload(l *JobLog) WorkloadProfile { return workload.BuildProfile(l) }

// MergeWorkloads interleaves several logs by arrival time.
func MergeWorkloads(name string, logs ...*JobLog) *JobLog { return workload.Merge(name, logs...) }

// StochasticConfig parameterizes the statistical failure models
// (exponential/Poisson and Weibull) the paper suggests studying.
type StochasticConfig = failure.StochasticConfig

// Stochastic failure model kinds.
const (
	FailuresExponential = failure.Exponential
	FailuresWeibull     = failure.WeibullDecreasing
)

// GenerateStochasticFailures draws a failure trace from a purely
// statistical model at a chosen mean rate — the contrast case for the
// trace-driven substrate.
func GenerateStochasticFailures(cfg StochasticConfig) (*FailureTrace, error) {
	return failure.GenerateStochastic(cfg)
}

// Health-monitoring types (§3.1): telemetry and the working predictor.
type (
	// Telemetry holds sampled per-node signals (temperature, load).
	Telemetry = health.Telemetry
	// TelemetryConfig parameterizes the telemetry generator.
	TelemetryConfig = health.TelemetryConfig
	// HealthMonitor is the working (non-oracle) failure predictor built
	// from telemetry and precursor events.
	HealthMonitor = health.Monitor
	// MonitorConfig tunes the monitoring model.
	MonitorConfig = health.MonitorConfig
)

// GenerateTelemetry synthesizes per-node telemetry consistent with a raw
// RAS log: failures announce themselves as thermal ramps.
func GenerateTelemetry(cfg TelemetryConfig, raw []RawEvent) (*Telemetry, error) {
	return health.Generate(cfg, raw)
}

// NewHealthMonitor builds the §3.2-style monitoring predictor (time-series
// slope + event correlation) over telemetry and the raw log's non-critical
// events. Assign it to SimConfig.Predictor to run the system on realistic
// forecasts instead of the idealized oracle.
func NewHealthMonitor(t *Telemetry, raw []RawEvent, cfg MonitorConfig) (*HealthMonitor, error) {
	return health.NewMonitor(t, raw, cfg)
}

// NewDecayingPredictor builds a horizon-limited trace predictor whose
// effective accuracy halves every halfLife of forecast distance, modelling
// §3.3's remark that predictions degrade with horizon.
func NewDecayingPredictor(tr *FailureTrace, a float64, halfLife Duration) (Predictor, error) {
	return predict.NewDecaying(tr, a, halfLife)
}

// GenerateRawRASLog produces an unfiltered RAS event log with bursty fault
// episodes, precursor warnings, and redundant same-root-cause events.
func GenerateRawRASLog(cfg RawLogConfig) []RawEvent { return failure.GenerateRawLog(cfg) }

// WriteRawRASLog writes an unfiltered RAS log in the textual format
// cmd/tracefilter consumes.
func WriteRawRASLog(w io.Writer, events []RawEvent) error { return failure.WriteRawLog(w, events) }

// ParseRawRASLog reads a log written by WriteRawRASLog.
func ParseRawRASLog(r io.Reader) ([]RawEvent, error) { return failure.ParseRawLog(r) }

// FilterRawLog runs the §4.3 filtering pipeline: isolate FATAL/FAILURE
// events, coalesce shared root causes, and assign detectabilities.
func FilterRawLog(raw []RawEvent, nodes int, cfg FilterConfig) (*FailureTrace, error) {
	return failure.Filter(raw, nodes, cfg)
}

// GenerateFailureTrace generates a raw RAS log and filters it: the
// convenience path to a simulator-ready failure trace.
func GenerateFailureTrace(cfg RawLogConfig, fcfg FilterConfig) (*FailureTrace, error) {
	return failure.GenerateTrace(cfg, fcfg)
}

// NewFailureTrace builds a trace directly from failure events.
func NewFailureTrace(nodes int, events []FailureEvent) (*FailureTrace, error) {
	return failure.NewTrace(nodes, events)
}

// ParseFailureTrace reads a trace written by FailureTrace.WriteCSV.
func ParseFailureTrace(nodes int, r io.Reader) (*FailureTrace, error) {
	return failure.ParseCSV(nodes, r)
}

// NewTracePredictor builds the paper's deterministic trace predictor with
// accuracy a: zero false positives, false-negative rate 1-a, never
// reporting a probability above a.
func NewTracePredictor(tr *FailureTrace, a float64) (Predictor, error) {
	return predict.NewTrace(tr, a)
}

// NewSystem builds a live control system for a cluster of nodes,
// forecasting from the trace with the given accuracy. See core.Option for
// configuration.
func NewSystem(nodes int, trace *FailureTrace, accuracy float64, opts ...core.Option) (*System, error) {
	return core.NewSystem(nodes, trace, accuracy, opts...)
}

// NewUser validates a user risk strategy U in [0, 1].
func NewUser(u float64) (User, error) { return negotiate.NewUser(u) }

// NewSimConfig returns the paper's Table 2 operating point for the given
// workload and failure trace; set Accuracy and UserRisk before Run.
func NewSimConfig(w *JobLog, f *FailureTrace) SimConfig { return sim.DefaultConfig(w, f) }

// Run executes one simulation to completion. Runs are deterministic.
func Run(cfg SimConfig) (*Result, error) { return sim.Run(cfg) }

// Metrics computes the paper's evaluation metrics from a run.
func Metrics(res *Result) Report { return metrics.Compute(res) }

// CalibrationBin is one row of a promise reliability diagram.
type CalibrationBin = metrics.CalibrationBin

// Calibration computes a reliability diagram over the run's promised
// success probabilities: the quantitative honesty check behind the paper's
// "a system that makes unqualified performance guarantees is lying".
func Calibration(res *Result, bins int) []CalibrationBin { return metrics.Calibration(res, bins) }

// Overconfidence returns the largest shortfall of observed success below
// the mean promise across populated calibration bins.
func Overconfidence(bins []CalibrationBin) float64 { return metrics.Overconfidence(bins) }

// ClassReport summarizes one job-size class of a run.
type ClassReport = metrics.ClassReport

// MetricsBySize breaks a run's metrics down by job-size class, showing
// where the work-weighted QoS is won and lost.
func MetricsBySize(res *Result) []ClassReport { return metrics.BySize(res) }

// DefaultCheckpointParams returns the Table 2 checkpoint constants
// (I = 3600 s, C = 720 s).
func DefaultCheckpointParams() CheckpointParams { return checkpoint.DefaultParams() }

// NewJournalWriter returns an Observer that records the simulation journal
// as JSON lines on w; call Close when the run finishes.
func NewJournalWriter(w io.Writer) *eventlog.Writer { return eventlog.NewWriter(w) }

// Observability types: the internal/obs instrumentation layer.
type (
	// MetricsRegistry is a concurrency-safe registry of counters, gauges,
	// and fixed-bucket histograms with Prometheus/JSON exposition.
	MetricsRegistry = obs.Registry
	// MetricLabels attach dimensions to one instrument of a metric family.
	MetricLabels = obs.Labels
	// Instrument samples cluster state, meters decisions, and profiles the
	// simulator's hot phases; assign to SimConfig.Probe (and Observer).
	Instrument = obs.Instrument
	// MetricsServer serves /metrics, /healthz, and /snapshot over HTTP.
	MetricsServer = obs.Server
	// PhaseStat is one hot phase's wall-clock bill.
	PhaseStat = obs.PhaseStat
	// SeriesPoint is one sampled cluster state on the simulation clock.
	SeriesPoint = obs.Point
	// SimProbe receives the simulator's instrumentation callbacks.
	SimProbe = sim.Probe
	// SimState is the cluster-level snapshot handed to a probe.
	SimState = sim.State
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewInstrument builds the standard simulation instrumentation over a
// registry: live metrics plus a cluster-state time series sampled every
// cadence of simulation time (<= 0 means the 15-minute default).
func NewInstrument(reg *MetricsRegistry, cadence Duration) *Instrument {
	return obs.NewInstrument(reg, cadence)
}

// NewMetricsServer builds the live observation endpoint over a registry;
// with a non-nil instrument, /snapshot also carries the sampled series and
// the phase profile. Call Start to bind and Close to stop.
func NewMetricsServer(reg *MetricsRegistry, ins *Instrument) *MetricsServer {
	if ins == nil {
		return obs.NewServer(reg, nil, nil)
	}
	return obs.NewServer(reg, ins.Sampler, ins.Profiler)
}

// MultiObserver fans the simulation journal out to several observers; nil
// entries are skipped.
func MultiObserver(o ...Observer) Observer { return sim.MultiObserver(o...) }

// Online negotiation service (qosd): the §5 quote/accept dialog as a
// long-running daemon over a live cluster state on a virtual clock.
type (
	// QoSService is one running qosd instance; see cmd/qosd.
	QoSService = service.Service
	// QoSServiceConfig assembles a qosd instance.
	QoSServiceConfig = service.Config
	// JobStatus is the externally visible state of one admitted job.
	JobStatus = sim.JobStatus
	// ClusterStats is a cluster-level snapshot of the live engine.
	ClusterStats = sim.Stats
)

// NewQoSServiceConfig returns a service at the paper's Table 2 operating
// point over the given failure trace, with a manual virtual clock.
func NewQoSServiceConfig(tr *FailureTrace) QoSServiceConfig {
	return service.DefaultConfig(tr)
}

// Request tracing and promise conformance (internal/trace): request-scoped
// spans with Chrome trace_event export, and the live ledger that scores
// every admitted promise against its outcome.
type (
	// Tracer records request-scoped spans into per-shard ring buffers;
	// assign one to QoSServiceConfig.Tracer (nil disables tracing).
	Tracer = trace.Tracer
	// TraceSpan is one recorded interval of a traced request.
	TraceSpan = trace.Span
	// PromiseLedger scores admitted promises against their outcomes.
	PromiseLedger = trace.Ledger
	// PromiseEntry is one promise row of the ledger.
	PromiseEntry = trace.Promise
	// ConformanceStats are the ledger's streaming honesty statistics:
	// keeping rate, Brier score, and reliability bins.
	ConformanceStats = trace.ConformanceStats
)

// NewTracer returns a tracer holding up to capacity completed spans
// (<= 0 means the 8192-span default).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// NewTraceID returns a fresh random request trace ID, as carried by the
// X-Qos-Trace header.
func NewTraceID() string { return trace.NewTraceID() }

// NewQoSService builds and starts the service's state machine; callers
// must Close it. Start binds the HTTP API.
func NewQoSService(cfg QoSServiceConfig) (*QoSService, error) { return service.New(cfg) }

// Declarative scenario harness (internal/scenario): fleet + timeline +
// assertions compiled deterministically onto the engine; see
// internal/scenario/zoo for the golden regression corpus.
type (
	// Scenario is one parsed scenario file: fleet, events, assertions.
	Scenario = scenario.Scenario
	// ScenarioRunner executes a scenario step by step on a sim engine.
	ScenarioRunner = scenario.Runner
	// ScenarioReport is the stable machine-readable outcome of one run.
	ScenarioReport = scenario.Report
	// ScenarioState is a mid-run snapshot for export/resume.
	ScenarioState = scenario.State
)

// DecodeScenario parses and validates a scenario file (JSON if the name
// ends in .json, the YAML subset otherwise), reporting malformed input
// with file:line:col positions.
func DecodeScenario(name string, data []byte) (*Scenario, error) {
	return scenario.Decode(name, data)
}

// NewScenarioRunner validates a scenario and assembles its engine.
func NewScenarioRunner(s *Scenario) (*ScenarioRunner, error) { return scenario.NewRunner(s) }

// ResumeScenario reconstructs a runner from an exported ScenarioState.
func ResumeScenario(st ScenarioState) (*ScenarioRunner, error) { return scenario.Resume(st) }

// RunScenario decodes, runs, and reports one scenario in a single call.
func RunScenario(name string, data []byte) (*ScenarioReport, error) {
	s, err := scenario.Decode(name, data)
	if err != nil {
		return nil, err
	}
	r, err := scenario.NewRunner(s)
	if err != nil {
		return nil, err
	}
	return r.Run()
}
