module probqos

go 1.22
