// Capacityplanning: a what-if study built from the library's workload
// transforms. Starting from one SDSC-regime log, the arrival stream is
// compressed and stretched to sweep the offered load, answering the
// operator's question: how much load can this 128-node machine carry
// before the probabilistic QoS guarantees start to slip?
package main

import (
	"fmt"
	"log"

	"probqos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := probqos.GenerateSDSCWorkload(probqos.WorkloadConfig{Jobs: 2000})
	trace, err := probqos.GenerateFailureTrace(probqos.RawLogConfig{}, probqos.FilterConfig{})
	if err != nil {
		return err
	}
	baseLoad := base.OfferedLoad(128)
	fmt.Printf("base workload: %d jobs, offered load %.2f\n", len(base.Jobs), baseLoad)
	fmt.Println("sweeping offered load by compressing/stretching arrivals (a=0.7, U=0.5):")
	fmt.Println()
	fmt.Printf("%-8s  %-8s  %-8s  %-11s  %-10s  %s\n",
		"load", "QoS", "util", "occupancy", "mean wait", "verdict")

	for _, target := range []float64{0.4, 0.55, 0.7, 0.8, 0.9} {
		scaled, err := base.ScaleArrivals(baseLoad / target)
		if err != nil {
			return err
		}
		cfg := probqos.NewSimConfig(scaled, trace)
		cfg.Accuracy = 0.7
		cfg.UserRisk = 0.5
		res, err := probqos.Run(cfg)
		if err != nil {
			return err
		}
		r := probqos.Metrics(res)
		verdict := "comfortable"
		switch {
		case r.MeanWaitSeconds > 6*3600:
			verdict = "queue runaway"
		case r.MeanWaitSeconds > 3600:
			verdict = "queues building"
		}
		fmt.Printf("%-8.2f  %-8.4f  %-8.4f  %-11.4f  %-10.0f  %s\n",
			target, r.QoS, r.Utilization, r.OccupiedFraction, r.MeanWaitSeconds, verdict)
	}
	fmt.Println()
	fmt.Println("utilization tracks offered load until queueing takes over; the QoS")
	fmt.Println("promise machinery keeps deadline integrity even as waits grow, because")
	fmt.Println("quoted deadlines are reservation-backed rather than aspirational.")
	return nil
}
