// Riskstrategies: the user-behavior sensitivity study of §5.2 in miniature.
// The same SDSC-regime workload runs under user populations with different
// risk strategies U; stricter users (higher U) trade later deadlines for
// fewer broken promises, and the system-wide metrics improve with them.
package main

import (
	"fmt"
	"log"

	"probqos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workload := probqos.GenerateSDSCWorkload(probqos.WorkloadConfig{Jobs: 2000})
	trace, err := probqos.GenerateFailureTrace(probqos.RawLogConfig{}, probqos.FilterConfig{})
	if err != nil {
		return err
	}

	fmt.Println("SDSC-regime workload, prediction accuracy a = 1.0")
	fmt.Println()
	fmt.Printf("%-6s  %-8s  %-12s  %-14s  %-12s  %s\n",
		"U", "QoS", "utilization", "lost (node-s)", "job failures", "mean promise")
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
		cfg := probqos.NewSimConfig(workload, trace)
		cfg.Accuracy = 1
		cfg.UserRisk = u
		res, err := probqos.Run(cfg)
		if err != nil {
			return err
		}
		r := probqos.Metrics(res)
		fmt.Printf("%-6.2f  %-8.4f  %-12.4f  %-14.3e  %-12d  %.4f\n",
			u, r.QoS, r.Utilization, r.LostWork.NodeSeconds(), r.JobFailures, r.MeanPromise)
	}
	fmt.Println()
	fmt.Println("users who give the probability of success priority over the deadline")
	fmt.Println("(high U) avoid predicted failures, so less work is lost and more")
	fmt.Println("promises are kept — the coordinated risk strategy of the paper.")
	return nil
}
