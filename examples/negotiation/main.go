// Negotiation: the market-based dialog of §3.5 made visible. The system
// quotes "job j can be completed by deadline d with probability p" offers;
// relaxing the deadline buys a higher probability, and users with different
// risk strategies U accept different offers.
package main

import (
	"fmt"
	"log"

	"probqos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 16-node cluster whose failure trace has a cluster-wide fault
	// episode three hours in: half the nodes see highly detectable
	// failures, half see harder ones.
	var events []probqos.FailureEvent
	for n := 0; n < 16; n++ {
		px := 0.25
		if n%2 == 1 {
			px = 0.85
		}
		events = append(events, probqos.FailureEvent{
			Time:          probqos.Time(3 * probqos.Hour),
			Node:          n,
			Detectability: px,
		})
	}
	trace, err := probqos.NewFailureTrace(16, events)
	if err != nil {
		return err
	}
	system, err := probqos.NewSystem(16, trace, 0.7 /* prediction accuracy */)
	if err != nil {
		return err
	}

	// A full-machine job of four hours must overlap the episode or wait it
	// out. Show the quote ladder the user sees.
	const size = 16
	exec := probqos.Duration(4 * probqos.Hour)
	fmt.Printf("job: %d nodes, %d s execution (reserved %d s with checkpoints)\n\n",
		size, exec, system.PlannedDuration(exec))
	fmt.Println("the system's successive offers:")
	for i, q := range system.Quotes(0, size, exec, 5) {
		fmt.Printf("  offer %d: start %-13v deadline %-13v p(success) %.2f\n",
			i+1, q.Candidate.Start, q.Deadline, q.Success)
	}

	// Three users, three strategies.
	fmt.Println("\nwhat different users accept:")
	for i, u := range []float64{0.1, 0.6, 0.95} {
		user, err := probqos.NewUser(u)
		if err != nil {
			return err
		}
		q, offers, err := system.Submit(100+i, 0, size, exec, user)
		if err != nil {
			return err
		}
		fmt.Printf("  U=%.2f accepts offer %d: deadline %-13v with p=%.2f\n",
			u, offers, q.Deadline, q.Success)
		system.Release(100 + i) // keep the cluster clean between users
	}
	// The system-initiated form of the dialog (§3.3): suggest the earliest
	// deadline that clears a success bar, citing the improved probability.
	suggestion, err := system.SuggestDeadline(0, size, exec, 0.99)
	if err != nil {
		return err
	}
	fmt.Printf("\nsystem suggestion for p >= 0.99: deadline %v (p=%.2f)\n",
		suggestion.Deadline, suggestion.Success)

	fmt.Println("\nrelaxing the deadline buys probability: that is the incentive")
	fmt.Println("structure that keeps both sides honest.")
	return nil
}
