// Quickstart: generate a workload and a failure trace, run one simulation,
// and print the paper's metrics. This is the smallest end-to-end use of the
// probqos public API.
package main

import (
	"fmt"
	"log"

	"probqos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 2,000-job NASA-regime workload on a 128-node cluster, and a
	// synthetic failure trace matching the paper's AIX data (cluster MTBF
	// ~8.5 h, bursty).
	workload := probqos.GenerateNASAWorkload(probqos.WorkloadConfig{Jobs: 2000})
	trace, err := probqos.GenerateFailureTrace(probqos.RawLogConfig{}, probqos.FilterConfig{})
	if err != nil {
		return err
	}
	c := workload.Characteristics()
	fmt.Printf("workload: %d jobs, avg %.1f nodes, avg %.0f s, max %.1f h\n",
		c.Jobs, c.AvgNodes, c.AvgExec, c.MaxExec.Hours())
	fmt.Printf("failures: %d over %.0f days\n\n", trace.Len(), trace.Stats().Span.Hours()/24)

	// Run the full system at a moderate prediction accuracy with users who
	// want at least even odds, then with no forecasting at all.
	for _, point := range []struct {
		label string
		a, u  float64
	}{
		{label: "no forecasting (a=0)   ", a: 0, u: 0.5},
		{label: "moderate accuracy      ", a: 0.7, u: 0.5},
		{label: "perfect, careful users ", a: 1, u: 0.9},
	} {
		cfg := probqos.NewSimConfig(workload, trace)
		cfg.Accuracy = point.a
		cfg.UserRisk = point.u
		res, err := probqos.Run(cfg)
		if err != nil {
			return err
		}
		r := probqos.Metrics(res)
		fmt.Printf("%s QoS %.4f  utilization %.4f  lost %.3e node-s  job failures %d\n",
			point.label, r.QoS, r.Utilization, r.LostWork.NodeSeconds(), r.JobFailures)
	}
	return nil
}
