// Checkpointpolicies: the cooperative checkpointing ablation. The same
// workload runs under the paper's risk-based policy (Equation 1), classic
// periodic checkpointing, and no checkpointing at all, at two prediction
// accuracies. Risk-based checkpointing pays for checkpoints only where the
// forecast (or the hazard floor) says they are worth it.
package main

import (
	"fmt"
	"log"

	"probqos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workload := probqos.GenerateSDSCWorkload(probqos.WorkloadConfig{Jobs: 2000})
	trace, err := probqos.GenerateFailureTrace(probqos.RawLogConfig{}, probqos.FilterConfig{})
	if err != nil {
		return err
	}

	policies := []struct {
		name   string
		policy probqos.CheckpointPolicy
	}{
		{name: "risk-based", policy: probqos.PolicyRiskBased},
		{name: "periodic", policy: probqos.PolicyPeriodic},
		{name: "never", policy: probqos.PolicyNever},
	}

	for _, a := range []float64{0.3, 0.9} {
		fmt.Printf("prediction accuracy a = %.1f (U = 0.5)\n", a)
		fmt.Printf("  %-11s  %-8s  %-12s  %-14s  %-18s\n",
			"policy", "QoS", "utilization", "lost (node-s)", "ckpts done/skipped")
		for _, p := range policies {
			cfg := probqos.NewSimConfig(workload, trace)
			cfg.Accuracy = a
			cfg.UserRisk = 0.5
			cfg.Policy = p.policy
			res, err := probqos.Run(cfg)
			if err != nil {
				return err
			}
			r := probqos.Metrics(res)
			fmt.Printf("  %-11s  %-8.4f  %-12.4f  %-14.3e  %d/%d\n",
				p.name, r.QoS, r.Utilization, r.LostWork.NodeSeconds(),
				r.CheckpointsDone, r.CheckpointsSkipped)
		}
		fmt.Println()
	}
	fmt.Println("risk-based checkpointing approaches periodic's protection at a")
	fmt.Println("fraction of its overhead, and prediction makes the savings safe.")
	return nil
}
