#!/bin/sh
# Repo-wide verification: formatting (with simplification), vet, the
# qoslint determinism/durability analyzers, build, and the full test suite
# under the race detector. ROADMAP.md's tier-1 verify line points here.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== qoslint ./..."
go run ./cmd/qoslint ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== qossim validate internal/scenario/zoo"
go run ./cmd/qossim validate internal/scenario/zoo

echo "OK"
