#!/bin/sh
# Quote-path performance harness: runs the predictor, trace-scan, scheduler,
# and simulator micro-benchmarks plus a reduced-scale end-to-end sweep
# (Figure 1 at PROBQOS_BENCH_JOBS jobs), then folds the results into the
# BENCH_sweep.json trajectory at the repo root via scripts/benchjson.
#
#   scripts/bench.sh                 # full run, appended as label "after"
#   scripts/bench.sh -label mybox    # name the run
#   scripts/bench.sh -smoke          # CI mode: fixed iteration counts,
#                                    # 200-job sweep, no trajectory update
#
# Compare two recorded runs with benchstat:
#   jq -r '.runs[] | select(.label=="baseline").benchfmt[]' BENCH_sweep.json > old.txt
#   jq -r '.runs[] | select(.label=="after").benchfmt[]'    BENCH_sweep.json > new.txt
#   benchstat old.txt new.txt
set -eu

cd "$(dirname "$0")/.."

smoke=0
label="after"
out="BENCH_sweep.json"
usage() {
    echo "usage: scripts/bench.sh [-smoke] [-label name] [-out file]" >&2
    exit 2
}

while [ $# -gt 0 ]; do
    case "$1" in
    -smoke) smoke=1 ;;
    # Guard $# before shifting into the value: under set -u a trailing
    # "-label" would otherwise die on the unbound $2 instead of printing
    # the usage line.
    -label) [ $# -ge 2 ] || usage; label="$2"; shift ;;
    -out) [ $# -ge 2 ] || usage; out="$2"; shift ;;
    *) usage ;;
    esac
    shift
done

if [ "$smoke" -eq 1 ]; then
    # Smoke mode exists to prove the harness itself works (benchmarks build,
    # run, and parse) on every push, not to produce stable numbers on shared
    # CI hardware.
    benchtime="10x"
    count=1
    jobs=200
else
    benchtime="1s"
    count=3
    jobs=1000
fi

tmp=$(mktemp)
trap 'rm -f "$tmp" "$tmp.json"' EXIT

echo "== predictor micro-benchmarks"
go test -run '^$' -bench 'PFail' -benchtime "$benchtime" -count "$count" ./internal/predict | tee -a "$tmp"

# Allocation gate: the single-node quote-path query must stay at
# 0 allocs/op — including the variant that compiles the tracing layer into
# the binary and leaves it disabled, proving the nil-tracer path is free.
for b in BenchmarkTracePFailSingleNode BenchmarkTracePFailSingleNodeTracingDisabled; do
    if ! grep -q "^$b" "$tmp"; then
        echo "FAIL: $b missing from benchmark output" >&2
        exit 1
    fi
    if grep "^$b" "$tmp" | grep -v ' 0 allocs/op' | grep -q .; then
        echo "FAIL: $b no longer reports 0 allocs/op" >&2
        exit 1
    fi
done

echo "== trace-scan micro-benchmarks"
go test -run '^$' -bench 'TraceScan' -benchtime "$benchtime" -count "$count" ./internal/failure | tee -a "$tmp"

echo "== scheduler micro-benchmarks"
go test -run '^$' -bench 'EarliestCandidate|ReserveRelease' -benchtime "$benchtime" -count "$count" ./internal/sched | tee -a "$tmp"

echo "== simulator benchmarks"
go test -run '^$' -bench 'BenchmarkRun(SDSC|NASA)$' -benchtime "$benchtime" -count "$count" ./internal/sim | tee -a "$tmp"

echo "== end-to-end sweep (Figure 1, jobs=$jobs)"
PROBQOS_BENCH_JOBS="$jobs" go test -run '^$' -bench 'BenchmarkFig1QoSvsAccuracySDSC' \
    -benchtime 1x -count "$count" . | tee -a "$tmp"

if [ "$smoke" -eq 1 ]; then
    # Still exercise the parser, but throw the trajectory away: CI numbers
    # are noise and must not churn the checked-in file.
    go run ./scripts/benchjson -label smoke -jobs "$jobs" -out "$tmp.json" <"$tmp"
    echo "smoke OK (trajectory not updated)"
else
    go run ./scripts/benchjson -label "$label" -jobs "$jobs" \
        -date "$(date -u +%Y-%m-%d)" -out "$out" <"$tmp"
fi
