// Command benchjson folds `go test -bench` output into the repo's
// BENCH_sweep.json performance trajectory. Each invocation appends (or, for
// an existing label, replaces) one labelled run holding both parsed numbers
// and the raw benchfmt lines, so the file stays consumable two ways:
//
//	jq '.runs[] | {label, benchmarks}' BENCH_sweep.json
//	jq -r '.runs[0].benchfmt[]' BENCH_sweep.json > old.txt   # then benchstat old.txt new.txt
//
// Usage: go test -bench ... | go run ./scripts/benchjson -label after -out BENCH_sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchmark struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date,omitempty"`
	Jobs       int         `json:"jobs,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
	// Benchfmt preserves the raw benchmark and config lines verbatim for
	// benchstat; ns/op means above are per-benchmark sample averages.
	Benchfmt []string `json:"benchfmt"`
}

type trajectory struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Runs   []run  `json:"runs"`
}

const schemaID = "probqos-bench/v1"

func main() {
	label := flag.String("label", "", "run label, e.g. baseline or after (required)")
	out := flag.String("out", "BENCH_sweep.json", "trajectory file to update")
	jobs := flag.Int("jobs", 0, "workload scale the sweep benchmarks ran at")
	date := flag.String("date", "", "ISO date stamp recorded on the run")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	r, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	r.Label = *label
	r.Jobs = *jobs
	r.Date = *date

	traj, err := load(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	replaced := false
	for i := range traj.Runs {
		if traj.Runs[i].Label == r.Label {
			traj.Runs[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		traj.Runs = append(traj.Runs, r)
	}

	buf, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	verb := "appended"
	if replaced {
		verb = "replaced"
	}
	fmt.Printf("benchjson: %s run %q (%d benchmarks) in %s\n", verb, r.Label, len(r.Benchmarks), *out)
}

func load(path string) (trajectory, error) {
	traj := trajectory{Schema: schemaID, Go: runtime.Version()}
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return traj, nil
	}
	if err != nil {
		return traj, err
	}
	if len(strings.TrimSpace(string(buf))) == 0 {
		return traj, nil
	}
	if err := json.Unmarshal(buf, &traj); err != nil {
		return traj, fmt.Errorf("%s: %v", path, err)
	}
	if traj.Schema != schemaID {
		return traj, fmt.Errorf("%s: schema %q, want %q", path, traj.Schema, schemaID)
	}
	traj.Go = runtime.Version()
	// Migrate runs recorded before values were rounded: averaging three
	// samples in binary floating point left artifacts like
	// 125.40000000000002 ns/op in the trajectory.
	for i := range traj.Runs {
		for j := range traj.Runs[i].Benchmarks {
			b := &traj.Runs[i].Benchmarks[j]
			b.NsPerOp = round3(b.NsPerOp)
			b.BytesPerOp = round3(b.BytesPerOp)
			b.AllocsPerOp = round3(b.AllocsPerOp)
		}
	}
	return traj, nil
}

// round3 rounds to three decimal places: well past benchmark noise, and
// stable enough that trajectory diffs show real movement instead of
// float-average artifacts.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// parse folds benchfmt text into one run: config lines and benchmark result
// lines are kept verbatim, and samples of the same benchmark are averaged.
func parse(f *os.File) (run, error) {
	var r run
	agg := map[string]*benchmark{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			r.Benchfmt = append(r.Benchfmt, line)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// name iterations value ns/op [value B/op value allocs/op ...]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		r.Benchfmt = append(r.Benchfmt, line)
		b, ok := agg[fields[0]]
		if !ok {
			b = &benchmark{Name: fields[0]}
			agg[fields[0]] = b
			order = append(order, fields[0])
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return r, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		b.Samples++
		b.NsPerOp += ns
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp += v
			case "allocs/op":
				b.AllocsPerOp += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	if len(order) == 0 {
		return r, fmt.Errorf("no benchmark result lines on stdin")
	}
	for _, name := range order {
		b := agg[name]
		n := float64(b.Samples)
		b.NsPerOp = round3(b.NsPerOp / n)
		b.BytesPerOp = round3(b.BytesPerOp / n)
		b.AllocsPerOp = round3(b.AllocsPerOp / n)
		r.Benchmarks = append(r.Benchmarks, *b)
	}
	return r, nil
}
