// The benchmark harness regenerates every table and figure of the paper's
// evaluation: one benchmark per artifact, each running the corresponding
// experiment definition end to end (workload generation, failure trace,
// all simulation points of the sweep) and logging the same rows/series the
// paper reports.
//
// Benchmarks run at a reduced workload scale (default 4000 jobs) so the
// whole harness finishes in minutes; `go run ./cmd/qossweep` regenerates
// everything at the paper's full 10,000-job scale with identical shapes.
// Set PROBQOS_BENCH_JOBS to override the scale.
package probqos_test

import (
	"os"
	"strconv"
	"testing"

	"probqos/internal/experiment"
)

const defaultBenchJobs = 4000

func benchJobs() int {
	if v := os.Getenv("PROBQOS_BENCH_JOBS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return defaultBenchJobs
}

// benchExperiment runs one experiment per iteration on a fresh environment
// (no memoized points), logging its tables once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not found", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := experiment.NewEnv()
		env.JobCount = benchJobs()
		tables, err := exp.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s — paper: %s", exp.Title, exp.Paper)
			for _, t := range tables {
				b.Logf("\n%s", t.String())
			}
		}
	}
}

// Tables.

func BenchmarkTable1JobLogCharacteristics(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2SimulationParameters(b *testing.B)  { benchExperiment(b, "table2") }

// Accuracy-sweep figures (Figures 1-6).

func BenchmarkFig1QoSvsAccuracySDSC(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkFig2QoSvsAccuracyNASA(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig3UtilizationVsAccuracySDSC(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4UtilizationVsAccuracyNASA(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5LostWorkVsAccuracySDSC(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6LostWorkVsAccuracyNASA(b *testing.B)    { benchExperiment(b, "fig6") }

// User-behavior figures (Figures 7-12).

func BenchmarkFig7QoSvsUserA05SDSC(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8QoSvsUserA1(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9UtilizationVsUserSDSC(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10UtilizationVsUserNASA(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11LostWorkVsUserSDSC(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12LostWorkVsUserNASA(b *testing.B)    { benchExperiment(b, "fig12") }

// Headline numbers (§1/§6).

func BenchmarkHeadlineImprovements(b *testing.B) { benchExperiment(b, "headline") }

// Ablations (DESIGN.md §6).

func BenchmarkAblationNodeSelection(b *testing.B)    { benchExperiment(b, "ablation-nodesel") }
func BenchmarkAblationCheckpointPolicy(b *testing.B) { benchExperiment(b, "ablation-checkpoint") }
func BenchmarkAblationDeadlineSkip(b *testing.B)     { benchExperiment(b, "ablation-deadlineskip") }
func BenchmarkAblationNegotiation(b *testing.B)      { benchExperiment(b, "ablation-negotiation") }
func BenchmarkAblationBaseRate(b *testing.B)         { benchExperiment(b, "ablation-baserate") }
func BenchmarkAblationFailureModel(b *testing.B)     { benchExperiment(b, "ablation-failuremodel") }
func BenchmarkAblationHorizon(b *testing.B)          { benchExperiment(b, "ablation-horizon") }
func BenchmarkSweepCheckpointParams(b *testing.B)    { benchExperiment(b, "sweep-checkpoint") }
func BenchmarkSweepClusterSize(b *testing.B)         { benchExperiment(b, "sweep-clustersize") }
func BenchmarkAblationEstimates(b *testing.B)        { benchExperiment(b, "ablation-estimates") }
func BenchmarkAblationMonitor(b *testing.B)          { benchExperiment(b, "ablation-monitor") }
