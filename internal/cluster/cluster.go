// Package cluster models the machine: a fixed set of homogeneous nodes that
// fail independently, stay down for a fixed restart time, and are occupied
// by at most one job at a time (no co-scheduling, per §3.3).
package cluster

import (
	"fmt"

	"probqos/internal/units"
)

// NoJob is the occupant value of a free node.
const NoJob = 0

// Cluster tracks node up/down state and job occupancy. It is driven by the
// simulator: failures mark nodes down for the configured downtime, job
// starts occupy nodes, job completions and failures release them.
type Cluster struct {
	downUntil []units.Time // node is down while now < downUntil[i]
	occupant  []int        // job ID occupying each node, NoJob if free
}

// New creates a cluster of n homogeneous, initially idle, up nodes.
func New(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: need a positive node count, got %d", n))
	}
	return &Cluster{
		downUntil: make([]units.Time, n),
		occupant:  make([]int, n),
	}
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.occupant) }

// Fail marks the node down from at until at+downtime. If the node is
// already down past that point, the longer outage wins.
func (c *Cluster) Fail(node int, at units.Time, downtime units.Duration) {
	until := at.Add(downtime)
	if until > c.downUntil[node] {
		c.downUntil[node] = until
	}
}

// IsUp reports whether the node is up at the given instant. A node is up
// again exactly at its recovery instant.
func (c *Cluster) IsUp(node int, at units.Time) bool {
	return at >= c.downUntil[node]
}

// UpAt returns the earliest instant >= at at which the node is up.
func (c *Cluster) UpAt(node int, at units.Time) units.Time {
	return at.Max(c.downUntil[node])
}

// RecoverTime returns the instant the node's current outage ends (zero if
// the node was never failed).
func (c *Cluster) RecoverTime(node int) units.Time { return c.downUntil[node] }

// Occupant returns the job occupying the node, or NoJob.
func (c *Cluster) Occupant(node int) int { return c.occupant[node] }

// Occupy assigns the nodes to a job. It returns an error if any node is
// already occupied — that would mean the scheduler double-booked, which is
// a bug worth surfacing loudly rather than mis-accounting silently.
func (c *Cluster) Occupy(nodes []int, jobID int) error {
	if jobID == NoJob {
		return fmt.Errorf("cluster: job ID %d is reserved for free nodes", NoJob)
	}
	for _, n := range nodes {
		if c.occupant[n] != NoJob {
			return fmt.Errorf("cluster: node %d already occupied by job %d (placing job %d)",
				n, c.occupant[n], jobID)
		}
	}
	for _, n := range nodes {
		c.occupant[n] = jobID
	}
	return nil
}

// Release frees the nodes held by the job. It returns an error if any of
// the nodes is not held by that job.
func (c *Cluster) Release(nodes []int, jobID int) error {
	for _, n := range nodes {
		if c.occupant[n] != jobID {
			return fmt.Errorf("cluster: node %d occupied by job %d, not %d", n, c.occupant[n], jobID)
		}
	}
	for _, n := range nodes {
		c.occupant[n] = NoJob
	}
	return nil
}

// FreeNodes returns the nodes that are up and unoccupied at the instant, in
// ascending node order.
func (c *Cluster) FreeNodes(at units.Time) []int {
	var free []int
	for n := range c.occupant {
		if c.occupant[n] == NoJob && c.IsUp(n, at) {
			free = append(free, n)
		}
	}
	return free
}

// CountFree returns how many nodes are up and unoccupied at the instant.
func (c *Cluster) CountFree(at units.Time) int {
	count := 0
	for n := range c.occupant {
		if c.occupant[n] == NoJob && c.IsUp(n, at) {
			count++
		}
	}
	return count
}

// BusyNodes returns the number of occupied nodes at the instant (up or not).
func (c *Cluster) BusyNodes() int {
	count := 0
	for _, o := range c.occupant {
		if o != NoJob {
			count++
		}
	}
	return count
}
