package cluster

import (
	"testing"

	"probqos/internal/units"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestFailAndRecovery(t *testing.T) {
	c := New(4)
	if !c.IsUp(0, 0) {
		t.Fatal("fresh node should be up")
	}
	c.Fail(0, 100, 120)
	tests := []struct {
		name string
		at   int64
		want bool
	}{
		{name: "during outage", at: 100, want: false},
		{name: "just before recovery", at: 219, want: false},
		{name: "at recovery instant", at: 220, want: true},
		{name: "after recovery", at: 500, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.IsUp(0, units.Time(tt.at)); got != tt.want {
				t.Errorf("IsUp(0, %d) = %v, want %v", tt.at, got, tt.want)
			}
		})
	}
	if got := c.UpAt(0, 150); got != 220 {
		t.Errorf("UpAt(0, 150) = %v, want 220", got)
	}
	if got := c.UpAt(0, 300); got != 300 {
		t.Errorf("UpAt(0, 300) = %v, want 300", got)
	}
	if got := c.RecoverTime(0); got != 220 {
		t.Errorf("RecoverTime = %v, want 220", got)
	}
}

func TestOverlappingFailuresExtendOutage(t *testing.T) {
	c := New(2)
	c.Fail(0, 100, 120) // down until 220
	c.Fail(0, 150, 120) // down until 270
	if got := c.RecoverTime(0); got != 270 {
		t.Errorf("RecoverTime = %v, want 270", got)
	}
	// A shorter earlier outage must not shrink a longer one.
	c.Fail(0, 160, 10)
	if got := c.RecoverTime(0); got != 270 {
		t.Errorf("RecoverTime after short failure = %v, want 270", got)
	}
}

func TestOccupyRelease(t *testing.T) {
	c := New(4)
	if err := c.Occupy([]int{0, 2}, 7); err != nil {
		t.Fatal(err)
	}
	if got := c.Occupant(0); got != 7 {
		t.Errorf("Occupant(0) = %d, want 7", got)
	}
	if got := c.Occupant(1); got != NoJob {
		t.Errorf("Occupant(1) = %d, want free", got)
	}
	if err := c.Occupy([]int{2, 3}, 8); err == nil {
		t.Error("expected double-booking error")
	}
	// The failed Occupy must not have partially claimed node 3.
	if got := c.Occupant(3); got != NoJob {
		t.Errorf("Occupant(3) = %d after failed Occupy, want free", got)
	}
	if err := c.Release([]int{0, 2}, 9); err == nil {
		t.Error("expected wrong-owner release error")
	}
	if err := c.Release([]int{0, 2}, 7); err != nil {
		t.Fatal(err)
	}
	if got := c.Occupant(0); got != NoJob {
		t.Errorf("Occupant(0) after release = %d", got)
	}
}

func TestOccupyRejectsNoJobID(t *testing.T) {
	c := New(2)
	if err := c.Occupy([]int{0}, NoJob); err == nil {
		t.Error("expected error for reserved job ID")
	}
}

func TestFreeNodes(t *testing.T) {
	c := New(4)
	if err := c.Occupy([]int{1}, 5); err != nil {
		t.Fatal(err)
	}
	c.Fail(3, 0, 120)
	got := c.FreeNodes(50)
	want := []int{0, 2}
	if len(got) != len(want) {
		t.Fatalf("FreeNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeNodes = %v, want %v", got, want)
		}
	}
	if got := c.CountFree(50); got != 2 {
		t.Errorf("CountFree = %d, want 2", got)
	}
	if got := c.CountFree(200); got != 3 {
		t.Errorf("CountFree after recovery = %d, want 3", got)
	}
	if got := c.BusyNodes(); got != 1 {
		t.Errorf("BusyNodes = %d, want 1", got)
	}
}
