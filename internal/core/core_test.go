package core

import (
	"testing"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/negotiate"
	"probqos/internal/units"
)

func newTrace(t *testing.T, nodes int, events []failure.Event) *failure.Trace {
	t.Helper()
	tr, err := failure.NewTrace(nodes, events)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewSystemValidation(t *testing.T) {
	tr := newTrace(t, 8, nil)
	tests := []struct {
		name    string
		nodes   int
		trace   *failure.Trace
		a       float64
		opts    []Option
		wantErr bool
	}{
		{name: "ok", nodes: 8, trace: tr, a: 0.5},
		{name: "nil trace", nodes: 8, trace: nil, a: 0.5, wantErr: true},
		{name: "node mismatch", nodes: 16, trace: tr, a: 0.5, wantErr: true},
		{name: "bad accuracy", nodes: 8, trace: tr, a: 1.5, wantErr: true},
		{
			name: "bad checkpoint params", nodes: 8, trace: tr, a: 0.5,
			opts:    []Option{WithCheckpointParams(checkpoint.Params{})},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSystem(tt.nodes, tt.trace, tt.a, tt.opts...)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewSystem error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPlannedDuration(t *testing.T) {
	sys, err := NewSystem(8, newTrace(t, 8, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		exec units.Duration
		want units.Duration
	}{
		{name: "zero", exec: 0, want: 0},
		{name: "under one interval", exec: 3600, want: 3600},
		{name: "just over", exec: 3601, want: 3601 + 720},
		{name: "two and a half intervals", exec: 9000, want: 9000 + 2*720},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sys.PlannedDuration(tt.exec); got != tt.want {
				t.Errorf("PlannedDuration(%d) = %d, want %d", tt.exec, got, tt.want)
			}
		})
	}
}

func TestPlannedDurationCustomParams(t *testing.T) {
	sys, err := NewSystem(8, newTrace(t, 8, nil), 1,
		WithCheckpointParams(checkpoint.Params{Interval: 100, Overhead: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.PlannedDuration(250); got != 250+2*10 {
		t.Errorf("PlannedDuration = %d", got)
	}
}

func TestQuotesAndSubmitFlow(t *testing.T) {
	var events []failure.Event
	for n := 0; n < 8; n++ {
		events = append(events, failure.Event{Time: 1000, Node: n, Detectability: 0.3})
	}
	sys, err := NewSystem(8, newTrace(t, 8, events), 1)
	if err != nil {
		t.Fatal(err)
	}

	quotes := sys.Quotes(0, 8, 2000, 4)
	if len(quotes) < 2 {
		t.Fatalf("quotes = %+v", quotes)
	}
	if quotes[0].Success != 0.7 {
		t.Errorf("first quote success = %v, want 0.7", quotes[0].Success)
	}
	if last := quotes[len(quotes)-1]; last.Success != 1 {
		t.Errorf("final quote success = %v, want 1", last.Success)
	}

	q, offers, err := sys.Submit(1, 0, 8, 2000, negotiate.User{U: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if offers < 2 || q.Success < 0.9 {
		t.Errorf("submit accepted %+v after %d offers", q, offers)
	}

	// The same job ID cannot reserve twice.
	if _, _, err := sys.Submit(1, 0, 8, 2000, negotiate.User{U: 0}); err == nil {
		t.Error("duplicate job ID should fail")
	}
	sys.Release(1)
	if _, _, err := sys.Submit(1, 0, 8, 2000, negotiate.User{U: 0}); err != nil {
		t.Errorf("resubmission after release failed: %v", err)
	}
}

func TestSubmitInvalidSize(t *testing.T) {
	sys, err := NewSystem(4, newTrace(t, 4, nil), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Submit(1, 0, 5, 1000, negotiate.User{U: 0}); err == nil {
		t.Error("oversized job should fail")
	}
	if got := sys.Nodes(); got != 4 {
		t.Errorf("Nodes = %d", got)
	}
}

func TestPFailPassthrough(t *testing.T) {
	events := []failure.Event{{Time: 500, Node: 2, Detectability: 0.4}}
	sys, err := NewSystem(4, newTrace(t, 4, events), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pf := sys.PFail([]int{2}, 0, 1000); pf != 0.4 {
		t.Errorf("PFail = %v, want 0.4", pf)
	}
	if pf := sys.PFail([]int{1}, 0, 1000); pf != 0 {
		t.Errorf("PFail = %v, want 0", pf)
	}
}

func TestFirstFitOption(t *testing.T) {
	events := []failure.Event{{Time: 500, Node: 0, Detectability: 0.4}}
	tr := newTrace(t, 4, events)
	aware, err := NewSystem(4, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	blind, err := NewSystem(4, tr, 1, WithFaultAware(false))
	if err != nil {
		t.Fatal(err)
	}
	qa := aware.Quotes(0, 2, 1000, 1)
	qb := blind.Quotes(0, 2, 1000, 1)
	if qa[0].Success != 1 {
		t.Errorf("fault-aware quote = %+v, want success 1 (avoids node 0)", qa[0])
	}
	if qb[0].Success != 0.6 {
		t.Errorf("first-fit quote = %+v, want success 0.6 (includes node 0)", qb[0])
	}
}

func TestDowntimeSlackWidensRiskWindow(t *testing.T) {
	// Failure 60 s before the requested start: only a slack >= 60 sees it.
	events := []failure.Event{{Time: 940, Node: 0, Detectability: 0.5}}
	tr := newTrace(t, 1, events)
	tight, err := NewSystem(1, tr, 1, WithDowntimeSlack(0))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewSystem(1, tr, 1, WithDowntimeSlack(2*units.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if q := tight.Quotes(1000, 1, 500, 1); q[0].Success != 1 {
		t.Errorf("zero-slack quote = %+v, want success 1", q[0])
	}
	if q := wide.Quotes(1000, 1, 500, 1); q[0].Success != 0.5 {
		t.Errorf("wide-slack quote = %+v, want success 0.5", q[0])
	}
}

func TestSuggestDeadline(t *testing.T) {
	var events []failure.Event
	for n := 0; n < 8; n++ {
		events = append(events, failure.Event{Time: 2000, Node: n, Detectability: 0.5})
	}
	sys, err := NewSystem(8, newTrace(t, 8, events), 1)
	if err != nil {
		t.Fatal(err)
	}
	// A suggestion demanding certainty lands after the episode.
	q, err := sys.SuggestDeadline(0, 8, 3000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if q.Success < 0.95 || q.Candidate.Start <= 2000 {
		t.Errorf("suggestion = %+v", q)
	}
	// Nothing was reserved: the immediate slot is still offered afterwards.
	first := sys.Quotes(0, 8, 3000, 1)
	if len(first) != 1 || first[0].Candidate.Start != 0 {
		t.Errorf("suggestion must not reserve: %+v", first)
	}
	if _, err := sys.SuggestDeadline(0, 8, 3000, 1.5); err == nil {
		t.Error("invalid threshold accepted")
	}
}
