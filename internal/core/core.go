// Package core composes the paper's control system — event prediction,
// fault-aware scheduling, deadline negotiation, and cooperative
// checkpointing — into a live System that can quote and accept job
// submissions. The event-driven replay of whole job logs lives in
// internal/sim; core is the interactive face of the same machinery and
// backs the public probqos API.
package core

import (
	"fmt"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/negotiate"
	"probqos/internal/predict"
	"probqos/internal/sched"
	"probqos/internal/units"
)

// Option configures a System.
type Option interface{ apply(*options) }

type options struct {
	params     checkpoint.Params
	faultAware bool
	slack      units.Duration
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithCheckpointParams overrides the Table 2 checkpoint constants.
func WithCheckpointParams(p checkpoint.Params) Option {
	return optionFunc(func(o *options) { o.params = p })
}

// WithFaultAware toggles prediction-driven node selection (default on).
func WithFaultAware(enabled bool) Option {
	return optionFunc(func(o *options) { o.faultAware = enabled })
}

// WithDowntimeSlack sets the node restart time used to widen quote risk
// windows (default 120 s, Table 2).
func WithDowntimeSlack(d units.Duration) Option {
	return optionFunc(func(o *options) { o.slack = d })
}

// System is the probabilistic-QoS control plane over one cluster: it
// quotes (deadline, probability) pairs, negotiates with user risk
// strategies, and commits reservations.
type System struct {
	scheduler  *sched.Scheduler
	negotiator *negotiate.Negotiator
	predictor  *predict.Trace
	params     checkpoint.Params
	nodes      int
}

// Quote is re-exported for callers of the core API.
type Quote = negotiate.Quote

// NewSystem builds a System for a cluster of nodes, forecasting from the
// failure trace with the given prediction accuracy.
func NewSystem(nodes int, trace *failure.Trace, accuracy float64, opts ...Option) (*System, error) {
	if trace == nil {
		return nil, fmt.Errorf("core: a failure trace is required (it may be empty)")
	}
	if trace.Nodes() != nodes {
		return nil, fmt.Errorf("core: failure trace covers %d nodes, cluster has %d", trace.Nodes(), nodes)
	}
	o := options{
		params:     checkpoint.DefaultParams(),
		faultAware: true,
		slack:      2 * units.Minute,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if err := o.params.Validate(); err != nil {
		return nil, err
	}
	pred, err := predict.NewTrace(trace, accuracy)
	if err != nil {
		return nil, err
	}
	s := sched.New(nodes, pred,
		sched.WithFaultAware(o.faultAware),
		sched.WithQuoteSlack(o.slack),
	)
	return &System{
		scheduler: s,
		negotiator: negotiate.New(s,
			negotiate.WithLocator(pred),
			negotiate.WithFailureSlack(o.slack),
		),
		predictor: pred,
		params:    o.params,
		nodes:     nodes,
	}, nil
}

// Nodes returns the cluster size.
func (s *System) Nodes() int { return s.nodes }

// PlannedDuration returns E_j: the reserved wall time for a job with
// checkpoint-free execution time exec, assuming every checkpoint runs.
func (s *System) PlannedDuration(exec units.Duration) units.Duration {
	if exec <= 0 {
		return 0
	}
	requests := (exec - 1) / s.params.Interval
	return exec + units.Duration(requests)*s.params.Overhead
}

// Quotes previews up to max successive offers for a job of the given size
// and execution time submitted at now, without reserving anything. Each
// quote trades a later deadline for a higher promised success probability.
func (s *System) Quotes(now units.Time, size int, exec units.Duration, max int) []Quote {
	return s.negotiator.Quotes(now, size, s.PlannedDuration(exec), max)
}

// SuggestDeadline returns the earliest offer whose promised success
// probability is at least minSuccess — the system-initiated form of the
// dialog ("the scheduler could even suggest a deadline for the user,
// citing the increased probability of success as a motivating factor",
// §3.3). Nothing is reserved.
func (s *System) SuggestDeadline(now units.Time, size int, exec units.Duration, minSuccess float64) (Quote, error) {
	u, err := negotiate.NewUser(minSuccess)
	if err != nil {
		return Quote{}, err
	}
	q, _, err := s.negotiator.Negotiate(now, size, s.PlannedDuration(exec), u)
	return q, err
}

// Submit negotiates with a user of risk strategy u and commits the accepted
// reservation under jobID. It returns the accepted quote and the number of
// offers it took.
func (s *System) Submit(jobID int, now units.Time, size int, exec units.Duration, u negotiate.User) (Quote, int, error) {
	duration := s.PlannedDuration(exec)
	q, offers, err := s.negotiator.Negotiate(now, size, duration, u)
	if err != nil {
		return Quote{}, offers, err
	}
	if _, err := s.scheduler.Reserve(jobID, q.Candidate, duration); err != nil {
		return Quote{}, offers, err
	}
	return q, offers, nil
}

// Release drops the reservation held by jobID (e.g. the user withdrew the
// job before it ran).
func (s *System) Release(jobID int) { s.scheduler.Release(jobID) }

// PFail exposes the system's failure forecast for a node set and window —
// the probability estimate behind every quote.
func (s *System) PFail(nodes []int, from, to units.Time) float64 {
	return s.predictor.PFail(nodes, from, to)
}
