package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"probqos/internal/sim"
	"probqos/internal/units"
)

// DefaultCadence is the default simulation-time sampling period.
const DefaultCadence = 15 * units.Minute

// Point is one sampled cluster state on the simulation clock.
type Point struct {
	Time        units.Time `json:"time"`
	QueueDepth  int        `json:"queue_depth"`
	RunningJobs int        `json:"running_jobs"`
	BusyNodes   int        `json:"busy_nodes"`
	LostWork    units.Work `json:"lost_work_node_s"`
	MeanPromise float64    `json:"mean_promise"`
	Events      int        `json:"events"`
}

// Sampler subscribes to the simulator's Observer and Probe hooks and keeps
// (1) live registry metrics — gauges for the instantaneous cluster state,
// counters for events, journal notes, and control-plane decisions — and
// (2) a fixed-cadence time series of Points for post-hoc plotting. It is
// safe to read (Series, the registry) while a simulation is feeding it.
type Sampler struct {
	cadence units.Duration
	reg     *Registry

	mu      sync.Mutex
	started bool
	next    units.Time
	points  []Point
	last    Point
	hasLast bool
	notes   map[string]*Counter

	events *Counter

	quotes, reserves, backfills, slips *Counter
	ckptGranted, ckptSkipped, ckptDead *Counter
	failKill, failIdle                 *Counter

	gTime, gQueue, gRunning, gBusy, gLost, gPromise *Gauge
}

var (
	_ sim.Observer = (*Sampler)(nil)
)

// NewSampler registers the simulation metrics on reg and returns a sampler
// recording one Point per cadence of simulation time (DefaultCadence if
// cadence <= 0).
func NewSampler(reg *Registry, cadence units.Duration) *Sampler {
	if cadence <= 0 {
		cadence = DefaultCadence
	}
	const (
		decisions = "probqos_sim_decisions_total"
		decHelp   = "Control-plane decisions by kind."
		ckpts     = "probqos_sim_checkpoints_total"
		ckptHelp  = "Checkpoint requests by decision outcome."
		fails     = "probqos_sim_failures_total"
		failHelp  = "Failures processed, by outcome."
	)
	s := &Sampler{
		cadence: cadence,
		reg:     reg,
		notes:   make(map[string]*Counter),

		events: reg.Counter("probqos_sim_events_total", "Simulator events dispatched.", nil),

		quotes:      reg.Counter(decisions, decHelp, Labels{"kind": sim.DecisionQuote.String()}),
		reserves:    reg.Counter(decisions, decHelp, Labels{"kind": sim.DecisionReserve.String()}),
		backfills:   reg.Counter(decisions, decHelp, Labels{"kind": sim.DecisionBackfill.String()}),
		slips:       reg.Counter(decisions, decHelp, Labels{"kind": sim.DecisionStartSlip.String()}),
		ckptGranted: reg.Counter(ckpts, ckptHelp, Labels{"decision": "granted"}),
		ckptSkipped: reg.Counter(ckpts, ckptHelp, Labels{"decision": "skipped"}),
		ckptDead:    reg.Counter(ckpts, ckptHelp, Labels{"decision": "deadline-skipped"}),
		failKill:    reg.Counter(fails, failHelp, Labels{"outcome": "job-killed"}),
		failIdle:    reg.Counter(fails, failHelp, Labels{"outcome": "idle-node"}),

		gTime:    reg.Gauge("probqos_sim_time_seconds", "Simulation clock, seconds since trace start.", nil),
		gQueue:   reg.Gauge("probqos_sim_queue_depth", "Jobs negotiated but not executing.", nil),
		gRunning: reg.Gauge("probqos_sim_running_jobs", "Jobs currently executing.", nil),
		gBusy:    reg.Gauge("probqos_sim_nodes_busy", "Nodes occupied by running jobs.", nil),
		gLost:    reg.Gauge("probqos_sim_lost_work_node_seconds", "Cumulative work destroyed by failures.", nil),
		gPromise: reg.Gauge("probqos_sim_mean_promise", "Mean promised success probability over arrivals so far.", nil),
	}
	return s
}

// Sample implements the Probe state hook: it refreshes the live gauges on
// every event and appends a Point once per cadence of simulation time.
func (s *Sampler) Sample(st sim.State) {
	s.events.Inc()
	s.gTime.Set(float64(st.Time))
	s.gQueue.Set(float64(st.QueueDepth))
	s.gRunning.Set(float64(st.RunningJobs))
	s.gBusy.Set(float64(st.BusyNodes))
	s.gLost.Set(st.LostWork.NodeSeconds())
	s.gPromise.Set(st.MeanPromise())

	p := Point{
		Time:        st.Time,
		QueueDepth:  st.QueueDepth,
		RunningJobs: st.RunningJobs,
		BusyNodes:   st.BusyNodes,
		LostWork:    st.LostWork,
		MeanPromise: st.MeanPromise(),
		Events:      st.EventsProcessed,
	}
	s.mu.Lock()
	s.last, s.hasLast = p, true
	if !s.started || st.Time >= s.next {
		s.started = true
		s.points = append(s.points, p)
		s.next = st.Time.Add(s.cadence)
	}
	s.mu.Unlock()
}

// Decision implements the Probe decision hook.
func (s *Sampler) Decision(d sim.Decision) {
	switch d.Kind {
	case sim.DecisionQuote:
		s.quotes.Add(float64(d.N))
	case sim.DecisionReserve:
		s.reserves.Add(float64(d.N))
	case sim.DecisionBackfill:
		s.backfills.Add(float64(d.N))
	case sim.DecisionStartSlip:
		s.slips.Add(float64(d.N))
	case sim.DecisionCheckpointGrant:
		s.ckptGranted.Add(float64(d.N))
	case sim.DecisionCheckpointSkip:
		s.ckptSkipped.Add(float64(d.N))
	case sim.DecisionCheckpointDeadlineSkip:
		s.ckptDead.Add(float64(d.N))
	case sim.DecisionFailureKill:
		s.failKill.Add(float64(d.N))
	case sim.DecisionFailureIdle:
		s.failIdle.Add(float64(d.N))
	}
}

// Observe implements sim.Observer, counting journal notes by kind. Attach
// the sampler (alone or via sim.MultiObserver) to also meter the journal.
func (s *Sampler) Observe(n sim.Note) {
	s.mu.Lock()
	c, ok := s.notes[n.Kind]
	if !ok {
		c = s.reg.Counter("probqos_sim_notes_total", "Journal notes by kind.", Labels{"kind": n.Kind})
		s.notes[n.Kind] = c
	}
	s.mu.Unlock()
	c.Inc()
}

// Flush appends the most recent state as a final Point if the cadence had
// not yet captured it. Call it once when the run completes.
func (s *Sampler) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasLast && (len(s.points) == 0 || s.points[len(s.points)-1].Time != s.last.Time) {
		s.points = append(s.points, s.last)
	}
}

// Series returns a copy of the sampled time series so far.
func (s *Sampler) Series() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// SeriesTail returns at most n trailing points (all points if n <= 0).
func (s *Sampler) SeriesTail(n int) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := s.points
	if n > 0 && len(pts) > n {
		pts = pts[len(pts)-n:]
	}
	return append([]Point(nil), pts...)
}

// WriteSeriesCSV writes the sampled time series as CSV for plotting.
func (s *Sampler) WriteSeriesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time_s,queue_depth,running_jobs,nodes_busy,lost_work_node_s,mean_promise,events"); err != nil {
		return fmt.Errorf("obs: write series csv: %w", err)
	}
	for _, p := range s.Series() {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%.6f,%d\n",
			int64(p.Time), p.QueueDepth, p.RunningJobs, p.BusyNodes,
			int64(p.LostWork), p.MeanPromise, p.Events); err != nil {
			return fmt.Errorf("obs: write series csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write series csv: %w", err)
	}
	return nil
}
