package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"probqos/internal/sim"
	"probqos/internal/units"
)

// phaseDurationBounds bucket phase occurrences from 1µs to 1s; simulator
// phases are far below a second, so the overflow bucket flags pathology.
// Exact literals rather than ExponentialBuckets(1e-6, 10, 7): repeated
// multiplication drifts (1e-6*10*10 = 9.999...e-05) and the drift would
// leak into the le= labels.
var phaseDurationBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// PhaseStat summarizes one hot phase's wall-clock bill.
type PhaseStat struct {
	Phase        string  `json:"phase"`
	Calls        uint64  `json:"calls"`
	TotalSeconds float64 `json:"total_s"`
	MeanSeconds  float64 `json:"mean_s"`
	MaxSeconds   float64 `json:"max_s"`
	// DispatchShare is TotalSeconds over the dispatch phase's total: the
	// fraction of event-processing wall-clock this phase accounts for
	// (dispatch itself reads 1). Sub-phases are nested inside dispatch, so
	// shares do not sum to 1.
	DispatchShare float64 `json:"dispatch_share"`
}

type phaseAgg struct {
	seconds *Counter
	calls   *Counter
	hist    *Histogram

	mu    sync.Mutex
	n     uint64
	total time.Duration
	max   time.Duration
}

// Profiler accounts wall-clock per simulator hot phase: nanosecond timers
// feed per-phase counters and duration histograms on the registry plus an
// aggregate report, giving perf work a measured baseline.
type Profiler struct {
	agg map[sim.Phase]*phaseAgg
}

// NewProfiler registers per-phase wall-clock metrics on reg.
func NewProfiler(reg *Registry) *Profiler {
	p := &Profiler{agg: make(map[sim.Phase]*phaseAgg, len(sim.AllPhases()))}
	for _, ph := range sim.AllPhases() {
		labels := Labels{"phase": ph.String()}
		p.agg[ph] = &phaseAgg{
			seconds: reg.Counter("probqos_sim_phase_seconds_total",
				"Wall-clock seconds spent per simulator phase.", labels),
			calls: reg.Counter("probqos_sim_phase_calls_total",
				"Occurrences of each simulator phase.", labels),
			hist: reg.Histogram("probqos_sim_phase_duration_seconds",
				"Wall-clock duration of one phase occurrence.", phaseDurationBounds, labels),
		}
	}
	return p
}

// Phase implements the Probe timing hook.
func (p *Profiler) Phase(ph sim.Phase, d time.Duration) {
	a := p.agg[ph]
	if a == nil {
		return
	}
	secs := d.Seconds()
	a.seconds.Add(secs)
	a.calls.Inc()
	a.hist.Observe(secs)
	a.mu.Lock()
	a.n++
	a.total += d
	if d > a.max {
		a.max = d
	}
	a.mu.Unlock()
}

// Report returns per-phase statistics, dispatch first and the nested phases
// by descending total.
func (p *Profiler) Report() []PhaseStat {
	var dispatchTotal time.Duration
	if a := p.agg[sim.PhaseDispatch]; a != nil {
		a.mu.Lock()
		dispatchTotal = a.total
		a.mu.Unlock()
	}
	stats := make([]PhaseStat, 0, len(p.agg))
	for _, ph := range sim.AllPhases() {
		a := p.agg[ph]
		a.mu.Lock()
		n, total, max := a.n, a.total, a.max
		a.mu.Unlock()
		st := PhaseStat{
			Phase:        ph.String(),
			Calls:        n,
			TotalSeconds: total.Seconds(),
			MaxSeconds:   max.Seconds(),
		}
		if n > 0 {
			st.MeanSeconds = total.Seconds() / float64(n)
		}
		if dispatchTotal > 0 {
			st.DispatchShare = total.Seconds() / dispatchTotal.Seconds()
		}
		stats = append(stats, st)
	}
	// Dispatch stays first; order the nested phases by descending total.
	rest := stats[1:]
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].TotalSeconds > rest[j].TotalSeconds })
	return stats
}

// WriteReport writes the per-phase breakdown as aligned text.
func (p *Profiler) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-12s %10s %12s %12s %12s %8s\n",
		"phase", "calls", "total", "mean", "max", "% disp")
	for _, st := range p.Report() {
		fmt.Fprintf(bw, "%-12s %10d %12s %12s %12s %8.1f\n",
			st.Phase, st.Calls,
			fmtSeconds(st.TotalSeconds), fmtSeconds(st.MeanSeconds), fmtSeconds(st.MaxSeconds),
			100*st.DispatchShare)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write phase report: %w", err)
	}
	return nil
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Nanosecond).String()
}

// Instrument bundles a Sampler and a Profiler into one probe: assign it to
// a simulation's Probe (and, to meter the journal too, its Observer — via
// sim.MultiObserver when a journal writer is also attached).
type Instrument struct {
	*Sampler
	*Profiler
}

var (
	_ sim.Probe    = (*Instrument)(nil)
	_ sim.Observer = (*Instrument)(nil)
)

// NewInstrument builds a Sampler and Profiler over one registry.
func NewInstrument(reg *Registry, cadence units.Duration) *Instrument {
	return &Instrument{Sampler: NewSampler(reg, cadence), Profiler: NewProfiler(reg)}
}
