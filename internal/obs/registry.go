// Package obs is the simulator's instrumentation layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms), a Sampler
// that turns the simulator's hook stream into a cluster-state time series, a
// Profiler that accounts wall-clock per hot phase, and exposition as
// Prometheus text, JSON snapshots, CSV series, and an opt-in HTTP endpoint.
//
// Everything is stdlib-only and safe for concurrent use. Instrumentation is
// strictly opt-in: a simulation with no Probe attached pays nothing.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimension values to one instrument of a metric family, e.g.
// Labels{"kind": "arrival"}. Instruments of one family must share a name and
// kind; their label sets tell them apart.
type Labels map[string]string

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families and hands out their instruments.
// Registration is idempotent: asking twice for the same name and labels
// returns the same instrument, so call sites need no global wiring. A nil
// *Registry is unusable; instruments themselves tolerate concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram upper bounds, strictly increasing

	mu       sync.Mutex
	children map[string]any // keyed by rendered label string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns the named family, creating it on first use. Re-registering
// a name under a different kind is a programming error and panics.
func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds,
			children: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter with the given name and labels, registering it
// on first use. Counters only go up.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, counterKind, nil)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{labels: copyLabels(labels), labelKey: key}
	f.children[key] = c
	return c
}

// Gauge returns the gauge with the given name and labels, registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, gaugeKind, nil)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.children[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{labels: copyLabels(labels), labelKey: key}
	f.children[key] = g
	return g
}

// Histogram returns the fixed-bucket histogram with the given name and
// labels, registering it on first use. Bounds are the bucket upper limits,
// strictly increasing and finite; a +Inf overflow bucket is implicit. The
// bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds must be finite and strictly increasing: %v", name, bounds))
		}
	}
	f := r.family(name, help, histogramKind, append([]float64(nil), bounds...))
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.children[key]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{
		labels: copyLabels(labels), labelKey: key,
		bounds: f.bounds,
		counts: make([]atomic.Uint64, len(f.bounds)+1),
	}
	f.children[key] = h
	return h
}

// ExponentialBuckets returns n bucket upper bounds starting at start and
// growing by factor, e.g. ExponentialBuckets(1e-6, 10, 7) spans 1µs..1s.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Counter is a monotonically increasing value.
type Counter struct {
	labels   Labels
	labelKey string
	bits     atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("obs: counter add of invalid value %v", v))
	}
	addFloatBits(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	labels   Labels
	labelKey string
	bits     atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets.
type Histogram struct {
	labels   Labels
	labelKey string
	bounds   []float64
	counts   []atomic.Uint64 // per-bucket, non-cumulative; last is overflow
	sumBits  atomic.Uint64
	count    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloatBits(&h.sumBits, v)
	h.count.Add(1)
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// addFloatBits atomically adds v to a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// renderLabels produces the canonical `{k="v",...}` form with sorted keys,
// or "" for no labels. The rendered form doubles as the child map key.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		mustValidLabelName(k)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func mustValidName(name string) {
	if !validIdent(name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabelName(name string) {
	if !validIdent(name, false) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

// validIdent reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]* (metric
// names) or [a-zA-Z_][a-zA-Z0-9_]* (label names, colons=false).
func validIdent(s string, colons bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && colons:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
