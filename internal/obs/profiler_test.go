package obs

import (
	"strings"
	"testing"
	"time"

	"probqos/internal/sim"
)

func TestProfilerReport(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(reg)
	p.Phase(sim.PhaseDispatch, 10*time.Millisecond)
	p.Phase(sim.PhaseDispatch, 30*time.Millisecond)
	p.Phase(sim.PhaseSchedule, 8*time.Millisecond)
	p.Phase(sim.PhaseNegotiate, 2*time.Millisecond)

	rep := p.Report()
	if len(rep) != len(sim.AllPhases()) {
		t.Fatalf("report rows = %d, want %d", len(rep), len(sim.AllPhases()))
	}
	if rep[0].Phase != "dispatch" {
		t.Fatalf("first row = %q, want dispatch", rep[0].Phase)
	}
	d := rep[0]
	if d.Calls != 2 || d.TotalSeconds != 0.04 || d.MeanSeconds != 0.02 || d.MaxSeconds != 0.03 {
		t.Errorf("dispatch stats = %+v", d)
	}
	if d.DispatchShare != 1 {
		t.Errorf("dispatch share = %v, want 1", d.DispatchShare)
	}
	// Nested phases sort by descending total: schedule, negotiate, checkpoint.
	if rep[1].Phase != "schedule" || rep[2].Phase != "negotiate" || rep[3].Phase != "checkpoint" {
		t.Errorf("nested order: %s, %s, %s", rep[1].Phase, rep[2].Phase, rep[3].Phase)
	}
	if got := rep[1].DispatchShare; got != 0.2 {
		t.Errorf("schedule share = %v, want 0.2", got)
	}
	if rep[3].Calls != 0 || rep[3].MeanSeconds != 0 {
		t.Errorf("unused phase not zero: %+v", rep[3])
	}

	// The registry carries the same accounting.
	if got := reg.Counter("probqos_sim_phase_calls_total", "", Labels{"phase": "dispatch"}).Value(); got != 2 {
		t.Errorf("calls counter = %v, want 2", got)
	}
	if got := reg.Counter("probqos_sim_phase_seconds_total", "", Labels{"phase": "schedule"}).Value(); got != 0.008 {
		t.Errorf("seconds counter = %v, want 0.008", got)
	}
	if got := reg.Histogram("probqos_sim_phase_duration_seconds", "", phaseDurationBounds, Labels{"phase": "negotiate"}).Count(); got != 1 {
		t.Errorf("duration histogram count = %d, want 1", got)
	}
}

func TestProfilerIgnoresUnknownPhase(t *testing.T) {
	p := NewProfiler(NewRegistry())
	p.Phase(sim.Phase(99), time.Second) // must not panic
	if got := p.Report()[0].Calls; got != 0 {
		t.Errorf("unknown phase leaked into dispatch: %d calls", got)
	}
}

func TestWriteReport(t *testing.T) {
	p := NewProfiler(NewRegistry())
	p.Phase(sim.PhaseDispatch, 5*time.Millisecond)
	p.Phase(sim.PhaseCheckpoint, time.Millisecond)
	var sb strings.Builder
	if err := p.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"phase", "calls", "% disp", "dispatch", "checkpoint", "5ms"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if lines := strings.Count(got, "\n"); lines != 1+len(sim.AllPhases()) {
		t.Errorf("report lines = %d:\n%s", lines, got)
	}
}
