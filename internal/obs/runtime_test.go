package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCaptureRuntime(t *testing.T) {
	r := NewRegistry()
	CaptureRuntime(r)
	if v := r.Gauge("go_goroutines", "", nil).Value(); v < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", v)
	}
	if v := r.Gauge("go_memstats_heap_alloc_bytes", "", nil).Value(); v <= 0 {
		t.Errorf("heap alloc gauge = %v, want > 0", v)
	}
	if v := r.Gauge("go_memstats_sys_bytes", "", nil).Value(); v <= 0 {
		t.Errorf("sys bytes gauge = %v, want > 0", v)
	}
}

func TestServerOnScrapeRefreshesMetrics(t *testing.T) {
	r := NewRegistry()
	srv := NewServer(r, nil, nil)
	srv.SetOnScrape(func() { CaptureRuntime(r) })

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: code %d", rec.Code)
	}
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics lacks %s after scrape hook", want)
		}
	}

	// The hook also runs for /snapshot.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/snapshot", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "go_goroutines") {
		t.Fatalf("/snapshot: code %d, runtime gauges present: %v",
			rec.Code, strings.Contains(rec.Body.String(), "go_goroutines"))
	}
}
