package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketSnapshot is one cumulative histogram bucket of a snapshot. The
// upper bound encodes to JSON as a string ("+Inf" for the overflow bucket),
// since JSON has no infinity literal.
type BucketSnapshot struct {
	UpperBound      float64 `json:"le"`
	CumulativeCount uint64  `json:"count"`
}

type bucketJSON struct {
	UpperBound      string `json:"le"`
	CumulativeCount uint64 `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatFloat(b.UpperBound)
	}
	return json.Marshal(bucketJSON{UpperBound: le, CumulativeCount: b.CumulativeCount})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var aux bucketJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(aux.UpperBound, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket bound %q: %w", aux.UpperBound, err)
		}
		b.UpperBound = v
	}
	b.CumulativeCount = aux.CumulativeCount
	return nil
}

// SeriesSnapshot is one instrument (one label set) of a metric family at a
// point in time.
type SeriesSnapshot struct {
	Labels Labels `json:"labels,omitempty"`
	// Value carries the counter or gauge value; histograms use Count, Sum,
	// and Buckets instead.
	Value   float64          `json:"value"`
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// MetricSnapshot is one metric family at a point in time.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every registered metric, families sorted by name and
// instruments by label set, so equal registry states encode identically.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	out := make([]MetricSnapshot, 0, len(families))
	for _, f := range families {
		ms := MetricSnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch c := f.children[k].(type) {
			case *Counter:
				ms.Series = append(ms.Series, SeriesSnapshot{Labels: copyLabels(c.labels), Value: c.Value()})
			case *Gauge:
				ms.Series = append(ms.Series, SeriesSnapshot{Labels: copyLabels(c.labels), Value: c.Value()})
			case *Histogram:
				ss := SeriesSnapshot{Labels: copyLabels(c.labels), Sum: c.Sum()}
				var cum uint64
				for i, b := range c.bounds {
					cum += c.counts[i].Load()
					ss.Buckets = append(ss.Buckets, BucketSnapshot{UpperBound: b, CumulativeCount: cum})
				}
				cum += c.counts[len(c.bounds)].Load()
				ss.Buckets = append(ss.Buckets, BucketSnapshot{UpperBound: math.Inf(1), CumulativeCount: cum})
				ss.Count = cum
				ms.Series = append(ms.Series, ss)
			}
		}
		f.mu.Unlock()
		out = append(out, ms)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ms := range r.Snapshot() {
		if ms.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", ms.Name, escapeHelp(ms.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", ms.Name, ms.Type)
		for _, ss := range ms.Series {
			lk := renderLabels(ss.Labels)
			if ms.Type == "histogram" {
				for _, b := range ss.Buckets {
					le := "+Inf"
					if !math.IsInf(b.UpperBound, 1) {
						le = formatFloat(b.UpperBound)
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", ms.Name, mergeLabelKey(lk, `le="`+le+`"`), b.CumulativeCount)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", ms.Name, lk, formatFloat(ss.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", ms.Name, lk, ss.Count)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", ms.Name, lk, formatFloat(ss.Value))
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write prometheus: %w", err)
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: write json: %w", err)
	}
	return nil
}

// escapeHelp escapes a HELP string per the Prometheus text format, where
// backslash and newline (but not quote) must be escaped. An embedded
// newline would otherwise truncate the comment and corrupt the line after
// it.
func escapeHelp(help string) string {
	if !strings.ContainsAny(help, "\\\n") {
		return help
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(help)
}

// mergeLabelKey splices an extra label pair into a rendered `{...}` label
// string (or wraps it when there are no base labels).
func mergeLabelKey(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
