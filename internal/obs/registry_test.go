package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter", nil)
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}

	g := r.Gauge("test_gauge", "a gauge", nil)
	g.Set(10)
	g.Add(-4)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", Labels{"k": "v"})
	b := r.Counter("dup_total", "h", Labels{"k": "v"})
	if a != b {
		t.Error("same name+labels must return the same instrument")
	}
	other := r.Counter("dup_total", "h", Labels{"k": "w"})
	if a == other {
		t.Error("different labels must return a distinct instrument")
	}
	a.Inc()
	if b.Value() != 1 || other.Value() != 0 {
		t.Errorf("siblings not independent: %v %v", b.Value(), other.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "h", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash", "h", nil)
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "h", nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid label name accepted")
			}
		}()
		r.Counter("ok_total", "h", Labels{"bad-label": "v"})
	}()
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neg_total", "h", nil)
	defer func() {
		if recover() == nil {
			t.Error("negative counter add must panic")
		}
	}()
	c.Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.001, 0.05, 0.05, 0.5, 99} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-99.601) > 1e-9 {
		t.Errorf("sum = %v, want 99.601", h.Sum())
	}
	// Cumulative counts via snapshot: <=0.01:1, <=0.1:3, <=1:4, +Inf:5.
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	want := []uint64{1, 3, 4, 5}
	for i, b := range snap[0].Series[0].Buckets {
		if b.CumulativeCount != want[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.CumulativeCount, want[i])
		}
	}
}

func TestHistogramInvalidBoundsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds accepted")
		}
	}()
	r.Histogram("bad_seconds", "h", []float64{1, 1}, nil)
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1e-6, 10, 7)
	if len(b) != 7 || b[0] != 1e-6 || math.Abs(b[6]-1) > 1e-12 {
		t.Errorf("buckets = %v", b)
	}
}

// TestConcurrentUpdates exercises the registry under the race detector and
// checks that no increments are lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h", nil)
	g := r.Gauge("conc_gauge", "h", nil)
	h := r.Histogram("conc_seconds", "h", []float64{1, 2}, nil)
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1.5)
				// Concurrent reads must be safe too.
				_ = c.Value()
				_, _ = r.Snapshot(), g.Value()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %v, want %d", got, workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Errorf("gauge = %v, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
}
