package obs

import (
	"runtime"
)

// CaptureRuntime refreshes the Go runtime gauges in r: goroutine count,
// heap occupancy, and cumulative GC pause time. It calls
// runtime.ReadMemStats, which briefly stops the world, so it is meant to
// run per metrics scrape (Server wires it through SetOnScrape), not on a
// request path.
func CaptureRuntime(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines", "live goroutines", nil).
		Set(float64(runtime.NumGoroutine()))
	r.Gauge("go_memstats_heap_alloc_bytes", "bytes of allocated heap objects", nil).
		Set(float64(ms.HeapAlloc))
	r.Gauge("go_memstats_heap_objects", "allocated heap objects", nil).
		Set(float64(ms.HeapObjects))
	r.Gauge("go_memstats_sys_bytes", "bytes obtained from the OS", nil).
		Set(float64(ms.Sys))
	r.Gauge("go_gc_cycles_total", "completed GC cycles", nil).
		Set(float64(ms.NumGC))
	r.Gauge("go_gc_pause_seconds_total", "cumulative GC stop-the-world pause", nil).
		Set(float64(ms.PauseTotalNs) / 1e9)
}
