package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"probqos/internal/sim"
	"probqos/internal/units"
)

// instrumentedServer builds a server over an instrument that has seen a
// little traffic, so every simulation metric family exists.
func instrumentedServer() *Server {
	reg := NewRegistry()
	ins := NewInstrument(reg, units.Minute)
	ins.Sample(sim.State{Time: 60, EventsProcessed: 1, QueueDepth: 3, RunningJobs: 1, BusyNodes: 4})
	ins.Sample(sim.State{Time: 180, EventsProcessed: 2, QueueDepth: 2, RunningJobs: 2, BusyNodes: 6})
	ins.Decision(sim.Decision{Kind: sim.DecisionCheckpointGrant, N: 1})
	ins.Phase(sim.PhaseDispatch, time.Millisecond)
	return NewServer(reg, ins.Sampler, ins.Profiler)
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerStartServesMetrics(t *testing.T) {
	srv := instrumentedServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, hdr := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	// The acceptance set: cluster state, checkpoint/failure counters, and
	// per-phase wall-clock must all be scrapable.
	for _, want := range []string{
		"probqos_sim_queue_depth 2",
		"probqos_sim_nodes_busy 6",
		`probqos_sim_checkpoints_total{decision="granted"} 1`,
		`probqos_sim_checkpoints_total{decision="skipped"} 0`,
		`probqos_sim_failures_total{outcome="job-killed"} 0`,
		`probqos_sim_phase_seconds_total{phase="dispatch"} 0.001`,
		"probqos_sim_events_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	srv := instrumentedServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Uptime < 0 {
		t.Errorf("health = %+v", health)
	}
}

func TestServerSnapshot(t *testing.T) {
	srv := instrumentedServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts.URL+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status = %d", code)
	}
	var snap struct {
		Metrics []MetricSnapshot `json:"metrics"`
		Series  []Point          `json:"series"`
		Profile []PhaseStat      `json:"profile"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v\n%s", err, body)
	}
	if len(snap.Metrics) == 0 || len(snap.Series) != 2 || len(snap.Profile) != len(sim.AllPhases()) {
		t.Errorf("snapshot shape: %d metrics, %d series, %d profile",
			len(snap.Metrics), len(snap.Series), len(snap.Profile))
	}

	// Tail selection.
	code, body, _ = get(t, ts.URL+"/snapshot?n=1")
	if code != http.StatusOK {
		t.Fatalf("/snapshot?n=1 status = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Series) != 1 || snap.Series[0].Time != 180 {
		t.Errorf("tail = %+v, want the final point", snap.Series)
	}

	// Invalid n is a client error.
	if code, _, _ = get(t, ts.URL+"/snapshot?n=-1"); code != http.StatusBadRequest {
		t.Errorf("/snapshot?n=-1 status = %d, want 400", code)
	}
	if code, _, _ = get(t, ts.URL+"/snapshot?n=x"); code != http.StatusBadRequest {
		t.Errorf("/snapshot?n=x status = %d, want 400", code)
	}
}

func TestServerWithoutSamplerOrProfiler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lonely_total", "h", nil).Inc()
	srv := NewServer(reg, nil, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK || !strings.Contains(body, "lonely_total 1") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	code, body, _ := get(t, ts.URL+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status = %d", code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["series"]; ok {
		t.Error("series present without a sampler")
	}
}

func TestServerCloseUnstarted(t *testing.T) {
	if err := NewServer(NewRegistry(), nil, nil).Close(); err != nil {
		t.Errorf("close of unstarted server: %v", err)
	}
}
