package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", Labels{"code": "200"}).Add(7)
	r.Counter("app_requests_total", "Requests served.", Labels{"code": "500"}).Inc()
	r.Gauge("app_temperature", "Current temperature.", nil).Set(36.6)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := exampleRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP app_requests_total Requests served.",
		"# TYPE app_requests_total counter",
		`app_requests_total{code="200"} 7`,
		`app_requests_total{code="500"} 1`,
		"# TYPE app_temperature gauge",
		"app_temperature 36.6",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 5.55",
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q\n%s", want, got)
		}
	}
	// Families are sorted by name, so the histogram comes first.
	if !strings.HasPrefix(got, "# HELP app_latency_seconds") {
		t.Errorf("families not sorted:\n%s", got)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	// The Prometheus text format requires `\`, `"`, and newline in label
	// values to appear as \\, \", and \n. Each case exercises one
	// character alone, plus one combined value, so a regression in any
	// single replacement is caught by name.
	cases := []struct {
		name, value, want string
	}{
		{"quote", `say "hi"`, `esc_total{msg="say \"hi\""} 1`},
		{"backslash", `C:\temp`, `esc_total{msg="C:\\temp"} 1`},
		{"newline", "two\nlines", `esc_total{msg="two\nlines"} 1`},
		{"combined", "say \"hi\"\\\n", `esc_total{msg="say \"hi\"\\\n"} 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("esc_total", "h", Labels{"msg": tc.value}).Inc()
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), tc.want) {
				t.Errorf("escaping wrong, want %s in:\n%s", tc.want, sb.String())
			}
			// Whatever the escaping did, the exposition must stay
			// line-oriented: every line is a comment or ends in a value.
			for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
				if line == "" {
					t.Errorf("raw newline leaked into exposition:\n%s", sb.String())
				}
			}
		})
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	// HELP text escapes backslash and newline (quotes stay literal). An
	// unescaped newline would truncate the comment mid-way and leave the
	// remainder as a junk line that breaks scrapers.
	r := NewRegistry()
	r.Counter("helpesc_total", "first line\nsecond \\ line \"quoted\"", nil).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP helpesc_total first line\nsecond \\ line "quoted"`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("help escaping wrong, want %q in:\n%s", want, sb.String())
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "# TYPE helpesc_total") {
		t.Errorf("help text broke line structure:\n%s", sb.String())
	}
}

func TestHistogramBucketLabelsMerge(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lab_seconds", "h", []float64{1}, Labels{"phase": "x"}).Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `lab_seconds_bucket{phase="x",le="1"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("le label not merged, want %s in:\n%s", want, sb.String())
	}
}

func TestSnapshotShape(t *testing.T) {
	snap := exampleRegistry().Snapshot()
	if len(snap) != 3 {
		t.Fatalf("families = %d, want 3", len(snap))
	}
	// Sorted by name: latency, requests, temperature.
	if snap[0].Name != "app_latency_seconds" || snap[2].Name != "app_temperature" {
		t.Errorf("snapshot order: %s, %s, %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	req := snap[1]
	if len(req.Series) != 2 || req.Series[0].Labels["code"] != "200" {
		t.Errorf("label series wrong: %+v", req.Series)
	}
	hist := snap[0].Series[0]
	if hist.Count != 3 || hist.Sum != 5.55 {
		t.Errorf("histogram snapshot: count=%d sum=%v", hist.Count, hist.Sum)
	}
	last := hist.Buckets[len(hist.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.CumulativeCount != 3 {
		t.Errorf("+Inf bucket wrong: %+v", last)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := exampleRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded []MetricSnapshot
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	if len(decoded) != 3 || decoded[1].Type != "counter" {
		t.Errorf("decoded shape wrong: %+v", decoded)
	}
}
