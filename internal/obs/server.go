package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// defaultSnapshotTail bounds the /snapshot series length unless ?n= asks
// for more (n=0 means everything).
const defaultSnapshotTail = 720

// Server exposes a registry (and optionally a sampler's series and a
// profiler's report) over HTTP:
//
//	/metrics   Prometheus text exposition
//	/healthz   liveness JSON (status, uptime)
//	/snapshot  JSON: registry snapshot + recent series points + phase report
//
// Start binds and serves in the background; Close shuts the listener down.
type Server struct {
	reg      *Registry
	sampler  *Sampler
	profiler *Profiler
	health   func() (status string, detail map[string]any)
	onScrape func()

	started time.Time
	srv     *http.Server
	ln      net.Listener
}

// NewServer builds a server over reg; sampler and profiler may be nil.
func NewServer(reg *Registry, sampler *Sampler, profiler *Profiler) *Server {
	return &Server{reg: reg, sampler: sampler, profiler: profiler, started: time.Now()}
}

// SetHealth installs a hook /healthz consults on every request. A non-empty
// status replaces "ok" (e.g. "degraded") and detail entries are merged into
// the response. The hook runs on handler goroutines, so it must be
// concurrency-safe. Call before the server starts serving.
func (s *Server) SetHealth(fn func() (status string, detail map[string]any)) {
	s.health = fn
}

// SetOnScrape installs a hook that runs before every /metrics and
// /snapshot render, for gauges that are refreshed on demand rather than
// maintained continuously (e.g. CaptureRuntime). The hook runs on handler
// goroutines, so it must be concurrency-safe. Call before the server
// starts serving.
func (s *Server) SetOnScrape(fn func()) {
	s.onScrape = fn
}

// Handler returns the endpoint mux, for embedding or tests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	return mux
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler: s.Handler(),
		// Scrapers come and go; stalled ones must not pin goroutines.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the server, if started.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.onScrape != nil {
		s.onScrape()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	if s.health != nil {
		status, detail := s.health()
		if status != "" {
			body["status"] = status
		}
		for k, v := range detail {
			body[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.onScrape != nil {
		s.onScrape()
	}
	tail := defaultSnapshotTail
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "invalid n", http.StatusBadRequest)
			return
		}
		tail = n
	}
	payload := struct {
		Metrics []MetricSnapshot `json:"metrics"`
		Series  []Point          `json:"series,omitempty"`
		Profile []PhaseStat      `json:"profile,omitempty"`
	}{Metrics: s.reg.Snapshot()}
	if s.sampler != nil {
		payload.Series = s.sampler.SeriesTail(tail)
	}
	if s.profiler != nil {
		payload.Profile = s.profiler.Report()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}
