package obs

import (
	"errors"
	"strings"
	"testing"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/sim"
	"probqos/internal/units"
	"probqos/internal/workload"
)

func mkState(t units.Time, events int) sim.State {
	return sim.State{Time: t, EventsProcessed: events, QueueDepth: 1, RunningJobs: 2, BusyNodes: 4}
}

func TestSamplerCadenceDownsamples(t *testing.T) {
	s := NewSampler(NewRegistry(), 100*units.Second)
	for i := 0; i < 50; i++ {
		s.Sample(mkState(units.Time(i*10), i+1)) // 10 s apart: one point per 10 events
	}
	pts := s.Series()
	// t=0 starts the series; then t=100, 200, 300, 400.
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5: %+v", len(pts), pts)
	}
	for i, p := range pts {
		if p.Time != units.Time(i*100) {
			t.Errorf("point %d at t=%v, want %v", i, p.Time, i*100)
		}
	}
}

func TestSamplerFlushAppendsFinalState(t *testing.T) {
	s := NewSampler(NewRegistry(), DefaultCadence)
	s.Sample(mkState(0, 1))
	s.Sample(mkState(42, 2)) // within cadence: not sampled
	s.Flush()
	pts := s.Series()
	if len(pts) != 2 || pts[1].Time != 42 {
		t.Fatalf("flush did not append final state: %+v", pts)
	}
	s.Flush() // idempotent: same final time
	if got := len(s.Series()); got != 2 {
		t.Errorf("second flush added a point: %d", got)
	}
}

func TestSamplerGaugesTrackLatestState(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, DefaultCadence)
	st := sim.State{
		Time: 900, EventsProcessed: 3, QueueDepth: 5, RunningJobs: 2, BusyNodes: 7,
		LostWork: units.WorkFor(4, 100), PromiseSum: 1.8, PromisedJobs: 2,
	}
	s.Sample(st)
	checks := map[string]float64{
		"probqos_sim_time_seconds":           900,
		"probqos_sim_queue_depth":            5,
		"probqos_sim_running_jobs":           2,
		"probqos_sim_nodes_busy":             7,
		"probqos_sim_lost_work_node_seconds": 400,
		"probqos_sim_mean_promise":           0.9,
	}
	for name, want := range checks {
		if got := reg.Gauge(name, "", nil).Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.Counter("probqos_sim_events_total", "", nil).Value(); got != 1 {
		t.Errorf("events_total = %v, want 1", got)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s := NewSampler(NewRegistry(), DefaultCadence)
	s.Sample(mkState(0, 1))
	var sb strings.Builder
	if err := s.WriteSeriesCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 point:\n%s", len(lines), sb.String())
	}
	if lines[0] != "time_s,queue_depth,running_jobs,nodes_busy,lost_work_node_s,mean_promise,events" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,2,4,0,0.000000,1" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteSeriesCSVPropagatesWriteError(t *testing.T) {
	s := NewSampler(NewRegistry(), DefaultCadence)
	s.Sample(mkState(0, 1))
	wantErr := errors.New("disk full")
	if err := s.WriteSeriesCSV(errWriter{wantErr}); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped %v", err, wantErr)
	}
}

type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }

// TestInstrumentAgainstSimulation drives a real run with failures and
// checkpoints and cross-checks the sampled metrics against the Result.
func TestInstrumentAgainstSimulation(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 4, Exec: 9000},
		{ID: 2, Arrival: 100, Nodes: 4, Exec: 5000},
		{ID: 3, Arrival: 7000, Nodes: 8, Exec: 2000},
	}
	events := []failure.Event{
		{Time: 2000, Node: 0, Detectability: 0.9},
		{Time: 4000, Node: 7, Detectability: 0.9},
	}
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(&workload.Log{Name: "test", Jobs: jobs}, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 0 // failures invisible: they land and kill
	cfg.Policy = checkpoint.Periodic{}

	reg := NewRegistry()
	ins := NewInstrument(reg, units.Minute)
	cfg.Probe = ins
	cfg.Observer = ins

	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins.Flush()

	counter := func(name string, labels Labels) float64 {
		return reg.Counter(name, "", labels).Value()
	}
	if got := counter("probqos_sim_events_total", nil); got != float64(res.EventsProcessed) {
		t.Errorf("events_total = %v, want %d", got, res.EventsProcessed)
	}
	// Grants are counted at request time, CheckpointsDone at completion: a
	// failure can kill a job mid-checkpoint, so grants may exceed completions
	// by at most the number of job-killing failures.
	performed, skipped := res.TotalCheckpoints()
	granted := counter("probqos_sim_checkpoints_total", Labels{"decision": "granted"})
	if int(granted) < performed || int(granted) > performed+res.JobFailures() {
		t.Errorf("checkpoints granted = %v, want in [%d, %d]", granted, performed, performed+res.JobFailures())
	}
	if got := counter("probqos_sim_checkpoints_total", Labels{"decision": "skipped"}); got != float64(skipped) {
		t.Errorf("checkpoints skipped = %v, want %d", got, skipped)
	}
	kills := counter("probqos_sim_failures_total", Labels{"outcome": "job-killed"})
	idles := counter("probqos_sim_failures_total", Labels{"outcome": "idle-node"})
	if int(kills) != res.JobFailures() {
		t.Errorf("job-killed = %v, want %d", kills, res.JobFailures())
	}
	if int(kills+idles) != len(res.Failures) {
		t.Errorf("failures = %v, want %d", kills+idles, len(res.Failures))
	}
	if res.JobFailures() == 0 {
		t.Fatal("scenario produced no job-killing failure; instrumentation not exercised")
	}
	if got := counter("probqos_sim_decisions_total", Labels{"kind": "reserve"}); got != float64(len(jobs)) {
		t.Errorf("reserves = %v, want %d", got, len(jobs))
	}
	if got := counter("probqos_sim_decisions_total", Labels{"kind": "backfill"}); int(got) != res.JobFailures() {
		t.Errorf("backfills = %v, want %d", got, res.JobFailures())
	}
	if got := reg.Gauge("probqos_sim_lost_work_node_seconds", "", nil).Value(); got != res.TotalLostWork().NodeSeconds() {
		t.Errorf("lost work gauge = %v, want %v", got, res.TotalLostWork().NodeSeconds())
	}
	// The run drained: nothing queued, running, or busy.
	for _, name := range []string{"probqos_sim_queue_depth", "probqos_sim_running_jobs", "probqos_sim_nodes_busy"} {
		if got := reg.Gauge(name, "", nil).Value(); got != 0 {
			t.Errorf("%s = %v at end of run, want 0", name, got)
		}
	}
	// The journal was metered: every note kind that fired has a counter.
	if got := counter("probqos_sim_notes_total", Labels{"kind": "arrival"}); got != float64(len(jobs)) {
		t.Errorf("arrival notes = %v, want %d", got, len(jobs))
	}
	// The series covers the run and ends at the final event.
	pts := ins.Series()
	if len(pts) < 2 {
		t.Fatalf("series too short: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Fatalf("series time not monotone at %d: %+v", i, pts)
		}
	}
	if last := pts[len(pts)-1]; last.QueueDepth != 0 || last.RunningJobs != 0 {
		t.Errorf("final point not drained: %+v", last)
	}
	// Phase accounting saw every event.
	rep := ins.Report()
	if rep[0].Phase != "dispatch" || rep[0].Calls != uint64(res.EventsProcessed) {
		t.Errorf("dispatch stats = %+v, want %d calls", rep[0], res.EventsProcessed)
	}
}
