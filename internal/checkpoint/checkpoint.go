// Package checkpoint implements the cooperative checkpointing mechanism of
// §3.4: applications request a checkpoint every interval I, and a policy
// decides per request whether to perform it (paying overhead C) or skip it,
// using the predicted partition failure probability and the job's deadline.
package checkpoint

import (
	"fmt"

	"probqos/internal/units"
)

// Params are the system-wide checkpointing constants (Table 2 defaults:
// I = 3600 s, C = 720 s; checkpoint latency L ≈ C and recovery R = 0 are
// folded in as in the paper).
type Params struct {
	// Interval is the time I between the completion of one checkpoint
	// request and the next request.
	Interval units.Duration
	// Overhead is the cost C of performing one checkpoint.
	Overhead units.Duration
}

// DefaultParams returns the paper's Table 2 checkpoint constants.
func DefaultParams() Params {
	return Params{Interval: units.Hour, Overhead: 12 * units.Minute}
}

// Validate reports an error for non-positive parameters.
func (p Params) Validate() error {
	if p.Interval <= 0 {
		return fmt.Errorf("checkpoint: interval must be positive, got %v", p.Interval)
	}
	if p.Overhead <= 0 {
		return fmt.Errorf("checkpoint: overhead must be positive, got %v", p.Overhead)
	}
	return nil
}

// Request is the decision context the simulator assembles for one
// checkpoint request by one job.
type Request struct {
	// Now is the request instant b_i.
	Now units.Time
	// PFail is the predicted probability that the job's partition fails
	// before the next checkpoint would complete (f_{i+1}).
	PFail float64
	// Params are the system checkpoint constants.
	Params Params
	// AtRiskIntervals is d: the number of whole intervals of progress that
	// would be lost if the partition failed now, i.e. requests since the
	// last performed checkpoint, counting this one (d = 1 right after a
	// performed checkpoint).
	AtRiskIntervals int
	// Deadline is the job's negotiated deadline.
	Deadline units.Time
	// EstFinishIfPerform and EstFinishIfSkip are the job's estimated
	// completion times if this checkpoint is performed or skipped,
	// assuming no failures.
	EstFinishIfPerform units.Time
	EstFinishIfSkip    units.Time
}

// Policy decides whether to perform a requested checkpoint.
type Policy interface {
	// ShouldCheckpoint reports whether the request should be performed.
	ShouldCheckpoint(req Request) bool
	// Name identifies the policy in reports.
	Name() string
}

// Periodic performs every requested checkpoint: classic periodic
// checkpointing, the non-cooperative baseline.
type Periodic struct{}

// ShouldCheckpoint implements Policy.
func (Periodic) ShouldCheckpoint(Request) bool { return true }

// Name implements Policy.
func (Periodic) Name() string { return "periodic" }

// Never skips every checkpoint. With it, any failure rolls a job back to
// its start; it bounds the value of checkpointing from below.
type Never struct{}

// ShouldCheckpoint implements Policy.
func (Never) ShouldCheckpoint(Request) bool { return false }

// Name implements Policy.
func (Never) Name() string { return "never" }

// RiskBased is the paper's risk-based cooperative policy (Equation 1):
// perform the checkpoint iff the expected loss from skipping exceeds its
// cost, pf·d·I >= C.
type RiskBased struct{}

// ShouldCheckpoint implements Policy.
func (RiskBased) ShouldCheckpoint(req Request) bool {
	d := req.AtRiskIntervals
	if d < 1 {
		d = 1
	}
	return req.PFail*float64(d)*req.Params.Interval.Seconds() >= req.Params.Overhead.Seconds()
}

// Name implements Policy.
func (RiskBased) Name() string { return "risk-based" }

// DeadlineOverride wraps a policy with the paper's deadline rule: even if
// the base policy would perform the checkpoint, skip it when skipping might
// let the job meet a deadline that performing would miss.
type DeadlineOverride struct {
	// Base is the wrapped policy.
	Base Policy
}

// ShouldCheckpoint implements Policy.
func (p DeadlineOverride) ShouldCheckpoint(req Request) bool {
	if !p.Base.ShouldCheckpoint(req) {
		return false
	}
	if req.EstFinishIfPerform.After(req.Deadline) && !req.EstFinishIfSkip.After(req.Deadline) {
		return false
	}
	return true
}

// Name implements Policy.
func (p DeadlineOverride) Name() string { return p.Base.Name() + "+deadline-skip" }
