package checkpoint

import (
	"testing"
	"testing/quick"

	"probqos/internal/units"
)

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := DefaultParams()
	if p.Interval != 3600 {
		t.Errorf("I = %v, want 3600s", p.Interval)
	}
	if p.Overhead != 720 {
		t.Errorf("C = %v, want 720s", p.Overhead)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Params
		wantErr bool
	}{
		{name: "valid", give: Params{Interval: 100, Overhead: 10}},
		{name: "zero interval", give: Params{Overhead: 10}, wantErr: true},
		{name: "zero overhead", give: Params{Interval: 100}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPeriodicAndNever(t *testing.T) {
	req := Request{PFail: 0, Params: DefaultParams()}
	if !(Periodic{}).ShouldCheckpoint(req) {
		t.Error("periodic must always checkpoint")
	}
	if (Never{}).ShouldCheckpoint(req) {
		t.Error("never must never checkpoint")
	}
	if (Periodic{}).Name() != "periodic" || (Never{}).Name() != "never" {
		t.Error("policy names wrong")
	}
}

func TestRiskBasedEquationOne(t *testing.T) {
	params := DefaultParams() // I=3600, C=720: threshold pf*d*3600 >= 720
	tests := []struct {
		name string
		pf   float64
		d    int
		want bool
	}{
		{name: "no risk skips", pf: 0, d: 5, want: false},
		{name: "exactly at threshold performs", pf: 0.2, d: 1, want: true},
		{name: "just below threshold skips", pf: 0.199, d: 1, want: false},
		{name: "accumulated intervals tip the scale", pf: 0.05, d: 4, want: true},
		{name: "certain failure performs", pf: 1, d: 1, want: true},
		{name: "d clamps to 1", pf: 0.2, d: 0, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req := Request{PFail: tt.pf, Params: params, AtRiskIntervals: tt.d}
			if got := (RiskBased{}).ShouldCheckpoint(req); got != tt.want {
				t.Errorf("ShouldCheckpoint(pf=%v,d=%d) = %v, want %v", tt.pf, tt.d, got, tt.want)
			}
		})
	}
}

func TestDeadlineOverride(t *testing.T) {
	base := RiskBased{}
	p := DeadlineOverride{Base: base}
	params := DefaultParams()
	perform := Request{
		PFail: 1, Params: params, AtRiskIntervals: 1,
		Deadline: 10000, EstFinishIfPerform: 9000, EstFinishIfSkip: 8280,
	}
	if !p.ShouldCheckpoint(perform) {
		t.Error("deadline comfortably met: checkpoint should proceed")
	}
	// Performing would miss the deadline, skipping meets it: skip.
	squeeze := perform
	squeeze.EstFinishIfPerform = 10500
	if p.ShouldCheckpoint(squeeze) {
		t.Error("checkpoint should be skipped to save the deadline")
	}
	// Doomed either way: perform (protect against lost work).
	doomed := perform
	doomed.EstFinishIfPerform = 10500
	doomed.EstFinishIfSkip = 10200
	if !p.ShouldCheckpoint(doomed) {
		t.Error("deadline lost either way: checkpoint should proceed")
	}
	// Base policy says skip: still skip.
	lowRisk := perform
	lowRisk.PFail = 0
	if p.ShouldCheckpoint(lowRisk) {
		t.Error("override must not force checkpoints the base policy skips")
	}
	if p.Name() != "risk-based+deadline-skip" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestDeadlineBoundaryIsInclusive(t *testing.T) {
	p := DeadlineOverride{Base: Periodic{}}
	// Finishing exactly at the deadline counts as meeting it.
	req := Request{
		Params: DefaultParams(), Deadline: 1000,
		EstFinishIfPerform: 1000, EstFinishIfSkip: 280,
	}
	if !p.ShouldCheckpoint(req) {
		t.Error("finish == deadline should not trigger the skip")
	}
	req.EstFinishIfPerform = 1001
	req.EstFinishIfSkip = 1000
	if p.ShouldCheckpoint(req) {
		t.Error("skip-finish == deadline should trigger the skip")
	}
}

func TestRiskBasedMonotoneInRiskProperty(t *testing.T) {
	params := Params{Interval: units.Hour, Overhead: 12 * units.Minute}
	f := func(pfRaw uint16, d uint8) bool {
		pf := float64(pfRaw%1001) / 1000
		req := Request{PFail: pf, Params: params, AtRiskIntervals: int(d%20) + 1}
		decision := (RiskBased{}).ShouldCheckpoint(req)
		// If we checkpoint at pf, we must also checkpoint at any higher pf.
		higher := req
		higher.PFail = pf + (1-pf)/2
		if decision && pf < 1 && !(RiskBased{}).ShouldCheckpoint(higher) {
			return false
		}
		// And if we skip, any lower risk must also skip.
		lower := req
		lower.PFail = pf / 2
		if !decision && (RiskBased{}).ShouldCheckpoint(lower) && pf > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
