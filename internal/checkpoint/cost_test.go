package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEquationOneReduction(t *testing.T) {
	// The risk-based decision must agree with comparing the explicit
	// expected costs (using C_{i+1} ~= C_i, as in the paper's derivation).
	p := DefaultParams()
	f := func(pfRaw uint16, dRaw uint8) bool {
		pf := float64(pfRaw%1001) / 1000
		d := int(dRaw%12) + 1
		byCosts := ExpectedSkipCost(pf, d, p) >= ExpectedPerformCost(pf, p)
		byRule := (RiskBased{}).ShouldCheckpoint(Request{PFail: pf, Params: p, AtRiskIntervals: d})
		return byCosts == byRule
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedCostsAtEndpoints(t *testing.T) {
	p := DefaultParams()
	if got := ExpectedSkipCost(0, 3, p); got != 0 {
		t.Errorf("skip cost at pf=0 = %v, want 0 (no failure, no loss)", got)
	}
	if got := ExpectedPerformCost(0, p); got != p.Overhead.Seconds() {
		t.Errorf("perform cost at pf=0 = %v, want C", got)
	}
	// At pf=1, skipping with d=1 loses 2I+C; performing costs I+2C.
	if got, want := ExpectedSkipCost(1, 1, p), 2*3600.0+720; got != want {
		t.Errorf("skip cost at pf=1 = %v, want %v", got, want)
	}
	if got, want := ExpectedPerformCost(1, p), 3600.0+2*720; got != want {
		t.Errorf("perform cost at pf=1 = %v, want %v", got, want)
	}
}

func TestEquationOneThreshold(t *testing.T) {
	p := DefaultParams() // C/I = 0.2
	tests := []struct {
		d    int
		want float64
	}{
		{d: 1, want: 0.2},
		{d: 2, want: 0.1},
		{d: 4, want: 0.05},
		{d: 0, want: 0.2}, // clamps to 1
	}
	for _, tt := range tests {
		if got := EquationOneThreshold(tt.d, p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("threshold(d=%d) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestBreakEvenIntervals(t *testing.T) {
	p := DefaultParams()
	tests := []struct {
		pf   float64
		want int
	}{
		{pf: 0, want: -1},
		{pf: 0.2, want: 1}, // 0.2*1*3600 = 720 = C: exactly break-even
		{pf: 0.1, want: 2}, // needs two intervals at risk
		{pf: 0.011, want: 19},
		{pf: 1, want: 1},
	}
	for _, tt := range tests {
		if got := BreakEvenIntervals(tt.pf, p); got != tt.want {
			t.Errorf("BreakEvenIntervals(pf=%v) = %d, want %d", tt.pf, got, tt.want)
		}
	}
}

func TestBreakEvenConsistentWithRuleProperty(t *testing.T) {
	p := DefaultParams()
	f := func(pfRaw uint16) bool {
		pf := float64(pfRaw%999+1) / 1000
		d := BreakEvenIntervals(pf, p)
		rule := RiskBased{}
		atD := rule.ShouldCheckpoint(Request{PFail: pf, Params: p, AtRiskIntervals: d})
		belowD := d > 1 && rule.ShouldCheckpoint(Request{PFail: pf, Params: p, AtRiskIntervals: d - 1})
		return atD && !belowD
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
