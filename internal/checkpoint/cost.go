package checkpoint

// This file makes the §3.4 cost model behind Equation 1 explicit. For a
// request at time b_i with failure probability pf before the next
// checkpoint completes, with d accumulated at-risk intervals:
//
//	cost(skip)    = pf * ((d+1)I + C)   — roll back d+1 intervals, plus the
//	                                      next checkpoint's overhead paid again
//	cost(perform) = pf * (I + 2C) + (1-pf) * C
//
// Using C_{i+1} ≈ C_i = C, "perform iff cost(skip) >= cost(perform)"
// reduces to Equation 1: pf·d·I >= C. The functions below compute the two
// sides so that tests (and curious users) can verify the reduction rather
// than trust the comment.

// ExpectedSkipCost returns the expected wall-time cost of skipping the
// requested checkpoint, in seconds.
func ExpectedSkipCost(pf float64, d int, p Params) float64 {
	if d < 1 {
		d = 1
	}
	i := p.Interval.Seconds()
	c := p.Overhead.Seconds()
	return pf * (float64(d+1)*i + c)
}

// ExpectedPerformCost returns the expected wall-time cost of performing the
// requested checkpoint, in seconds.
func ExpectedPerformCost(pf float64, p Params) float64 {
	i := p.Interval.Seconds()
	c := p.Overhead.Seconds()
	return pf*(i+2*c) + (1-pf)*c
}

// EquationOneThreshold returns the smallest pf at which Equation 1 says a
// checkpoint with d at-risk intervals is worth performing: pf = C / (d·I).
func EquationOneThreshold(d int, p Params) float64 {
	if d < 1 {
		d = 1
	}
	return p.Overhead.Seconds() / (float64(d) * p.Interval.Seconds())
}

// BreakEvenIntervals returns the smallest d at which Equation 1 performs a
// checkpoint for the given pf, or -1 if no finite d suffices (pf = 0).
// It quantifies how the base-rate hazard turns the risk-based rule into an
// effective periodic policy with interval ~d·I.
func BreakEvenIntervals(pf float64, p Params) int {
	if pf <= 0 {
		return -1
	}
	d := int(p.Overhead.Seconds() / (pf * p.Interval.Seconds()))
	for float64(d)*pf*p.Interval.Seconds() < p.Overhead.Seconds() {
		d++
	}
	if d < 1 {
		d = 1
	}
	return d
}
