// Package service implements qosd: the paper's deadline-negotiation dialog
// (§3.5) as a long-running HTTP/JSON daemon. Where internal/sim replays the
// dialog against a recorded job log, qosd holds a live cluster state
// advancing on a virtual clock and negotiates with real callers: POST
// /v1/quote asks "when can this job finish?", POST /v1/accept turns one
// quoted (deadline, probability) pair into a reservation, GET /v1/jobs/{id}
// tracks the promise to completion or miss, and POST /v1/faults injects
// failures so robustness is drivable from tests.
//
// Concurrency model: every request is serialized through a single
// state-machine goroutine (request closures in, results out), so the
// scheduler core — which is single-threaded by design — stays data-race
// free by construction. The instrumentation registry (internal/obs) is the
// only state touched from handler goroutines, and it is concurrency-safe.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"probqos/internal/checkpoint"
	"probqos/internal/durability"
	"probqos/internal/failure"
	"probqos/internal/obs"
	"probqos/internal/trace"
	"probqos/internal/units"
)

// Config assembles one qosd instance.
type Config struct {
	// Nodes is the cluster size N.
	Nodes int
	// Failures is the failure trace the predictor forecasts from and the
	// engine replays; it may be empty (faults then come only from
	// injection). Required.
	Failures *failure.Trace
	// Accuracy is the event-prediction accuracy a in [0,1].
	Accuracy float64
	// Checkpoint, Downtime, Policy, DeadlineSkip, FaultAware and
	// BaseRateFloor configure the engine exactly as in sim.Config.
	Checkpoint    checkpoint.Params
	Downtime      units.Duration
	Policy        checkpoint.Policy
	DeadlineSkip  bool
	FaultAware    bool
	BaseRateFloor bool
	// SessionTTL bounds how long a quoted session stands on the virtual
	// clock before accepting it is refused.
	SessionTTL units.Duration
	// MaxQuotes caps the offers returned per quote request.
	MaxQuotes int
	// MaxOutstanding, when positive, is the admission-control limit on
	// jobs with open promises (queued or running): accepts beyond it get
	// 503 until load drains.
	MaxOutstanding int
	// Speedup maps wall time onto the virtual clock: one wall second
	// advances the clock by Speedup virtual seconds before each request.
	// Zero leaves the clock fully manual (POST /v1/advance).
	Speedup float64
	// Registry receives the per-endpoint counters and latency histograms
	// plus the cluster gauges. A nil Registry gets a private one.
	Registry *obs.Registry
	// Tracer, when non-nil, records request-scoped spans (HTTP handling,
	// book operations, WAL appends, snapshots, engine advances) retained
	// in ring buffers and exported on /debug/trace. Nil disables tracing
	// entirely — the nil-guarded span calls cost the request path nothing,
	// mirroring sim.Probe.
	Tracer *trace.Tracer
	// DataDir, when non-empty, makes the service crash-safe: every
	// state-mutating operation is appended to a write-ahead log under this
	// directory before it is applied, and a periodic snapshot compacts the
	// log. On startup the snapshot is restored and the log replayed. Empty
	// means in-memory only, exactly the pre-durability behaviour.
	DataDir string
	// FS overrides the filesystem the durability layer writes through; nil
	// means the real one. Tests inject fault-carrying filesystems here.
	FS durability.FS
	// SnapshotEvery caps how many WAL records may accumulate before a
	// snapshot regardless of the risk rule; 0 means the default (1024).
	SnapshotEvery int
	// CrashHazard is pf in the risk-based snapshot rule (the assumed
	// probability of crashing per unsnapshotted record); 0 means the
	// default (0.01).
	CrashHazard float64
}

// DefaultConfig returns a service at the paper's Table 2 operating point
// over the given failure trace, with a manual virtual clock.
func DefaultConfig(tr *failure.Trace) Config {
	nodes := 0
	if tr != nil {
		nodes = tr.Nodes()
	}
	return Config{
		Nodes:         nodes,
		Failures:      tr,
		Accuracy:      0.5,
		Checkpoint:    checkpoint.DefaultParams(),
		Downtime:      2 * units.Minute,
		Policy:        checkpoint.RiskBased{},
		DeadlineSkip:  true,
		FaultAware:    true,
		BaseRateFloor: true,
		SessionTTL:    units.Hour,
		MaxQuotes:     8,
	}
}

// errClosed is returned to requests that arrive after shutdown began.
var errClosed = errors.New("service: shutting down")

// Service is one running qosd instance.
type Service struct {
	cfg Config
	machine
	reg    *obs.Registry
	obsSrv *obs.Server

	// tracer records request spans (nil when tracing is disabled).
	// curScope is the scope of the request currently executing on the
	// state-machine goroutine, so loop-side operations (WAL appends,
	// snapshots, engine advances) attribute their spans to the right
	// trace. Touched only on the loop goroutine.
	tracer   *trace.Tracer
	curScope *trace.Scope

	// ledgerVersion is the last ledger version published to the gauges,
	// so the quote fast path skips recomputing unchanged conformance
	// stats. Touched only on the loop goroutine.
	ledgerVersion uint64
	ledgerSynced  bool

	// Durability (nil store when no DataDir is configured). digest
	// fingerprints the config for the snapshot; info records what startup
	// recovered.
	store  *durability.Store
	digest string
	info   RecoveryInfo

	reqs chan func()
	quit chan struct{}
	done chan struct{}
	stop atomic.Bool

	// The virtual clock: virtual instant clockBase corresponds to wall
	// instant clockMark; with Speedup > 0 the clock advances between
	// requests by elapsed wall time times Speedup. Touched only on the
	// state-machine goroutine.
	clockBase units.Time
	clockMark time.Time

	// broken records an engine invariant violation; once set, every
	// state-touching request fails with it (500) rather than corrupting
	// state further.
	broken error

	// degraded records a WAL write failure: mutations answer 503 until a
	// heal probe succeeds, reads and quotes keep working. degradedMsg
	// mirrors it atomically for /healthz, which runs off the loop.
	degraded    error
	degradedMsg atomic.Value

	srv *http.Server
	ln  net.Listener
}

// New validates cfg, builds the engine, and starts the state-machine
// goroutine. Callers must Close the service to stop it.
func New(cfg Config) (*Service, error) {
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = units.Hour
	}
	if cfg.MaxQuotes <= 0 {
		cfg.MaxQuotes = 8
	}
	if cfg.MaxQuotes > maxQuotesCap {
		cfg.MaxQuotes = maxQuotesCap
	}
	if cfg.Speedup < 0 {
		return nil, fmt.Errorf("service: speedup must be non-negative, got %v", cfg.Speedup)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		machine: m,
		reg:     cfg.Registry,
		tracer:  cfg.Tracer,
		reqs:    make(chan func()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.degradedMsg.Store("")
	if cfg.DataDir != "" {
		s.digest = configDigest(cfg)
		if err := s.recoverState(); err != nil {
			return nil, err
		}
	}
	s.clockBase = s.eng.Now()
	s.clockMark = time.Now()
	s.obsSrv = obs.NewServer(s.reg, nil, nil)
	s.obsSrv.SetOnScrape(func() { obs.CaptureRuntime(s.reg) })
	s.obsSrv.SetHealth(func() (string, map[string]any) {
		if msg, _ := s.degradedMsg.Load().(string); msg != "" {
			return "degraded", map[string]any{"wal_error": msg}
		}
		return "", nil
	})
	s.updateGauges()
	go s.loop()
	return s, nil
}

// Registry returns the instrumentation registry the service reports into.
func (s *Service) Registry() *obs.Registry { return s.reg }

// loop is the state-machine goroutine: it owns the engine, the session
// book, and the virtual clock, executing request closures one at a time.
// After quit it drains already-queued closures, then exits.
func (s *Service) loop() {
	defer close(s.done)
	for {
		select {
		case fn := <-s.reqs:
			fn()
		case <-s.quit:
			for {
				select {
				case fn := <-s.reqs:
					fn()
				default:
					return
				}
			}
		}
	}
}

// do runs fn on the state-machine goroutine and waits for it. It returns
// errClosed once shutdown has begun.
func (s *Service) do(fn func()) error {
	ran := make(chan struct{})
	wrapped := func() { fn(); close(ran) }
	select {
	case s.reqs <- wrapped:
	case <-s.quit:
		return errClosed
	}
	<-ran
	return nil
}

// tick advances the virtual clock for one request: in speedup mode the
// clock follows wall time; in manual mode it only moves via /v1/advance.
// Expired sessions are swept either way. While degraded it first probes
// whether the log healed; while it has not, the speedup clock freezes
// rather than advancing unjournaled. Runs on the loop goroutine.
func (s *Service) tick() error {
	if s.broken != nil {
		return s.broken
	}
	s.probeHeal()
	s.maybeCompact()
	if s.cfg.Speedup > 0 {
		elapsed := time.Since(s.clockMark).Seconds()
		target := s.clockBase.Add(units.Duration(elapsed * s.cfg.Speedup))
		if target > s.eng.Now() {
			if err := s.advanceTo(target); err != nil && !errors.Is(err, errDegraded) {
				return err
			}
		}
	}
	s.book.Sweep(s.eng.Now())
	return nil
}

// advanceTo journals and applies one clock advance, recording any engine
// invariant violation as a permanent fault. Non-forward targets are a
// no-op: pending events always sit at time >= now, so only a strictly
// forward advance can process anything — which keeps every state change
// journaled and snapshot replay exact. Runs on the loop goroutine.
func (s *Service) advanceTo(t units.Time) error {
	if t <= s.eng.Now() {
		return nil
	}
	if err := s.logOp(walOp{Kind: opAdvance, To: t}); err != nil {
		return err
	}
	sp := s.curScope.Start("engine.advance")
	sp.Annotate("to", t.String())
	err := s.applyAdvance(t)
	sp.End()
	if err != nil {
		s.broken = fmt.Errorf("service: engine failed: %w", err)
		return s.broken
	}
	s.clockBase = s.eng.Now()
	s.clockMark = time.Now()
	return nil
}

// doTraced runs fn on the state-machine goroutine with the request's
// trace scope installed as curScope, so loop-side spans (WAL appends,
// snapshots, engine advances) land in the request's trace. The scope
// handoff is safe without locks: do's channel operations order every
// access between the handler and the loop goroutine.
func (s *Service) doTraced(sc *trace.Scope, fn func()) error {
	return s.do(func() {
		s.curScope = sc
		fn()
		s.curScope = nil
	})
}

// Start binds addr (e.g. "127.0.0.1:0") and serves the API in a background
// goroutine, returning the bound address.
func (s *Service) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler: s.Handler(),
		// Slow or stalled clients must not pin handler goroutines (each of
		// which serializes through the state machine) forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the service down gracefully: the listener stops accepting,
// in-flight negotiations drain to completion, then the state machine
// exits. Safe to call more than once.
func (s *Service) Close() error {
	var err error
	if s.srv != nil {
		// Shutdown waits for in-flight handlers, each of which is waiting
		// on the state machine; the machine keeps serving until every one
		// has its answer.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = s.srv.Shutdown(ctx)
		cancel()
		s.srv = nil
	}
	if s.stop.CompareAndSwap(false, true) {
		close(s.quit)
	}
	<-s.done
	// The loop has exited, so its state is safely ours to read. A healthy
	// durable service leaves a clean-shutdown snapshot: drain marker, then
	// a snapshot with the WAL truncated, so the next boot replays nothing.
	if s.store != nil {
		if s.broken == nil && s.degraded == nil {
			if lerr := s.logOp(walOp{Kind: opDrain}); lerr == nil {
				s.compact(true)
			}
		}
		s.store.Close()
		s.store = nil
	}
	return err
}

// counters and gauges ------------------------------------------------------

// latencyBounds bucket request latency from 100µs to ~1.6s.
var latencyBounds = []float64{0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384}

// observeRequest records one finished request in the registry.
func (s *Service) observeRequest(endpoint string, code int, elapsed time.Duration) {
	s.reg.Counter("qosd_requests_total", "API requests by endpoint and status code",
		obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)}).Inc()
	s.reg.Histogram("qosd_request_seconds", "API request latency by endpoint",
		latencyBounds, obs.Labels{"endpoint": endpoint}).Observe(elapsed.Seconds())
}

// countAccept tallies one accept outcome: accepted, conflict (the quoted
// slot was claimed first), expired (session lapsed or unknown), rejected
// (admission control), or stale (quote start already in the past).
func (s *Service) countAccept(outcome string) {
	s.reg.Counter("qosd_accepts_total", "accept outcomes by kind",
		obs.Labels{"outcome": outcome}).Inc()
}

// updateGauges refreshes the cluster-state gauges from the engine. Runs on
// the loop goroutine after every state-touching request.
func (s *Service) updateGauges() {
	st := s.eng.Stats()
	s.reg.Gauge("qosd_virtual_time_seconds", "virtual clock, seconds since trace start", nil).
		Set(float64(st.Now))
	s.reg.Gauge("qosd_busy_nodes", "nodes occupied by running jobs", nil).Set(float64(st.BusyNodes))
	s.reg.Gauge("qosd_open_sessions", "negotiation sessions awaiting accept", nil).
		Set(float64(s.book.Len()))
	s.reg.Gauge("qosd_sessions_expired", "sessions that lapsed unaccepted", nil).
		Set(float64(s.book.Expired()))
	for state, n := range map[string]int{
		"queued":    st.Queued,
		"running":   st.Running,
		"completed": st.Completed,
		"missed":    st.Missed,
	} {
		s.reg.Gauge("qosd_jobs", "admitted jobs by lifecycle state",
			obs.Labels{"state": state}).Set(float64(n))
	}
	s.updateConformanceGauges()
	if s.tracer.Enabled() {
		s.reg.Gauge("qosd_trace_spans_dropped_total",
			"spans overwritten in the trace ring before export", nil).
			Set(float64(s.tracer.Dropped()))
	}
}

// updateConformanceGauges publishes the promise ledger's streaming stats,
// skipping the recomputation when nothing settled or was admitted since
// the last publish (the common case on the quote fast path).
func (s *Service) updateConformanceGauges() {
	v := s.ledger.Version()
	if s.ledgerSynced && v == s.ledgerVersion {
		return
	}
	s.ledgerVersion = v
	s.ledgerSynced = true
	cs := s.ledger.Stats()
	for outcome, n := range map[string]int{
		"pending": cs.Open,
		"kept":    cs.Kept,
		"broken":  cs.Broken,
	} {
		s.reg.Gauge("qosd_promises", "admitted promises by outcome",
			obs.Labels{"outcome": outcome}).Set(float64(n))
	}
	s.reg.Gauge("qosd_promise_keeping_rate",
		"fraction of settled promises that were kept", nil).Set(cs.KeepingRate)
	s.reg.Gauge("qosd_promise_brier_score",
		"mean squared error of quoted probabilities against outcomes", nil).Set(cs.Brier)
	for _, b := range cs.Bins {
		if b.Settled == 0 {
			continue
		}
		bin := fmt.Sprintf("%.1f", b.Lo)
		s.reg.Gauge("qosd_conformance_bin_settled",
			"settled promises per reliability-diagram bin (labelled by bin lower bound)",
			obs.Labels{"lo": bin}).Set(float64(b.Settled))
		s.reg.Gauge("qosd_conformance_bin_observed",
			"kept fraction per reliability-diagram bin (labelled by bin lower bound)",
			obs.Labels{"lo": bin}).Set(b.Observed)
		s.reg.Gauge("qosd_conformance_bin_promised",
			"mean quoted probability per reliability-diagram bin (labelled by bin lower bound)",
			obs.Labels{"lo": bin}).Set(b.PromisedMean)
	}
}
