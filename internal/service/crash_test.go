package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probqos/internal/durability"
	"probqos/internal/failure"
	"probqos/internal/sim"
)

// durableConfig builds a config over an 8-node empty trace writing to dir,
// with compaction effectively disabled so tests control the WAL contents.
func durableConfig(t *testing.T, dir string) Config {
	t.Helper()
	tr, err := failure.NewTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.DataDir = dir
	cfg.SnapshotEvery = 1 << 20
	cfg.CrashHazard = 1e-12
	return cfg
}

// crash simulates a kill -9 for a service that never called Start: the
// state machine stops without the drain record or shutdown snapshot, so
// the data dir is left exactly as a power loss would.
func crash(s *Service) {
	if s.stop.CompareAndSwap(false, true) {
		close(s.quit)
	}
	<-s.done
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
}

// fingerprint serializes everything a recovered machine must reproduce:
// the engine's journal and clock, per-job status, aggregate stats, the
// session book, the ID counter, and the promise ledger.
func fingerprint(t *testing.T, m *machine) string {
	t.Helper()
	jobs := map[int]sim.JobStatus{}
	for _, id := range m.eng.JobIDs() {
		js, _ := m.eng.Job(id)
		jobs[id] = js
	}
	data, err := json.Marshal(map[string]any{
		"engine":  m.eng.ExportState(),
		"stats":   m.eng.Stats(),
		"jobs":    jobs,
		"book":    m.book.Export(),
		"next_id": m.nextJobID,
		"ledger":  m.ledger.Export(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// driveDialog runs a fixed negotiation script through the handler stack:
// three admitted jobs, one rejected offer, an injected fault, and clock
// advances. Deterministic, so two services driven by it stay identical.
func driveDialog(t *testing.T, h http.Handler) {
	t.Helper()
	step := func(wantCode int, method, path string, body, out any) {
		t.Helper()
		if code := call(t, h, method, path, body, out); code != wantCode {
			t.Fatalf("%s %s: code %d, want %d", method, path, code, wantCode)
		}
	}
	quoteAccept := func(nodes, exec int) {
		t.Helper()
		var q quoteResponse
		step(http.StatusOK, "POST", "/v1/quote",
			map[string]any{"nodes": nodes, "exec_seconds": exec}, &q)
		if q.SessionID == "" || len(q.Quotes) == 0 {
			t.Fatalf("no offers for %d nodes", nodes)
		}
		step(http.StatusOK, "POST", "/v1/accept",
			map[string]any{"session_id": q.SessionID, "offer": 1}, nil)
	}

	quoteAccept(2, 3600)
	quoteAccept(4, 1800)
	step(http.StatusOK, "POST", "/v1/advance", map[string]any{"by_seconds": 600}, nil)

	// A quote left to expire, and an accept of a bad offer rank.
	var q quoteResponse
	step(http.StatusOK, "POST", "/v1/quote",
		map[string]any{"nodes": 1, "exec_seconds": 60}, &q)
	step(http.StatusBadRequest, "POST", "/v1/accept",
		map[string]any{"session_id": q.SessionID, "offer": 99}, nil)

	step(http.StatusAccepted, "POST", "/v1/faults",
		map[string]any{"node": 3, "after_seconds": 120}, nil)
	step(http.StatusOK, "POST", "/v1/advance", map[string]any{"by_seconds": 1800}, nil)
	quoteAccept(3, 900)
	step(http.StatusOK, "POST", "/v1/advance", map[string]any{"by_seconds": 7200}, nil)
}

// frameBoundaries returns the byte offset after each complete WAL frame.
func frameBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	var bounds []int
	off := 0
	for off+8 <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off:]))
		off += 8 + length
		if off > len(data) {
			t.Fatalf("torn frame in a crashed-but-unfailed WAL at %d", off)
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestKillAtEveryRecordBoundary is the crash-recovery sweep: for a WAL of
// n records left behind by a killed service, recovery from every prefix of
// k complete records (and from torn tails cut mid-record) must reproduce
// exactly the state of a reference machine that applied the first k
// records.
func TestKillAtEveryRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveDialog(t, s.Handler())
	crash(s)

	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := durability.DecodeRecords(data)
	if int(valid) != len(data) || len(recs) < 10 {
		t.Fatalf("expected a fully valid WAL of >= 10 records, got %d records, %d/%d bytes valid",
			len(recs), valid, len(data))
	}
	bounds := frameBoundaries(t, data)

	// Cut points: every record boundary (0 = empty log), plus torn tails
	// at random offsets strictly inside a frame.
	type cut struct {
		bytes   int // prefix length written to the new data dir
		records int // complete records that prefix holds
	}
	cuts := []cut{{0, 0}}
	for i, b := range bounds {
		cuts = append(cuts, cut{b, i + 1})
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		k := rng.Intn(len(bounds))
		lo := 0
		if k > 0 {
			lo = bounds[k-1]
		}
		if bounds[k]-lo < 2 {
			continue
		}
		torn := lo + 1 + rng.Intn(bounds[k]-lo-1)
		cuts = append(cuts, cut{torn, k})
	}

	for _, c := range cuts {
		t.Run(fmt.Sprintf("bytes=%d records=%d", c.bytes, c.records), func(t *testing.T) {
			// Reference: a fresh machine applying the surviving records.
			ref, err := newMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs[:c.records] {
				var op walOp
				if err := json.Unmarshal(rec.Payload, &op); err != nil {
					t.Fatal(err)
				}
				if err := ref.apply(op); err != nil {
					t.Fatal(err)
				}
			}

			// Recovered: a service booting from the truncated WAL.
			cutDir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cutDir, "wal.log"), data[:c.bytes], 0o644); err != nil {
				t.Fatal(err)
			}
			cutCfg := durableConfig(t, cutDir)
			rs, err := New(cutCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rs.Close()
			info := rs.RecoveryInfo()
			if !info.Enabled || info.Clean || info.RecordsReplayed != c.records {
				t.Errorf("recovery info %+v, want crash recovery of %d records", info, c.records)
			}
			if got, want := fingerprint(t, &rs.machine), fingerprint(t, &ref); got != want {
				t.Errorf("recovered state diverges from reference:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestCrashMidWorkloadRecovers kills the service halfway through a
// workload, restarts it from the data dir, finishes the workload, and
// checks the outcome matches an uninterrupted in-memory run.
func TestCrashMidWorkloadRecovers(t *testing.T) {
	firstHalf := func(t *testing.T, h http.Handler) string {
		t.Helper()
		var q quoteResponse
		if code := call(t, h, "POST", "/v1/quote",
			map[string]any{"nodes": 4, "exec_seconds": 3600}, &q); code != http.StatusOK {
			t.Fatalf("quote: %d", code)
		}
		if code := call(t, h, "POST", "/v1/accept",
			map[string]any{"session_id": q.SessionID, "offer": 1}, nil); code != http.StatusOK {
			t.Fatalf("accept: %d", code)
		}
		if code := call(t, h, "POST", "/v1/advance",
			map[string]any{"by_seconds": 300}, nil); code != http.StatusOK {
			t.Fatalf("advance: %d", code)
		}
		// An open session that must survive the crash.
		var open quoteResponse
		if code := call(t, h, "POST", "/v1/quote",
			map[string]any{"nodes": 2, "exec_seconds": 600}, &open); code != http.StatusOK {
			t.Fatalf("quote: %d", code)
		}
		return open.SessionID
	}
	secondHalf := func(t *testing.T, h http.Handler, session string) {
		t.Helper()
		if code := call(t, h, "POST", "/v1/accept",
			map[string]any{"session_id": session, "offer": 1}, nil); code != http.StatusOK {
			t.Fatalf("accept recovered session: %d", code)
		}
		if code := call(t, h, "POST", "/v1/advance",
			map[string]any{"by_seconds": 86400}, nil); code != http.StatusOK {
			t.Fatalf("advance: %d", code)
		}
	}

	// Interrupted run.
	dir := t.TempDir()
	s, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	session := firstHalf(t, s.Handler())
	crash(s)
	s2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info := s2.RecoveryInfo(); info.Clean || info.RecordsReplayed == 0 {
		t.Fatalf("expected crash recovery with records, got %+v", info)
	}
	secondHalf(t, s2.Handler(), session)

	// Uninterrupted reference, in-memory.
	tr, err := failure.NewTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(DefaultConfig(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refSession := firstHalf(t, ref.Handler())
	secondHalf(t, ref.Handler(), refSession)

	if got, want := fingerprint(t, &s2.machine), fingerprint(t, &ref.machine); got != want {
		t.Errorf("recovered run diverges from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestCleanRestartReplaysNothing checks the graceful path: Close leaves a
// shutdown snapshot and an empty WAL, and the next boot reports it clean.
func TestCleanRestartReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	driveDialog(t, s.Handler())
	want := fingerprint(t, &s.machine)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	info := s2.RecoveryInfo()
	if !info.Clean || !info.SnapshotLoaded || info.RecordsReplayed != 0 {
		t.Fatalf("clean restart info %+v", info)
	}
	if got := fingerprint(t, &s2.machine); got != want {
		t.Errorf("clean restart diverges:\n got %s\nwant %s", got, want)
	}
}

// TestRecoveryRefusesForeignConfig checks the config-digest guard: a data
// dir written under one cluster must not silently replay under another.
func TestRecoveryRefusesForeignConfig(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	driveDialog(t, s.Handler())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := durableConfig(t, dir)
	cfg.Accuracy = 0.9 // different predictor: replay would diverge
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "refusing to replay") {
		t.Fatalf("foreign config accepted: %v", err)
	}
}

// TestDegradedModeServesReadsAndHeals forces WAL append failures and
// checks the contract: mutations 503, quotes and reads still answered,
// /healthz and the gauge report it, and service resumes once the disk
// heals — with the data dir still consistent across a restart.
func TestDegradedModeServesReadsAndHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := durability.NewFaultFS(durability.OSFS{})
	cfg := durableConfig(t, dir)
	cfg.FS = ffs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Healthy: one admitted job.
	var q quoteResponse
	if code := call(t, h, "POST", "/v1/quote",
		map[string]any{"nodes": 2, "exec_seconds": 600}, &q); code != http.StatusOK {
		t.Fatalf("quote: %d", code)
	}
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": q.SessionID, "offer": 1}, nil); code != http.StatusOK {
		t.Fatalf("accept: %d", code)
	}

	// Break the disk. The first mutation to hit the WAL flips to degraded.
	ffs.FailSync(true)
	if code := call(t, h, "POST", "/v1/advance",
		map[string]any{"by_seconds": 60}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("advance on broken disk: code %d, want 503", code)
	}

	// Degraded: quotes and reads work, admits are refused.
	var dq quoteResponse
	if code := call(t, h, "POST", "/v1/quote",
		map[string]any{"nodes": 1, "exec_seconds": 60}, &dq); code != http.StatusOK {
		t.Fatalf("quote while degraded: %d", code)
	}
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": dq.SessionID, "offer": 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("accept while degraded: code %d, want 503", code)
	}
	if code := call(t, h, "GET", "/v1/jobs/1", nil, nil); code != http.StatusOK {
		t.Fatalf("read while degraded: %d", code)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "degraded" || health["wal_error"] == "" {
		t.Errorf("healthz while degraded: %v", health)
	}
	if m := scrapeMetrics(t, srv.URL); m[`qosd_degraded`] != 1 {
		t.Errorf("qosd_degraded = %v, want 1", m[`qosd_degraded`])
	}

	// Heal the disk: the next request's probe restores service, and the
	// degraded-window session (memory-only) is now acceptable.
	ffs.Clear()
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": dq.SessionID, "offer": 1}, nil); code != http.StatusOK {
		t.Fatalf("accept after heal: code %d, want 200", code)
	}
	if m := scrapeMetrics(t, srv.URL); m[`qosd_degraded`] != 0 {
		t.Errorf("qosd_degraded after heal = %v, want 0", m[`qosd_degraded`])
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz after heal: %v", health)
	}

	// The dir is consistent: a restart sees both admitted jobs.
	want := fingerprint(t, &s.machine)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := fingerprint(t, &s2.machine); got != want {
		t.Errorf("post-heal restart diverges:\n got %s\nwant %s", got, want)
	}
	if st := s2.eng.Stats(); st.Queued+st.Running+st.Completed != 2 {
		t.Errorf("expected 2 live jobs after restart, got %+v", st)
	}
}

// TestPromiseLedgerSurvivesCrash pins the ledger's durability story: the
// ledger is derived state, rebuilt record by record during WAL replay, so
// a kill -9 loses no admitted promise and no settled outcome — and
// settlement after recovery continues exactly where the live run left off.
func TestPromiseLedgerSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	driveDialog(t, s.Handler())
	before := s.ledger.Export()
	if len(before.Promises) != 3 {
		t.Fatalf("dialog admitted %d promises, want 3", len(before.Promises))
	}
	crash(s)

	s2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after := s2.ledger.Export()
	b1, _ := json.Marshal(before)
	b2, _ := json.Marshal(after)
	if string(b1) != string(b2) {
		t.Errorf("recovered ledger diverges:\n got %s\nwant %s", b2, b1)
	}

	// Settlement resumes on the recovered ledger: a week of virtual time
	// drives every open promise to a terminal outcome.
	if code := call(t, s2.Handler(), "POST", "/v1/advance",
		map[string]any{"by_seconds": 7 * 86400}, nil); code != http.StatusOK {
		t.Fatalf("advance after recovery: %d", code)
	}
	st := s2.ledger.Stats()
	if st.Open != 0 || st.Settled != 3 {
		t.Fatalf("after a week: %+v, want all 3 promises settled", st)
	}
	if st.Kept+st.Broken != st.Settled {
		t.Errorf("kept %d + broken %d != settled %d", st.Kept, st.Broken, st.Settled)
	}
	for _, p := range s2.ledger.Entries(0) {
		if p.Outcome == "pending" {
			t.Errorf("job %d still pending after a week", p.JobID)
		}
	}
}

// TestPromiseLedgerSurvivesSnapshot pins the other recovery path: a clean
// shutdown folds the ledger into the snapshot, and the next boot imports
// it without replaying a single record.
func TestPromiseLedgerSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	driveDialog(t, s.Handler())
	before := s.ledger.Export()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info := s2.RecoveryInfo(); !info.Clean || info.RecordsReplayed != 0 {
		t.Fatalf("expected clean snapshot-only restart, got %+v", info)
	}
	b1, _ := json.Marshal(before)
	b2, _ := json.Marshal(s2.ledger.Export())
	if string(b1) != string(b2) {
		t.Errorf("snapshot-restored ledger diverges:\n got %s\nwant %s", b2, b1)
	}
}

// TestDegradedQuoteSessionIsMemoryOnly pins the documented relaxation: a
// session quoted while degraded is not journaled, so it does not survive
// a crash — the client renegotiates, no promise is broken.
func TestDegradedQuoteSessionIsMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := durability.NewFaultFS(durability.OSFS{})
	cfg := durableConfig(t, dir)
	cfg.FS = ffs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	ffs.FailSync(true)
	call(t, h, "POST", "/v1/advance", map[string]any{"by_seconds": 1}, nil) // trip degraded
	var q quoteResponse
	if code := call(t, h, "POST", "/v1/quote",
		map[string]any{"nodes": 1, "exec_seconds": 60}, &q); code != http.StatusOK {
		t.Fatalf("quote while degraded: %d", code)
	}
	ffs.Clear()
	crash(s)

	s2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if code := call(t, s2.Handler(), "POST", "/v1/accept",
		map[string]any{"session_id": q.SessionID, "offer": 1}, nil); code != http.StatusNotFound {
		t.Fatalf("memory-only session should 404 after crash, got %d", code)
	}
}
