package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/sim"
)

// TestEndToEndConcurrentNegotiation is the qosd acceptance test: a real
// loopback listener, many concurrent quote→accept→status dialogs racing a
// chaos goroutine that injects faults and advances the virtual clock.
// Every accepted promise must reach a terminal state, and the /metrics
// totals must reconcile with what the clients observed. Run under -race
// this also proves the state-machine serialization.
func TestEndToEndConcurrentNegotiation(t *testing.T) {
	const (
		sessions = 48 // acceptance floor is 32
		nodes    = 64
	)
	tr, err := failure.NewTrace(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	addr, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	post := func(path string, body any, out any) (int, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	// Chaos: future faults land on scattered nodes and the clock creeps
	// forward under the negotiators' feet, forcing stale-quote conflicts
	// that the clients must renegotiate through.
	var (
		faultsInjected atomic.Int64
		chaosDone      = make(chan struct{})
	)
	go func() {
		defer close(chaosDone)
		for i := 0; i < 20; i++ {
			code, err := post("/v1/faults",
				map[string]any{"node": (i * 7) % nodes, "after_seconds": 1800 + 600*i}, nil)
			if err == nil && code == http.StatusAccepted {
				faultsInjected.Add(1)
			}
			post("/v1/advance", map[string]any{"by_seconds": 30}, nil)
		}
	}()

	type promise struct {
		jobID    int
		deadline int64
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		promises   []promise
		accepted   atomic.Int64
		quotesSeen atomic.Int64
		conflicts  atomic.Int64
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			size := 1 + i%8
			exec := 600 + 300*(i%10)
			for attempt := 0; attempt < 200; attempt++ {
				var quote struct {
					SessionID string `json:"session_id"`
					Quotes    []struct {
						Deadline int64   `json:"deadline"`
						Success  float64 `json:"success"`
					} `json:"quotes"`
				}
				code, err := post("/v1/quote",
					map[string]any{"nodes": size, "exec_seconds": exec}, &quote)
				if err != nil {
					t.Errorf("session %d: quote: %v", i, err)
					return
				}
				if code != http.StatusOK || quote.SessionID == "" {
					continue
				}
				quotesSeen.Add(int64(len(quote.Quotes)))
				// Users with higher indices are pickier: they take a later,
				// safer offer when one is on the table (the §5 dialog's U).
				offer := 1 + i%len(quote.Quotes)
				var acc struct {
					JobID    int   `json:"job_id"`
					Deadline int64 `json:"deadline"`
				}
				code, err = post("/v1/accept",
					map[string]any{"session_id": quote.SessionID, "offer": offer}, &acc)
				if err != nil {
					t.Errorf("session %d: accept: %v", i, err)
					return
				}
				switch code {
				case http.StatusOK:
					accepted.Add(1)
					mu.Lock()
					promises = append(promises, promise{acc.JobID, acc.Deadline})
					mu.Unlock()
					return
				case http.StatusConflict, http.StatusNotFound:
					// The clock moved past the offer or the session lapsed:
					// renegotiate, as the protocol prescribes.
					conflicts.Add(1)
					continue
				default:
					t.Errorf("session %d: accept returned %d", i, code)
					return
				}
			}
			t.Errorf("session %d: no acceptance in 200 attempts", i)
		}(i)
	}
	wg.Wait()
	<-chaosDone
	if t.Failed() {
		return
	}
	if len(promises) != sessions {
		t.Fatalf("%d promises from %d sessions", len(promises), sessions)
	}

	// Drive the clock until every promise resolves; each accepted job must
	// land on completed or missed, never limbo.
	var horizon int64
	for _, p := range promises {
		if p.deadline > horizon {
			horizon = p.deadline
		}
	}
	if code, err := post("/v1/advance", map[string]any{"to": horizon + 7200}, nil); err != nil || code != http.StatusOK {
		t.Fatalf("final advance: code %d, err %v", code, err)
	}

	completed, missed := 0, 0
	for _, p := range promises {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, p.jobID))
		if err != nil {
			t.Fatal(err)
		}
		var st sim.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case sim.JobCompleted:
			completed++
		case sim.JobMissed:
			missed++
		default:
			t.Errorf("job %d stuck in %v past the horizon", p.jobID, st.State)
		}
	}
	if completed+missed != sessions {
		t.Errorf("%d completed + %d missed != %d accepted", completed, missed, sessions)
	}
	if completed == 0 {
		t.Error("no job completed; the cluster cannot be that broken")
	}

	// The server's own accounting must agree with the clients'.
	var state stateResponse
	resp, err := http.Get(base + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if state.Jobs != sessions || state.Completed != completed || state.Missed != missed {
		t.Errorf("/v1/state says jobs=%d completed=%d missed=%d; clients saw %d/%d/%d",
			state.Jobs, state.Completed, state.Missed, sessions, completed, missed)
	}

	// And /metrics must reconcile with both.
	metrics := scrapeMetrics(t, base)
	checks := []struct {
		name string
		want float64
	}{
		{`qosd_accepts_total{outcome="accepted"}`, float64(accepted.Load())},
		{`qosd_accepts_total{outcome="conflict"}`, float64(conflicts.Load())},
		{`qosd_faults_injected_total`, float64(faultsInjected.Load())},
		{`qosd_jobs{state="completed"}`, float64(completed)},
		{`qosd_jobs{state="missed"}`, float64(missed)},
		{`qosd_quotes_issued_total`, float64(quotesSeen.Load())},
	}
	for _, c := range checks {
		got, ok := metrics[c.name]
		if !ok || got != c.want {
			t.Errorf("metric %s = %v (present %v), want %v", c.name, got, ok, c.want)
		}
	}
	// Request totals: every quote/accept/fault/advance/status call above
	// went through the instrumented mux exactly once.
	var requests float64
	for name, v := range metrics {
		if strings.HasPrefix(name, "qosd_requests_total{") {
			requests += v
		}
	}
	if sessionsOpened := metrics["qosd_sessions_opened_total"]; requests < sessionsOpened+float64(accepted.Load()) {
		t.Errorf("request total %v below sessions %v + accepts %v", requests, sessionsOpened, accepted.Load())
	}
}

// scrapeMetrics fetches /metrics and returns sample values keyed by
// "name{labels}" exactly as exposed.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[idx+1:], "%g", &v); err == nil {
			out[line[:idx]] = v
		}
	}
	return out
}
