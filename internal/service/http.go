package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"probqos/internal/sim"
	"probqos/internal/trace"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// traceHeader carries the request's trace ID: echoed back on every
// response, and accepted inbound so qosctl (and retried attempts of one
// logical call) correlate with server-side spans.
const traceHeader = "X-Qos-Trace"

// Wire limits. Request bodies are tiny JSON objects; anything bigger is a
// client bug or abuse.
const (
	maxBodyBytes = 1 << 16
	maxQuotesCap = 32
)

// quoteRequest asks for offers: "when could a job of this shape finish,
// and with what probability?" (§3.5, the user's opening move).
type quoteRequest struct {
	// Nodes is the job size n_j.
	Nodes int `json:"nodes"`
	// ExecSeconds is the checkpoint-free execution time e_j.
	ExecSeconds int64 `json:"exec_seconds"`
	// MaxQuotes optionally caps the offers returned (default and ceiling
	// come from the service config).
	MaxQuotes int `json:"max_quotes,omitempty"`
}

// validate applies the wire-level sanity checks shared by the handler and
// the fuzz target.
func (q quoteRequest) validate() error {
	switch {
	case q.Nodes <= 0:
		return fmt.Errorf("nodes must be positive, got %d", q.Nodes)
	case q.ExecSeconds <= 0:
		return fmt.Errorf("exec_seconds must be positive, got %d", q.ExecSeconds)
	case q.MaxQuotes < 0:
		return fmt.Errorf("max_quotes must be non-negative, got %d", q.MaxQuotes)
	}
	return nil
}

// decodeQuoteRequest strictly parses a quote request body: unknown fields,
// trailing data, and out-of-range values are all errors. It is a standalone
// function so the fuzz target can drive it directly.
func decodeQuoteRequest(data []byte) (quoteRequest, error) {
	var q quoteRequest
	if err := decodeStrict(data, &q); err != nil {
		return quoteRequest{}, err
	}
	if err := q.validate(); err != nil {
		return quoteRequest{}, err
	}
	return q, nil
}

// decodeStrict unmarshals one JSON value into v, rejecting unknown fields
// and trailing content.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// wireQuote is one offer as it appears on the wire. The candidate node set
// stays server-side: it is scheduler internals, and echoing it would invite
// clients to depend on placement.
type wireQuote struct {
	// Offer is the 1-based rank to pass back in an accept request.
	Offer    int        `json:"offer"`
	Start    units.Time `json:"start"`
	Deadline units.Time `json:"deadline"`
	Success  float64    `json:"success"`
}

type quoteResponse struct {
	SessionID string      `json:"session_id,omitempty"`
	Now       units.Time  `json:"now"`
	Expires   units.Time  `json:"expires,omitempty"`
	Quotes    []wireQuote `json:"quotes"`
}

type acceptRequest struct {
	SessionID string `json:"session_id"`
	// Offer is the 1-based rank of the accepted quote.
	Offer int `json:"offer"`
}

type acceptResponse struct {
	JobID    int        `json:"job_id"`
	Start    units.Time `json:"start"`
	Deadline units.Time `json:"deadline"`
	Promised float64    `json:"promised"`
}

type faultRequest struct {
	Node int `json:"node"`
	// At schedules the failure at an absolute virtual instant; AfterSeconds
	// offsets from now. Zero values mean "fail now".
	At           units.Time `json:"at,omitempty"`
	AfterSeconds int64      `json:"after_seconds,omitempty"`
}

type advanceRequest struct {
	// To is an absolute virtual instant; BySeconds offsets from now.
	// Exactly one must be set.
	To        units.Time `json:"to,omitempty"`
	BySeconds int64      `json:"by_seconds,omitempty"`
}

type stateResponse struct {
	sim.Stats
	OpenSessions    int `json:"open_sessions"`
	ExpiredSessions int `json:"expired_sessions"`
}

// conformanceResponse is the live promise ledger: streaming stats plus a
// tail of individual ledger rows.
type conformanceResponse struct {
	trace.ConformanceStats
	Entries []trace.Promise `json:"entries,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the full qosd API mux, with the obs endpoints
// (/metrics, /healthz, /snapshot) mounted alongside /v1, the live promise
// ledger on /qos/conformance, and the span-trace export on /debug/trace.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.obsSrv.Handler())
	mux.HandleFunc("POST /v1/quote", s.instrumented("quote", s.handleQuote))
	mux.HandleFunc("POST /v1/accept", s.instrumented("accept", s.handleAccept))
	mux.HandleFunc("GET /v1/jobs", s.instrumented("jobs", s.handleJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrumented("job", s.handleJob))
	mux.HandleFunc("POST /v1/faults", s.instrumented("faults", s.handleFault))
	mux.HandleFunc("POST /v1/advance", s.instrumented("advance", s.handleAdvance))
	mux.HandleFunc("GET /v1/state", s.instrumented("state", s.handleState))
	mux.HandleFunc("GET /qos/conformance", s.instrumented("conformance", s.handleConformance))
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	return mux
}

// apiHandler produces a status code and a response body (or an error).
// The scope is the request's trace collector — nil when tracing is
// disabled, and every trace.Scope method is nil-safe, so handlers use it
// unconditionally.
type apiHandler func(r *http.Request, sc *trace.Scope) (int, any, error)

// instrumented adapts an apiHandler to http.HandlerFunc: it assigns (or
// propagates) the request's trace ID, records the per-endpoint counter
// and latency histogram, echoes span timings in a Server-Timing header,
// and renders JSON. When tracing is disabled the only extra work is one
// header lookup.
func (s *Service) instrumented(endpoint string, h apiHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		var sc *trace.Scope
		traceID := r.Header.Get(traceHeader)
		if s.tracer.Enabled() {
			if traceID == "" {
				traceID = trace.NewTraceID()
			}
			sc = s.tracer.StartScope(traceID)
		}
		if traceID != "" {
			// Echo even with tracing off, so clients correlate retries.
			w.Header().Set(traceHeader, traceID)
		}
		hs := sc.Start("http." + endpoint)
		code, body, err := h(r, sc)
		hs.End()
		if err != nil {
			body = errorResponse{Error: err.Error()}
		}
		if st := trace.ServerTiming(sc.Spans()); st != "" {
			w.Header().Set("Server-Timing", st)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
		sc.Flush()
		s.observeRequest(endpoint, code, time.Since(begin))
	}
}

// readBody slurps a bounded request body.
func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return data, nil
}

// errCode maps a state-machine error to its HTTP status.
func errCode(err error) int {
	switch {
	case errors.Is(err, errClosed), errors.Is(err, errDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Service) handleQuote(r *http.Request, sc *trace.Scope) (int, any, error) {
	data, err := readBody(r)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	req, err := decodeQuoteRequest(data)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	if req.Nodes > s.cfg.Nodes {
		return http.StatusUnprocessableEntity, nil,
			fmt.Errorf("job needs %d nodes but the cluster has %d", req.Nodes, s.cfg.Nodes)
	}
	max := s.cfg.MaxQuotes
	if req.MaxQuotes > 0 && req.MaxQuotes < max {
		max = req.MaxQuotes
	}

	var resp quoteResponse
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			return
		}
		qs := sc.Start("quote")
		qs.Annotate("nodes", strconv.Itoa(req.Nodes))
		quotes := s.eng.Quotes(req.Nodes, units.Duration(req.ExecSeconds), max)
		qs.Annotate("offers", strconv.Itoa(len(quotes)))
		qs.End()
		resp.Now = s.eng.Now()
		resp.Quotes = make([]wireQuote, len(quotes))
		for i, q := range quotes {
			resp.Quotes[i] = wireQuote{
				Offer:    i + 1,
				Start:    q.Candidate.Start,
				Deadline: q.Deadline,
				Success:  q.Success,
			}
		}
		if len(quotes) > 0 {
			bs := sc.Start("book.open")
			sess := s.book.Open(s.eng.Now(), req.Nodes, units.Duration(req.ExecSeconds), quotes)
			bs.Annotate("session", sess.ID)
			bs.End()
			// Journaled after the fact, deliberately: losing a session
			// record (crash here, or a degraded log) costs the client a 404
			// on accept — renegotiate — never a broken promise. A degraded
			// log thus still quotes; the session is just memory-only.
			s.logOp(walOp{Kind: opSession, Session: sess})
			resp.SessionID = sess.ID
			resp.Expires = sess.Expires
			s.reg.Counter("qosd_sessions_opened_total", "negotiation sessions opened", nil).Inc()
			s.reg.Counter("qosd_quotes_issued_total", "individual offers extended", nil).
				Add(float64(len(quotes)))
		}
		s.updateGauges()
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	return http.StatusOK, resp, nil
}

func (s *Service) handleAccept(r *http.Request, sc *trace.Scope) (int, any, error) {
	data, err := readBody(r)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	var req acceptRequest
	if err := decodeStrict(data, &req); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if req.SessionID == "" {
		return http.StatusBadRequest, nil, errors.New("session_id is required")
	}

	var (
		resp acceptResponse
		code int
	)
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			code = errCode(err)
			return
		}
		defer s.updateGauges()
		// An accept creates a promise, which must hit stable storage before
		// it is made. While the log is down, refuse up front.
		if s.degraded != nil {
			s.countAccept("degraded")
			code, err = http.StatusServiceUnavailable, errDegraded
			return
		}
		expiredBefore := s.book.Expired()
		ts := sc.Start("book.take")
		ts.Annotate("session", req.SessionID)
		sess, ok := s.book.Take(req.SessionID, s.eng.Now())
		ts.End()
		if !ok {
			if s.book.Expired() != expiredBefore {
				// The take lapsed a real session (not a bogus ID): journal
				// the state change. If the log just failed, replay converges
				// anyway — the next advance sweeps the lapsed session.
				s.logOp(walOp{Kind: opTake, SessionID: req.SessionID})
			}
			s.countAccept("expired")
			code, err = http.StatusNotFound,
				fmt.Errorf("session %q unknown or expired; request a fresh quote", req.SessionID)
			return
		}
		// From here on the session is consumed, a state change that must be
		// journaled; on a log failure put it back and refuse, as if the
		// request never happened.
		if req.Offer < 1 || req.Offer > len(sess.Quotes) {
			if lerr := s.logOp(walOp{Kind: opTake, SessionID: sess.ID}); lerr != nil {
				s.book.Insert(sess)
				code, err = http.StatusServiceUnavailable, lerr
				return
			}
			s.countAccept("rejected")
			code, err = http.StatusBadRequest,
				fmt.Errorf("offer %d outside 1..%d", req.Offer, len(sess.Quotes))
			return
		}
		if s.cfg.MaxOutstanding > 0 && s.eng.Stats().Outstanding() >= s.cfg.MaxOutstanding {
			if lerr := s.logOp(walOp{Kind: opTake, SessionID: sess.ID}); lerr != nil {
				s.book.Insert(sess)
				code, err = http.StatusServiceUnavailable, lerr
				return
			}
			s.countAccept("rejected")
			code, err = http.StatusServiceUnavailable,
				fmt.Errorf("admission limit reached (%d outstanding jobs); retry later", s.cfg.MaxOutstanding)
			return
		}
		quote := sess.Quotes[req.Offer-1]
		job := workload.Job{
			ID:      s.nextJobID + 1,
			Arrival: s.eng.Now(),
			Nodes:   sess.Size,
			Exec:    sess.Exec,
		}
		// The admit record carries the full job and quote, so replay never
		// depends on a session record existing (memory-only sessions from a
		// degraded window stay admittable after healing).
		op := walOp{Kind: opAdmit, SessionID: sess.ID, Job: &job, Quote: &quote, Offers: req.Offer}
		if lerr := s.logOp(op); lerr != nil {
			s.book.Insert(sess)
			code, err = http.StatusServiceUnavailable, lerr
			return
		}
		as := sc.Start("admit")
		as.Annotate("job", strconv.Itoa(job.ID))
		admitErr := s.applyAdmit(op)
		as.End()
		if admitErr != nil {
			// The quoted slot is gone: the clock moved past its start, or a
			// competing accept claimed the nodes first. Renegotiation is the
			// protocol's answer, so this is a conflict, not a server error.
			// Replay re-enacts the same rejection from the journaled record.
			s.countAccept("conflict")
			code, err = http.StatusConflict, fmt.Errorf("quote no longer holds: %w", admitErr)
			return
		}
		s.countAccept("accepted")
		resp = acceptResponse{
			JobID:    job.ID,
			Start:    quote.Candidate.Start,
			Deadline: quote.Deadline,
			Promised: quote.Success,
		}
		code = http.StatusOK
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return code, nil, err
	}
	return code, resp, nil
}

func (s *Service) handleJob(r *http.Request, sc *trace.Scope) (int, any, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("job id %q is not an integer", r.PathValue("id"))
	}
	var (
		status sim.JobStatus
		ok     bool
	)
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			return
		}
		status, ok = s.eng.Job(id)
		s.updateGauges()
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	if !ok {
		return http.StatusNotFound, nil, fmt.Errorf("no job %d", id)
	}
	return http.StatusOK, status, nil
}

func (s *Service) handleJobs(r *http.Request, sc *trace.Scope) (int, any, error) {
	var (
		list []sim.JobStatus
		err  error
	)
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			return
		}
		ids := s.eng.JobIDs()
		list = make([]sim.JobStatus, 0, len(ids))
		for _, id := range ids {
			if st, ok := s.eng.Job(id); ok {
				list = append(list, st)
			}
		}
		s.updateGauges()
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	return http.StatusOK, list, nil
}

func (s *Service) handleFault(r *http.Request, sc *trace.Scope) (int, any, error) {
	data, err := readBody(r)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	var req faultRequest
	if err := decodeStrict(data, &req); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if req.At != 0 && req.AfterSeconds != 0 {
		return http.StatusBadRequest, nil, errors.New("set at most one of at and after_seconds")
	}
	if req.At < 0 || req.AfterSeconds < 0 {
		return http.StatusBadRequest, nil, errors.New("fault instant must be non-negative")
	}

	var (
		at   units.Time
		code int
	)
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			code = errCode(err)
			return
		}
		// Validate before journaling so the log holds no junk records; the
		// at-clamp below makes the engine's own checks unreachable.
		if req.Node < 0 || req.Node >= s.cfg.Nodes {
			code, err = http.StatusBadRequest,
				fmt.Errorf("node %d outside [0,%d)", req.Node, s.cfg.Nodes)
			return
		}
		at = req.At
		if req.AfterSeconds > 0 {
			at = s.eng.Now().Add(units.Duration(req.AfterSeconds))
		}
		if at < s.eng.Now() {
			at = s.eng.Now()
		}
		op := walOp{Kind: opFault, Node: req.Node, At: at}
		if lerr := s.logOp(op); lerr != nil {
			code, err = http.StatusServiceUnavailable, lerr
			return
		}
		if injErr := s.applyFault(op); injErr != nil {
			code, err = http.StatusBadRequest, injErr
			return
		}
		s.reg.Counter("qosd_faults_injected_total", "failures injected via the API", nil).Inc()
		s.updateGauges()
		code = http.StatusAccepted
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return code, nil, err
	}
	return code, map[string]any{"node": req.Node, "at": at}, nil
}

func (s *Service) handleAdvance(r *http.Request, sc *trace.Scope) (int, any, error) {
	data, err := readBody(r)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	var req advanceRequest
	if err := decodeStrict(data, &req); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if (req.To != 0) == (req.BySeconds != 0) {
		return http.StatusBadRequest, nil, errors.New("set exactly one of to and by_seconds")
	}
	if req.To < 0 || req.BySeconds < 0 {
		return http.StatusBadRequest, nil, errors.New("cannot advance the clock backwards")
	}

	var now units.Time
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			return
		}
		target := req.To
		if req.BySeconds > 0 {
			target = s.eng.Now().Add(units.Duration(req.BySeconds))
		}
		if err = s.advanceTo(target); err != nil {
			return
		}
		now = s.eng.Now()
		s.updateGauges()
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return errCode(err), nil, err
	}
	return http.StatusOK, map[string]units.Time{"now": now}, nil
}

func (s *Service) handleState(r *http.Request, sc *trace.Scope) (int, any, error) {
	var (
		resp stateResponse
		err  error
	)
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			return
		}
		resp.Stats = s.eng.Stats()
		resp.OpenSessions = s.book.Len()
		resp.ExpiredSessions = s.book.Expired()
		s.updateGauges()
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	return http.StatusOK, resp, nil
}

// defaultConformanceTail bounds the ledger rows echoed by /qos/conformance
// unless ?n= asks for more (n=0 means every row).
const defaultConformanceTail = 1000

func (s *Service) handleConformance(r *http.Request, sc *trace.Scope) (int, any, error) {
	tail := defaultConformanceTail
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return http.StatusBadRequest, nil, errors.New("invalid n")
		}
		tail = n
	}
	var (
		resp conformanceResponse
		err  error
	)
	doErr := s.doTraced(sc, func() {
		if err = s.tick(); err != nil {
			return
		}
		resp.ConformanceStats = s.ledger.Stats()
		resp.Entries = s.ledger.Entries(tail)
		s.updateGauges()
	})
	if doErr != nil {
		return errCode(doErr), nil, doErr
	}
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	return http.StatusOK, resp, nil
}

// handleTrace streams the retained spans as Chrome trace_event JSON. It
// bypasses the instrumented wrapper because its body is the export itself,
// not an API object — but it still counts in the request metrics.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	if !s.tracer.Enabled() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(errorResponse{
			Error: "tracing disabled; start qosd with a span budget (-trace-spans)"})
		s.observeRequest("trace", http.StatusNotFound, time.Since(begin))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.tracer.Export(w, r.URL.Query().Get("trace"))
	s.observeRequest("trace", http.StatusOK, time.Since(begin))
}
