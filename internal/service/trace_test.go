package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/trace"
)

// newTracedService is newTestService with request tracing enabled.
func newTracedService(t *testing.T, nodes int) *Service {
	t.Helper()
	tr, err := failure.NewTrace(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.Tracer = trace.New(16384)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// callRec is call but returns the full recorder, for header assertions.
func callRec(t *testing.T, h http.Handler, method, path string, hdr map[string]string, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTraceHeaderGeneratedAndEchoed(t *testing.T) {
	s := newTracedService(t, 8)
	h := s.Handler()

	// No inbound ID: the server mints one and reports it.
	rec := callRec(t, h, "POST", "/v1/quote", nil, `{"nodes":2,"exec_seconds":600}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("quote: %d", rec.Code)
	}
	id := rec.Header().Get("X-Qos-Trace")
	if len(id) != 16 {
		t.Fatalf("generated trace ID %q, want 16 hex chars", id)
	}
	st := rec.Header().Get("Server-Timing")
	for _, span := range []string{"http.quote;dur=", "quote;dur=", "book.open;dur="} {
		if !strings.Contains(st, span) {
			t.Errorf("Server-Timing %q missing %q", st, span)
		}
	}

	// An inbound ID is honored verbatim, so retries correlate.
	rec = callRec(t, h, "GET", "/v1/state",
		map[string]string{"X-Qos-Trace": "deadbeefcafef00d"}, "")
	if got := rec.Header().Get("X-Qos-Trace"); got != "deadbeefcafef00d" {
		t.Errorf("inbound trace ID not echoed: %q", got)
	}
}

func TestTraceDisabledPaysNothingVisible(t *testing.T) {
	s := newTestService(t, 8)
	h := s.Handler()

	// No tracer: no minted ID, no Server-Timing...
	rec := callRec(t, h, "GET", "/v1/state", nil, "")
	if got := rec.Header().Get("X-Qos-Trace"); got != "" {
		t.Errorf("untraced server minted trace ID %q", got)
	}
	if got := rec.Header().Get("Server-Timing"); got != "" {
		t.Errorf("untraced server sent Server-Timing %q", got)
	}
	// ...but an inbound ID is still echoed for client-side correlation.
	rec = callRec(t, h, "GET", "/v1/state",
		map[string]string{"X-Qos-Trace": "deadbeefcafef00d"}, "")
	if got := rec.Header().Get("X-Qos-Trace"); got != "deadbeefcafef00d" {
		t.Errorf("inbound trace ID not echoed while disabled: %q", got)
	}
	// ...and /debug/trace explains itself.
	rec = callRec(t, h, "GET", "/debug/trace", nil, "")
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "tracing disabled") {
		t.Errorf("/debug/trace while disabled: %d %s", rec.Code, rec.Body.String())
	}
}

func TestDebugTraceFiltersByID(t *testing.T) {
	s := newTracedService(t, 8)
	h := s.Handler()

	ids := []string{"1111111111111111", "2222222222222222"}
	for _, id := range ids {
		rec := callRec(t, h, "POST", "/v1/quote",
			map[string]string{"X-Qos-Trace": id}, `{"nodes":1,"exec_seconds":60}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("quote %s: %d", id, rec.Code)
		}
	}

	var chrome struct {
		Events []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	rec := callRec(t, h, "GET", "/debug/trace?trace="+ids[0], nil, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if len(chrome.Events) == 0 {
		t.Fatal("no spans for filtered trace")
	}
	for _, ev := range chrome.Events {
		if ev.Args["trace"] != ids[0] {
			t.Errorf("span %q from trace %q leaked into filter for %s", ev.Name, ev.Args["trace"], ids[0])
		}
	}

	// Unfiltered export carries both traces.
	rec = callRec(t, h, "GET", "/debug/trace", nil, "")
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range chrome.Events {
		seen[ev.Args["trace"]] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("unfiltered export missing trace %s", id)
		}
	}
}

func TestConformanceEndpoint(t *testing.T) {
	s := newTestService(t, 8)
	h := s.Handler()

	var q quoteResponse
	if code := call(t, h, "POST", "/v1/quote",
		map[string]any{"nodes": 2, "exec_seconds": 600}, &q); code != http.StatusOK {
		t.Fatalf("quote: %d", code)
	}
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": q.SessionID, "offer": 1}, nil); code != http.StatusOK {
		t.Fatalf("accept: %d", code)
	}

	// Open promise: visible immediately, pending.
	var rep conformanceResponse
	if code := call(t, h, "GET", "/qos/conformance", nil, &rep); code != http.StatusOK {
		t.Fatalf("conformance: %d", code)
	}
	if rep.Promises != 1 || rep.Open != 1 || rep.Settled != 0 {
		t.Fatalf("open promise not reported: %+v", rep.ConformanceStats)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].Outcome != trace.OutcomePending {
		t.Fatalf("entries: %+v", rep.Entries)
	}

	// Completion settles it as kept.
	if code := call(t, h, "POST", "/v1/advance",
		map[string]any{"by_seconds": 86400}, nil); code != http.StatusOK {
		t.Fatalf("advance: %d", code)
	}
	if code := call(t, h, "GET", "/qos/conformance", nil, &rep); code != http.StatusOK {
		t.Fatalf("conformance: %d", code)
	}
	if rep.Settled != 1 || rep.Kept != 1 || rep.KeepingRate != 1 {
		t.Fatalf("settled promise not reported: %+v", rep.ConformanceStats)
	}
	if rep.Entries[0].Outcome != trace.OutcomeKept || rep.Entries[0].SettledAt == 0 {
		t.Fatalf("entry not settled: %+v", rep.Entries[0])
	}
	wantBrier := (1 - rep.Entries[0].Promised) * (1 - rep.Entries[0].Promised)
	if diff := rep.Brier - wantBrier; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("brier %v, want %v", rep.Brier, wantBrier)
	}

	// ?n=0 lifts the tail bound (every row); a bad n is rejected.
	if code := call(t, h, "GET", "/qos/conformance?n=0", nil, &rep); code != http.StatusOK {
		t.Fatalf("conformance?n=0: %d", code)
	}
	if len(rep.Entries) != 1 || rep.Settled != 1 {
		t.Errorf("n=0: entries=%d stats=%+v", len(rep.Entries), rep.ConformanceStats)
	}
	if code := call(t, h, "GET", "/qos/conformance?n=bogus", nil, nil); code != http.StatusBadRequest {
		t.Errorf("conformance?n=bogus: %d, want 400", code)
	}

	// The scrape-side gauges agree with the JSON view.
	srv := httptest.NewServer(h)
	defer srv.Close()
	m := scrapeMetrics(t, srv.URL)
	if m[`qosd_promises{outcome="kept"}`] != 1 || m[`qosd_promise_keeping_rate`] != 1 {
		t.Errorf("conformance gauges: kept=%v rate=%v",
			m[`qosd_promises{outcome="kept"}`], m[`qosd_promise_keeping_rate`])
	}
}
