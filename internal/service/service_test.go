package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// newTestService builds a service over an empty failure trace with a
// manual clock.
func newTestService(t *testing.T, nodes int) *Service {
	t.Helper()
	tr, err := failure.NewTrace(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(DefaultConfig(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// call sends one request through the full handler stack and decodes the
// JSON response into out (when out is non-nil).
func call(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestQuoteAcceptLifecycle(t *testing.T) {
	s := newTestService(t, 8)
	h := s.Handler()

	var quote quoteResponse
	if code := call(t, h, "POST", "/v1/quote",
		map[string]any{"nodes": 4, "exec_seconds": 3600}, &quote); code != http.StatusOK {
		t.Fatalf("quote: code %d", code)
	}
	if quote.SessionID == "" || len(quote.Quotes) == 0 {
		t.Fatalf("no offers on an empty cluster: %+v", quote)
	}
	if quote.Quotes[0].Success <= 0 || quote.Quotes[0].Success > 1 {
		t.Fatalf("offer success %v outside (0,1]", quote.Quotes[0].Success)
	}

	var acc acceptResponse
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": quote.SessionID, "offer": 1}, &acc); code != http.StatusOK {
		t.Fatalf("accept: code %d", code)
	}
	if acc.JobID == 0 || acc.Deadline != quote.Quotes[0].Deadline {
		t.Fatalf("accept response %+v does not match offer %+v", acc, quote.Quotes[0])
	}

	// A second accept of the same session must fail: the dialog is settled.
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": quote.SessionID, "offer": 1}, nil); code != http.StatusNotFound {
		t.Fatalf("re-accept: code %d, want 404", code)
	}

	var st map[string]any
	if code := call(t, h, "GET", fmt.Sprintf("/v1/jobs/%d", acc.JobID), nil, &st); code != http.StatusOK {
		t.Fatalf("job status: code %d", code)
	}
	if st["state"] != "queued" {
		t.Fatalf("state %v before the clock moves, want queued", st["state"])
	}

	// Run the virtual clock past the deadline: the empty trace has no
	// failures, so the job must complete and the promise hold.
	if code := call(t, h, "POST", "/v1/advance",
		map[string]any{"to": acc.Deadline.Add(units.Hour)}, nil); code != http.StatusOK {
		t.Fatalf("advance: code %d", code)
	}
	if code := call(t, h, "GET", fmt.Sprintf("/v1/jobs/%d", acc.JobID), nil, &st); code != http.StatusOK {
		t.Fatalf("job status: code %d", code)
	}
	if st["state"] != "completed" || st["met_deadline"] != true {
		t.Fatalf("job did not complete on time: %+v", st)
	}
}

func TestAcceptStaleQuoteConflicts(t *testing.T) {
	s := newTestService(t, 4)
	h := s.Handler()

	var quote quoteResponse
	call(t, h, "POST", "/v1/quote", map[string]any{"nodes": 4, "exec_seconds": 600}, &quote)
	// Move the clock beyond the offer's start while the client dithers
	// (but within the session TTL): the slot is gone.
	call(t, h, "POST", "/v1/advance",
		map[string]any{"to": quote.Quotes[0].Start.Add(30 * units.Minute)}, nil)
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": quote.SessionID, "offer": 1}, nil); code != http.StatusConflict {
		t.Fatalf("stale accept: code %d, want 409", code)
	}
}

func TestQuoteRejectsOversizeJob(t *testing.T) {
	s := newTestService(t, 4)
	if code := call(t, s.Handler(), "POST", "/v1/quote",
		map[string]any{"nodes": 5, "exec_seconds": 60}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("oversize quote: code %d, want 422", code)
	}
}

func TestFaultInjectionBreaksPromise(t *testing.T) {
	s := newTestService(t, 2)
	h := s.Handler()

	var quote quoteResponse
	call(t, h, "POST", "/v1/quote", map[string]any{"nodes": 2, "exec_seconds": 7200}, &quote)
	var acc acceptResponse
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": quote.SessionID, "offer": 1}, &acc); code != http.StatusOK {
		t.Fatalf("accept: code %d", code)
	}

	// Kill a node mid-run, repeatedly enough that the two-node job cannot
	// recover before its deadline (the trace predictor never saw these, so
	// no quote priced them in).
	at := acc.Start.Add(1800)
	for i := 0; i < 40; i++ {
		if code := call(t, h, "POST", "/v1/faults",
			map[string]any{"node": 0, "at": at}, nil); code != http.StatusAccepted {
			t.Fatalf("fault injection: code %d", code)
		}
		at = at.Add(1800)
	}
	call(t, h, "POST", "/v1/advance", map[string]any{"to": acc.Deadline.Add(units.Hour)}, nil)

	var st map[string]any
	call(t, h, "GET", fmt.Sprintf("/v1/jobs/%d", acc.JobID), nil, &st)
	if st["state"] != "missed" {
		t.Fatalf("state %v after saturating faults, want missed", st["state"])
	}
	if n := st["failures_suffered"].(float64); n == 0 {
		t.Fatal("job records no suffered failures")
	}
}

func TestAdmissionControl(t *testing.T) {
	tr, _ := failure.NewTrace(16, nil)
	cfg := DefaultConfig(tr)
	cfg.MaxOutstanding = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	var q1, q2 quoteResponse
	call(t, h, "POST", "/v1/quote", map[string]any{"nodes": 1, "exec_seconds": 3600}, &q1)
	call(t, h, "POST", "/v1/quote", map[string]any{"nodes": 1, "exec_seconds": 3600}, &q2)
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": q1.SessionID, "offer": 1}, nil); code != http.StatusOK {
		t.Fatalf("first accept: code %d", code)
	}
	if code := call(t, h, "POST", "/v1/accept",
		map[string]any{"session_id": q2.SessionID, "offer": 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit accept: code %d, want 503", code)
	}
}

func TestStrictDecoding(t *testing.T) {
	s := newTestService(t, 4)
	h := s.Handler()
	for _, body := range []string{
		``, `{`, `{"nodes": 1}`, `{"nodes": 1, "exec_seconds": 0}`,
		`{"nodes": -1, "exec_seconds": 60}`,
		`{"nodes": 1, "exec_seconds": 60, "bogus": true}`,
		`{"nodes": 1, "exec_seconds": 60} trailing`,
	} {
		req := httptest.NewRequest("POST", "/v1/quote", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, rec.Code)
		}
	}
}

func TestMetricsExposed(t *testing.T) {
	s := newTestService(t, 4)
	h := s.Handler()
	call(t, h, "POST", "/v1/quote", map[string]any{"nodes": 1, "exec_seconds": 60}, nil)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: code %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"qosd_requests_total", "qosd_request_seconds", "qosd_sessions_opened_total",
		"qosd_virtual_time_seconds", "qosd_jobs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}

	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: code %d", rec.Code)
	}
}

func TestCloseRefusesNewWork(t *testing.T) {
	s := newTestService(t, 4)
	h := s.Handler()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code := call(t, h, "POST", "/v1/quote",
		map[string]any{"nodes": 1, "exec_seconds": 60}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close quote: code %d, want 503", code)
	}
}
