package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"probqos/internal/durability"
	"probqos/internal/negotiate"
	"probqos/internal/obs"
	"probqos/internal/sim"
	"probqos/internal/trace"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// Crash safety for qosd. Every state-mutating operation — clock advances,
// session opens and takes, admits, fault injections — is journaled to a
// write-ahead log (internal/durability) before it is applied, so that on
// restart the service reconstructs its exact state: snapshot restore plus
// record-by-record replay through the same apply code the live request
// path uses. A WAL write failure flips the service into degraded mode:
// reads and quotes keep working, mutations answer 503, and each request
// probes whether the log has healed.
//
// Two deliberate relaxations, both promise-safe:
//
//   - Session records are journaled just after Book.Open rather than
//     before. Losing one in a crash costs a client a 404 on accept —
//     "renegotiate", which the protocol already demands after any expiry
//     — never a broken promise. Admits, which do create promises, are
//     journaled strictly before they are applied.
//   - Replay tolerates admit and fault rejections: they are deterministic
//     (the live request saw the identical error and answered 409/400), so
//     the record is a faithful re-enactment, not corruption.

// errDegraded is returned for mutations while the write-ahead log is
// unavailable. Reads and quotes still work; admits must wait.
var errDegraded = errors.New("service: degraded, write-ahead log unavailable; retry later")

// WAL operation kinds.
const (
	opAdvance = "advance"
	opSession = "session"
	opTake    = "take"
	opAdmit   = "admit"
	opFault   = "fault"
	opDrain   = "drain"
)

// walOp is one journaled state mutation, JSON-encoded as a WAL record
// payload.
type walOp struct {
	Kind string `json:"kind"`
	// advance
	To units.Time `json:"to,omitempty"`
	// session (the full session, so replay reproduces it verbatim)
	Session *negotiate.Session `json:"session,omitempty"`
	// take and admit
	SessionID string `json:"session_id,omitempty"`
	// admit (self-contained: replay needs no session record to exist,
	// which keeps admits of degraded-mode memory-only sessions replayable)
	Job    *workload.Job    `json:"job,omitempty"`
	Quote  *negotiate.Quote `json:"quote,omitempty"`
	Offers int              `json:"offers,omitempty"`
	// fault (node 0 is valid, so no omitempty)
	Node int        `json:"node"`
	At   units.Time `json:"at,omitempty"`
}

// machine is the replayable core of qosd: the engine, the session book,
// the job-ID counter, and the promise ledger. Live requests and WAL replay
// mutate it through the same apply helpers, so recovery is the normal code
// path re-run, not a parallel implementation that can drift — including
// the conformance record, which a crash must not be able to launder.
type machine struct {
	eng       *sim.Engine
	book      *negotiate.Book
	nextJobID int
	ledger    *trace.Ledger
}

func newMachine(cfg Config) (machine, error) {
	eng, err := sim.NewEngine(sim.Config{
		Failures:      cfg.Failures,
		Nodes:         cfg.Nodes,
		Accuracy:      cfg.Accuracy,
		Checkpoint:    cfg.Checkpoint,
		Downtime:      cfg.Downtime,
		Policy:        cfg.Policy,
		DeadlineSkip:  cfg.DeadlineSkip,
		FaultAware:    cfg.FaultAware,
		BaseRateFloor: cfg.BaseRateFloor,
	})
	if err != nil {
		return machine{}, err
	}
	book, err := negotiate.NewBook(cfg.SessionTTL)
	if err != nil {
		return machine{}, err
	}
	return machine{eng: eng, book: book, ledger: trace.NewLedger(trace.DefaultBins)}, nil
}

// applyAdvance moves the clock, sweeps lapsed sessions, and settles every
// promise the advance drove to a terminal state: the transition behind
// both /v1/advance and the speedup clock. Settlement happens here — on
// the journaled clock, inside the replayed path — so a recovered ledger
// is identical to the one the crash interrupted.
func (m *machine) applyAdvance(to units.Time) error {
	if err := m.eng.AdvanceTo(to); err != nil {
		return err
	}
	m.book.Sweep(m.eng.Now())
	m.settlePromises()
	return nil
}

// settlePromises asks the engine for the disposition of every open ledger
// entry. JobCompleted is a kept promise; JobMissed — sticky from the
// instant the deadline passes unmet — is a broken one.
func (m *machine) settlePromises() {
	m.ledger.Settle(m.eng.Now(), func(jobID int) (kept, terminal bool) {
		st, ok := m.eng.Job(jobID)
		if !ok {
			return false, false
		}
		return st.State == sim.JobCompleted, st.State.Terminal()
	})
}

// applyAdmit consumes the session (if any still exists), burns the job ID,
// and admits. The ID is consumed even when admission then fails — live
// and on replay alike — so the counter never reissues an ID. A successful
// admit files the quoted promise in the ledger.
func (m *machine) applyAdmit(op walOp) error {
	if op.SessionID != "" {
		m.book.Take(op.SessionID, m.eng.Now())
	}
	if op.Job.ID > m.nextJobID {
		m.nextJobID = op.Job.ID
	}
	if err := m.eng.Admit(*op.Job, *op.Quote, op.Offers); err != nil {
		return err
	}
	m.ledger.Admit(op.Job.ID, op.SessionID, op.Quote.Success, op.Quote.Deadline, m.eng.Now())
	return nil
}

func (m *machine) applyFault(op walOp) error {
	return m.eng.InjectFailure(op.Node, op.At)
}

// apply replays one journaled operation. Admit and fault rejections are
// deterministic re-enactments of what the live request saw, so they are
// benign; an advance failure is an engine invariant violation and fatal.
func (m *machine) apply(op walOp) error {
	switch op.Kind {
	case opAdvance:
		return m.applyAdvance(op.To)
	case opSession:
		if op.Session == nil {
			return fmt.Errorf("service: session record without a session")
		}
		m.book.Insert(op.Session)
	case opTake:
		m.book.Take(op.SessionID, m.eng.Now())
	case opAdmit:
		if op.Job == nil || op.Quote == nil {
			return fmt.Errorf("service: admit record without job or quote")
		}
		m.applyAdmit(op)
	case opFault:
		m.applyFault(op)
	case opDrain:
		// Clean-shutdown marker; state unchanged.
	default:
		return fmt.Errorf("service: unknown wal op kind %q", op.Kind)
	}
	return nil
}

// persistedState is what a snapshot's State field holds.
type persistedState struct {
	Engine    sim.EngineState     `json:"engine"`
	Book      negotiate.BookState `json:"book"`
	NextJobID int                 `json:"next_job_id"`
	// Ledger carries the promise-conformance record. A pointer so
	// snapshots written before the ledger existed still decode (they
	// restore an empty ledger).
	Ledger *trace.LedgerState `json:"ledger,omitempty"`
	// Clean marks a shutdown snapshot: the WAL was drained and truncated
	// before exit, so a boot that finds it with an empty log was preceded
	// by a graceful stop, not a crash.
	Clean bool `json:"clean"`
}

func (m *machine) export(clean bool) ([]byte, error) {
	ledger := m.ledger.Export()
	return json.Marshal(persistedState{
		Engine:    m.eng.ExportState(),
		Book:      m.book.Export(),
		NextJobID: m.nextJobID,
		Ledger:    &ledger,
		Clean:     clean,
	})
}

// RecoveryInfo summarizes what startup found in the data directory.
type RecoveryInfo struct {
	// Enabled is false when the service runs without a data dir.
	Enabled bool `json:"enabled"`
	// SnapshotLoaded reports whether a snapshot was restored.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// RecordsReplayed counts WAL records applied on top of the snapshot.
	RecordsReplayed int `json:"records_replayed"`
	// Clean reports a graceful prior shutdown (shutdown snapshot present,
	// nothing to replay).
	Clean bool `json:"clean"`
}

// RecoveryInfo reports what this instance recovered at startup. Fixed
// before the state machine starts, so safe to read from any goroutine.
func (s *Service) RecoveryInfo() RecoveryInfo { return s.info }

// configDigest fingerprints every configuration input that determines
// replay: the cluster, the failure trace, and the policies. Recovery
// refuses a data dir written under a different fingerprint, since
// replaying its journal here would silently diverge.
func configDigest(cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|nodes=%d|a=%g|ckpt=%d/%d|down=%d|policy=%s|skip=%t|fa=%t|floor=%t|ttl=%d|",
		cfg.Nodes, cfg.Accuracy, cfg.Checkpoint.Interval, cfg.Checkpoint.Overhead,
		cfg.Downtime, cfg.Policy.Name(), cfg.DeadlineSkip, cfg.FaultAware,
		cfg.BaseRateFloor, cfg.SessionTTL)
	fmt.Fprintf(h, "trace=%d:%d|", cfg.Failures.Nodes(), cfg.Failures.Len())
	for _, ev := range cfg.Failures.Events() {
		fmt.Fprintf(h, "%d,%d,%g;", ev.Time, ev.Node, ev.Detectability)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// fsyncBounds bucket WAL append latency from 50µs to ~0.8s.
var fsyncBounds = []float64{0.00005, 0.0002, 0.0008, 0.0032, 0.0128, 0.0512, 0.2048, 0.8192}

// snapshotBounds bucket snapshot write latency from 1ms to ~4s.
var snapshotBounds = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096}

// recoverState opens the data dir, restores the snapshot, replays the WAL
// through the machine, and leaves the store ready for appends. Called from
// New before the state machine starts, so it owns all state unlocked.
func (s *Service) recoverState() error {
	store, snap, recs, err := durability.Open(s.cfg.FS, s.cfg.DataDir, durability.Options{
		SnapshotEvery: s.cfg.SnapshotEvery,
		Hazard:        s.cfg.CrashHazard,
		OnSync: func(d time.Duration) {
			s.reg.Histogram("qosd_wal_fsync_seconds",
				"WAL append latency (write + fsync)", fsyncBounds, nil).Observe(d.Seconds())
		},
		OnSnapshot: func(bytes int, d time.Duration) {
			s.reg.Gauge("qosd_snapshot_last_bytes",
				"encoded state size of the most recent snapshot", nil).Set(float64(bytes))
			s.reg.Histogram("qosd_snapshot_seconds",
				"durable snapshot write latency", snapshotBounds, nil).Observe(d.Seconds())
		},
	})
	if err != nil {
		return err
	}
	clean := false
	begin := time.Now()
	if snap != nil {
		if snap.Config != s.digest {
			store.Close()
			return fmt.Errorf("service: data dir %q was written under config %s, this instance is %s: refusing to replay",
				s.cfg.DataDir, snap.Config, s.digest)
		}
		var ps persistedState
		if err := json.Unmarshal(snap.State, &ps); err != nil {
			store.Close()
			return fmt.Errorf("service: decode snapshot state: %w", err)
		}
		if err := s.eng.Restore(ps.Engine); err != nil {
			store.Close()
			return fmt.Errorf("service: restore engine: %w", err)
		}
		if err := s.book.Import(ps.Book); err != nil {
			store.Close()
			return fmt.Errorf("service: restore session book: %w", err)
		}
		if ps.Ledger != nil {
			if err := s.ledger.Import(*ps.Ledger); err != nil {
				store.Close()
				return fmt.Errorf("service: restore promise ledger: %w", err)
			}
		}
		s.nextJobID = ps.NextJobID
		clean = ps.Clean
	}
	for _, rec := range recs {
		// The frame checksum passed, so an undecodable or unappliable
		// payload is not a torn tail to skip: it is corruption (or a
		// version skew) that silently dropping would turn into divergence.
		var op walOp
		if err := json.Unmarshal(rec.Payload, &op); err != nil {
			store.Close()
			return fmt.Errorf("service: wal record lsn %d: undecodable payload: %w", rec.LSN, err)
		}
		if err := s.machine.apply(op); err != nil {
			store.Close()
			return fmt.Errorf("service: replay wal record lsn %d: %w", rec.LSN, err)
		}
	}
	replayDur := time.Since(begin)
	if len(recs) > 0 {
		store.SetReplayCost(replayDur, len(recs))
	}
	s.reg.Gauge("qosd_wal_replay_seconds",
		"time spent restoring the snapshot and replaying the WAL at boot", nil).
		Set(replayDur.Seconds())
	s.store = store
	s.info = RecoveryInfo{
		Enabled:         true,
		SnapshotLoaded:  snap != nil,
		RecordsReplayed: len(recs),
		Clean:           clean && len(recs) == 0,
	}
	kind := "crash"
	switch {
	case s.info.Clean:
		kind = "clean"
	case snap == nil && len(recs) == 0:
		kind = "fresh"
	}
	s.reg.Counter("qosd_recoveries_total", "startups by what the data dir held",
		obs.Labels{"kind": kind}).Inc()
	s.reg.Counter("qosd_wal_replayed_records_total", "WAL records replayed at startup", nil).
		Add(float64(len(recs)))
	s.reg.Gauge("qosd_degraded", "1 while the write-ahead log is unavailable", nil).Set(0)
	if len(recs) > 0 {
		// Fold the replayed tail into a fresh snapshot so the next boot
		// starts from here instead of replaying it again.
		if err := s.compact(false); err != nil {
			store.Close()
			s.store = nil
			return fmt.Errorf("service: post-recovery snapshot: %w", err)
		}
	}
	return nil
}

// logOp journals op ahead of applying it. A write failure flips the
// service into degraded mode and means the operation must not happen.
// Runs on the state-machine goroutine. Without a data dir it is a no-op.
func (s *Service) logOp(op walOp) error {
	if s.store == nil {
		return nil
	}
	if s.degraded != nil {
		return errDegraded
	}
	payload, err := json.Marshal(op)
	if err != nil {
		s.broken = fmt.Errorf("service: encode wal op: %w", err)
		return s.broken
	}
	sp := s.curScope.Start("wal.append")
	sp.Annotate("op", op.Kind)
	sp.Annotate("bytes", strconv.Itoa(len(payload)))
	_, aerr := s.store.Append(payload)
	sp.End()
	if aerr != nil {
		s.setDegraded(aerr)
		return fmt.Errorf("%w: %v", errDegraded, aerr)
	}
	s.reg.Counter("qosd_wal_records_total", "WAL records committed", nil).Inc()
	return nil
}

func (s *Service) setDegraded(cause error) {
	s.degraded = cause
	s.degradedMsg.Store(cause.Error())
	s.reg.Gauge("qosd_degraded", "1 while the write-ahead log is unavailable", nil).Set(1)
}

func (s *Service) clearDegraded() {
	s.degraded = nil
	s.degradedMsg.Store("")
	s.reg.Gauge("qosd_degraded", "1 while the write-ahead log is unavailable", nil).Set(0)
}

// probeHeal, called at each request tick while degraded, asks the store
// to repair the log (truncate to the last record boundary and verify an
// fsync goes through). Success restores normal service; the next failed
// append re-degrades.
func (s *Service) probeHeal() {
	if s.store == nil || s.degraded == nil {
		return
	}
	if err := s.store.Heal(); err == nil {
		s.clearDegraded()
	}
}

// maybeCompact snapshots when the risk rule says the accumulated WAL
// replay debt outweighs a snapshot. Called at the start of a request
// tick, when every journaled record is fully applied.
func (s *Service) maybeCompact() {
	if s.store == nil || s.degraded != nil || s.broken != nil {
		return
	}
	if !s.store.ShouldSnapshot() {
		return
	}
	if err := s.compact(false); err != nil {
		// A disk that cannot write snapshots is failing; stop trusting it
		// with new promises until it heals.
		s.setDegraded(err)
	}
}

func (s *Service) compact(clean bool) error {
	sp := s.curScope.Start("snapshot")
	defer sp.End()
	state, err := s.machine.export(clean)
	if err != nil {
		return err
	}
	sp.Annotate("bytes", strconv.Itoa(len(state)))
	if err := s.store.Compact(state, s.digest); err != nil {
		return err
	}
	s.reg.Counter("qosd_snapshots_total", "state snapshots written", nil).Inc()
	return nil
}
