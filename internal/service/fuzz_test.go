package service

import (
	"testing"
	"unicode/utf8"
)

// FuzzDecodeQuoteRequest hammers the first parser qosd exposes to the
// network. The decoder must never panic, and every request it does accept
// must satisfy the documented invariants — the handler builds jobs and
// reservation walks straight from these fields.
func FuzzDecodeQuoteRequest(f *testing.F) {
	f.Add([]byte(`{"nodes": 4, "exec_seconds": 3600}`))
	f.Add([]byte(`{"nodes": 1, "exec_seconds": 1, "max_quotes": 3}`))
	f.Add([]byte(`{"nodes": 128, "exec_seconds": 86400, "max_quotes": 32}`))
	f.Add([]byte(`{"nodes": 0, "exec_seconds": 0}`))
	f.Add([]byte(`{"nodes": -1, "exec_seconds": -9223372036854775808}`))
	f.Add([]byte(`{"nodes": 1e9, "exec_seconds": 1e300}`))
	f.Add([]byte(`{"nodes": 1, "exec_seconds": 60, "bogus": true}`))
	f.Add([]byte(`{"nodes": 1, "exec_seconds": 60} {"again": 1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte("{\"nodes\":1,\"exec_seconds\":60}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := decodeQuoteRequest(data)
		if err != nil {
			return
		}
		if q.Nodes <= 0 || q.ExecSeconds <= 0 || q.MaxQuotes < 0 {
			t.Fatalf("accepted out-of-range request %+v from %q", q, data)
		}
		if !utf8.Valid(data) {
			// encoding/json replaces invalid UTF-8 rather than erroring;
			// the decoded ints are still range-checked, so this is fine —
			// the assertion documents that acceptance is intentional.
			t.Logf("accepted non-UTF-8 input %q", data)
		}
	})
}
