package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/trace"
)

// TestObservabilityEndToEnd is the tracing/conformance acceptance test: a
// durable qosd on a real listener, 48 concurrent dialogs racing a chaos
// goroutine, every client tagging its dialog with one trace ID. It then
// holds the observability layer to account:
//
//	(a) every admitted session appears in the promise ledger exactly once
//	    and ends in a terminal outcome;
//	(b) the reported keeping rate and Brier score match an offline
//	    recomputation from the raw ledger rows;
//	(c) /debug/trace serves valid Chrome trace_event JSON whose spans for
//	    a sampled dialog cover quote → admit → WAL fsync.
//
// With QOSD_E2E_ARTIFACTS=DIR the Chrome trace and the conformance
// snapshot are written there, which CI uploads as build artifacts.
func TestObservabilityEndToEnd(t *testing.T) {
	const (
		sessions = 48
		nodes    = 64
	)
	tr, err := failure.NewTrace(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr)
	cfg.DataDir = t.TempDir()
	cfg.Tracer = trace.New(1 << 16)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	addr, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	do := func(method, path, traceID string, body, out any) (int, error) {
		var rd io.Reader
		if body != nil {
			data, err := json.Marshal(body)
			if err != nil {
				return 0, err
			}
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return 0, err
		}
		if traceID != "" {
			req.Header.Set("X-Qos-Trace", traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	// Chaos: scattered future faults plus a creeping clock, so some
	// promises break and clients hit stale-quote conflicts.
	var faultsInjected atomic.Int64
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i := 0; i < 20; i++ {
			code, err := do("POST", "/v1/faults", "",
				map[string]any{"node": (i * 7) % nodes, "after_seconds": 900 + 450*i}, nil)
			if err == nil && code == http.StatusAccepted {
				faultsInjected.Add(1)
			}
			do("POST", "/v1/advance", "", map[string]any{"by_seconds": 30}, nil)
		}
	}()

	// Each dialog mints one trace ID and reuses it for every quote/accept
	// attempt, exactly as qosctl does across retries.
	type promise struct {
		jobID    int
		deadline int64
		promised float64
		traceID  string
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		promises []promise
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traceID := fmt.Sprintf("%016x", 0xe2e0000+i)
			size := 1 + i%8
			exec := 600 + 300*(i%10)
			for attempt := 0; attempt < 200; attempt++ {
				var quote quoteResponse
				code, err := do("POST", "/v1/quote", traceID,
					map[string]any{"nodes": size, "exec_seconds": exec}, &quote)
				if err != nil {
					t.Errorf("session %d: quote: %v", i, err)
					return
				}
				if code != http.StatusOK || len(quote.Quotes) == 0 {
					continue
				}
				offer := 1 + i%len(quote.Quotes)
				var acc acceptResponse
				code, err = do("POST", "/v1/accept", traceID,
					map[string]any{"session_id": quote.SessionID, "offer": offer}, &acc)
				if err != nil {
					t.Errorf("session %d: accept: %v", i, err)
					return
				}
				switch code {
				case http.StatusOK:
					mu.Lock()
					promises = append(promises, promise{
						jobID:    acc.JobID,
						deadline: int64(acc.Deadline),
						promised: quote.Quotes[offer-1].Success,
						traceID:  traceID,
					})
					mu.Unlock()
					return
				case http.StatusConflict, http.StatusNotFound:
					continue
				default:
					t.Errorf("session %d: accept returned %d", i, code)
					return
				}
			}
			t.Errorf("session %d: no acceptance in 200 attempts", i)
		}(i)
	}
	wg.Wait()
	<-chaosDone
	if t.Failed() {
		return
	}
	if len(promises) != sessions {
		t.Fatalf("%d promises from %d sessions", len(promises), sessions)
	}

	// Drive every promise to its verdict.
	var horizon int64
	for _, p := range promises {
		if p.deadline > horizon {
			horizon = p.deadline
		}
	}
	if code, err := do("POST", "/v1/advance", "", map[string]any{"to": horizon + 7200}, nil); err != nil || code != http.StatusOK {
		t.Fatalf("final advance: code %d, err %v", code, err)
	}

	// (a) The ledger holds each admitted session exactly once, terminal.
	var rep conformanceResponse
	if code, err := do("GET", "/qos/conformance?n=0", "", nil, &rep); err != nil || code != http.StatusOK {
		t.Fatalf("conformance: code %d, err %v", code, err)
	}
	if rep.Promises != sessions || len(rep.Entries) != sessions {
		t.Fatalf("ledger holds %d promises, %d rows; want %d", rep.Promises, len(rep.Entries), sessions)
	}
	byJob := make(map[int]trace.Promise, sessions)
	for _, e := range rep.Entries {
		if _, dup := byJob[e.JobID]; dup {
			t.Errorf("job %d appears twice in the ledger", e.JobID)
		}
		byJob[e.JobID] = e
		if e.Outcome != trace.OutcomeKept && e.Outcome != trace.OutcomeBroken {
			t.Errorf("job %d outcome %q past the horizon", e.JobID, e.Outcome)
		}
	}
	for _, p := range promises {
		e, ok := byJob[p.jobID]
		if !ok {
			t.Errorf("admitted job %d missing from the ledger", p.jobID)
			continue
		}
		if math.Abs(e.Promised-p.promised) > 1e-12 {
			t.Errorf("job %d: ledger promised %v, client accepted %v", p.jobID, e.Promised, p.promised)
		}
		if int64(e.Deadline) != p.deadline {
			t.Errorf("job %d: ledger deadline %d, client accepted %d", p.jobID, e.Deadline, p.deadline)
		}
	}

	// (b) Streaming stats equal an offline recomputation over the rows.
	kept, brierSum := 0, 0.0
	for _, e := range rep.Entries {
		outcome := 0.0
		if e.Outcome == trace.OutcomeKept {
			kept++
			outcome = 1
		}
		brierSum += (e.Promised - outcome) * (e.Promised - outcome)
	}
	if rep.Settled != sessions || rep.Kept != kept || rep.Broken != sessions-kept {
		t.Errorf("stats %+v; offline kept=%d broken=%d", rep.ConformanceStats, kept, sessions-kept)
	}
	if want := float64(kept) / float64(sessions); math.Abs(rep.KeepingRate-want) > 1e-9 {
		t.Errorf("keeping rate %v, offline %v", rep.KeepingRate, want)
	}
	if want := brierSum / float64(sessions); math.Abs(rep.Brier-want) > 1e-9 {
		t.Errorf("brier %v, offline %v", rep.Brier, want)
	}
	var binSettled int
	for _, b := range rep.Bins {
		binSettled += b.Settled
	}
	if binSettled != sessions {
		t.Errorf("reliability bins hold %d settled, want %d", binSettled, sessions)
	}
	// The scrape-side gauges tell the same story.
	m := scrapeMetrics(t, base)
	if got := m[`qosd_promises{outcome="kept"}`]; got != float64(kept) {
		t.Errorf(`qosd_promises{outcome="kept"} = %v, want %d`, got, kept)
	}
	if got := m[`qosd_promise_keeping_rate`]; math.Abs(got-rep.KeepingRate) > 1e-9 {
		t.Errorf("qosd_promise_keeping_rate = %v, want %v", got, rep.KeepingRate)
	}
	if _, ok := m[`go_goroutines`]; !ok {
		t.Error("runtime metrics missing from /metrics")
	}

	// (c) A sampled dialog's trace is valid Chrome JSON covering
	// quote → admit → WAL fsync.
	sample := promises[len(promises)-1]
	var chrome struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		Events          []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    float64           `json:"ts"`
			Dur   float64           `json:"dur"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	resp, err := http.Get(base + "/debug/trace?trace=" + sample.traceID)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: code %d, err %v", resp.StatusCode, err)
	}
	if err := json.Unmarshal(sampled, &chrome); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", chrome.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	for _, ev := range chrome.Events {
		if ev.Phase != "X" || ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("malformed event %+v", ev)
		}
		if ev.Args["trace"] != sample.traceID {
			t.Errorf("event %q belongs to trace %q, filtered for %s", ev.Name, ev.Args["trace"], sample.traceID)
		}
		seen[ev.Name] = true
	}
	for _, span := range []string{"http.quote", "quote", "http.accept", "admit", "wal.append"} {
		if !seen[span] {
			t.Errorf("sampled dialog trace missing span %q (has %v)", span, seen)
		}
	}

	// Ship the evidence when CI asks for it.
	if dir := os.Getenv("QOSD_E2E_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		full, err := http.Get(base + "/debug/trace")
		if err != nil {
			t.Fatal(err)
		}
		fullTrace, err := io.ReadAll(full.Body)
		full.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		conf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		for name, data := range map[string][]byte{
			"chrome-trace.json": fullTrace,
			"conformance.json":  conf,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("artifacts written to %s", dir)
	}
}
