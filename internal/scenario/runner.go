package scenario

import (
	"fmt"

	"probqos/internal/checkpoint"
	"probqos/internal/negotiate"
	"probqos/internal/sim"
	"probqos/internal/stats"
	//qoslint:allow obsimport the promise ledger is deterministic virtual-clock state, not wall-clock observability
	"probqos/internal/trace"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// maxQuoteOffers bounds the §3.5 dialog per submission: the runner walks at
// most this many successive offers looking for one whose promise clears the
// user's risk threshold before giving up (a rejected submission).
const maxQuoteOffers = 64

// policyFor maps a scenario policy name to the checkpoint policy it selects.
func policyFor(name string) (checkpoint.Policy, error) {
	switch name {
	case "risk":
		return checkpoint.RiskBased{}, nil
	case "periodic":
		return checkpoint.Periodic{}, nil
	case "never":
		return checkpoint.Never{}, nil
	}
	return nil, fmt.Errorf("unknown policy %q (one of risk, periodic, never)", name)
}

// Runner executes one scenario on a sim.Engine, step by step. A step is one
// timeline event; a final implicit step drains the engine and settles the
// last promises. The runner drives the engine exclusively through
// Admit/AdvanceTo/InjectFailure, which keeps the engine's operation journal
// faithful: Export/Resume mid-scenario reproduces the exact final report.
type Runner struct {
	scn    *Scenario
	eng    *sim.Engine
	ledger *trace.Ledger

	step      int // next timeline step; len(scn.Events)+1 total (final drain)
	nextJobID int
	submitted int
	rejected  int
	injected  int
}

// NewRunner validates the scenario, generates its background failure trace,
// and assembles the engine.
func NewRunner(s *Scenario) (*Runner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	eng, ledger, err := buildEngine(s)
	if err != nil {
		return nil, err
	}
	return &Runner{scn: s, eng: eng, ledger: ledger, nextJobID: 1}, nil
}

// buildEngine constructs the fresh engine + ledger pair a scenario defines;
// NewRunner and Resume share it so a resumed run restores onto an engine
// identical to the original.
func buildEngine(s *Scenario) (*sim.Engine, *trace.Ledger, error) {
	bg, err := backgroundTrace(s)
	if err != nil {
		return nil, nil, err
	}
	policy, err := policyFor(s.Fleet.Policy)
	if err != nil {
		return nil, nil, err
	}
	cfg := sim.DefaultConfig(nil, bg)
	cfg.Nodes = s.Fleet.Nodes
	cfg.Accuracy = s.Fleet.Accuracy
	cfg.UserRisk = s.Fleet.UserRisk
	cfg.Checkpoint = s.Fleet.Checkpoint
	cfg.Downtime = s.Fleet.Downtime
	cfg.Policy = policy
	cfg.FaultAware = s.Fleet.FaultAware
	cfg.DeadlineSkip = s.Fleet.DeadlineSkip
	cfg.BaseRateFloor = s.Fleet.BaseRateFloor
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return eng, trace.NewLedger(0), nil
}

// Scenario returns the scenario the runner executes.
func (r *Runner) Scenario() *Scenario { return r.scn }

// Done reports whether every step (including the final drain) has run.
func (r *Runner) Done() bool { return r.step > len(r.scn.Events) }

// Step applies the next timeline event (or, past the last event, the final
// drain-and-settle). It returns an error only for engine-level failures; a
// scenario that admits nothing is a valid — if dull — run.
func (r *Runner) Step() error {
	if r.Done() {
		return fmt.Errorf("scenario %s: already finished", r.scn.Name)
	}
	i := r.step
	r.step++
	if i == len(r.scn.Events) {
		if err := r.eng.Drain(); err != nil {
			return fmt.Errorf("scenario %s: drain: %w", r.scn.Name, err)
		}
		r.settle()
		return nil
	}
	ev := r.scn.Events[i]
	// Events are ordered, but a resumed engine may already sit past the
	// event instant (Restore replays to the journal clock); never rewind.
	at := ev.At.Max(r.eng.Now())
	if err := r.eng.AdvanceTo(at); err != nil {
		return fmt.Errorf("scenario %s: events[%d]: %w", r.scn.Name, i, err)
	}
	r.settle()
	switch ev.Action {
	case ActionArrivalBurst:
		if err := r.burst(i, ev); err != nil {
			return err
		}
	case ActionInjectFail:
		for k, node := range ev.Inject.Nodes {
			failAt := at.Add(ev.Inject.Stagger * units.Duration(k))
			if err := r.eng.InjectFailure(node, failAt); err != nil {
				return fmt.Errorf("scenario %s: events[%d]: %w", r.scn.Name, i, err)
			}
			r.injected++
		}
	case ActionMaintenance:
		// The cluster keeps the longest outage per node, so re-failing the
		// node every downtime keeps it contiguously dark for the window.
		m := ev.Maintenance
		for _, node := range m.Nodes {
			for off := units.Duration(0); off < m.Duration; off += r.scn.Fleet.Downtime {
				if err := r.eng.InjectFailure(node, at.Add(off)); err != nil {
					return fmt.Errorf("scenario %s: events[%d]: %w", r.scn.Name, i, err)
				}
				r.injected++
			}
		}
	case ActionMTBFShift:
		// Already folded into the background trace at generation time;
		// nothing to do at runtime.
	case ActionDrain:
		if err := r.eng.Drain(); err != nil {
			return fmt.Errorf("scenario %s: events[%d]: drain: %w", r.scn.Name, i, err)
		}
		r.settle()
	}
	return nil
}

// burst runs one arrival_burst: Jobs submissions spread evenly over the
// spread window, each quoting and admitting the first offer whose promised
// success clears the user risk. Job shapes come from a per-event stream
// derived statelessly from (seed, event index), so a resumed run re-derives
// the same jobs without replaying earlier bursts.
func (r *Runner) burst(i int, ev Event) error {
	b := ev.Burst
	rng := stats.NewSource(r.scn.Seed).Split(fmt.Sprintf("event-%d", i))
	u := b.UserRisk
	if u < 0 {
		u = r.scn.Fleet.UserRisk
	}
	user := negotiate.User{U: u}
	for k := 0; k < b.Jobs; k++ {
		nodes := b.MinNodes + rng.Intn(b.MaxNodes-b.MinNodes+1)
		exec := b.MinExec + units.Duration(rng.Int63n(int64(b.MaxExec-b.MinExec)+1))
		var arriveAt units.Time
		if b.Jobs > 1 {
			arriveAt = ev.At.Add(b.Spread * units.Duration(k) / units.Duration(b.Jobs-1))
		} else {
			arriveAt = ev.At
		}
		if err := r.eng.AdvanceTo(arriveAt.Max(r.eng.Now())); err != nil {
			return fmt.Errorf("scenario %s: events[%d] job %d: %w", r.scn.Name, i, k, err)
		}
		r.settle()
		r.submitted++
		quotes := r.eng.Quotes(nodes, exec, maxQuoteOffers)
		admitted := false
		for rank, q := range quotes {
			if !user.Accepts(q.Success) {
				continue
			}
			job := workload.Job{ID: r.nextJobID, Arrival: r.eng.Now(), Nodes: nodes, Exec: exec}
			if err := r.eng.Admit(job, q, rank+1); err != nil {
				return fmt.Errorf("scenario %s: events[%d] job %d: %w", r.scn.Name, i, k, err)
			}
			r.ledger.Admit(job.ID, "", q.Success, q.Deadline, r.eng.Now())
			r.nextJobID++
			admitted = true
			break
		}
		if !admitted {
			r.rejected++
		}
	}
	return nil
}

// settle resolves every open promise whose job reached a terminal state.
func (r *Runner) settle() {
	now := r.eng.Now()
	r.ledger.Settle(now, func(jobID int) (kept, terminal bool) {
		js, ok := r.eng.Job(jobID)
		if !ok {
			return false, false
		}
		return js.State == sim.JobCompleted, js.State.Terminal()
	})
}

// Run executes every remaining step and returns the final report.
func (r *Runner) Run() (*Report, error) {
	for !r.Done() {
		if err := r.Step(); err != nil {
			return nil, err
		}
	}
	return r.Report(), nil
}

// State is a mid-scenario snapshot: the scenario itself plus the engine's
// operation journal, the ledger, and the runner's counters. Resume on a
// fresh process reconstructs a runner that finishes with the exact report
// the uninterrupted run would have produced.
type State struct {
	Scenario  *Scenario         `json:"scenario"`
	Step      int               `json:"step"`
	NextJobID int               `json:"next_job_id"`
	Submitted int               `json:"submitted"`
	Rejected  int               `json:"rejected"`
	Injected  int               `json:"injected"`
	Engine    sim.EngineState   `json:"engine"`
	Ledger    trace.LedgerState `json:"ledger"`
}

// Export snapshots the runner between steps.
func (r *Runner) Export() State {
	return State{
		Scenario:  r.scn,
		Step:      r.step,
		NextJobID: r.nextJobID,
		Submitted: r.submitted,
		Rejected:  r.rejected,
		Injected:  r.injected,
		Engine:    r.eng.ExportState(),
		Ledger:    r.ledger.Export(),
	}
}

// Resume reconstructs a runner from an exported State: a fresh engine built
// from the scenario (identical config and background trace), the operation
// journal replayed, the ledger imported.
func Resume(st State) (*Runner, error) {
	if st.Scenario == nil {
		return nil, fmt.Errorf("scenario: resume state has no scenario")
	}
	if err := st.Scenario.Validate(); err != nil {
		return nil, err
	}
	eng, ledger, err := buildEngine(st.Scenario)
	if err != nil {
		return nil, err
	}
	if err := eng.Restore(st.Engine); err != nil {
		return nil, fmt.Errorf("scenario %s: resume: %w", st.Scenario.Name, err)
	}
	if err := ledger.Import(st.Ledger); err != nil {
		return nil, fmt.Errorf("scenario %s: resume: %w", st.Scenario.Name, err)
	}
	return &Runner{
		scn:       st.Scenario,
		eng:       eng,
		ledger:    ledger,
		step:      st.Step,
		nextJobID: st.NextJobID,
		submitted: st.Submitted,
		rejected:  st.Rejected,
		injected:  st.Injected,
	}, nil
}
