package scenario

import (
	"strings"
	"testing"
)

// FuzzDecodeScenario hammers both scenario decoders — the YAML-subset
// parser and the positional JSON parser — through the shared binder.
// The decoder must never panic, and every scenario it does accept must
// satisfy Validate: the runner builds engines and failure traces straight
// from these fields, so an accepted-but-invalid document would turn a
// config mistake into a runtime fault.
func FuzzDecodeScenario(f *testing.F) {
	// Full-surface documents in both encodings.
	f.Add("zoo.yaml", []byte(yamlDoc))
	f.Add("zoo.json", []byte(jsonDoc))

	// Minimal valid documents.
	f.Add("min.yaml", []byte("name: n\nseed: 1\nfleet:\n  nodes: 4\n"))
	f.Add("min.json", []byte(`{"name": "n", "seed": 1, "fleet": {"nodes": 4}}`))

	// Structural edge cases the hand-written parsers must reject cleanly.
	f.Add("bad.yaml", []byte("\tname: tabbed\n"))
	f.Add("bad.yaml", []byte("name: a\nname: b\n"))
	f.Add("bad.yaml", []byte("seed: {inline: map}\n"))
	f.Add("bad.yaml", []byte("events:\n  - at_s: 0\n    action: explode\n"))
	f.Add("bad.yaml", []byte("fleet:\n  nodes: [1, 2\n"))
	f.Add("bad.yaml", []byte("name: \"unterminated\n"))
	f.Add("bad.yaml", []byte("deep:\n  deep:\n    deep:\n      deep: 1\n"))
	f.Add("bad.yaml", []byte("- just\n- a\n- list\n"))
	f.Add("bad.yaml", []byte("key:\n"))
	f.Add("bad.yaml", []byte("#only a comment\n"))
	f.Add("bad.json", []byte(`{"name": "n"} trailing`))
	f.Add("bad.json", []byte(`{"name": "n", "name": "dup"}`))
	f.Add("bad.json", []byte(`{"seed": 1e999}`))
	f.Add("bad.json", []byte(`{"seed": null}`))
	f.Add("bad.json", []byte(`[1, 2, 3]`))
	f.Add("bad.json", []byte(`{"a": {"b": {"c": {"d": "e"`))
	f.Add("bad.json", []byte(`"just a string"`))
	f.Add("bad.json", []byte(``))
	f.Add("bad.json", []byte(`{`))
	f.Add("bad.json", []byte("{\"name\": \"\x00\"}"))

	f.Fuzz(func(t *testing.T, name string, data []byte) {
		// The extension picks the parser; keep it one of the two real
		// ones so both sides of Decode stay under fuzz pressure.
		if !strings.HasSuffix(name, ".json") {
			name = strings.TrimSuffix(name, ".yaml") + ".yaml"
		}
		s, err := Decode(name, data)
		if err != nil {
			if s != nil {
				t.Fatalf("Decode(%q) returned both a scenario and error %v", data, err)
			}
			return
		}
		if s == nil {
			t.Fatalf("Decode(%q) returned neither scenario nor error", data)
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Decode(%q) accepted a scenario that fails Validate: %v", data, verr)
		}
	})
}
