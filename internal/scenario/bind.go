package scenario

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"probqos/internal/units"
)

// Decode parses and validates one scenario file. The format follows the
// file name: ".json" selects the JSON parser, anything else the YAML
// subset. Errors carry file:line:col positions; when several fields are
// bad, all of them are reported (joined), so one validate pass shows the
// whole damage.
func Decode(name string, data []byte) (*Scenario, error) {
	var root *node
	var err error
	if strings.HasSuffix(name, ".json") {
		root, err = parseJSON(name, data)
	} else {
		root, err = parseYAML(name, data)
	}
	if err != nil {
		return nil, err
	}
	b := &binder{}
	s := b.scenario(root)
	if err := errors.Join(b.errs...); err != nil {
		return nil, err
	}
	// Semantic cross-field rules (event ordering, ranges against fleet
	// size). The binder caught every shape/type problem with positions;
	// these remaining rules are scenario-level, so the file name is the
	// position.
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// maxBindErrors caps the error list so a pathological document cannot
// produce an unbounded report.
const maxBindErrors = 20

type binder struct {
	errs []error
}

func (b *binder) errf(pos Pos, format string, args ...any) {
	if len(b.errs) >= maxBindErrors {
		return
	}
	b.errs = append(b.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// fields wraps a map node, tracking which keys the binder consumed so
// leftovers become "unknown key" errors pointing at the stray entry.
type fields struct {
	b    *binder
	n    *node
	used map[string]bool
}

func (b *binder) fields(n *node) *fields {
	return &fields{b: b, n: n, used: make(map[string]bool)}
}

// get returns the child for key, or nil if absent.
func (f *fields) get(key string) *node {
	f.used[key] = true
	return f.n.children[key]
}

// require returns the child for key, recording an error if absent.
func (f *fields) require(key string) *node {
	c := f.get(key)
	if c == nil {
		f.b.errf(f.n.pos, "missing required key %q", key)
	}
	return c
}

// finish flags any keys the caller never consumed.
func (f *fields) finish() {
	for _, key := range f.n.keys {
		if !f.used[key] {
			f.b.errf(f.n.children[key].pos, "unknown key %q", key)
		}
	}
}

// asMap checks that n is a mapping and returns its fields (nil on mismatch
// or absence, after recording the error for mismatches).
func (b *binder) asMap(n *node, what string) *fields {
	if n == nil {
		return nil
	}
	if n.kind != mapNode {
		b.errf(n.pos, "%s must be a mapping, got a %s", what, n.kind)
		return nil
	}
	return b.fields(n)
}

func (b *binder) scalar(n *node, what string) (string, bool) {
	if n == nil {
		return "", false
	}
	if n.kind != scalarNode || n.null {
		b.errf(n.pos, "%s must be a scalar, got a %s", what, n.kind)
		return "", false
	}
	return n.scalar, true
}

func (b *binder) str(n *node, what string) string {
	s, ok := b.scalar(n, what)
	if !ok {
		return ""
	}
	return s
}

func (b *binder) integer(n *node, what string) int64 {
	s, ok := b.scalar(n, what)
	if !ok {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		b.errf(n.pos, "%s must be an integer, got %q", what, s)
		return 0
	}
	return v
}

func (b *binder) float(n *node, what string) float64 {
	s, ok := b.scalar(n, what)
	if !ok {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		b.errf(n.pos, "%s must be a finite number, got %q", what, s)
		return 0
	}
	return v
}

func (b *binder) boolean(n *node, what string) bool {
	s, ok := b.scalar(n, what)
	if !ok {
		return false
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	b.errf(n.pos, "%s must be true or false, got %q", what, s)
	return false
}

func (b *binder) duration(n *node, what string) units.Duration {
	return units.Duration(b.integer(n, what+" (seconds)"))
}

func (b *binder) intList(n *node, what string) []int {
	if n == nil {
		return nil
	}
	if n.kind != listNode {
		b.errf(n.pos, "%s must be a list, got a %s", what, n.kind)
		return nil
	}
	out := make([]int, 0, len(n.items))
	for _, item := range n.items {
		out = append(out, int(b.integer(item, what+" element")))
	}
	return out
}

func (b *binder) scenario(root *node) *Scenario {
	s := &Scenario{}
	f := b.fields(root)
	s.Name = b.str(f.require("name"), "name")
	if d := f.get("description"); d != nil {
		s.Description = b.str(d, "description")
	}
	s.Seed = b.integer(f.require("seed"), "seed")
	if fl := b.asMap(f.require("fleet"), "fleet"); fl != nil {
		s.Fleet = b.fleet(fl)
	}
	if ev := f.get("events"); ev != nil {
		if ev.kind != listNode {
			b.errf(ev.pos, "events must be a list, got a %s", ev.kind)
		} else {
			for _, item := range ev.items {
				if ef := b.asMap(item, "event"); ef != nil {
					s.Events = append(s.Events, b.event(ef))
				}
			}
		}
	}
	if as := f.get("assertions"); as != nil {
		if as.kind != listNode {
			b.errf(as.pos, "assertions must be a list, got a %s", as.kind)
		} else {
			for _, item := range as.items {
				if af := b.asMap(item, "assertion"); af != nil {
					s.Asserts = append(s.Asserts, b.assertion(af))
				}
			}
		}
	}
	f.finish()
	return s
}

func (b *binder) fleet(f *fields) Fleet {
	var fl Fleet
	fl.Nodes = int(b.integer(f.require("nodes"), "fleet.nodes"))
	if n := f.get("rack_size"); n != nil {
		fl.RackSize = int(b.integer(n, "fleet.rack_size"))
	}
	fl.Accuracy = b.float(f.require("accuracy"), "fleet.accuracy")
	fl.UserRisk = b.float(f.require("user_risk"), "fleet.user_risk")
	if cp := b.asMap(f.require("checkpoint"), "fleet.checkpoint"); cp != nil {
		fl.Checkpoint.Interval = b.duration(cp.require("interval_s"), "checkpoint.interval_s")
		fl.Checkpoint.Overhead = b.duration(cp.require("overhead_s"), "checkpoint.overhead_s")
		cp.finish()
	}
	fl.Downtime = b.duration(f.require("downtime_s"), "fleet.downtime_s")
	fl.Policy = b.str(f.require("policy"), "fleet.policy")
	// The scheduling switches default on, matching sim.DefaultConfig.
	fl.FaultAware, fl.DeadlineSkip, fl.BaseRateFloor = true, true, true
	if n := f.get("fault_aware"); n != nil {
		fl.FaultAware = b.boolean(n, "fleet.fault_aware")
	}
	if n := f.get("deadline_skip"); n != nil {
		fl.DeadlineSkip = b.boolean(n, "fleet.deadline_skip")
	}
	if n := f.get("base_rate_floor"); n != nil {
		fl.BaseRateFloor = b.boolean(n, "fleet.base_rate_floor")
	}
	if fm := b.asMap(f.get("failures"), "fleet.failures"); fm != nil {
		if n := fm.get("mtbf_s"); n != nil {
			fl.Failures.MTBF = b.duration(n, "failures.mtbf_s")
		}
		fl.Failures.Shape = 1
		if n := fm.get("shape"); n != nil {
			fl.Failures.Shape = b.float(n, "failures.shape")
		}
		if n := fm.get("horizon_s"); n != nil {
			fl.Failures.Horizon = b.duration(n, "failures.horizon_s")
		}
		fm.finish()
	}
	f.finish()
	return fl
}

func (b *binder) event(f *fields) Event {
	var ev Event
	ev.At = units.Time(b.integer(f.require("at_s"), "event.at_s"))
	ev.Action = b.str(f.require("action"), "event.action")
	switch ev.Action {
	case ActionArrivalBurst:
		if bf := b.asMap(f.require("burst"), "burst"); bf != nil {
			ev.Burst = b.burst(bf)
		}
	case ActionInjectFail:
		if inf := b.asMap(f.require("inject"), "inject"); inf != nil {
			ev.Inject = &Inject{Nodes: b.intList(inf.require("nodes"), "inject.nodes")}
			if n := inf.get("stagger_s"); n != nil {
				ev.Inject.Stagger = b.duration(n, "inject.stagger_s")
			}
			inf.finish()
		}
	case ActionMaintenance:
		if mf := b.asMap(f.require("maintenance"), "maintenance"); mf != nil {
			ev.Maintenance = &Maintenance{
				Nodes:    b.intList(mf.require("nodes"), "maintenance.nodes"),
				Duration: b.duration(mf.require("duration_s"), "maintenance.duration_s"),
			}
			mf.finish()
		}
	case ActionMTBFShift:
		if sf := b.asMap(f.require("shift"), "shift"); sf != nil {
			ev.Shift = &Shift{Factor: b.float(sf.require("factor"), "shift.factor")}
			sf.finish()
		}
	case ActionDrain:
		// No payload.
	default:
		if ev.Action != "" {
			b.errf(f.n.pos, "unknown action %q (one of %s, %s, %s, %s, %s)",
				ev.Action, ActionArrivalBurst, ActionInjectFail, ActionMaintenance, ActionMTBFShift, ActionDrain)
		}
	}
	f.finish()
	return ev
}

func (b *binder) burst(f *fields) *Burst {
	bu := &Burst{UserRisk: -1}
	bu.Jobs = int(b.integer(f.require("jobs"), "burst.jobs"))
	bu.MinNodes = int(b.integer(f.require("min_nodes"), "burst.min_nodes"))
	bu.MaxNodes = int(b.integer(f.require("max_nodes"), "burst.max_nodes"))
	bu.MinExec = b.duration(f.require("min_exec_s"), "burst.min_exec_s")
	bu.MaxExec = b.duration(f.require("max_exec_s"), "burst.max_exec_s")
	if n := f.get("spread_s"); n != nil {
		bu.Spread = b.duration(n, "burst.spread_s")
	}
	if n := f.get("user_risk"); n != nil {
		bu.UserRisk = b.float(n, "burst.user_risk")
	}
	f.finish()
	return bu
}

func (b *binder) assertion(f *fields) Assertion {
	var a Assertion
	a.Type = b.str(f.require("type"), "assertion.type")
	if n := f.get("min"); n != nil {
		a.Min = b.float(n, "assertion.min")
	}
	if n := f.get("max"); n != nil {
		a.Max = b.float(n, "assertion.max")
	}
	if n := f.get("slack"); n != nil {
		a.Slack = b.float(n, "assertion.slack")
	}
	f.finish()
	return a
}
