package scenario

import "fmt"

// The decoders (JSON and the YAML subset) both parse into this generic,
// position-carrying document tree; one binder then turns the tree into a
// Scenario. Keeping positions on every node is what lets `qossim validate`
// point at the exact file:line:col of a bad field in either format.

// Pos is a source position in a scenario file.
type Pos struct {
	Name string // file name as given to Decode
	Line int    // 1-based
	Col  int    // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.Name, p.Line, p.Col) }

type nodeKind int

const (
	scalarNode nodeKind = iota + 1
	mapNode
	listNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case listNode:
		return "list"
	}
	return "unknown"
}

// node is one value in a parsed scenario document.
type node struct {
	pos  Pos
	kind nodeKind

	// Scalar payload. quoted records whether the text came from a quoted
	// string (so "42" stays a string-looking scalar the binder can still
	// coerce); null marks a JSON null, which no field accepts.
	scalar string
	quoted bool
	null   bool

	// Map payload, with keys in source order for deterministic iteration.
	keys     []string
	children map[string]*node

	// List payload.
	items []*node
}

func newMapNode(pos Pos) *node {
	return &node{pos: pos, kind: mapNode, children: make(map[string]*node)}
}

// put adds a map entry, reporting duplicate keys.
func (n *node) put(key string, child *node) error {
	if _, dup := n.children[key]; dup {
		return fmt.Errorf("%s: duplicate key %q", child.pos, key)
	}
	n.keys = append(n.keys, key)
	n.children[key] = child
	return nil
}

// maxDepth bounds document nesting in both parsers, so hostile inputs (the
// fuzz target feeds plenty) cannot drive the recursive descent arbitrarily
// deep. Real scenarios nest four levels.
const maxDepth = 64
