package scenario

import (
	"fmt"
	"math"

	"probqos/internal/failure"
	"probqos/internal/stats"
	"probqos/internal/units"
)

// maxBackgroundFailures caps trace generation so a scenario with a tiny
// shifted MTBF over a long horizon fails loudly instead of allocating an
// absurd trace.
const maxBackgroundFailures = 200_000

// backgroundTrace generates the scenario's background failure trace: Weibull
// inter-failure gaps at the fleet MTBF, with mtbf_shift timeline events
// folded in as piecewise rate changes (each gap is sampled at the rate in
// effect at the instant the gap starts). Node choice and detectability come
// from the same seeded stream, so the whole trace is a pure function of the
// scenario. The predictor prices these failures in at the fleet accuracy —
// unlike inject_failure events, which stay invisible surprises.
func backgroundTrace(s *Scenario) (*failure.Trace, error) {
	fm := s.Fleet.Failures
	if fm.MTBF <= 0 {
		return failure.NewTrace(s.Fleet.Nodes, nil)
	}
	horizon := fm.Horizon
	if horizon == 0 {
		horizon = units.Duration(s.LastEventAt()) + 2*units.Week
	}
	type segment struct {
		at     units.Time
		factor float64
	}
	segments := []segment{{0, 1}}
	for _, ev := range s.Events {
		if ev.Action == ActionMTBFShift {
			segments = append(segments, segment{ev.At, ev.Shift.Factor})
		}
	}
	src := stats.NewSource(s.Seed).Split("background-failures")
	// Weibull mean = scale * Gamma(1 + 1/shape); invert for the scale that
	// hits the target MTBF.
	gamma := math.Gamma(1 + 1/fm.Shape)
	var events []failure.Event
	t := 0.0
	end := horizon.Seconds()
	for t < end {
		factor := 1.0
		for _, seg := range segments {
			if float64(seg.at) <= t {
				factor = seg.factor
			}
		}
		t += src.Weibull(fm.Shape, fm.MTBF.Seconds()*factor/gamma)
		if t >= end {
			break
		}
		if len(events) >= maxBackgroundFailures {
			return nil, fmt.Errorf("scenario %s: background failure model generates more than %d failures over %v; raise the MTBF or shrink the horizon",
				s.Name, maxBackgroundFailures, horizon)
		}
		events = append(events, failure.Event{
			Time:          units.Time(math.Round(t)),
			Node:          src.Intn(s.Fleet.Nodes),
			Detectability: src.Float64(),
		})
	}
	return failure.NewTrace(s.Fleet.Nodes, events)
}
