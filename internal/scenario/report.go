package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"probqos/internal/sim"
	//qoslint:allow obsimport the conformance stats embedded in the report come from the deterministic ledger
	"probqos/internal/trace"
	"probqos/internal/units"
)

// Report is the machine-readable outcome of one scenario run. Field order
// and float formatting are stable, so equal runs serialize byte-identically
// (the golden zoo depends on it).
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// FinalClock is the virtual instant the run ended on (after the final
	// drain, the last processed event).
	FinalClock units.Time `json:"final_clock_s"`

	Jobs        JobsReport             `json:"jobs"`
	Metrics     MetricsReport          `json:"metrics"`
	Conformance trace.ConformanceStats `json:"conformance"`

	Assertions []AssertionResult `json:"assertions"`
	// OK is true when every assertion held (vacuously true with none).
	OK bool `json:"ok"`
}

// JobsReport counts submissions and their fates.
type JobsReport struct {
	// Submitted = Admitted + Rejected; Admitted = Completed + Missed after
	// the final drain (every admitted job reaches a terminal state).
	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Missed    int `json:"missed"`
	// InjectedFailures counts unpredicted failures the timeline injected
	// (inject_failure plus maintenance re-failures), not background ones.
	InjectedFailures int `json:"injected_failures"`
}

// MetricsReport mirrors the offline metrics over the scenario's jobs.
type MetricsReport struct {
	// QoS is the paper's aggregate: sum(e*n*q*p) / sum(e*n) with q = 1 for
	// jobs that met their deadline.
	QoS float64 `json:"qos"`
	// Utilization is useful work over Span * Nodes.
	Utilization float64 `json:"utilization"`
	// Span runs from 0 to the latest job finish (or deadline for jobs the
	// engine never finished by then).
	Span               units.Duration `json:"span_s"`
	TotalWorkNodeHours float64        `json:"total_work_node_hours"`
	LostWorkNodeHours  float64        `json:"lost_work_node_hours"`
	MeanPromise        float64        `json:"mean_promise"`
	DeadlineMissRate   float64        `json:"deadline_miss_rate"`
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Type   string `json:"type"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Report evaluates the scenario's assertions against the engine's final
// state and assembles the run report. Calling it mid-run is allowed (the
// CLI does not, but tests may); assertions then see the partial state.
func (r *Runner) Report() *Report {
	rep := &Report{
		Scenario:   r.scn.Name,
		Seed:       r.scn.Seed,
		FinalClock: r.eng.Now(),
		Jobs: JobsReport{
			Submitted:        r.submitted,
			Rejected:         r.rejected,
			InjectedFailures: r.injected,
		},
		Conformance: r.ledger.Stats(),
	}

	var (
		totalWork float64 // sum e_j * n_j, node-seconds
		qosNum    float64
		lostWork  units.Work
		promised  float64
		span      units.Time
	)
	for _, id := range r.eng.JobIDs() {
		js, ok := r.eng.Job(id)
		if !ok {
			continue
		}
		rep.Jobs.Admitted++
		w := js.Exec.Seconds() * float64(js.Nodes)
		totalWork += w
		promised += js.Promised
		lostWork += js.LostWork
		span = span.Max(js.Finish).Max(js.Deadline)
		switch js.State {
		case sim.JobCompleted:
			rep.Jobs.Completed++
			qosNum += w * js.Promised
		case sim.JobMissed:
			rep.Jobs.Missed++
		}
	}
	m := &rep.Metrics
	m.Span = units.Duration(span)
	m.TotalWorkNodeHours = totalWork / units.Hour.Seconds()
	m.LostWorkNodeHours = lostWork.NodeSeconds() / units.Hour.Seconds()
	if totalWork > 0 {
		m.QoS = qosNum / totalWork
	}
	if m.Span > 0 && r.scn.Fleet.Nodes > 0 {
		m.Utilization = totalWork / (m.Span.Seconds() * float64(r.scn.Fleet.Nodes))
	}
	if rep.Jobs.Admitted > 0 {
		m.MeanPromise = promised / float64(rep.Jobs.Admitted)
		m.DeadlineMissRate = float64(rep.Jobs.Missed) / float64(rep.Jobs.Admitted)
	}

	rep.OK = true
	for _, a := range r.scn.Asserts {
		res := evalAssertion(a, rep)
		rep.Assertions = append(rep.Assertions, res)
		rep.OK = rep.OK && res.OK
	}
	return rep
}

// evalAssertion checks one assertion against the assembled report.
func evalAssertion(a Assertion, rep *Report) AssertionResult {
	res := AssertionResult{Type: a.Type}
	ge := func(what string, got, min float64) {
		res.OK = got >= min
		res.Detail = fmt.Sprintf("%s %.6f (min %.6f)", what, got, min)
	}
	le := func(what string, got, max float64) {
		res.OK = got <= max
		res.Detail = fmt.Sprintf("%s %.6f (max %.6f)", what, got, max)
	}
	switch a.Type {
	case AssertQoSFloor:
		ge("qos", rep.Metrics.QoS, a.Min)
	case AssertPromiseKeeping:
		ge("keeping_rate", rep.Conformance.KeepingRate, a.Min)
	case AssertUtilizationBand:
		u := rep.Metrics.Utilization
		res.OK = u >= a.Min && u <= a.Max
		res.Detail = fmt.Sprintf("utilization %.6f (band [%.6f, %.6f])", u, a.Min, a.Max)
	case AssertMaxLostWork:
		le("lost_work_node_hours", rep.Metrics.LostWorkNodeHours, a.Max)
	case AssertMaxMissRate:
		le("deadline_miss_rate", rep.Metrics.DeadlineMissRate, a.Max)
	case AssertMinCompleted:
		res.OK = float64(rep.Jobs.Completed) >= a.Min
		res.Detail = fmt.Sprintf("completed %d (min %.0f)", rep.Jobs.Completed, a.Min)
	case AssertHonestPromises:
		res.OK = true
		res.Detail = "every populated bin honest"
		worst := 0.0
		for _, bin := range rep.Conformance.Bins {
			if bin.Settled == 0 {
				continue
			}
			if short := bin.PromisedMean - bin.Observed; short > a.Slack && short > worst {
				worst = short
				res.OK = false
				res.Detail = fmt.Sprintf("bin [%.1f,%.1f) observed %.6f below promised %.6f by %.6f (slack %.6f)",
					bin.Lo, bin.Hi, bin.Observed, bin.PromisedMean, short, a.Slack)
			}
		}
	default:
		// Validate rejects unknown types; reaching here means the report
		// was asked about an assertion the schema does not define.
		res.Detail = fmt.Sprintf("unknown assertion type %q", a.Type)
	}
	return res
}

// Failed returns the assertions that did not hold.
func (rep *Report) Failed() []AssertionResult {
	var out []AssertionResult
	for _, a := range rep.Assertions {
		if !a.OK {
			out = append(out, a)
		}
	}
	return out
}

// WriteJSON writes the report as stable, indented JSON with a trailing
// newline — the byte-exact form the golden zoo stores.
func (rep *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
