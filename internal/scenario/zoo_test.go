package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden zoo reports")

// zooFiles lists every scenario in the zoo, sorted by name so test order
// is stable.
func zooFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pattern := range []string{"zoo/*.yaml", "zoo/*.yml", "zoo/*.json"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	sort.Strings(files)
	if len(files) < 10 {
		t.Fatalf("the zoo holds %d scenarios; it must keep at least 10", len(files))
	}
	return files
}

func decodeFile(t *testing.T, path string) *Scenario {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Decode(path, data)
	if err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return s
}

func runToBytes(t *testing.T, s *Scenario) []byte {
	t.Helper()
	r, err := NewRunner(s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return buf.Bytes()
}

// firstDiff returns the offset of the first differing byte, with a short
// context excerpt from each side.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("offset %d:\n  golden: %q\n  got:    %q", i, a[lo:min(i+40, len(a))], b[lo:min(i+40, len(b))])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// saveArtifact dumps a failing report next to the golden name when
// SCENARIO_ARTIFACTS points at a directory, so CI can upload the evidence.
func saveArtifact(t *testing.T, name string, report []byte) {
	dir := os.Getenv("SCENARIO_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, report, 0o644); err != nil {
		t.Logf("artifact write: %v", err)
		return
	}
	t.Logf("failing report saved to %s", path)
}

func goldenPath(scenarioFile string) string {
	base := strings.TrimSuffix(filepath.Base(scenarioFile), filepath.Ext(scenarioFile))
	return filepath.Join("testdata", "golden", base+".json")
}

// TestZooGolden runs every zoo scenario and compares its report
// byte-for-byte against the checked-in golden. Run with -update after an
// intentional behaviour change.
func TestZooGolden(t *testing.T) {
	for _, file := range zooFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			s := decodeFile(t, file)
			got := runToBytes(t, s)

			// Every zoo scenario must hold its own assertions: the zoo is
			// the regression gate, and a checked-in failing scenario would
			// gate nothing.
			var rep Report
			if err := json.Unmarshal(got, &rep); err != nil {
				t.Fatalf("report does not parse back: %v", err)
			}
			if !rep.OK {
				for _, a := range rep.Failed() {
					t.Errorf("assertion failed: %s: %s", a.Type, a.Detail)
				}
			}

			gp := goldenPath(file)
			if *update {
				if err := os.WriteFile(gp, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(gp)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				saveArtifact(t, filepath.Base(gp), got)
				t.Errorf("report drifted from golden %s\n%s", gp, firstDiff(want, got))
			}
		})
	}
}

// TestZooByteIdenticalAcrossRuns runs each scenario twice in-process:
// identical seeds must produce identical bytes, with no state bleeding
// between runs.
func TestZooByteIdenticalAcrossRuns(t *testing.T) {
	for _, file := range zooFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			s := decodeFile(t, file)
			first := runToBytes(t, s)
			second := runToBytes(t, s)
			if !bytes.Equal(first, second) {
				saveArtifact(t, "rerun-"+filepath.Base(goldenPath(file)), second)
				t.Errorf("same scenario, different bytes\n%s", firstDiff(first, second))
			}
		})
	}
}

// TestZooExportResume interrupts each scenario halfway, round-trips the
// runner state through JSON (as a crash/restart would), resumes on a fresh
// runner, and demands the byte-exact report of the uninterrupted run.
func TestZooExportResume(t *testing.T) {
	for _, file := range zooFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			s := decodeFile(t, file)
			want := runToBytes(t, s)

			r, err := NewRunner(s)
			if err != nil {
				t.Fatal(err)
			}
			half := (len(s.Events) + 1) / 2
			for i := 0; i < half; i++ {
				if err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := json.Marshal(r.Export())
			if err != nil {
				t.Fatal(err)
			}
			var st State
			if err := json.Unmarshal(blob, &st); err != nil {
				t.Fatal(err)
			}
			resumed, err := Resume(st)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := resumed.Run()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				saveArtifact(t, "resume-"+filepath.Base(goldenPath(file)), buf.Bytes())
				t.Errorf("resumed run diverged from uninterrupted run\n%s", firstDiff(want, buf.Bytes()))
			}
		})
	}
}
