package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// A small recursive-descent JSON parser. encoding/json would happily decode
// scenario files, but it cannot say *where* a bad field sits; this parser
// produces the same position-carrying node tree the YAML-subset parser
// does, so `qossim validate` reports file:line:col for both formats.

type jsonParser struct {
	name string
	data []byte
	i    int // byte offset
	line int // 1-based
	col  int // 1-based
}

func parseJSON(name string, data []byte) (*node, error) {
	p := &jsonParser{name: name, data: data, line: 1, col: 1}
	p.skipSpace()
	root, err := p.parseValue(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i < len(p.data) {
		return nil, fmt.Errorf("%s: trailing data after the top-level value", p.pos())
	}
	if root.kind != mapNode {
		return nil, fmt.Errorf("%s: scenario document must be an object", root.pos)
	}
	return root, nil
}

func (p *jsonParser) pos() Pos { return Pos{p.name, p.line, p.col} }

func (p *jsonParser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.pos(), fmt.Sprintf(format, args...))
}

// advance consumes n bytes, tracking line/col.
func (p *jsonParser) advance(n int) {
	for k := 0; k < n && p.i < len(p.data); k++ {
		if p.data[p.i] == '\n' {
			p.line++
			p.col = 1
		} else {
			p.col++
		}
		p.i++
	}
}

func (p *jsonParser) skipSpace() {
	for p.i < len(p.data) {
		switch p.data[p.i] {
		case ' ', '\t', '\r', '\n':
			p.advance(1)
		default:
			return
		}
	}
}

func (p *jsonParser) peek() (byte, bool) {
	if p.i >= len(p.data) {
		return 0, false
	}
	return p.data[p.i], true
}

func (p *jsonParser) expect(c byte) error {
	got, ok := p.peek()
	if !ok {
		return p.errf("unexpected end of input, expected %q", string(c))
	}
	if got != c {
		return p.errf("expected %q, got %q", string(c), string(got))
	}
	p.advance(1)
	return nil
}

func (p *jsonParser) parseValue(depth int) (*node, error) {
	if depth > maxDepth {
		return nil, p.errf("document nests deeper than %d levels", maxDepth)
	}
	c, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of input")
	}
	switch {
	case c == '{':
		return p.parseObject(depth)
	case c == '[':
		return p.parseArray(depth)
	case c == '"':
		pos := p.pos()
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		return &node{pos: pos, kind: scalarNode, scalar: s, quoted: true}, nil
	case c == 't' || c == 'f' || c == 'n':
		return p.parseLiteral()
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return nil, p.errf("unexpected character %q", string(c))
	}
}

func (p *jsonParser) parseObject(depth int) (*node, error) {
	n := newMapNode(p.pos())
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	p.skipSpace()
	if c, ok := p.peek(); ok && c == '}' {
		p.advance(1)
		return n, nil
	}
	for {
		p.skipSpace()
		if c, _ := p.peek(); c != '"' {
			return nil, p.errf("expected a quoted object key")
		}
		keyPos := p.pos()
		key, err := p.parseString()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		p.skipSpace()
		child, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, dup := n.children[key]; dup {
			return nil, fmt.Errorf("%s: duplicate key %q", keyPos, key)
		}
		n.keys = append(n.keys, key)
		n.children[key] = child
		p.skipSpace()
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("unexpected end of input inside object")
		}
		if c == ',' {
			p.advance(1)
			continue
		}
		if c == '}' {
			p.advance(1)
			return n, nil
		}
		return nil, p.errf("expected ',' or '}' in object, got %q", string(c))
	}
}

func (p *jsonParser) parseArray(depth int) (*node, error) {
	n := &node{pos: p.pos(), kind: listNode}
	if err := p.expect('['); err != nil {
		return nil, err
	}
	p.skipSpace()
	if c, ok := p.peek(); ok && c == ']' {
		p.advance(1)
		return n, nil
	}
	for {
		p.skipSpace()
		item, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
		p.skipSpace()
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("unexpected end of input inside array")
		}
		if c == ',' {
			p.advance(1)
			continue
		}
		if c == ']' {
			p.advance(1)
			return n, nil
		}
		return nil, p.errf("expected ',' or ']' in array, got %q", string(c))
	}
}

// parseString consumes a JSON string token and returns its decoded value.
func (p *jsonParser) parseString() (string, error) {
	start := p.i
	if err := p.expect('"'); err != nil {
		return "", err
	}
	for p.i < len(p.data) {
		switch p.data[p.i] {
		case '\\':
			p.advance(1)
			if p.i >= len(p.data) {
				return "", p.errf("unexpected end of input in string escape")
			}
			p.advance(1)
		case '"':
			p.advance(1)
			raw := string(p.data[start:p.i])
			s, err := strconv.Unquote(raw)
			if err != nil {
				return "", fmt.Errorf("%s: bad string %s", Pos{p.name, p.line, p.col}, raw)
			}
			return s, nil
		case '\n':
			return "", p.errf("unescaped newline in string")
		default:
			p.advance(1)
		}
	}
	return "", p.errf("unterminated string")
}

func (p *jsonParser) parseLiteral() (*node, error) {
	pos := p.pos()
	for _, lit := range []string{"true", "false", "null"} {
		if strings.HasPrefix(string(p.data[p.i:]), lit) {
			p.advance(len(lit))
			if c, ok := p.peek(); ok && isJSONBare(c) {
				return nil, fmt.Errorf("%s: unexpected characters after %q", pos, lit)
			}
			n := &node{pos: pos, kind: scalarNode, scalar: lit}
			n.null = lit == "null"
			return n, nil
		}
	}
	return nil, p.errf("unexpected literal")
}

func (p *jsonParser) parseNumber() (*node, error) {
	pos := p.pos()
	start := p.i
	for p.i < len(p.data) && isJSONBare(p.data[p.i]) {
		p.advance(1)
	}
	text := string(p.data[start:p.i])
	if _, err := strconv.ParseFloat(text, 64); err != nil {
		return nil, fmt.Errorf("%s: bad number %q", pos, text)
	}
	return &node{pos: pos, kind: scalarNode, scalar: text}, nil
}

// isJSONBare reports whether c can continue a bare number/literal token.
func isJSONBare(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		c == '+' || c == '-' || c == '.'
}
