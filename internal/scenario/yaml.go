package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// A minimal YAML-subset parser: enough for scenario files to read like the
// fleet-simulator YAML they are modeled on, without importing a YAML
// library (the module is stdlib-only). The subset is:
//
//   - block mappings (`key: value`, or `key:` opening an indented block)
//   - block lists (`- item`, where an item may open an inline mapping
//     whose further keys sit on following lines, aligned after the dash)
//   - flow lists of scalars (`[1, 2, 3]`)
//   - scalars: bare text, double-quoted strings, numbers, booleans
//   - `#` comments (whole-line and trailing) and blank lines
//
// Indentation is spaces only; tabs are an error. Anything outside the
// subset is a positioned parse error, never a guess.

// yline is one content-bearing line of the file.
type yline struct {
	indent int    // leading spaces
	text   string // content with indentation and trailing comment stripped
	line   int    // 1-based source line
}

type yamlParser struct {
	name  string
	lines []yline
	i     int
}

func parseYAML(name string, data []byte) (*node, error) {
	p := &yamlParser{name: name}
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		rest := line[indent:]
		if rest == "" || rest[0] == '#' {
			continue
		}
		if rest[0] == '\t' {
			return nil, fmt.Errorf("%s: tab in indentation; use spaces", Pos{name, lineNo + 1, indent + 1})
		}
		rest = stripTrailingComment(rest)
		rest = strings.TrimRight(rest, " \t")
		if rest == "" {
			continue
		}
		p.lines = append(p.lines, yline{indent: indent, text: rest, line: lineNo + 1})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty scenario document", Pos{name, 1, 1})
	}
	if p.lines[0].indent != 0 {
		return nil, p.errf(p.lines[0], 1, "top-level content must start at column 1")
	}
	root, err := p.parseBlock(0, 0)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		return nil, p.errf(p.lines[p.i], 1, "unexpected content after the top-level block")
	}
	if root.kind != mapNode {
		return nil, fmt.Errorf("%s: scenario document must be a mapping", root.pos)
	}
	return root, nil
}

// stripTrailingComment removes a trailing ` # ...` comment outside double
// quotes. A '#' not preceded by whitespace binds to the scalar (anchors in
// names stay intact).
func stripTrailingComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote && i > 0 && (s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

func (p *yamlParser) pos(l yline, col int) Pos { return Pos{p.name, l.line, col} }

func (p *yamlParser) errf(l yline, col int, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.pos(l, col), fmt.Sprintf(format, args...))
}

// parseBlock parses the mapping or list beginning at the current line.
func (p *yamlParser) parseBlock(indent, depth int) (*node, error) {
	if depth > maxDepth {
		return nil, p.errf(p.lines[p.i], 1, "document nests deeper than %d levels", maxDepth)
	}
	if strings.HasPrefix(p.lines[p.i].text, "-") {
		return p.parseList(indent, depth)
	}
	return p.parseMap(indent, depth)
}

func (p *yamlParser) parseMap(indent, depth int) (*node, error) {
	first := p.lines[p.i]
	n := newMapNode(p.pos(first, first.indent+1))
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, p.errf(l, l.indent+1, "unexpected indentation (mapping continues at column %d)", indent+1)
		}
		if strings.HasPrefix(l.text, "-") {
			break // a list item at this indent belongs to an enclosing context
		}
		key, rest, restCol, err := p.splitKey(l)
		if err != nil {
			return nil, err
		}
		p.i++
		var child *node
		if rest != "" {
			child, err = p.parseScalarText(l, restCol, rest)
			if err != nil {
				return nil, err
			}
		} else {
			if p.i >= len(p.lines) || p.lines[p.i].indent <= indent {
				return nil, p.errf(l, l.indent+1, "key %q has no value", key)
			}
			child, err = p.parseBlock(p.lines[p.i].indent, depth+1)
			if err != nil {
				return nil, err
			}
		}
		child.pos = p.pos(l, l.indent+1)
		if rest != "" {
			child.pos = p.pos(l, restCol)
		}
		if err := n.put(key, child); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// splitKey splits a `key: value` line into key and value text, returning
// the 1-based column where the value begins.
func (p *yamlParser) splitKey(l yline) (key, rest string, restCol int, err error) {
	idx := strings.Index(l.text, ":")
	if idx <= 0 {
		return "", "", 0, p.errf(l, l.indent+1, "expected `key: value`")
	}
	key = l.text[:idx]
	for _, r := range key {
		if !(r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", "", 0, p.errf(l, l.indent+1, "invalid key %q (letters, digits, '_', '-', '.')", key)
		}
	}
	after := l.text[idx+1:]
	if after != "" && after[0] != ' ' {
		return "", "", 0, p.errf(l, l.indent+idx+2, "missing space after %q", key+":")
	}
	trimmed := strings.TrimLeft(after, " ")
	// Value column: indent + key + ":" put the colon at indent+idx+1; the
	// value starts one past it plus any padding spaces.
	return key, trimmed, l.indent + idx + 2 + (len(after) - len(trimmed)), nil
}

func (p *yamlParser) parseList(indent, depth int) (*node, error) {
	first := p.lines[p.i]
	n := &node{pos: p.pos(first, first.indent+1), kind: listNode}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, p.errf(l, l.indent+1, "unexpected indentation (list continues at column %d)", indent+1)
		}
		if !strings.HasPrefix(l.text, "-") {
			break
		}
		rest := l.text[1:]
		if rest == "" {
			return nil, p.errf(l, l.indent+1, "empty list item")
		}
		if rest[0] != ' ' {
			return nil, p.errf(l, l.indent+2, "missing space after '-'")
		}
		rest = strings.TrimLeft(rest, " ")
		pad := len(l.text) - len(rest)
		itemCol := l.indent + pad + 1
		if looksLikeKey(rest) {
			// `- key: value` opens a mapping aligned at the item column;
			// rewrite the dash away and let parseMap consume this line plus
			// any continuation lines at the same alignment.
			p.lines[p.i] = yline{indent: l.indent + pad, text: rest, line: l.line}
			item, err := p.parseMap(l.indent+pad, depth+1)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		item, err := p.parseScalarText(l, itemCol, rest)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
		p.i++
	}
	return n, nil
}

// looksLikeKey reports whether a list item's text begins a `key:` mapping
// entry rather than a scalar.
func looksLikeKey(s string) bool {
	idx := strings.Index(s, ":")
	if idx <= 0 {
		return false
	}
	if idx+1 < len(s) && s[idx+1] != ' ' {
		return false
	}
	for _, r := range s[:idx] {
		if !(r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

// parseScalarText parses an inline value: a flow list, a quoted string, or
// a bare scalar.
func (p *yamlParser) parseScalarText(l yline, col int, text string) (*node, error) {
	pos := p.pos(l, col)
	if strings.HasPrefix(text, "[") {
		return p.parseFlowList(l, col, text)
	}
	if strings.HasPrefix(text, "\"") {
		s, err := strconv.Unquote(text)
		if err != nil {
			return nil, fmt.Errorf("%s: bad quoted string %s", pos, text)
		}
		return &node{pos: pos, kind: scalarNode, scalar: s, quoted: true}, nil
	}
	if strings.ContainsAny(text, "{}[]") {
		return nil, fmt.Errorf("%s: flow mappings are outside the supported YAML subset", pos)
	}
	return &node{pos: pos, kind: scalarNode, scalar: text}, nil
}

// parseFlowList parses `[a, b, c]` where every element is a scalar.
func (p *yamlParser) parseFlowList(l yline, col int, text string) (*node, error) {
	pos := p.pos(l, col)
	if !strings.HasSuffix(text, "]") {
		return nil, fmt.Errorf("%s: flow list is missing its closing ']'", pos)
	}
	inner := text[1 : len(text)-1]
	n := &node{pos: pos, kind: listNode}
	if strings.TrimSpace(inner) == "" {
		return n, nil
	}
	start := 0
	inQuote := false
	for i := 0; i <= len(inner); i++ {
		if i < len(inner) {
			switch inner[i] {
			case '\\':
				if inQuote {
					i++
				}
				continue
			case '"':
				inQuote = !inQuote
				continue
			case ',':
				if inQuote {
					continue
				}
			default:
				continue
			}
		} else if inQuote {
			return nil, fmt.Errorf("%s: unterminated string in flow list", pos)
		}
		elem := strings.TrimSpace(inner[start:i])
		elemCol := col + 1 + start
		if elem == "" {
			return nil, fmt.Errorf("%s: empty element in flow list", Pos{p.name, l.line, elemCol})
		}
		if strings.ContainsAny(elem, "[]{}") {
			return nil, fmt.Errorf("%s: nested flow values are outside the supported YAML subset", Pos{p.name, l.line, elemCol})
		}
		item, err := p.parseScalarText(l, elemCol, elem)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
		start = i + 1
	}
	return n, nil
}
