// Package scenario is the declarative scenario harness: a small, stdlib-only
// format (JSON, plus a YAML-subset so files read like fleet-simulator
// scenarios) describing a fleet, a timeline of events, and assertions over
// the outcome, compiled deterministically onto the sim.Engine primitives.
//
// A scenario has three sections:
//
//   - fleet: the cluster under test — node count, background failure model
//     (cluster MTBF with Weibull inter-failure gaps), checkpoint costs,
//     prediction accuracy, and the scheduler/policy switches the simulator
//     already exposes.
//   - events: a timeline of timed operations — arrival_burst,
//     inject_failure, maintenance_window, mtbf_shift, drain — applied in
//     order on the engine's virtual clock.
//   - assertions: declarative checks evaluated against the final report —
//     QoS floor, promise-keeping rate (via the trace.Ledger), utilization
//     band, lost-work ceiling.
//
// Everything is a pure function of the scenario text: the background
// failure trace, burst job parameters, and injected failures all derive
// from the scenario seed, so one scenario file pins one byte-exact report
// (the golden zoo under zoo/ is checked exactly that way in CI).
package scenario

import (
	"fmt"
	"math"

	"probqos/internal/checkpoint"
	"probqos/internal/units"
)

// Scenario is one parsed scenario file.
type Scenario struct {
	// Name identifies the scenario in reports and golden files.
	Name string `json:"name"`
	// Description says what the scenario exercises. Informational.
	Description string `json:"description,omitempty"`
	// Seed selects every deterministic random stream the scenario uses:
	// the background failure trace and burst job shapes.
	Seed int64 `json:"seed"`
	// Fleet is the cluster under test.
	Fleet Fleet `json:"fleet"`
	// Events is the timeline, ordered by non-decreasing At.
	Events []Event `json:"events"`
	// Asserts are the declarative checks on the final report.
	Asserts []Assertion `json:"assertions,omitempty"`
}

// Fleet is the cluster definition section.
type Fleet struct {
	// Nodes is the cluster size N.
	Nodes int `json:"nodes"`
	// RackSize partitions nodes into racks [k*RackSize, (k+1)*RackSize) for
	// rack-targeted events. Zero means rack targeting is unavailable.
	RackSize int `json:"rack_size,omitempty"`
	// Accuracy is the event-prediction accuracy a in [0, 1].
	Accuracy float64 `json:"accuracy"`
	// UserRisk is the default user strategy U in [0, 1]; bursts may
	// override it per event.
	UserRisk float64 `json:"user_risk"`
	// Checkpoint holds the interval I and overhead C.
	Checkpoint checkpoint.Params `json:"checkpoint"`
	// Downtime is the per-failure node restart time.
	Downtime units.Duration `json:"downtime_s"`
	// Policy names the checkpoint policy: "risk", "periodic", or "never".
	Policy string `json:"policy"`
	// FaultAware, DeadlineSkip, and BaseRateFloor are the simulator's
	// scheduling/checkpointing switches (all default on).
	FaultAware    bool `json:"fault_aware"`
	DeadlineSkip  bool `json:"deadline_skip"`
	BaseRateFloor bool `json:"base_rate_floor"`
	// Failures is the background failure model visible to the predictor.
	Failures FailureModel `json:"failures"`
}

// FailureModel parameterizes the background failure trace: cluster-wide
// Weibull inter-failure gaps at a target MTBF, over a fixed horizon. The
// trace is generated from the scenario seed and handed to the predictor,
// so quotes price these failures in (at the fleet's accuracy); timeline
// inject_failure events, by contrast, are invisible surprises.
type FailureModel struct {
	// MTBF is the cluster-wide mean time between failures. Zero disables
	// background failures entirely.
	MTBF units.Duration `json:"mtbf_s,omitempty"`
	// Shape is the Weibull shape of inter-failure gaps; shape < 1 gives
	// bursty, heavy-tailed arrivals. Defaults to 1 (exponential).
	Shape float64 `json:"shape,omitempty"`
	// Horizon bounds background failure generation. Zero means the last
	// timeline event plus two weeks.
	Horizon units.Duration `json:"horizon_s,omitempty"`
}

// Event actions.
const (
	ActionArrivalBurst = "arrival_burst"
	ActionInjectFail   = "inject_failure"
	ActionMaintenance  = "maintenance_window"
	ActionMTBFShift    = "mtbf_shift"
	ActionDrain        = "drain"
)

// Event is one timeline entry. Exactly one of the action payloads is
// non-nil, matching Action (Drain carries none).
type Event struct {
	// At is the virtual instant the event applies.
	At units.Time `json:"at_s"`
	// Action is one of the Action* constants.
	Action string `json:"action"`

	Burst       *Burst       `json:"burst,omitempty"`
	Inject      *Inject      `json:"inject,omitempty"`
	Maintenance *Maintenance `json:"maintenance,omitempty"`
	Shift       *Shift       `json:"shift,omitempty"`
}

// Burst is an arrival_burst payload: Jobs job submissions spread evenly
// over Spread starting at the event instant, each negotiating quotes and
// admitting the earliest one whose promise clears the user risk.
type Burst struct {
	Jobs int `json:"jobs"`
	// MinNodes..MaxNodes is the inclusive job size range.
	MinNodes int `json:"min_nodes"`
	MaxNodes int `json:"max_nodes"`
	// MinExec..MaxExec is the inclusive checkpoint-free execution range.
	MinExec units.Duration `json:"min_exec_s"`
	MaxExec units.Duration `json:"max_exec_s"`
	Spread  units.Duration `json:"spread_s,omitempty"`
	// UserRisk overrides the fleet default for this burst; negative means
	// "use the fleet's".
	UserRisk float64 `json:"user_risk,omitempty"`
}

// Inject is an inject_failure payload: unpredicted failures on the listed
// nodes, staggered Stagger apart starting at the event instant.
type Inject struct {
	Nodes   []int          `json:"nodes"`
	Stagger units.Duration `json:"stagger_s,omitempty"`
}

// Maintenance is a maintenance_window payload: the listed nodes are held
// down for Duration by re-failing each node every fleet downtime (the
// cluster keeps the longest outage, so the window is contiguous).
type Maintenance struct {
	Nodes    []int          `json:"nodes"`
	Duration units.Duration `json:"duration_s"`
}

// Shift is an mtbf_shift payload: from the event instant on, the
// background failure model's MTBF is multiplied by Factor (factors below 1
// mean more frequent failures). Factors are absolute against the fleet
// MTBF, not compounding.
type Shift struct {
	Factor float64 `json:"factor"`
}

// Assertion types.
const (
	AssertQoSFloor        = "qos_floor"        // Min: final QoS >= Min
	AssertPromiseKeeping  = "promise_keeping"  // Min: ledger keeping rate >= Min
	AssertUtilizationBand = "utilization_band" // Min, Max: utilization within [Min, Max]
	AssertMaxLostWork     = "max_lost_work"    // Max: lost work (node-hours) <= Max
	AssertMaxMissRate     = "max_miss_rate"    // Max: deadline miss rate <= Max
	AssertMinCompleted    = "min_completed"    // Min: jobs completed on time >= Min
	AssertHonestPromises  = "honest_promises"  // Slack: every populated ledger bin has observed >= promised - Slack
)

// Assertion is one declarative check. The Min/Max/Slack fields are
// interpreted per Type; see the Assert* constants.
type Assertion struct {
	Type  string  `json:"type"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Slack float64 `json:"slack,omitempty"`
}

// LastEventAt returns the At of the final timeline event (0 if none).
func (s *Scenario) LastEventAt() units.Time {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Validate checks the scenario's semantic invariants: the same rules the
// file binder enforces with source positions, restated for scenarios
// constructed programmatically. NewRunner calls it.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	f := s.Fleet
	switch {
	case f.Nodes <= 0:
		return fmt.Errorf("scenario %s: fleet.nodes must be positive, got %d", s.Name, f.Nodes)
	case f.RackSize < 0 || f.RackSize > f.Nodes:
		return fmt.Errorf("scenario %s: fleet.rack_size %d outside [0,%d]", s.Name, f.RackSize, f.Nodes)
	case f.Accuracy < 0 || f.Accuracy > 1 || math.IsNaN(f.Accuracy):
		return fmt.Errorf("scenario %s: fleet.accuracy %v outside [0,1]", s.Name, f.Accuracy)
	case f.UserRisk < 0 || f.UserRisk > 1 || math.IsNaN(f.UserRisk):
		return fmt.Errorf("scenario %s: fleet.user_risk %v outside [0,1]", s.Name, f.UserRisk)
	case f.Downtime <= 0:
		return fmt.Errorf("scenario %s: fleet.downtime_s must be positive, got %v", s.Name, f.Downtime)
	}
	if err := f.Checkpoint.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if _, err := policyFor(f.Policy); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	fm := f.Failures
	if fm.MTBF < 0 || fm.Shape < 0 || fm.Horizon < 0 {
		return fmt.Errorf("scenario %s: failure model fields must be non-negative", s.Name)
	}
	if fm.MTBF > 0 && fm.Shape <= 0 {
		return fmt.Errorf("scenario %s: failures.shape must be positive when mtbf is set", s.Name)
	}
	var prev units.Time
	for i, ev := range s.Events {
		if err := s.validateEvent(i, ev); err != nil {
			return err
		}
		if ev.At < prev {
			return fmt.Errorf("scenario %s: events[%d] at %v precedes events[%d]; order events by at", s.Name, i, ev.At, i-1)
		}
		prev = ev.At
	}
	for i, a := range s.Asserts {
		if err := validateAssertion(a); err != nil {
			return fmt.Errorf("scenario %s: assertions[%d]: %w", s.Name, i, err)
		}
	}
	return nil
}

func (s *Scenario) validateEvent(i int, ev Event) error {
	if ev.At < 0 {
		return fmt.Errorf("scenario %s: events[%d] has negative at %v", s.Name, i, ev.At)
	}
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: events[%d] (%s): %s", s.Name, i, ev.Action, fmt.Sprintf(format, args...))
	}
	checkNodes := func(nodes []int) error {
		if len(nodes) == 0 {
			return bad("needs at least one target node")
		}
		for _, n := range nodes {
			if n < 0 || n >= s.Fleet.Nodes {
				return bad("node %d outside [0,%d)", n, s.Fleet.Nodes)
			}
		}
		return nil
	}
	switch ev.Action {
	case ActionArrivalBurst:
		b := ev.Burst
		switch {
		case b == nil:
			return bad("missing burst payload")
		case b.Jobs <= 0:
			return bad("jobs must be positive, got %d", b.Jobs)
		case b.MinNodes <= 0 || b.MaxNodes < b.MinNodes || b.MaxNodes > s.Fleet.Nodes:
			return bad("job size range [%d,%d] invalid for a %d-node fleet", b.MinNodes, b.MaxNodes, s.Fleet.Nodes)
		case b.MinExec <= 0 || b.MaxExec < b.MinExec:
			return bad("exec range [%v,%v] invalid", b.MinExec, b.MaxExec)
		case b.Spread < 0:
			return bad("spread_s must be non-negative, got %v", b.Spread)
		case b.UserRisk > 1 || math.IsNaN(b.UserRisk):
			return bad("user_risk %v outside [0,1]", b.UserRisk)
		}
	case ActionInjectFail:
		if ev.Inject == nil {
			return bad("missing inject payload")
		}
		if ev.Inject.Stagger < 0 {
			return bad("stagger_s must be non-negative, got %v", ev.Inject.Stagger)
		}
		return checkNodes(ev.Inject.Nodes)
	case ActionMaintenance:
		m := ev.Maintenance
		if m == nil {
			return bad("missing maintenance payload")
		}
		if m.Duration <= 0 {
			return bad("duration_s must be positive, got %v", m.Duration)
		}
		return checkNodes(m.Nodes)
	case ActionMTBFShift:
		if ev.Shift == nil {
			return bad("missing shift payload")
		}
		if f := ev.Shift.Factor; f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return bad("factor must be a positive finite number, got %v", ev.Shift.Factor)
		}
		if s.Fleet.Failures.MTBF <= 0 {
			return bad("fleet has no background failure model to shift")
		}
	case ActionDrain:
		// No payload.
	default:
		return bad("unknown action")
	}
	return nil
}

func validateAssertion(a Assertion) error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("%s %v outside [0,1]", name, v)
		}
		return nil
	}
	switch a.Type {
	case AssertQoSFloor, AssertPromiseKeeping:
		return frac("min", a.Min)
	case AssertUtilizationBand:
		if err := frac("min", a.Min); err != nil {
			return err
		}
		if err := frac("max", a.Max); err != nil {
			return err
		}
		if a.Max < a.Min {
			return fmt.Errorf("max %v below min %v", a.Max, a.Min)
		}
		return nil
	case AssertMaxLostWork:
		if a.Max < 0 || math.IsNaN(a.Max) {
			return fmt.Errorf("max (node-hours) must be non-negative, got %v", a.Max)
		}
		return nil
	case AssertMaxMissRate:
		return frac("max", a.Max)
	case AssertMinCompleted:
		//qoslint:allow floateq integrality check: Trunc(x) == x is exact for every float
		if a.Min < 0 || a.Min != math.Trunc(a.Min) {
			return fmt.Errorf("min must be a non-negative integer, got %v", a.Min)
		}
		return nil
	case AssertHonestPromises:
		return frac("slack", a.Slack)
	default:
		return fmt.Errorf("unknown assertion type %q", a.Type)
	}
}
