package scenario

import (
	"reflect"
	"strings"
	"testing"

	"probqos/internal/checkpoint"
)

const yamlDoc = `# full-surface scenario
name: decode-check
description: "quoted: with # punctuation"
seed: 42
fleet:
  nodes: 16
  rack_size: 4
  accuracy: 0.75
  user_risk: 0.5
  checkpoint:
    interval_s: 3600
    overhead_s: 720
  downtime_s: 120   # trailing comment
  policy: risk
  fault_aware: false
  failures:
    mtbf_s: 28800
    shape: 0.7
events:
  - at_s: 0
    action: arrival_burst
    burst:
      jobs: 3
      min_nodes: 1
      max_nodes: 4
      min_exec_s: 600
      max_exec_s: 1200
      spread_s: 300
      user_risk: 0.9
  - at_s: 500
    action: inject_failure
    inject:
      nodes: [1, 2]
      stagger_s: 60
  - at_s: 900
    action: maintenance_window
    maintenance:
      nodes: [3]
      duration_s: 600
  - at_s: 1000
    action: mtbf_shift
    shift:
      factor: 0.5
  - at_s: 2000
    action: drain
assertions:
  - type: qos_floor
    min: 0.5
  - type: utilization_band
    min: 0.1
    max: 0.9
`

const jsonDoc = `{
  "name": "decode-check",
  "description": "quoted: with # punctuation",
  "seed": 42,
  "fleet": {
    "nodes": 16,
    "rack_size": 4,
    "accuracy": 0.75,
    "user_risk": 0.5,
    "checkpoint": {"interval_s": 3600, "overhead_s": 720},
    "downtime_s": 120,
    "policy": "risk",
    "fault_aware": false,
    "failures": {"mtbf_s": 28800, "shape": 0.7}
  },
  "events": [
    {"at_s": 0, "action": "arrival_burst",
     "burst": {"jobs": 3, "min_nodes": 1, "max_nodes": 4,
               "min_exec_s": 600, "max_exec_s": 1200,
               "spread_s": 300, "user_risk": 0.9}},
    {"at_s": 500, "action": "inject_failure",
     "inject": {"nodes": [1, 2], "stagger_s": 60}},
    {"at_s": 900, "action": "maintenance_window",
     "maintenance": {"nodes": [3], "duration_s": 600}},
    {"at_s": 1000, "action": "mtbf_shift", "shift": {"factor": 0.5}},
    {"at_s": 2000, "action": "drain"}
  ],
  "assertions": [
    {"type": "qos_floor", "min": 0.5},
    {"type": "utilization_band", "min": 0.1, "max": 0.9}
  ]
}
`

func TestDecodeYAML(t *testing.T) {
	s, err := Decode("doc.yaml", []byte(yamlDoc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if s.Name != "decode-check" || s.Seed != 42 {
		t.Fatalf("header mismatch: %+v", s)
	}
	if s.Description != "quoted: with # punctuation" {
		t.Fatalf("quoted description mangled: %q", s.Description)
	}
	f := s.Fleet
	if f.Nodes != 16 || f.RackSize != 4 || f.Accuracy != 0.75 || f.UserRisk != 0.5 {
		t.Fatalf("fleet mismatch: %+v", f)
	}
	if f.FaultAware {
		t.Fatal("fault_aware: false not applied")
	}
	if !f.DeadlineSkip || !f.BaseRateFloor {
		t.Fatal("unset switches should default on")
	}
	if f.Downtime != 120 || f.Failures.MTBF != 28800 || f.Failures.Shape != 0.7 {
		t.Fatalf("fleet numbers mismatch: %+v", f)
	}
	if len(s.Events) != 5 {
		t.Fatalf("want 5 events, got %d", len(s.Events))
	}
	b := s.Events[0].Burst
	if b == nil || b.Jobs != 3 || b.MinExec != 600 || b.MaxExec != 1200 || b.UserRisk != 0.9 {
		t.Fatalf("burst mismatch: %+v", b)
	}
	if in := s.Events[1].Inject; in == nil || !reflect.DeepEqual(in.Nodes, []int{1, 2}) || in.Stagger != 60 {
		t.Fatalf("inject mismatch: %+v", s.Events[1].Inject)
	}
	if m := s.Events[2].Maintenance; m == nil || m.Duration != 600 {
		t.Fatalf("maintenance mismatch: %+v", s.Events[2].Maintenance)
	}
	if sh := s.Events[3].Shift; sh == nil || sh.Factor != 0.5 {
		t.Fatalf("shift mismatch: %+v", s.Events[3].Shift)
	}
	if s.Events[4].Action != ActionDrain || s.Events[4].At != 2000 {
		t.Fatalf("drain mismatch: %+v", s.Events[4])
	}
	if len(s.Asserts) != 2 || s.Asserts[1].Max != 0.9 {
		t.Fatalf("assertions mismatch: %+v", s.Asserts)
	}
}

// The two formats must describe identical scenarios: one semantic model,
// two encodings.
func TestDecodeFormatsAgree(t *testing.T) {
	fromYAML, err := Decode("doc.yaml", []byte(yamlDoc))
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	fromJSON, err := Decode("doc.json", []byte(jsonDoc))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("formats disagree:\nyaml: %+v\njson: %+v", fromYAML, fromJSON)
	}
}

// Burst user_risk left unset means "fleet default", encoded as -1.
func TestDecodeBurstDefaultUserRisk(t *testing.T) {
	doc := strings.Replace(yamlDoc, "      user_risk: 0.9\n", "", 1)
	s, err := Decode("doc.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Events[0].Burst.UserRisk; got != -1 {
		t.Fatalf("default burst user_risk = %v, want -1", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		file string
		src  string
		want []string // all must appear in the error text
	}{
		{
			name: "tab indentation",
			file: "bad.yaml",
			src:  "name: x\n\tseed: 1\n",
			want: []string{"bad.yaml:2:1", "tab in indentation"},
		},
		{
			name: "duplicate key",
			file: "bad.yaml",
			src:  "name: x\nseed: 1\nseed: 2\n",
			want: []string{"bad.yaml:3:", "duplicate key \"seed\""},
		},
		{
			name: "unknown key",
			file: "bad.yaml",
			src:  "name: x\nseed: 1\nbogus: 3\nfleet:\n  nodes: 4\n  accuracy: 1\n  user_risk: 1\n  checkpoint:\n    interval_s: 10\n    overhead_s: 1\n  downtime_s: 10\n  policy: risk\n",
			want: []string{"bad.yaml:3:8", "unknown key \"bogus\""},
		},
		{
			name: "non-integer seed",
			file: "bad.yaml",
			src:  "name: x\nseed: soon\n",
			want: []string{"bad.yaml:2:7", "seed must be an integer"},
		},
		{
			name: "missing key colon",
			file: "bad.yaml",
			src:  "name: x\nseed\n",
			want: []string{"bad.yaml:2:1", "expected `key: value`"},
		},
		{
			name: "unterminated flow list",
			file: "bad.yaml",
			src:  "name: x\nseed: 1\nlist: [1, 2\n",
			want: []string{"bad.yaml:3:7", "closing ']'"},
		},
		{
			name: "unordered events",
			file: "bad.yaml",
			src: "name: x\nseed: 1\nfleet:\n  nodes: 4\n  accuracy: 1\n  user_risk: 1\n  checkpoint:\n    interval_s: 10\n    overhead_s: 1\n  downtime_s: 10\n  policy: risk\nevents:\n" +
				"  - at_s: 100\n    action: drain\n  - at_s: 50\n    action: drain\n",
			want: []string{"bad.yaml", "order events by at"},
		},
		{
			name: "unknown action",
			file: "bad.yaml",
			src: "name: x\nseed: 1\nfleet:\n  nodes: 4\n  accuracy: 1\n  user_risk: 1\n  checkpoint:\n    interval_s: 10\n    overhead_s: 1\n  downtime_s: 10\n  policy: risk\nevents:\n" +
				"  - at_s: 0\n    action: explode\n",
			want: []string{"bad.yaml:13:5", "unknown action \"explode\""},
		},
		{
			name: "json trailing garbage",
			file: "bad.json",
			src:  "{\"name\": \"x\", \"seed\": 1}extra",
			want: []string{"bad.json:1:25", "trailing data"},
		},
		{
			name: "json duplicate key",
			file: "bad.json",
			src:  "{\"name\": \"x\",\n \"name\": \"y\"}",
			want: []string{"bad.json:2:2", "duplicate key \"name\""},
		},
		{
			name: "json bad number",
			file: "bad.json",
			src:  "{\"name\": \"x\", \"seed\": 1e}",
			want: []string{"bad.json:1:23", "bad number"},
		},
		{
			name: "json null field",
			file: "bad.json",
			src:  "{\"name\": null, \"seed\": 1}",
			want: []string{"bad.json:1:10", "must be a scalar"},
		},
		{
			name: "flow mapping rejected",
			file: "bad.yaml",
			src:  "name: x\nseed: 1\nfleet: {nodes: 4}\n",
			want: []string{"bad.yaml:3:8", "outside the supported YAML subset"},
		},
		{
			name: "mtbf shift without model",
			file: "bad.yaml",
			src: "name: x\nseed: 1\nfleet:\n  nodes: 4\n  accuracy: 1\n  user_risk: 1\n  checkpoint:\n    interval_s: 10\n    overhead_s: 1\n  downtime_s: 10\n  policy: risk\nevents:\n" +
				"  - at_s: 0\n    action: mtbf_shift\n    shift:\n      factor: 0.5\n",
			want: []string{"no background failure model"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.file, []byte(tc.src))
			if err == nil {
				t.Fatal("decode unexpectedly succeeded")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q\nmissing %q", err, want)
				}
			}
		})
	}
}

// Multiple bad fields surface in one pass: the binder joins its errors
// instead of stopping at the first.
func TestDecodeReportsMultipleErrors(t *testing.T) {
	src := "name: x\nseed: soon\nbogus: 1\nfleet:\n  nodes: many\n  accuracy: 1\n  user_risk: 1\n  checkpoint:\n    interval_s: 10\n    overhead_s: 1\n  downtime_s: 10\n  policy: risk\n"
	_, err := Decode("multi.yaml", []byte(src))
	if err == nil {
		t.Fatal("decode unexpectedly succeeded")
	}
	for _, want := range []string{"seed must be an integer", "unknown key \"bogus\"", "fleet.nodes must be an integer"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q\nmissing %q", err, want)
		}
	}
}

func TestValidateProgrammatic(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name: "v", Seed: 1,
			Fleet: Fleet{
				Nodes: 8, Accuracy: 0.5, UserRisk: 0.5,
				Checkpoint: checkpoint.DefaultParams(), Downtime: 60, Policy: "risk",
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "name is required"},
		{"bad policy", func(s *Scenario) { s.Fleet.Policy = "magic" }, "unknown policy"},
		{"bad accuracy", func(s *Scenario) { s.Fleet.Accuracy = 1.5 }, "accuracy"},
		{"rack too big", func(s *Scenario) { s.Fleet.RackSize = 99 }, "rack_size"},
		{"shapeless mtbf", func(s *Scenario) { s.Fleet.Failures.MTBF = 100 }, "shape must be positive"},
		{"burst without payload", func(s *Scenario) {
			s.Events = []Event{{Action: ActionArrivalBurst}}
		}, "missing burst payload"},
		{"node out of range", func(s *Scenario) {
			s.Events = []Event{{Action: ActionInjectFail, Inject: &Inject{Nodes: []int{8}}}}
		}, "node 8 outside [0,8)"},
		{"bad assertion", func(s *Scenario) {
			s.Asserts = []Assertion{{Type: "sideways"}}
		}, "unknown assertion type"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate unexpectedly passed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}
