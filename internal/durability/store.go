package durability

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"time"

	"probqos/internal/checkpoint"
	"probqos/internal/units"
)

// notExist reports whether err means the file is simply absent, which on a
// fresh data dir is the normal case, not a failure.
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// Options tunes a Store.
type Options struct {
	// SnapshotEvery is the hard cap on WAL records between snapshots; the
	// risk rule below may compact sooner. Zero means the default of 1024.
	SnapshotEvery int
	// Hazard is pf in the compaction rule: the assumed probability that
	// the daemon crashes while one more record sits unsnapshotted. Zero
	// means the default of 0.01.
	Hazard float64
	// OnSync, when set, observes the latency of each WAL append (write +
	// fsync). The service wires it to a histogram.
	OnSync func(d time.Duration)
	// OnSnapshot, when set, observes each completed snapshot: its encoded
	// state size and how long the durable write took. The service wires it
	// to the snapshot gauges.
	OnSnapshot func(bytes int, d time.Duration)
}

const (
	defaultSnapshotEvery = 1024
	defaultHazard        = 0.01
	// Cost priors until measured: replaying one record and writing one
	// snapshot. Recovery and compaction replace them with measurements.
	defaultReplayCost = 50 * time.Microsecond
	defaultSnapCost   = 5 * time.Millisecond
)

// Store owns one data directory: a snapshot plus the write-ahead log of
// records since it. It is not safe for concurrent use; the service drives
// it from its single state-machine goroutine.
type Store struct {
	fs   FS
	dir  string
	opts Options
	w    *wal

	lastLSN   uint64 // last appended (or recovered) record
	sinceSnap int    // records appended since the last snapshot

	replayCost time.Duration // measured cost of replaying one record
	snapCost   time.Duration // measured cost of writing one snapshot
}

// Open prepares dir for service: it loads the current snapshot (if any),
// decodes the WAL records not yet folded into it, truncates any torn
// tail, and returns the store ready for appends. The caller restores the
// snapshot state, applies the returned records in order, and should then
// Compact so the next recovery starts from a fresh snapshot.
func Open(fsys FS, dir string, opts Options) (*Store, *Snapshot, []Record, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.Hazard <= 0 {
		opts.Hazard = defaultHazard
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("durability: mkdir %s: %w", dir, err)
	}
	snap, haveSnap, err := loadSnapshot(fsys, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	walPath := filepath.Join(dir, walName)
	data, err := fsys.ReadFile(walPath)
	if err != nil && !notExist(err) {
		return nil, nil, nil, fmt.Errorf("durability: read wal: %w", err)
	}
	recs, valid := DecodeRecords(data)

	// Records already folded into the snapshot are skipped: a crash
	// between snapshot rename and WAL truncation leaves them behind, and
	// replaying them twice would double-apply.
	nextLSN := uint64(1)
	if haveSnap {
		nextLSN = snap.LSN + 1
		fresh := recs[:0:0]
		for _, r := range recs {
			if r.LSN > snap.LSN {
				fresh = append(fresh, r)
			}
		}
		recs = fresh
	}
	if n := len(recs); n > 0 {
		nextLSN = recs[n-1].LSN + 1
	}

	w, err := openWAL(fsys, walPath, valid, nextLSN)
	if err != nil {
		return nil, nil, nil, err
	}
	st := &Store{
		fs: fsys, dir: dir, opts: opts, w: w,
		lastLSN:    nextLSN - 1,
		sinceSnap:  len(recs),
		replayCost: defaultReplayCost,
		snapCost:   defaultSnapCost,
	}
	if !haveSnap {
		snap = nil
	}
	return st, snap, recs, nil
}

// Append commits one record to the log (write + fsync) and returns its
// LSN. On error nothing is committed and the log is healed back to the
// last record boundary (or will be on the next attempt); the caller should
// treat the store as degraded until an Append or Heal succeeds.
func (st *Store) Append(payload []byte) (uint64, error) {
	//qoslint:allow detwallclock fsync-latency observation for obs; never feeds replayed state
	begin := time.Now()
	lsn, _, err := st.w.append(payload)
	if err != nil {
		return 0, err
	}
	if st.opts.OnSync != nil {
		//qoslint:allow detwallclock fsync-latency observation for obs; never feeds replayed state
		st.opts.OnSync(time.Since(begin))
	}
	st.lastLSN = lsn
	st.sinceSnap++
	return lsn, nil
}

// Heal attempts to repair the log after a failed append: it truncates back
// to the last good record boundary and verifies the file syncs. A nil
// return means appends can be retried.
func (st *Store) Heal() error {
	if err := st.w.heal(); err != nil {
		return err
	}
	if err := st.w.f.Sync(); err != nil {
		return fmt.Errorf("durability: heal fsync: %w", err)
	}
	return nil
}

// ShouldSnapshot applies the paper's risk-based skip rule (Equation 1,
// checkpoint.RiskBased) to the control plane itself: compact when the
// expected replay work a crash would cost, pf·d·I — d records at I replay
// cost each, weighted by the crash hazard pf — reaches the snapshot cost
// C. The SnapshotEvery cap bounds replay regardless of the cost model.
func (st *Store) ShouldSnapshot() bool {
	if st.sinceSnap == 0 {
		return false
	}
	if st.sinceSnap >= st.opts.SnapshotEvery {
		return true
	}
	// The rule is scale-free, so microseconds make fine integer "seconds"
	// for the checkpoint types; both costs are kept at least 1µs so the
	// parameters stay valid.
	p := checkpoint.Params{
		Interval: maxDuration(units.Duration(st.replayCost.Microseconds()), 1),
		Overhead: maxDuration(units.Duration(st.snapCost.Microseconds()), 1),
	}
	return checkpoint.RiskBased{}.ShouldCheckpoint(checkpoint.Request{
		PFail:           st.opts.Hazard,
		Params:          p,
		AtRiskIntervals: st.sinceSnap,
	})
}

func maxDuration(d, floor units.Duration) units.Duration {
	if d < floor {
		return floor
	}
	return d
}

// Compact durably writes a snapshot of state at the current log position
// and truncates the WAL. The write is atomic (temp file + rename); the
// truncation is safe to lose, since recovery skips records at or below
// the snapshot's LSN.
func (st *Store) Compact(state []byte, config string) error {
	//qoslint:allow detwallclock snapshot-cost observation for obs; never feeds replayed state
	begin := time.Now()
	err := writeSnapshot(st.fs, st.dir, &Snapshot{
		Version: SnapshotVersion,
		LSN:     st.lastLSN,
		Config:  config,
		State:   state,
	})
	if err != nil {
		return err
	}
	//qoslint:allow detwallclock snapshot-cost observation for obs; never feeds replayed state
	st.snapCost = time.Since(begin)
	if st.opts.OnSnapshot != nil {
		st.opts.OnSnapshot(len(state), st.snapCost)
	}
	if err := st.w.reset(); err != nil {
		return err
	}
	st.sinceSnap = 0
	return nil
}

// SetReplayCost records the measured cost of replaying records, refining
// the compaction rule's I term. Recovery calls it with the observed replay
// duration and record count.
func (st *Store) SetReplayCost(total time.Duration, records int) {
	if records > 0 && total > 0 {
		st.replayCost = total / time.Duration(records)
	}
}

// LastLSN returns the LSN of the most recently committed record (0 before
// any).
func (st *Store) LastLSN() uint64 { return st.lastLSN }

// RecordsSinceSnapshot returns how many committed records the next
// recovery would replay.
func (st *Store) RecordsSinceSnapshot() int { return st.sinceSnap }

// Close releases the WAL file handle. It does not compact; callers wanting
// a clean shutdown snapshot do that first.
func (st *Store) Close() error { return st.w.close() }
