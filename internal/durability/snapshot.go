package durability

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// SnapshotVersion is the on-disk snapshot format version. Loading refuses
// anything newer; older versions would be migrated here.
const SnapshotVersion = 1

// Snapshot is the compacted state of the service at one WAL position:
// replaying records with LSN > LSN onto State reconstructs the live state.
type Snapshot struct {
	Version int `json:"version"`
	// LSN is the last WAL record folded into State. Records at or below it
	// are skipped on replay, which makes the snapshot-then-truncate pair
	// crash-safe: a crash between the two merely leaves already-included
	// records in the log.
	LSN uint64 `json:"lsn"`
	// Config fingerprints the engine configuration the state was built
	// under. Recovery refuses a data dir whose fingerprint differs: replay
	// against a different cluster, trace, or policy would silently diverge.
	Config string `json:"config"`
	// State is the owner's serialized state (the service stores its engine
	// operation journal, session book, and counters).
	State json.RawMessage `json:"state"`
}

const (
	snapshotName = "snapshot.json"
	snapshotTmp  = "snapshot.json.tmp"
	walName      = "wal.log"

	writeFlags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
)

// writeSnapshot durably replaces the snapshot: write to a temp file, fsync
// it, rename over the live name, fsync the directory. A crash at any point
// leaves either the old snapshot or the new one, never a torn mix.
func writeSnapshot(fsys FS, dir string, s *Snapshot) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("durability: encode snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotTmp)
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durability: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		//qoslint:allow syncerr best-effort cleanup; the Write error is returned
		f.Close()
		return fmt.Errorf("durability: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		//qoslint:allow syncerr best-effort cleanup; the Sync error is returned
		f.Close()
		return fmt.Errorf("durability: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durability: close %s: %w", tmp, err)
	}
	final := filepath.Join(dir, snapshotName)
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("durability: rename %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durability: fsync dir %s: %w", dir, err)
	}
	return nil
}

// loadSnapshot reads the current snapshot. ok is false when none exists
// (a fresh data dir). A snapshot that exists but does not parse is a hard
// error: silently starting empty would void every promise it held.
func loadSnapshot(fsys FS, dir string) (*Snapshot, bool, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("durability: read snapshot: %w", err)
	}
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, false, fmt.Errorf("durability: corrupt snapshot: %w", err)
	}
	if s.Version > SnapshotVersion {
		return nil, false, fmt.Errorf("durability: snapshot version %d newer than supported %d",
			s.Version, SnapshotVersion)
	}
	return &s, true, nil
}
