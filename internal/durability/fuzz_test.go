package durability

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReplayWAL drives the WAL record decoder — the exact code the qosd
// recovery path trusts with arbitrary on-disk bytes — and asserts its
// contract: never panic, never read past the input, stop cleanly at the
// first corrupt record, and keep the valid prefix exactly re-encodable.
func FuzzReplayWAL(f *testing.F) {
	// Seed corpus: the interesting shapes by construction. Mirrored as
	// committed files under testdata/fuzz/FuzzReplayWAL.
	valid := AppendFrame(nil, 1, []byte(`{"kind":"advance","to":3600}`))
	valid = AppendFrame(valid, 2, []byte(`{"kind":"fault","node":3,"at":7200}`))
	f.Add(valid)

	torn := AppendFrame(nil, 1, []byte("first"))
	torn = append(torn, AppendFrame(nil, 2, []byte("second"))[:9]...)
	f.Add(torn)

	flipped := AppendFrame(nil, 1, []byte("checksummed"))
	flipped[5] ^= 0xff
	f.Add(flipped)

	f.Add(make([]byte, 16)) // zero-length frame

	giant := make([]byte, 32)
	binary.LittleEndian.PutUint32(giant[0:4], 0xffffffff)
	f.Add(giant)

	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := DecodeRecords(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(data))
		}
		// The valid prefix is canonical: re-encoding the decoded records
		// reproduces it byte for byte, so replay-after-truncate sees the
		// same operations this decode did.
		if re := EncodeRecords(recs); !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoded prefix differs: %d bytes vs %d", len(re), valid)
		}
		// Decoding must stop at the first corrupt record: decoding the
		// valid prefix again yields the same records and consumes it all.
		again, revalid := DecodeRecords(data[:valid])
		if revalid != valid || len(again) != len(recs) {
			t.Fatalf("prefix not stable: %d/%d records, %d/%d bytes",
				len(again), len(recs), revalid, valid)
		}
		var last uint64
		for i, r := range recs {
			if i > 0 && r.LSN <= last {
				t.Fatalf("LSN %d after %d not strictly increasing", r.LSN, last)
			}
			last = r.LSN
		}
	})
}
