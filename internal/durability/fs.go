// Package durability gives qosd a crash-safe memory: a write-ahead log of
// every state-mutating operation plus periodic snapshots that compact the
// log. The paper's thesis is that promises survive failures through
// checkpointing; this package applies the same discipline to the control
// plane itself, reusing the risk-based skip rule (pf·d·I ≥ C, Equation 1)
// to decide when replaying the log would cost more than writing a
// snapshot.
//
// Everything goes through an injectable filesystem so tests can force
// short writes, fsync errors, torn records, and crashes at every record
// boundary. Only the standard library is used.
package durability

import (
	"errors"
	"io"
	"os"
	"sync"
	"syscall"
)

// FS is the filesystem capability set the durability layer needs. OSFS is
// the production implementation; FaultFS wraps any FS with programmable
// failures for crash testing.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens a file for writing with the given flags (os.O_*).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

// File is the writable-file capability set: append, force to stable
// storage, and cut back to a known-good length.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems refuse to fsync directories (EINVAL); the rename is
	// then as durable as the platform allows.
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		//qoslint:allow syncerr best-effort close on the error path; the Sync error is returned
		d.Close()
		return err
	}
	return d.Close()
}

// FaultFS wraps an FS with programmable failures, for driving the
// durability layer through short writes, fsync errors, and failed renames
// without unplugging any real disk. All knobs are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	writeBudget int64 // bytes writable before writes fail; negative = unlimited
	failSync    bool
	failRename  bool
	failTrunc   bool
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, writeBudget: -1}
}

// ErrInjected is the error every armed fault returns.
var ErrInjected = errors.New("durability: injected fault")

// SetWriteBudget arms write failure after n more bytes: a write crossing
// the budget is cut short (the bytes that fit are written, the rest fail),
// modelling a torn append. A negative budget disarms the fault.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// FailSync toggles fsync failure on every file.
func (f *FaultFS) FailSync(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync = on
}

// FailRename toggles rename failure.
func (f *FaultFS) FailRename(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRename = on
}

// FailTruncate toggles truncate failure.
func (f *FaultFS) FailTruncate(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failTrunc = on
}

// Clear disarms every fault.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = -1
	f.failSync = false
	f.failRename = false
	f.failTrunc = false
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.failRename
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	fail := f.failSync
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write spends the write budget; a write that crosses it is cut short so
// the file ends mid-record, exactly like a crash during an append.
func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	budget := f.fs.writeBudget
	if budget >= 0 {
		if int64(len(p)) > budget {
			f.fs.writeBudget = 0
		} else {
			f.fs.writeBudget -= int64(len(p))
		}
	}
	f.fs.mu.Unlock()
	if budget < 0 || int64(len(p)) <= budget {
		return f.inner.Write(p)
	}
	n, err := f.inner.Write(p[:budget])
	if err != nil {
		return n, err
	}
	return n, ErrInjected
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	fail := f.fs.failSync
	f.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	fail := f.fs.failTrunc
	f.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error { return f.inner.Close() }
