package durability

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotCompactsAndRecoveryReplaysTail(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact([]byte(`{"ops":5}`), "cfg-1"); err != nil {
		t.Fatal(err)
	}
	if st.RecordsSinceSnapshot() != 0 {
		t.Fatalf("records since snapshot = %d after compact", st.RecordsSinceSnapshot())
	}
	for i := 5; i < 8; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, snap, recs, err := Open(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if snap == nil || string(snap.State) != `{"ops":5}` || snap.Config != "cfg-1" || snap.LSN != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(recs) != 3 || recs[0].LSN != 6 || string(recs[2].Payload) != "op-7" {
		t.Fatalf("replay tail = %d records starting at %d", len(recs), recs[0].LSN)
	}
	if lsn, err := st2.Append([]byte("op-8")); err != nil || lsn != 9 {
		t.Fatalf("append after recovery: lsn %d err %v", lsn, err)
	}
}

// TestCrashBetweenSnapshotAndTruncate models the worst interleaving: the
// new snapshot is durable but the WAL still holds records it already
// includes. Recovery must skip them by LSN, not double-apply.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	st, _, _, err := Open(ffs, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot rename lands; the truncate "crashes".
	ffs.FailTruncate(true)
	if err := st.Compact([]byte(`{"ops":4}`), "cfg"); err == nil {
		t.Fatal("compact with failing truncate succeeded")
	}
	ffs.Clear()
	st.Close()

	st2, snap, recs, err := Open(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if snap == nil || snap.LSN != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(recs) != 0 {
		t.Fatalf("%d records replayed that the snapshot already includes", len(recs))
	}
	if lsn, err := st2.Append([]byte("next")); err != nil || lsn != 5 {
		t.Fatalf("append: lsn %d err %v", lsn, err)
	}
}

// TestFailedSnapshotKeepsOldState: a rename failure must leave the prior
// snapshot and the full WAL intact.
func TestFailedSnapshotKeepsOldState(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	st, _, _, err := Open(ffs, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("op-0")); err != nil {
		t.Fatal(err)
	}
	ffs.FailRename(true)
	if err := st.Compact([]byte(`{"new":true}`), "cfg"); err == nil {
		t.Fatal("compact with failing rename succeeded")
	}
	ffs.Clear()
	st.Close()

	_, snap, recs, err := Open(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("phantom snapshot %+v", snap)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "op-0" {
		t.Fatalf("records = %v", recs)
	}
}

func TestCorruptSnapshotIsAHardError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(OSFS{}, dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot silently ignored")
	}
}

// TestRiskRuleCadence pins the compaction rule to the paper's Equation 1:
// with hazard pf, per-record replay cost I, and snapshot cost C, the
// snapshot fires at the first d with pf·d·I ≥ C.
func TestRiskRuleCadence(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(OSFS{}, dir, Options{Hazard: 0.1, SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// I = 100µs, C = 40ms → threshold d = C/(pf·I) = 4000 records.
	st.SetReplayCost(100*time.Millisecond, 1000)
	st.snapCost = 40 * time.Millisecond

	st.sinceSnap = 3999
	if st.ShouldSnapshot() {
		t.Error("rule fired below the threshold")
	}
	st.sinceSnap = 4000
	if !st.ShouldSnapshot() {
		t.Error("rule did not fire at pf·d·I = C")
	}
	// The hard cap fires regardless of the cost model.
	st.sinceSnap = 10
	st.opts.SnapshotEvery = 10
	if !st.ShouldSnapshot() {
		t.Error("SnapshotEvery cap did not fire")
	}
	// An empty log never snapshots.
	st.sinceSnap = 0
	if st.ShouldSnapshot() {
		t.Error("snapshot of an unchanged state")
	}
}
