package durability

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL record framing. Each record is
//
//	[4-byte little-endian frame length][4-byte CRC32 (IEEE)][8-byte LSN][payload]
//
// where the frame length counts the LSN and payload bytes and the CRC
// covers them. A record whose length field is implausible, whose bytes run
// past the end of the file, or whose CRC fails marks the end of the valid
// log: everything from there on is a torn tail from a crash mid-append and
// is truncated on recovery.
const (
	frameHeaderSize = 8       // length + crc
	lsnSize         = 8       // sequence number inside the frame
	maxRecordSize   = 1 << 20 // sanity cap on one payload
	maxFrameLen     = lsnSize + maxRecordSize
)

// Record is one decoded WAL entry: a monotonically increasing log sequence
// number and an opaque payload (the service stores JSON-encoded operations).
type Record struct {
	LSN     uint64
	Payload []byte
}

// AppendFrame appends the canonical encoding of one record to buf and
// returns the extended slice. It is the single encoder: the writer, the
// recovery path, and the fuzz target all agree on it byte for byte.
func AppendFrame(buf []byte, lsn uint64, payload []byte) []byte {
	var hdr [frameHeaderSize + lsnSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(lsnSize+len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.ChecksumIEEE(hdr[8:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeRecords scans data for well-formed records and returns them along
// with the byte length of the valid prefix. Decoding never fails: the
// first zero-length, oversized, truncated, or CRC-mismatched frame — and
// any LSN that does not strictly increase — simply ends the valid prefix,
// which is exactly the recovery semantics for a log whose tail was torn by
// a crash.
func DecodeRecords(data []byte) (recs []Record, valid int64) {
	off := int64(0)
	var lastLSN uint64
	for int64(len(data))-off >= frameHeaderSize+lsnSize {
		frameLen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if frameLen < lsnSize || frameLen > maxFrameLen {
			return recs, off
		}
		if off+frameHeaderSize+frameLen > int64(len(data)) {
			return recs, off
		}
		body := data[off+frameHeaderSize : off+frameHeaderSize+frameLen]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return recs, off
		}
		lsn := binary.LittleEndian.Uint64(body[:lsnSize])
		if len(recs) > 0 && lsn <= lastLSN {
			return recs, off
		}
		payload := make([]byte, frameLen-lsnSize)
		copy(payload, body[lsnSize:])
		recs = append(recs, Record{LSN: lsn, Payload: payload})
		lastLSN = lsn
		off += frameHeaderSize + frameLen
	}
	return recs, off
}

// EncodeRecords is the inverse of DecodeRecords, used by tests and the
// fuzz target to assert the round trip is exact.
func EncodeRecords(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r.LSN, r.Payload)
	}
	return buf
}

// wal is the append side of the log. It tracks the last known-good file
// length so that a failed append (short write, fsync error) can be healed
// by truncating back to the record boundary before the next write.
type wal struct {
	fs   FS
	f    File
	path string

	nextLSN uint64
	good    int64 // file length after the last durable record
	damaged bool  // a failed append may have left partial bytes past good
}

// openWAL opens (creating if needed) the log for appending after `valid`
// bytes of well-formed records, truncating any torn tail beyond them.
func openWAL(fsys FS, path string, valid int64, nextLSN uint64) (*wal, error) {
	f, err := fsys.OpenFile(path, writeFlags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durability: open wal %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		//qoslint:allow syncerr best-effort close on the error path; the Truncate error is returned
		f.Close()
		return nil, fmt.Errorf("durability: truncate wal %s to %d: %w", path, valid, err)
	}
	return &wal{fs: fsys, f: f, path: path, nextLSN: nextLSN, good: valid}, nil
}

// append writes one record and forces it to stable storage, returning its
// LSN and the number of bytes written. On any error the record is not
// committed: the LSN is not consumed and the file is healed (or marked for
// healing) back to the last good boundary.
func (w *wal) append(payload []byte) (uint64, int, error) {
	if len(payload) > maxRecordSize {
		return 0, 0, fmt.Errorf("durability: record of %d bytes exceeds cap %d", len(payload), maxRecordSize)
	}
	if w.damaged {
		if err := w.heal(); err != nil {
			return 0, 0, err
		}
	}
	frame := AppendFrame(nil, w.nextLSN, payload)
	if _, err := w.f.Write(frame); err != nil {
		w.damaged = true
		w.heal() // best effort; append stays failed either way
		return 0, 0, fmt.Errorf("durability: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.damaged = true
		w.heal()
		return 0, 0, fmt.Errorf("durability: wal fsync: %w", err)
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.good += int64(len(frame))
	return lsn, len(frame), nil
}

// heal cuts the file back to the last record boundary after a failed
// append, so partial bytes never precede later records.
func (w *wal) heal() error {
	if !w.damaged {
		return nil
	}
	if err := w.f.Truncate(w.good); err != nil {
		return fmt.Errorf("durability: wal heal: %w", err)
	}
	w.damaged = false
	return nil
}

// reset truncates the log to empty after its records were folded into a
// durable snapshot. LSNs keep counting across resets.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durability: wal reset: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durability: wal reset fsync: %w", err)
	}
	w.good = 0
	w.damaged = false
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
