package durability

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T, fsys FS, dir string) *Store {
	t.Helper()
	st, snap, recs, err := Open(fsys, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(recs) != 0 {
		t.Fatalf("fresh dir recovered snap=%v records=%d", snap, len(recs))
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTestWAL(t, OSFS{}, dir)
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte(`{"kind":"advance","to":3600}`), bytes.Repeat([]byte("x"), 4096)}
	for i, p := range payloads {
		lsn, err := st.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, want)
		}
	}
	st.Close()

	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := DecodeRecords(data)
	if valid != int64(len(data)) {
		t.Fatalf("valid prefix %d of %d bytes", valid, len(data))
	}
	if len(recs) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Errorf("record %d: lsn %d payload %q", i, r.LSN, r.Payload)
		}
	}
	// The encoder and decoder must agree byte for byte.
	if !bytes.Equal(EncodeRecords(recs), data) {
		t.Error("re-encoding decoded records does not reproduce the file")
	}
}

func TestDecodeStopsAtTornTail(t *testing.T) {
	full := AppendFrame(nil, 1, []byte("first"))
	full = AppendFrame(full, 2, []byte("second"))
	whole := len(full)
	for cut := 0; cut <= whole; cut++ {
		recs, valid := DecodeRecords(full[:cut])
		if valid > int64(cut) {
			t.Fatalf("cut %d: valid %d beyond input", cut, valid)
		}
		// The valid prefix must end exactly on a record boundary.
		re, revalid := DecodeRecords(full[:valid])
		if revalid != valid || len(re) != len(recs) {
			t.Fatalf("cut %d: prefix %d not self-delimiting", cut, valid)
		}
	}
	// Cutting inside the second record must still yield the first whole.
	recs, valid := DecodeRecords(full[:whole-3])
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("torn tail: got %d records, valid %d", len(recs), valid)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	base := AppendFrame(nil, 1, []byte("keep"))
	good := len(base)
	tail := AppendFrame(nil, 2, []byte("flip me"))

	t.Run("flipped crc byte", func(t *testing.T) {
		data := append(append([]byte(nil), base...), tail...)
		data[good+4] ^= 0xff
		recs, valid := DecodeRecords(data)
		if len(recs) != 1 || valid != int64(good) {
			t.Fatalf("got %d records, valid %d, want 1 / %d", len(recs), valid, good)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		data := append(append([]byte(nil), base...), tail...)
		data[len(data)-1] ^= 0x01
		recs, valid := DecodeRecords(data)
		if len(recs) != 1 || valid != int64(good) {
			t.Fatalf("got %d records, valid %d", len(recs), valid)
		}
	})
	t.Run("zero length frame", func(t *testing.T) {
		data := append(append([]byte(nil), base...), make([]byte, 16)...)
		recs, valid := DecodeRecords(data)
		if len(recs) != 1 || valid != int64(good) {
			t.Fatalf("got %d records, valid %d", len(recs), valid)
		}
	})
	t.Run("giant length frame", func(t *testing.T) {
		huge := make([]byte, 16)
		binary.LittleEndian.PutUint32(huge[0:4], 1<<31)
		data := append(append([]byte(nil), base...), huge...)
		recs, valid := DecodeRecords(data)
		if len(recs) != 1 || valid != int64(good) {
			t.Fatalf("got %d records, valid %d", len(recs), valid)
		}
	})
	t.Run("non-monotonic lsn", func(t *testing.T) {
		data := append(append([]byte(nil), base...), AppendFrame(nil, 1, []byte("dup"))...)
		recs, valid := DecodeRecords(data)
		if len(recs) != 1 || valid != int64(good) {
			t.Fatalf("got %d records, valid %d", len(recs), valid)
		}
	})
}

func TestReopenTruncatesTornTailAndContinues(t *testing.T) {
	dir := t.TempDir()
	st := openTestWAL(t, OSFS{}, dir)
	if _, err := st.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Crash mid-append: partial third record on disk.
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := AppendFrame(nil, 3, []byte("three"))
	if _, err := f.Write(torn[:len(torn)-2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, snap, recs, err := Open(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if snap != nil {
		t.Fatal("unexpected snapshot")
	}
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("recovered %d records", len(recs))
	}
	// The torn tail must be gone and the next append must take LSN 3.
	lsn, err := st2.Append([]byte("three again"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("append after recovery: lsn %d, want 3", lsn)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, valid := DecodeRecords(data)
	if valid != int64(len(data)) || len(got) != 3 {
		t.Fatalf("after recovery append: %d records, valid %d of %d", len(got), valid, len(data))
	}
}

func TestFailedAppendHealsToRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	st := openTestWAL(t, ffs, dir)
	if _, err := st.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}

	// A short write tears the next record; the append must fail without
	// consuming its LSN.
	ffs.SetWriteBudget(5)
	if _, err := st.Append([]byte("torn record payload")); err == nil {
		t.Fatal("append through a short write succeeded")
	}
	ffs.Clear()

	lsn, err := st.Append([]byte("after heal"))
	if err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("lsn %d after failed append, want 2", lsn)
	}
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := DecodeRecords(data)
	if valid != int64(len(data)) || len(recs) != 2 {
		t.Fatalf("healed log has %d records, valid %d of %d", len(recs), valid, len(data))
	}
	if string(recs[1].Payload) != "after heal" {
		t.Fatalf("second record %q", recs[1].Payload)
	}
}

func TestFsyncFailureFailsAppendUntilHealed(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	st := openTestWAL(t, ffs, dir)

	ffs.FailSync(true)
	if _, err := st.Append([]byte("unsynced")); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if err := st.Heal(); err == nil {
		t.Fatal("heal with failing fsync succeeded")
	}
	ffs.Clear()
	if err := st.Heal(); err != nil {
		t.Fatalf("heal after clearing fault: %v", err)
	}
	lsn, err := st.Append([]byte("recovered"))
	if err != nil || lsn != 1 {
		t.Fatalf("append after heal: lsn %d err %v", lsn, err)
	}
}
