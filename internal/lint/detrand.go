package lint

import (
	"go/ast"
	"go/types"
)

// DetRand forbids the process-global math/rand state in deterministic
// packages. The global PRNG is shared across goroutines and seeded from the
// runtime, so two runs of the same scenario draw different streams and a
// replay cannot reconverge. Seeded sources are fine: rand.New(rand.NewSource
// (seed)) and every sampler in internal/stats remain legal, because their
// streams are a pure function of the seed.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand functions and unseeded sources in deterministic packages",
	Run:  runDetRand,
}

// randConstructors are the math/rand and math/rand/v2 functions that build
// an explicitly seeded generator rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path) {
		return nil
	}
	forEachNode(pass, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path := pkgNameOf(pass, id)
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		// Types (rand.Rand, rand.Source) and seeded constructors are fine;
		// any other function reference draws from the global generator.
		if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		if randConstructors[sel.Sel.Name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"rand.%s uses the process-global PRNG in deterministic package %s; draw from a seeded *stats.Source (or rand.New with an explicit seed) instead",
			sel.Sel.Name, pass.Pkg.Path)
		return true
	})
	return nil
}
