package lint

import (
	"go/ast"
)

// DetWallClock forbids wall-clock reads in the deterministic packages. The
// simulator owns virtual time; a time.Now smuggled into sim, sched, predict,
// checkpoint, negotiate, failure, experiment, or durability makes a replayed
// history diverge from the recorded one and silently voids the (deadline, p)
// guarantees. Profiling boundaries that only feed the obs layer are
// annotated with //qoslint:allow detwallclock <reason>.
var DetWallClock = &Analyzer{
	Name: "detwallclock",
	Doc:  "forbid time.Now/Since/timers in deterministic packages",
	Run:  runDetWallClock,
}

// wallClockFuncs lists the package-level time functions that read or depend
// on the process clock. Referencing one at all (not just calling it) is a
// finding, so passing time.Now as a value is caught too.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
}

func runDetWallClock(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path) {
		return nil
	}
	forEachNode(pass, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pkgNameOf(pass, id) != "time" || !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"time.%s reads the wall clock in deterministic package %s; derive time from the engine clock, or annotate a profiling boundary with %s %s <reason>",
			sel.Sel.Name, pass.Pkg.Path, DirectivePrefix, pass.Analyzer.Name)
		return true
	})
	return nil
}
