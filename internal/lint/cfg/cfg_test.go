package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reach returns the set of block indices reachable from the entry.
func reach(g *Graph) map[int]bool {
	seen := make(map[int]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// pathExists reports whether a node satisfying from can reach a node
// satisfying to along graph edges (from and to may sit in the same block if
// from precedes to).
func pathExists(g *Graph, from, to func(ast.Node) bool) bool {
	// Blocks where `from` fires, and the node index after which flow leaves.
	type start struct {
		b   *Block
		idx int
	}
	var starts []start
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if from(n) {
				starts = append(starts, start{b, i})
			}
		}
	}
	hits := func(b *Block, fromIdx int) bool {
		for _, n := range b.Nodes[fromIdx:] {
			if to(n) {
				return true
			}
		}
		return false
	}
	for _, s := range starts {
		if hits(s.b, s.idx+1) {
			return true
		}
		seen := map[int]bool{}
		var walk func(b *Block) bool
		walk = func(b *Block) bool {
			if seen[b.Index] {
				return false
			}
			seen[b.Index] = true
			if hits(b, 0) {
				return true
			}
			for _, nb := range b.Succs {
				if walk(nb) {
					return true
				}
			}
			return false
		}
		for _, nb := range s.b.Succs {
			if walk(nb) {
				return true
			}
		}
	}
	return false
}

func isCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestStraightLine(t *testing.T) {
	g := build(t, "a()\nb()\nc()")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3:\n%s", len(g.Entry.Nodes), g)
	}
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c:\n%s", g)
	}
	if pathExists(g, isCall("c"), isCall("a")) {
		t.Errorf("c must not reach a:\n%s", g)
	}
}

func TestIfBranches(t *testing.T) {
	g := build(t, "a()\nif x {\n b()\n} else {\n c()\n}\nd()")
	for _, want := range []struct{ from, to string }{
		{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}, {"a", "d"},
	} {
		if !pathExists(g, isCall(want.from), isCall(want.to)) {
			t.Errorf("%s should reach %s:\n%s", want.from, want.to, g)
		}
	}
	if pathExists(g, isCall("b"), isCall("c")) {
		t.Errorf("b must not reach c (exclusive branches):\n%s", g)
	}
}

func TestIfWithoutElseSkips(t *testing.T) {
	g := build(t, "if x {\n b()\n}\nd()")
	if !pathExists(g, isCall("b"), isCall("d")) {
		t.Errorf("b should reach d:\n%s", g)
	}
	// d must be reachable from entry without passing b: the false edge.
	foundDirect := false
	for _, s := range g.Entry.Succs {
		seen := map[int]bool{}
		var walk func(b *Block) bool
		walk = func(b *Block) bool {
			if seen[b.Index] {
				return false
			}
			seen[b.Index] = true
			for _, n := range b.Nodes {
				if isCall("b")(n) {
					return false // this path passes b
				}
				if isCall("d")(n) {
					return true
				}
			}
			for _, nb := range b.Succs {
				if walk(nb) {
					return true
				}
			}
			return false
		}
		if walk(s) {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Errorf("no b-free path from entry to d:\n%s", g)
	}
}

func TestReturnStopsFlow(t *testing.T) {
	g := build(t, "a()\nreturn\nb()")
	if pathExists(g, isCall("a"), isCall("b")) {
		t.Errorf("a must not reach b past a return:\n%s", g)
	}
	r := reach(g)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if isCall("b")(n) && r[b.Index] {
				t.Errorf("b's block %d is reachable:\n%s", b.Index, g)
			}
		}
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < n; i++ {\n a()\n b()\n}\nc()")
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c:\n%s", g)
	}
	// The back edge: b reaches a on the next iteration.
	if !pathExists(g, isCall("b"), isCall("a")) {
		t.Errorf("b should reach a via the back edge:\n%s", g)
	}
}

func TestForBreakContinue(t *testing.T) {
	g := build(t, "for {\n if x {\n  break\n }\n if y {\n  continue\n }\n a()\n}\nc()")
	if !pathExists(g, isCall("a"), isCall("a")) {
		t.Errorf("loop body should reach itself:\n%s", g)
	}
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c via break on a later iteration:\n%s", g)
	}
}

func TestInfiniteLoopAfterOnlyViaBreak(t *testing.T) {
	g := build(t, "for {\n a()\n}\nc()")
	if pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("no break: a must not reach c:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\n for {\n  if x {\n   break outer\n  }\n  a()\n }\n}\nc()")
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c via labeled break:\n%s", g)
	}
}

func TestRangeMayBeEmpty(t *testing.T) {
	g := build(t, "for range xs {\n a()\n}\nc()")
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c:\n%s", g)
	}
	// c reachable without a: empty range.
	if !pathExists(g, func(n ast.Node) bool { _, ok := n.(ast.Expr); return ok }, isCall("c")) {
		t.Errorf("range operand should reach c directly:\n%s", g)
	}
}

func TestSwitchCasesExclusive(t *testing.T) {
	g := build(t, "switch k {\ncase 1:\n a()\ncase 2:\n b()\n}\nd()")
	if pathExists(g, isCall("a"), isCall("b")) {
		t.Errorf("case bodies must be exclusive:\n%s", g)
	}
	if !pathExists(g, isCall("a"), isCall("d")) || !pathExists(g, isCall("b"), isCall("d")) {
		t.Errorf("both cases should reach d:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, "switch k {\ncase 1:\n a()\n fallthrough\ncase 2:\n b()\n}\nd()")
	if !pathExists(g, isCall("a"), isCall("b")) {
		t.Errorf("fallthrough should link case 1 to case 2:\n%s", g)
	}
}

func TestSelectCommStatementsInClauses(t *testing.T) {
	g := build(t, "select {\ncase v := <-ch:\n a()\ncase ch2 <- x:\n b()\n}\nd()")
	if pathExists(g, isCall("a"), isCall("b")) {
		t.Errorf("select clauses must be exclusive:\n%s", g)
	}
	if !pathExists(g, isCall("a"), isCall("d")) || !pathExists(g, isCall("b"), isCall("d")) {
		t.Errorf("both clauses should reach d:\n%s", g)
	}
	// The send comm statement must appear as a node somewhere.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SendStmt); ok {
				found = true
			}
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
				if u, ok := as.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("no comm statement node found:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "a()\ngoto done\nb()\ndone:\nc()")
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c via goto:\n%s", g)
	}
	if pathExists(g, isCall("a"), isCall("b")) {
		t.Errorf("a must not reach b (skipped by goto):\n%s", g)
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, "again:\na()\nif x {\n goto again\n}\nc()")
	if !pathExists(g, isCall("a"), isCall("a")) {
		t.Errorf("backward goto should loop:\n%s", g)
	}
	if !pathExists(g, isCall("a"), isCall("c")) {
		t.Errorf("a should reach c:\n%s", g)
	}
}

func TestCompoundNodesAreAtomic(t *testing.T) {
	// No block node may be a compound statement: inspecting a node's
	// subtree must never cross into another block.
	g := build(t, "if x {\n a()\n}\nfor i := 0; i < n; i++ {\n b()\n}\nswitch k {\ncase 1:\n c()\n}\nselect {\ncase <-ch:\n d()\n}")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt, *ast.LabeledStmt:
				t.Errorf("compound node %T leaked into block %d:\n%s", n, b.Index, g)
			}
		}
	}
}

func TestNilBodyGraph(t *testing.T) {
	g := New(nil)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("nil body must still produce entry and exit")
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should edge straight to exit:\n%s", g)
	}
}

func TestStringRendering(t *testing.T) {
	g := build(t, "a()\nreturn")
	s := g.String()
	if !strings.Contains(s, "expr") || !strings.Contains(s, "return") {
		t.Errorf("String output missing node kinds:\n%s", s)
	}
}
