// Package cfg builds a lightweight intraprocedural control-flow graph over
// a function body, using nothing beyond go/ast and go/token. It exists for
// the flow-aware qoslint analyzers (lockheld, poolescape): questions like
// "is this mutex held on any path between Lock and Unlock when we hit a
// channel send?" or "is this pooled value used after Put on some path?"
// are path questions, and a per-file AST walk cannot answer them.
//
// The graph is statement-granular and its nodes are atomic: a compound
// statement (if, for, switch, select) never appears as a node itself —
// only its control parts do (the condition, the range operand, the switch
// tag, the comm statements), with the branch bodies in successor blocks.
// An analysis may therefore inspect each node's full subtree without ever
// seeing a statement that belongs to another block.
//
// Deliberate simplifications, all conservative for may-analyses:
//
//   - Panics and calls that never return are not modeled; every statement
//     is assumed to fall through to the next.
//   - A goto jumps to its label when the label is in scope; an unresolved
//     goto (forward into a block the builder already closed is fine, but a
//     label that never appears is not) edges to the exit block.
//   - fallthrough edges to the next case body, as in the language.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every basic block in creation order; Blocks[0] is the
	// entry. Unreachable blocks (after a return, say) are retained: a
	// may-analysis simply never reaches them.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single synthetic exit block. Return statements and the
	// fall-off end of the body edge here. It holds no nodes.
	Exit *Block
}

// A Block is a straight-line run of atomic nodes with no internal control
// transfer.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the atomic AST nodes executed in order: plain statements,
	// plus the control parts of compound statements (an if condition, a
	// range operand, a switch tag, a select comm statement).
	Nodes []ast.Node
	// Succs are the blocks control may transfer to after the last node.
	Succs []*Block
}

// addSucc links b -> s once.
func (b *Block) addSucc(s *Block) {
	for _, t := range b.Succs {
		if t == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// New builds the graph for one function body. A nil body (a declaration
// without a definition) yields a graph whose entry edges straight to exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body reaches the exit.
	b.cur.addSucc(g.Exit)
	b.resolveGotos()
	return g
}

// String renders the graph compactly for tests and debugging:
//
//	b0[expr,assign] -> b1 b2
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[", blk.Index)
		for i, n := range blk.Nodes {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(nodeKind(n))
		}
		sb.WriteString("]")
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeKind names a node for String output.
func nodeKind(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.ExprStmt:
		return "expr"
	case *ast.ReturnStmt:
		return "return"
	case *ast.SendStmt:
		return "send"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.BranchStmt:
		return strings.ToLower(n.Tok.String())
	case ast.Expr:
		return "cond"
	default:
		return strings.TrimPrefix(strings.ToLower(fmt.Sprintf("%T", n)), "*ast.")
	}
}

type builder struct {
	g   *Graph
	cur *Block

	// loop/switch context for break and continue, innermost last. Each
	// entry carries its label ("" when unlabeled).
	breaks    []target
	continues []target

	// labels maps a label name to the block its labeled statement starts
	// in; gotos resolves forward references after the walk.
	labels map[string]*Block
	gotos  []pendingGoto
}

type target struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock begins a new block that the current one falls through to.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	b.cur.addSucc(blk)
	b.cur = blk
	return blk
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the pending label when the statement
// was wrapped in a LabeledStmt, so loops register labeled break/continue
// targets.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label names the first block of the labeled statement. Start a
		// fresh block so a goto can land exactly there.
		blk := b.startBlock()
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = blk
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		condBlk.addSucc(thenBlk)
		join := b.newBlock()
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.cur.addSucc(join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.addSucc(elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.cur.addSucc(join)
		} else {
			condBlk.addSucc(join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		head.addSucc(body)
		after := b.newBlock()
		if s.Cond != nil {
			head.addSucc(after) // condition false
		}
		post := b.newBlock()
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.cur.addSucc(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post, "")
			b.cur.addSucc(head)
		} else {
			post.addSucc(head)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		head := b.startBlock()
		b.add(s.X)
		body := b.newBlock()
		after := b.newBlock()
		head.addSucc(body)
		head.addSucc(after) // range may be empty
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.cur.addSucc(head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, func(c *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, len(c.List))
			for i, e := range c.List {
				nodes[i] = e
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, target{label, after})
		hasDefault := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			head.addSucc(blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			} else {
				hasDefault = true
			}
			b.stmtList(comm.Body)
			b.cur.addSucc(after)
		}
		_ = hasDefault // a select with no default still must pick a clause
		if len(s.Body.List) == 0 {
			// select {} blocks forever; model as edging to exit.
			head.addSucc(b.g.Exit)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.cur.addSucc(b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breaks, s.Label); t != nil {
				b.cur.addSucc(t)
			} else {
				b.cur.addSucc(b.g.Exit)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findTarget(b.continues, s.Label); t != nil {
				b.cur.addSucc(t)
			} else {
				b.cur.addSucc(b.g.Exit)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// switchBody wires the edge; nothing to do here.
		}

	default:
		// Plain statements: expr, assign, decl, incdec, send, defer, go,
		// empty. Atomic by construction.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// switchBody lowers the case clauses of a value or type switch. caseNodes
// extracts the per-clause guard nodes added to the clause's block (the case
// expressions for a value switch, nothing for a type switch).
func (b *builder) switchBody(label string, body *ast.BlockStmt, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, target{label, after})
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cl := range body.List {
		c := cl.(*ast.CaseClause)
		blk := b.newBlock()
		head.addSucc(blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, c)
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.addSucc(after) // no case matched
	}
	for i, c := range clauses {
		b.cur = caseBlocks[i]
		for _, n := range caseNodes(c) {
			b.add(n)
		}
		b.stmtList(c.Body)
		if endsInFallthrough(c.Body) && i+1 < len(caseBlocks) {
			b.cur.addSucc(caseBlocks[i+1])
		} else {
			b.cur.addSucc(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, target{label, brk})
	b.continues = append(b.continues, target{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue to the innermost matching target:
// unlabeled picks the innermost, labeled picks the matching label.
func (b *builder) findTarget(ts []target, label *ast.Ident) *Block {
	if label == nil {
		if len(ts) == 0 {
			return nil
		}
		return ts[len(ts)-1].block
	}
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i].label == label.Name {
			return ts[i].block
		}
	}
	return nil
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if blk, ok := b.labels[g.label]; ok {
			g.from.addSucc(blk)
		} else {
			// A label the builder never saw; be conservative.
			g.from.addSucc(b.g.Exit)
		}
	}
}
