package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags ranging over a map where the loop body feeds an
// order-sensitive sink: an encoder or writer method, the fmt print family,
// or an append to a slice that outlives the loop. Go randomizes map
// iteration order per run, so such a loop makes exposition output — tables,
// golden JSON, /metrics pages — differ between byte-identical replays. The
// fix is to iterate sorted keys; a loop that appends to a slice which is
// sorted later in the same function is recognized as already normalized and
// not flagged.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid map iteration that writes to order-sensitive sinks",
	Run:  runMapRange,
}

// orderSinkMethods are selector names whose call inside a map-range body
// emits output in iteration order: io/bufio writers, string builders,
// encoders, and the fmt print family.
var orderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteRecord": true,
	"WriteAll":    true,
	"Encode":      true,
	"EncodeToken": true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

func runMapRange(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Collect every function body so append targets can be checked for a
		// later sort in their innermost enclosing function.
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findOrderSink(pass, rs, enclosingBody(bodies, rs)); sink != "" {
				pass.Reportf(rs.For,
					"map iteration order is nondeterministic but the loop body %s; iterate sorted keys, or annotate with %s %s <reason>",
					sink, DirectivePrefix, pass.Analyzer.Name)
			}
			return true
		})
	}
	return nil
}

// enclosingBody returns the innermost collected function body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// findOrderSink scans the range body for the first order-sensitive sink and
// describes it, or returns "" if the body is order-insensitive.
func findOrderSink(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	info := pass.Pkg.Info
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderSinkMethods[sel.Sel.Name] {
				sink = "calls " + exprString(pass.Pkg.Fset, sel) + " in iteration order"
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				// Only appends to a slice declared before the loop leak
				// iteration order; a sort of that slice later in the same
				// function restores determinism.
				if obj == nil || (rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End()) {
					continue
				}
				if sortedLater(info, fnBody, rs, obj) {
					continue
				}
				sink = "appends to " + id.Name + " in iteration order (not sorted afterwards)"
				return false
			}
		}
		return true
	})
	return sink
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether obj is passed to a sort or slices function
// after the range statement, inside the enclosing function body.
func sortedLater(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
