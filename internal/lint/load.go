package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("probqos/internal/sim").
	Path string
	// Fset positions every file in the package (shared across the Loader).
	Fset *token.FileSet
	// Files holds the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// Src maps file names to raw source, used to classify trailing comments.
	Src map[string][]byte
}

// A Loader parses and type-checks module packages with no tooling outside
// the standard library. Imports within the module resolve recursively
// through the loader itself; imports outside the module (the standard
// library) resolve through go/importer's source importer, which type-checks
// GOROOT sources directly and therefore needs no pre-compiled artifacts.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at modRoot (a directory
// containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: abs,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	l.std = src
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load resolves the patterns to package directories and returns the loaded
// packages sorted by import path. Supported patterns are "./..." (the whole
// module), "dir/..." (a subtree), and plain directory paths, all relative to
// the current working directory. Directories named testdata or vendor and
// directories whose name starts with "." or "_" are skipped, as are
// _test.go files: qoslint checks shipped code, and tests legitimately use
// the wall clock.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		ip, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(dir, ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand maps patterns to a sorted, de-duplicated list of directories that
// contain at least one non-test Go file.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		ok, err := hasGoFiles(pat)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("lint: no non-test Go files in %s", pat)
		}
		add(filepath.Clean(pat))
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && includeFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func includeFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor for module-local import paths.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(importPath, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks the package in dir under the given import
// path, memoized by import path. Tests use an explicit importPath to place
// fixture packages inside (or outside) the deterministic set. It returns
// (nil, nil) when the directory holds no non-test Go files.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	src := make(map[string][]byte)
	for _, e := range entries { // ReadDir sorts by name: parse order is stable
		if e.IsDir() || !includeFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, path, data, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		src[path] = data
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Src:   src,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Packages returns every module package this loader has loaded — the ones
// requested through Load plus every module dependency pulled in by type
// checking — sorted by import path. Drivers hand this to NewProgram so the
// interprocedural analyzers can see dependency function bodies.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load through
// the loader, everything else through the standard library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.LoadDir(l.dirFor(path), path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
