package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one fixture package from testdata/src/<dir> under an
// explicit import path, so tests can place it inside or outside the
// deterministic and durability-critical sets.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	return pkg
}

// render formats findings the way the tests assert them: base file name,
// exact position, analyzer, exact message.
func render(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%s:%d:%d: [%s] %s", filepath.Base(f.File), f.Line, f.Col, f.Analyzer, f.Message)
	}
	return out
}

func runOn(t *testing.T, pkg *Package, analyzers ...*Analyzer) []string {
	t.Helper()
	fs, err := Run([]*Package{pkg}, analyzers, Names())
	if err != nil {
		t.Fatal(err)
	}
	return render(fs)
}

func diffStrings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d\ngot:\n  %s", len(got), len(want), strings.Join(got, "\n  "))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

// TestAnalyzerFixtures drives each analyzer over its seeded fixture and
// asserts the exact finding positions and messages. Every fixture also
// contains the corrected forms, so a silent pass on those is asserted by
// the same exact-match comparison.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name       string
		dir        string
		importPath string
		analyzer   *Analyzer
		want       []string
	}{
		{
			name:       "detwallclock",
			dir:        "detwallclock",
			importPath: "probqos/internal/sim/fixture",
			analyzer:   DetWallClock,
			want: []string{
				"detwallclock.go:13:10: [detwallclock] time.Now reads the wall clock in deterministic package probqos/internal/sim/fixture; derive time from the engine clock, or annotate a profiling boundary with //qoslint:allow detwallclock <reason>",
				"detwallclock.go:14:7: [detwallclock] time.Since reads the wall clock in deterministic package probqos/internal/sim/fixture; derive time from the engine clock, or annotate a profiling boundary with //qoslint:allow detwallclock <reason>",
				"detwallclock.go:15:7: [detwallclock] time.NewTimer reads the wall clock in deterministic package probqos/internal/sim/fixture; derive time from the engine clock, or annotate a profiling boundary with //qoslint:allow detwallclock <reason>",
			},
		},
		{
			name:       "detrand",
			dir:        "detrand",
			importPath: "probqos/internal/sched/fixture",
			analyzer:   DetRand,
			want: []string{
				"detrand.go:14:7: [detrand] rand.Float64 uses the process-global PRNG in deterministic package probqos/internal/sched/fixture; draw from a seeded *stats.Source (or rand.New with an explicit seed) instead",
				"detrand.go:15:7: [detrand] rand.Intn uses the process-global PRNG in deterministic package probqos/internal/sched/fixture; draw from a seeded *stats.Source (or rand.New with an explicit seed) instead",
				"detrand.go:16:2: [detrand] rand.Shuffle uses the process-global PRNG in deterministic package probqos/internal/sched/fixture; draw from a seeded *stats.Source (or rand.New with an explicit seed) instead",
			},
		},
		{
			name:       "floateq",
			dir:        "floateq",
			importPath: "probqos/internal/fixture",
			analyzer:   FloatEq,
			want: []string{
				"floateq.go:10:7: [floateq] floating-point == comparison (a == b); use an epsilon or ordered comparison, or annotate an exact case with //qoslint:allow floateq <reason>",
				"floateq.go:13:7: [floateq] floating-point != comparison (f != g); use an epsilon or ordered comparison, or annotate an exact case with //qoslint:allow floateq <reason>",
				"floateq.go:16:11: [floateq] floating-point != comparison (a != 0); use an epsilon or ordered comparison, or annotate an exact case with //qoslint:allow floateq <reason>",
			},
		},
		{
			name:       "syncerr",
			dir:        "syncerr",
			importPath: "probqos/internal/durability/fixture",
			analyzer:   SyncErr,
			want: []string{
				"syncerr.go:14:2: [syncerr] error from f.Sync is discarded in durability-critical package probqos/internal/durability/fixture; a lost write error breaks the crash-safety guarantee — handle it, or annotate best-effort cleanup with //qoslint:allow syncerr <reason>",
				"syncerr.go:15:6: [syncerr] error from f.Close is discarded in durability-critical package probqos/internal/durability/fixture; a lost write error breaks the crash-safety guarantee — handle it, or annotate best-effort cleanup with //qoslint:allow syncerr <reason>",
				"syncerr.go:16:8: [syncerr] error from f.Sync is discarded in durability-critical package probqos/internal/durability/fixture; a lost write error breaks the crash-safety guarantee — handle it, or annotate best-effort cleanup with //qoslint:allow syncerr <reason>",
			},
		},
		{
			name:       "maprange",
			dir:        "maprange",
			importPath: "probqos/internal/fixture",
			analyzer:   MapRange,
			want: []string{
				"maprange.go:14:2: [maprange] map iteration order is nondeterministic but the loop body calls w.WriteString in iteration order; iterate sorted keys, or annotate with //qoslint:allow maprange <reason>",
				"maprange.go:17:2: [maprange] map iteration order is nondeterministic but the loop body calls fmt.Println in iteration order; iterate sorted keys, or annotate with //qoslint:allow maprange <reason>",
				"maprange.go:21:2: [maprange] map iteration order is nondeterministic but the loop body appends to out in iteration order (not sorted afterwards); iterate sorted keys, or annotate with //qoslint:allow maprange <reason>",
			},
		},
		{
			name:       "obsimport",
			dir:        "obsimport",
			importPath: "probqos/internal/durability/fixture",
			analyzer:   ObsImport,
			want: []string{
				`obsimport.go:7:2: [obsimport] deterministic package probqos/internal/durability/fixture imports observability package "probqos/internal/obs"; observability reads replayed state but must never feed it — wire the two together in the service layer instead`,
				`obsimport.go:8:2: [obsimport] deterministic package probqos/internal/durability/fixture imports observability package "probqos/internal/trace"; observability reads replayed state but must never feed it — wire the two together in the service layer instead`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.importPath)
			diffStrings(t, runOn(t, pkg, tc.analyzer), tc.want)
		})
	}
}

// TestScopedAnalyzersSilentOutsideScope reloads the deterministic and
// durability fixtures under out-of-scope import paths and asserts the
// analyzers stay silent: the wall-clock boundary in obs/service is legal by
// construction, not by annotation.
func TestScopedAnalyzersSilentOutsideScope(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		analyzer   *Analyzer
	}{
		{"detwallclock", "probqos/internal/obs/fixture", DetWallClock},
		{"detwallclock", "probqos/internal/trace/fixture", DetWallClock},
		{"detrand", "probqos/internal/obs/fixture", DetRand},
		{"syncerr", "probqos/internal/obs/fixture", SyncErr},
		{"syncerr", "probqos/cmd/fixture", SyncErr},
		{"obsimport", "probqos/internal/service/fixture", ObsImport},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name+"/"+tc.importPath, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.importPath)
			if got := runOn(t, pkg, tc.analyzer); len(got) != 0 {
				t.Errorf("%s fired outside its scope:\n  %s", tc.analyzer.Name, strings.Join(got, "\n  "))
			}
		})
	}
}

// TestAllowDirectiveScoping asserts a directive suppresses findings only
// for the analyzer it names: the wrong-name and half-allowed wall-clock
// reads survive, while the stacked and trailing forms are fully silenced.
func TestAllowDirectiveScoping(t *testing.T) {
	pkg := loadFixture(t, "allow", "probqos/internal/sim/fixture")
	got := runOn(t, pkg, DetWallClock, FloatEq)
	want := []string{
		"allow.go:12:9: [detwallclock] time.Now reads the wall clock in deterministic package probqos/internal/sim/fixture; derive time from the engine clock, or annotate a profiling boundary with //qoslint:allow detwallclock <reason>",
		"allow.go:26:9: [detwallclock] time.Since reads the wall clock in deterministic package probqos/internal/sim/fixture; derive time from the engine clock, or annotate a profiling boundary with //qoslint:allow detwallclock <reason>",
	}
	diffStrings(t, got, want)
}

// TestMalformedDirectives asserts the framework reports directives missing
// an analyzer name, missing a reason, or naming an unknown analyzer.
func TestMalformedDirectives(t *testing.T) {
	pkg := loadFixture(t, "directive", "probqos/internal/fixture")
	got := runOn(t, pkg, FloatEq)
	want := []string{
		"directive.go:5:1: [qoslint] //qoslint:allow directive is missing an analyzer name and reason",
		"directive.go:8:1: [qoslint] //qoslint:allow floateq is missing a reason; state why the exception is sound",
		"directive.go:11:1: [qoslint] //qoslint:allow names unknown analyzer \"nosuch\"",
	}
	diffStrings(t, got, want)
}

func TestIsObservabilityPkg(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"probqos/internal/obs", true},
		{"probqos/internal/trace", true},
		{"probqos/internal/trace/sub", true},
		{"probqos/internal/sim", false},
		{"probqos/internal/service", false},
		{"probqos/cmd/tracegen", false},
		{"probqos/trace", false}, // only internal/<name> is in the set
	}
	for _, tc := range cases {
		if got := IsObservabilityPkg(tc.path); got != tc.want {
			t.Errorf("IsObservabilityPkg(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestIsDeterministicPkg(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"probqos/internal/sim", true},
		{"probqos/internal/sched", true},
		{"probqos/internal/predict", true},
		{"probqos/internal/checkpoint", true},
		{"probqos/internal/negotiate", true},
		{"probqos/internal/failure", true},
		{"probqos/internal/experiment", true},
		{"probqos/internal/durability", true},
		{"probqos/internal/durability/sub", true},
		{"probqos/internal/scenario", true},
		{"probqos/internal/obs", false},
		{"probqos/internal/service", false},
		{"probqos/internal/stats", false},
		{"probqos/cmd/qossim", false},
		{"probqos", false},
		{"internal/sim", true},
		{"probqos/sim", false}, // only internal/<name> is in the set
	}
	for _, tc := range cases {
		if got := IsDeterministicPkg(tc.path); got != tc.want {
			t.Errorf("IsDeterministicPkg(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestNamesMatchAll keeps the directive vocabulary in sync with the
// registry.
func TestNamesMatchAll(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatalf("Names() has %d entries, All() has %d", len(names), len(all))
	}
	for i, a := range all {
		if names[i] != a.Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], a.Name)
		}
	}
	if len(all) < 5 {
		t.Errorf("registry has %d analyzers, want at least the 5 shipped ones", len(all))
	}
}
