// Package lint is a small static-analysis framework built on the standard
// library's go/parser, go/ast, and go/types — no external dependencies, per
// the module's stdlib-only rule. It exists to machine-check the invariants
// the paper reproduction depends on: deterministic replay (no wall clock, no
// unseeded randomness in simulation code), exact golden output (no float
// equality, no map-order-dependent exposition), and durability (no silently
// dropped fsync errors).
//
// The cmd/qoslint driver loads the module's packages and runs the registered
// analyzer set (see analyzers.go); findings print as
//
//	file:line:col: [analyzer] message
//
// and any finding makes the driver exit non-zero. Intentional exceptions are
// annotated in source with an allow directive naming one analyzer and a
// mandatory reason:
//
//	//qoslint:allow detwallclock profiling boundary, never feeds results
//
// A directive written on the same line as the finding suppresses that line;
// a directive on its own line suppresses the next non-directive line.
// Suppression is per-analyzer: an allow for detwallclock does not silence a
// floateq finding on the same line. Directives with a missing analyzer name,
// a missing reason, or an unknown analyzer name are themselves reported (as
// analyzer "qoslint") and cannot be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one invariant across a package. Run inspects the
// package via the Pass and reports findings with Pass.Reportf; it returns an
// error only for internal failures (a finding is not an error).
type Analyzer struct {
	// Name identifies the analyzer in findings, allow directives, and the
	// driver's -enable/-disable flags. Lowercase, no spaces.
	Name string
	// Doc is a one-line description shown by `qoslint -list`.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package. Prog gives the
// flow-aware analyzers the rest of the loaded module: dependency package
// syntax, the function index, and the cross-package fact store.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program

	report func(Finding)
}

// Reportf records a finding at pos. The framework drops the finding if an
// allow directive for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Finding is one reported invariant violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// File, Line, and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the finding in the driver's file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// DirectivePrefix introduces an allow directive in a line comment.
const DirectivePrefix = "//qoslint:allow"

// frameworkAnalyzer attributes malformed-directive findings; it is not a
// runnable analyzer and cannot be suppressed.
const frameworkAnalyzer = "qoslint"

// Run executes the analyzers over the packages and returns every surviving
// finding sorted by file, line, column, then analyzer name. known lists all
// analyzer names valid in allow directives (normally the names of All());
// directives naming anything else are reported as malformed. The Program
// the passes see contains exactly pkgs; use RunProgram when dependency
// packages should be visible to the flow-aware analyzers.
func Run(pkgs []*Package, analyzers []*Analyzer, known []string) ([]Finding, error) {
	return RunProgram(NewProgram(pkgs, known), pkgs, analyzers, known)
}

// RunProgram is Run with an explicit Program: targets are the packages
// findings are reported for, while prog may additionally hold their module
// dependencies so interprocedural analyses can cross package boundaries.
func RunProgram(prog *Program, targets []*Package, analyzers []*Analyzer, known []string) ([]Finding, error) {
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	var findings []Finding
	for _, pkg := range targets {
		allows, bad := parseDirectives(pkg, knownSet)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Prog:     prog,
				report: func(f Finding) {
					if allows.covers(f.Analyzer, f.Pos.Filename, f.Pos.Line) {
						return
					}
					f.File, f.Line, f.Col = f.Pos.Filename, f.Pos.Line, f.Pos.Column
					findings = append(findings, f)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// allowSet maps file → line → analyzer names suppressed on that line.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(file string, line int, analyzer string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	names := byLine[line]
	if names == nil {
		names = make(map[string]bool)
		byLine[line] = names
	}
	names[analyzer] = true
}

func (s allowSet) covers(analyzer, file string, line int) bool {
	if analyzer == frameworkAnalyzer {
		return false
	}
	return s[file][line][analyzer]
}

// parseDirectives scans every comment in the package for allow directives.
// It returns the resulting suppression set plus a finding for each malformed
// directive (missing analyzer, missing reason, unknown analyzer name).
func parseDirectives(pkg *Package, known map[string]bool) (allowSet, []Finding) {
	allows := make(allowSet)
	var bad []Finding
	malformed := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Finding{
			Analyzer: frameworkAnalyzer,
			Pos:      pos,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Files {
		type directive struct {
			pos      token.Position
			analyzer string
			trailing bool
		}
		var ds []directive
		standalone := make(map[int]bool) // lines holding a whole-line directive
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, DirectivePrefix)
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					malformed(pos, "%s directive is missing an analyzer name and reason", DirectivePrefix)
					continue
				}
				name := fields[0]
				if !known[name] {
					malformed(pos, "%s names unknown analyzer %q", DirectivePrefix, name)
					continue
				}
				if len(fields) < 2 {
					malformed(pos, "%s %s is missing a reason; state why the exception is sound", DirectivePrefix, name)
					continue
				}
				d := directive{pos: pos, analyzer: name, trailing: trailingComment(pkg, pos)}
				if !d.trailing {
					standalone[pos.Line] = true
				}
				ds = append(ds, d)
			}
		}
		for _, d := range ds {
			target := d.pos.Line
			if !d.trailing {
				// A whole-line directive covers the next line that is not
				// itself a directive, so directives stack.
				target++
				for standalone[target] {
					target++
				}
			}
			allows.add(d.pos.Filename, target, d.analyzer)
		}
	}
	return allows, bad
}

// trailingComment reports whether non-blank source text precedes pos on its
// line — i.e. the directive shares a line with code and covers that line
// rather than the next one.
func trailingComment(pkg *Package, pos token.Position) bool {
	src, ok := pkg.Src[pos.Filename]
	if !ok {
		return false
	}
	// Walk back from the comment's byte offset to the preceding newline.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return false
		case ' ', '\t', '\r':
			continue
		default:
			return true
		}
	}
	return false
}

// forEachNode applies fn to every node in every file of the pass's package.
// Returning false from fn prunes that subtree.
func forEachNode(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
