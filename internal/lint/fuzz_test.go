package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// FuzzAllowDirective throws arbitrary source at the allow-directive parser
// and checks the framework's suppression invariants hold for every input:
// parsing is deterministic, malformed directives are attributed to the
// unsuppressable framework analyzer at a real position, and the suppression
// set never contains an unknown analyzer name or silences the framework
// itself.
func FuzzAllowDirective(f *testing.F) {
	// Seed with the real malformed-directive fixture plus handwritten
	// edge shapes: well-formed, truncated, unknown names, odd whitespace,
	// trailing placement, stacked standalone directives, and near-misses
	// of the prefix.
	if seed, err := os.ReadFile(filepath.Join("testdata", "src", "directive", "directive.go")); err == nil {
		f.Add(string(seed))
	}
	for _, s := range []string{
		"package p\n//qoslint:allow detwallclock profiling boundary\nvar x = 1\n",
		"package p\nvar x = 1 //qoslint:allow floateq tolerance is exact here\n",
		"package p\n//qoslint:allow\nvar x = 1\n",
		"package p\n//qoslint:allow maprange\nvar x = 1\n",
		"package p\n//qoslint:allow nosuch because reasons\nvar x = 1\n",
		"package p\n//qoslint:allowx smashed prefix\nvar x = 1\n",
		"package p\n//qoslint:allow\tdetrand\ttab separated reason\nvar x = 1\n",
		"package p\n//qoslint:allow qoslint trying to silence the framework\nvar x = 1\n",
		"package p\n//qoslint:allow dettaint first\n//qoslint:allow lockheld second\nvar x = 1\n",
		"package p\n/*qoslint:allow floateq block comments are not directives*/\nvar x = 1\n",
	} {
		f.Add(s)
	}

	known := make(map[string]bool)
	for _, n := range Names() {
		known[n] = true
	}

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return // not valid Go; the parser rejects it before lint runs
		}
		pkg := &Package{
			Path:  "probqos/internal/fuzz",
			Fset:  fset,
			Files: []*ast.File{file},
			Src:   map[string][]byte{"fuzz.go": []byte(src)},
		}
		allows, bad := parseDirectives(pkg, known)
		allows2, bad2 := parseDirectives(pkg, known)
		if !reflect.DeepEqual(allows, allows2) || !reflect.DeepEqual(bad, bad2) {
			t.Fatalf("parseDirectives is not deterministic:\n%v\n%v", allows, allows2)
		}
		for _, finding := range bad {
			if finding.Analyzer != frameworkAnalyzer {
				t.Errorf("malformed directive attributed to %q, want %q", finding.Analyzer, frameworkAnalyzer)
			}
			if finding.File != "fuzz.go" || finding.Line < 1 || finding.Message == "" {
				t.Errorf("malformed-directive finding lacks a usable position or message: %+v", finding)
			}
		}
		for fileName, byLine := range allows {
			for line, names := range byLine {
				if allows.covers(frameworkAnalyzer, fileName, line) {
					t.Errorf("suppression set silences the framework analyzer at %s:%d", fileName, line)
				}
				for name := range names {
					if !known[name] {
						t.Errorf("suppression set holds unknown analyzer %q at %s:%d", name, fileName, line)
					}
				}
			}
		}
		if !strings.Contains(src, DirectivePrefix) && (len(allows) != 0 || len(bad) != 0) {
			t.Errorf("directives materialized from source with no %s prefix", DirectivePrefix)
		}
	})
}
