package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WalSwitch pins the crash-safety contract that every journaled record kind
// is replayable: the service's walOp kinds and the engine's journal Op kinds
// are string constants switched over in exactly two places each (live apply
// and replay), and adding a kind without extending every switch must fail
// lint, not fail at the first post-crash boot.
//
// The analyzer has no hard-coded list of enums. Any package-level const
// block declaring two or more string constants forms a kind group; a switch
// statement that cases on any member of a group must case on all of them.
// A default clause does not exempt the switch: machine.apply and
// Engine.Restore both end in a default that rejects unknown kinds, and that
// error path is precisely what a forgotten case would fall into at replay
// time. Additionally, an unexported member that is never used outside its
// own declaration and switch cases has no producer anywhere in the module —
// a record kind nothing journals — and is reported at its declaration.
var WalSwitch = &Analyzer{
	Name: "walswitch",
	Doc:  "require switches over journaled record-kind const groups to handle every kind",
	Run:  runWalSwitch,
}

// kindGroup is one package-level const block of string constants, treated
// as a closed record-kind enumeration.
type kindGroup struct {
	// Members in declaration order.
	Members []*types.Const
	// Pos is the const block's position, used to name the group in
	// findings.
	Pos token.Position
}

// kindGroupFactNS namespaces the member-to-group index in the Program's
// fact store, so each declaring package is scanned once no matter how many
// target packages switch over its kinds.
const kindGroupFactNS = "walswitch"

func runWalSwitch(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	// Exhaustiveness: every switch that cases on a kind must case on the
	// whole group.
	forEachNode(pass, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		covered := make(map[*kindGroup]map[*types.Const]bool)
		for _, cl := range sw.Body.List {
			for _, e := range cl.(*ast.CaseClause).List {
				c := constOf(pass.Pkg, e)
				if c == nil {
					continue
				}
				g := groupOf(pass.Prog, c)
				if g == nil {
					continue
				}
				if covered[g] == nil {
					covered[g] = make(map[*types.Const]bool)
				}
				covered[g][c] = true
			}
		}
		for g, got := range covered {
			var missing []string
			for _, m := range g.Members {
				if !got[m] {
					missing = append(missing, m.Name())
				}
			}
			if len(missing) == 0 {
				continue
			}
			sort.Strings(missing)
			pass.Reportf(sw.Switch,
				"switch covers only %d of %d kinds declared at %s:%d (missing %s); every journaled kind needs identical live and replay handling — add the cases, or annotate with %s %s <reason>",
				len(got), len(g.Members), shortFile(g.Pos.Filename), g.Pos.Line,
				strings.Join(missing, ", "), DirectivePrefix, pass.Analyzer.Name)
		}
		return true
	})

	// Construction: an unexported kind declared in this package must be
	// produced somewhere in the module, not just discriminated on.
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, _ := pass.Pkg.Info.Defs[name].(*types.Const)
					if c == nil || c.Exported() || groupOf(pass.Prog, c) == nil {
						continue
					}
					if !constructedSomewhere(pass.Prog, c) {
						pass.Reportf(name.Pos(),
							"record kind %s is switched on but never constructed; a kind nothing journals cannot appear in a WAL — wire up its producer or delete it",
							c.Name())
					}
				}
			}
		}
	}
	return nil
}

// constOf resolves a case expression to the constant it names, or nil.
func constOf(pkg *Package, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := pkg.Info.Uses[id].(*types.Const)
	return c
}

// groupOf returns the kind group the constant belongs to, indexing the
// declaring package's const blocks on first demand. Constants that are not
// part of a string group of at least two members — or whose declaring
// package is not loaded — have no group.
func groupOf(prog *Program, c *types.Const) *kindGroup {
	if g, ok := prog.Facts.Get(c, kindGroupFactNS); ok {
		grp, _ := g.(*kindGroup)
		return grp
	}
	if c.Pkg() == nil {
		return nil
	}
	pkg := prog.Package(c.Pkg().Path())
	if pkg == nil {
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			group := &kindGroup{Pos: pkg.Fset.Position(gd.Pos())}
			stringGroup := true
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					stringGroup = false
					break
				}
				for _, name := range vs.Names {
					m, _ := pkg.Info.Defs[name].(*types.Const)
					if m == nil || !isStringConst(m) {
						stringGroup = false
						break
					}
					group.Members = append(group.Members, m)
				}
				if !stringGroup {
					break
				}
			}
			if !stringGroup || len(group.Members) < 2 {
				continue
			}
			for _, m := range group.Members {
				prog.Facts.Set(m, kindGroupFactNS, group)
			}
		}
	}
	// A negative result is cached too, so unrelated constants in scanned
	// packages do not trigger rescans.
	if _, ok := prog.Facts.Get(c, kindGroupFactNS); !ok {
		prog.Facts.Set(c, kindGroupFactNS, (*kindGroup)(nil))
	}
	g, _ := prog.Facts.Get(c, kindGroupFactNS)
	grp, _ := g.(*kindGroup)
	return grp
}

func isStringConst(c *types.Const) bool {
	basic, ok := c.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// constructedSomewhere reports whether any loaded package uses the constant
// outside a const declaration and outside switch case expressions — i.e.
// there exists a site that actually produces a record with this kind.
func constructedSomewhere(prog *Program, c *types.Const) bool {
	for _, pkg := range prog.Packages() {
		for _, file := range pkg.Files {
			// Collect spans where a use does not count as construction:
			// const blocks and case-clause expression lists.
			var skip []span
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GenDecl:
					if n.Tok == token.CONST {
						skip = append(skip, span{n.Pos(), n.End()})
					}
				case *ast.CaseClause:
					for _, e := range n.List {
						skip = append(skip, span{e.Pos(), e.End()})
					}
				}
				return true
			})
			found := false
			ast.Inspect(file, func(n ast.Node) bool {
				if found {
					return false
				}
				id, ok := n.(*ast.Ident)
				if !ok || pkg.Info.Uses[id] != c {
					return true
				}
				for _, s := range skip {
					if id.Pos() >= s.from && id.Pos() < s.to {
						return true
					}
				}
				found = true
				return false
			})
			if found {
				return true
			}
		}
	}
	return false
}

type span struct{ from, to token.Pos }

// shortFile trims a path to its final two elements for findings that name
// a declaration in another file.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
