package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != where both operands are floating point. The
// probabilities and QoS scores this repo trades in are accumulated floats;
// exact equality on them is order-of-evaluation dependent, which is exactly
// the kind of silent nondeterminism the golden corpus exists to catch.
// Compare with an epsilon or an ordered comparison instead. Comparisons
// where both operands are compile-time constants are exact and exempt;
// genuinely exact cases (a value just read from a generator, an IEEE
// sentinel) get //qoslint:allow floateq <reason>.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= between floating-point operands",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	info := pass.Pkg.Info
	forEachNode(pass, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		tx, okX := info.Types[bin.X]
		ty, okY := info.Types[bin.Y]
		if !okX || !okY || !isFloat(tx.Type) || !isFloat(ty.Type) {
			return true
		}
		if tx.Value != nil && ty.Value != nil {
			return true // constant-folded: exact by construction
		}
		pass.Reportf(bin.OpPos,
			"floating-point %s comparison (%s); use an epsilon or ordered comparison, or annotate an exact case with %s %s <reason>",
			bin.Op, exprString(pass.Pkg.Fset, bin), DirectivePrefix, pass.Analyzer.Name)
		return true
	})
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
