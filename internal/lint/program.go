package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"probqos/internal/lint/facts"
)

// A Program is the whole-module view the flow-aware analyzers work from:
// every loaded package (analysis targets and their module dependencies), a
// lazily built index from function objects to their syntax, the cross-
// package fact store, and the union of every package's allow directives.
// A Pass carries the Program so an analyzer inspecting one package can
// chase a call into another package's function body instead of stopping at
// the type signature.
type Program struct {
	pkgs map[string]*Package

	// Facts carries analyzer-computed per-object facts across packages
	// (dettaint's nondeterministic-source marks live here). One store per
	// Program: facts computed while analyzing an early package are visible
	// to every later pass.
	Facts *facts.Store

	funcs      map[*types.Func]*FuncSource
	funcsBuilt bool

	// allows unions every loaded package's directive set, so source-level
	// suppression works for facts computed about dependency packages that
	// are not themselves analysis targets.
	allows      allowSet
	allowsBuilt bool
	known       map[string]bool
}

// FuncSource is a function's declaration together with the package that
// holds it, so analyzers can read the body with the right types.Info.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// NewProgram builds a Program over the given packages. The known names
// seed directive parsing for Allowed; pass Names() (the default used by
// Run) unless a test needs a custom vocabulary.
func NewProgram(pkgs []*Package, known []string) *Program {
	p := &Program{
		pkgs:  make(map[string]*Package, len(pkgs)),
		Facts: facts.NewStore(),
		known: make(map[string]bool, len(known)),
	}
	for _, pkg := range pkgs {
		p.pkgs[pkg.Path] = pkg
	}
	for _, n := range known {
		p.known[n] = true
	}
	return p
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.pkgs[path] }

// Packages returns every loaded package sorted by import path.
func (p *Program) Packages() []*Package {
	out := make([]*Package, 0, len(p.pkgs))
	for _, pkg := range p.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FuncSource returns the declaration of fn if its defining package is
// loaded in this Program. Function literals, interface methods, and
// functions of packages outside the Program (the standard library) have no
// source here.
func (p *Program) FuncSource(fn *types.Func) (*FuncSource, bool) {
	if !p.funcsBuilt {
		p.funcs = make(map[*types.Func]*FuncSource)
		for _, pkg := range p.Packages() {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Name == nil {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.funcs[obj] = &FuncSource{Decl: fd, Pkg: pkg}
					}
				}
			}
		}
		p.funcsBuilt = true
	}
	fs, ok := p.funcs[fn]
	return fs, ok
}

// Allowed reports whether an allow directive for the named analyzer covers
// the given file and line, in any loaded package. Analyzers consult this
// when deciding whether an annotated site should seed a cross-package fact
// — the framework's own per-finding suppression only sees target packages.
func (p *Program) Allowed(analyzer, file string, line int) bool {
	if !p.allowsBuilt {
		p.allows = make(allowSet)
		for _, pkg := range p.Packages() {
			got, _ := parseDirectives(pkg, p.known)
			for f, byLine := range got {
				for ln, names := range byLine {
					for name := range names {
						p.allows.add(f, ln, name)
					}
				}
			}
		}
		p.allowsBuilt = true
	}
	return p.allows.covers(analyzer, file, line)
}

// calleeOf resolves a call expression to the package-level function or
// method it statically invokes, using pkg's type information. Calls
// through function values, builtins, interface methods without a static
// receiver, and type conversions resolve to nil.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.F().
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
