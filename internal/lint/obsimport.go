package lint

import (
	"go/ast"
	"strconv"
)

// ObsImport forbids the deterministic packages from importing the
// observability layer (internal/obs, internal/trace). Those packages read
// the wall clock and hold request-scoped mutable state; if sim or
// durability could reach a tracer or a metrics registry directly, a
// replay-visible dependency on observation would be one refactor away.
// The wiring lives in the service layer, which sits outside the
// deterministic set and hands engine state outward — never back in.
var ObsImport = &Analyzer{
	Name: "obsimport",
	Doc:  "forbid deterministic packages from importing the observability layer",
	Run:  runObsImport,
}

func runObsImport(pass *Pass) error {
	if !IsDeterministicPkg(pass.Pkg.Path) {
		return nil
	}
	forEachNode(pass, func(n ast.Node) bool {
		spec, ok := n.(*ast.ImportSpec)
		if !ok {
			return true
		}
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil || !IsObservabilityPkg(path) {
			return true
		}
		pass.Reportf(spec.Pos(),
			"deterministic package %s imports observability package %q; observability reads replayed state but must never feed it — wire the two together in the service layer instead",
			pass.Pkg.Path, path)
		return true
	})
	return nil
}
