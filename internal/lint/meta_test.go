package lint

import (
	"strings"
	"testing"
)

// TestEveryAnalyzerHasFixtureCoverage pins the registry to the fixture zoo:
// every analyzer returned by All() must name a fixture package on which it
// produces at least one finding. Registering a new analyzer without seeding
// a fixture (or renaming one without updating its fixture entry) fails
// here, so the exact-position tables in lint_test.go and flow_test.go can
// never silently stop covering an analyzer.
func TestEveryAnalyzerHasFixtureCoverage(t *testing.T) {
	// fixtures maps analyzer name → the fixture packages to load (in
	// dependency order) and the index of the package findings must land in.
	fixtures := map[string]struct {
		specs  []fixtureSpec
		target int
	}{
		"detwallclock": {[]fixtureSpec{{"detwallclock", "probqos/internal/sim/fixture"}}, 0},
		"detrand":      {[]fixtureSpec{{"detrand", "probqos/internal/sched/fixture"}}, 0},
		"floateq":      {[]fixtureSpec{{"floateq", "probqos/internal/fixture"}}, 0},
		"syncerr":      {[]fixtureSpec{{"syncerr", "probqos/internal/durability/fixture"}}, 0},
		"maprange":     {[]fixtureSpec{{"maprange", "probqos/internal/fixture"}}, 0},
		"obsimport":    {[]fixtureSpec{{"obsimport", "probqos/internal/durability/fixture"}}, 0},
		"dettaint": {[]fixtureSpec{
			{"dettaintdep", "probqos/internal/clockutil/fixture"},
			{"dettaint", "probqos/internal/sim/fixture"},
			{"dettaintcall", "probqos/internal/qosd/fixture"},
		}, 1},
		"lockheld":   {[]fixtureSpec{{"lockheld", "probqos/internal/fixture"}}, 0},
		"poolescape": {[]fixtureSpec{{"poolescape", "probqos/internal/fixture"}}, 0},
		"walswitch":  {[]fixtureSpec{{"walswitch", "probqos/internal/fixture"}}, 0},
	}

	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
		if _, ok := fixtures[a.Name]; !ok {
			t.Errorf("analyzer %q is registered but has no fixture entry; seed one under testdata/src and add it here", a.Name)
		}
	}
	for name := range fixtures {
		if _, ok := byName[name]; !ok {
			t.Errorf("fixture entry %q names no registered analyzer; was it renamed?", name)
		}
	}

	for name, fx := range fixtures {
		a := byName[name]
		if a == nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			pkgs, prog := loadFixtureProgram(t, fx.specs...)
			fs, err := RunProgram(prog, []*Package{pkgs[fx.target]}, []*Analyzer{a}, Names())
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for _, f := range fs {
				if f.Analyzer == name {
					n++
				}
			}
			if n == 0 {
				t.Errorf("analyzer %q produced no findings on its fixture %s; the fixture no longer exercises it:\n  %s",
					name, fx.specs[fx.target].dir, strings.Join(render(fs), "\n  "))
			}
		})
	}
}
