// Package fixture seeds detrand violations and corrected forms for the
// analyzer tests. It is loaded under a deterministic import path by the
// tests and is never built by the module itself.
package fixture

import (
	"math/rand"

	"probqos/internal/stats"
)

// Violations draws from the process-global PRNG three ways.
func Violations(xs []int) float64 {
	u := rand.Float64()
	n := rand.Intn(len(xs) + 1)
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return u + float64(n)
}

// Seeded is the corrected form: explicitly seeded generators are legal, and
// referencing the rand.Rand type is not a finding.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// ViaStats is the repo's preferred form.
func ViaStats(seed int64) float64 {
	return stats.NewSource(seed).Float64()
}
