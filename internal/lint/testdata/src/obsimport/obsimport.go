// Package fixture seeds obsimport violations and corrected forms for the
// analyzer tests. It is loaded under a deterministic import path by the
// tests and is never built by the module itself.
package fixture

import (
	"probqos/internal/obs"
	"probqos/internal/trace"
	"probqos/internal/units"
)

// Reg and Led give the forbidden imports something to declare; the
// findings are on the import specs themselves, not the uses.
var (
	Reg *obs.Registry
	Led *trace.Ledger
)

// Legal shows the corrected form: deterministic code computes on virtual
// time and plain values, and the service layer does the observing.
func Legal(t units.Time) units.Time { return t + units.Time(units.Minute) }
