// Package fixture exercises poolescape: objects read, aliased, or released
// again after being handed back to a sync.Pool, an arena, or a freelist,
// plus the corrected forms that must stay silent.
package fixture

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

// UseAfterPut reads the buffer after returning it to the pool: bad.
func UseAfterPut() int {
	b := pool.Get().(*buf)
	pool.Put(b)
	return len(b.b)
}

// DoublePut can release twice when fail is true: bad.
func DoublePut(fail bool) {
	b := pool.Get().(*buf)
	if fail {
		pool.Put(b)
	}
	pool.Put(b)
}

// PutLast copies what it needs before releasing: fine.
func PutLast() int {
	b := pool.Get().(*buf)
	n := len(b.b)
	pool.Put(b)
	return n
}

// Rebind gets a fresh object after the release: the reassignment clears
// the released state, so the later read is fine.
func Rebind() int {
	b := pool.Get().(*buf)
	pool.Put(b)
	b = pool.Get().(*buf)
	n := len(b.b)
	pool.Put(b)
	return n
}

type event struct{ id int }

type arena struct{ free []*event }

func (a *arena) get() *event {
	if n := len(a.free); n > 0 {
		ev := a.free[n-1]
		a.free = a.free[:n-1]
		return ev
	}
	return new(event)
}

func (a *arena) put(ev *event) { a.free = append(a.free, ev) }

// RecycleThenRead reads a field after the arena reclaimed the event: bad.
func (a *arena) RecycleThenRead(ev *event) int {
	a.put(ev)
	return ev.id
}

// PushTwice pushes the same event onto the freelist twice: bad.
func (a *arena) PushTwice(ev *event) {
	a.free = append(a.free, ev)
	a.free = append(a.free, ev)
}

// ReadThenRecycle is the correct order: fine.
func (a *arena) ReadThenRecycle(ev *event) int {
	id := ev.id
	a.put(ev)
	return id
}

// LoopReuse rebinds the variable each iteration: fine.
func (a *arena) LoopReuse(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		ev := a.get()
		sum += ev.id
		a.put(ev)
	}
	return sum
}
