// Package fixture seeds syncerr violations and corrected forms for the
// analyzer tests. It is loaded under a durability-critical import path by
// the tests.
package fixture

import (
	"io"
	"os"
)

// Violations discards Sync/Close errors three ways: expression statement,
// blank assignment, and defer.
func Violations(f *os.File) {
	f.Sync()
	_ = f.Close()
	defer f.Sync()
}

// Clean checks every error and closes a non-writable handle, which is out
// of scope.
func Clean(f *os.File, rc io.ReadCloser) error {
	rc.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Allowed shows the annotated best-effort-cleanup form.
func Allowed(f *os.File) {
	//qoslint:allow syncerr fixture best-effort cleanup
	f.Close()
}
