// Package fixture seeds detwallclock violations and corrected forms for the
// analyzer tests. It is loaded under a deterministic import path by the
// tests and is never built by the module itself.
package fixture

import "time"

// Stamp gives the violations something to assign to.
var Stamp time.Time

// Violations holds one finding per wall-clock read.
func Violations() time.Duration {
	Stamp = time.Now()
	d := time.Since(Stamp)
	t := time.NewTimer(d)
	defer t.Stop()
	return d
}

// Allowed shows the annotated profiling-boundary form.
func Allowed() time.Time {
	//qoslint:allow detwallclock fixture profiling boundary
	return time.Now()
}

// Virtual is the corrected form: time arrives as a parameter from the
// engine clock instead of the process clock.
func Virtual(now time.Time) time.Duration {
	return now.Sub(Stamp)
}
