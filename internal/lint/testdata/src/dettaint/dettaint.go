// Package fixture is dettaint's deterministic-side fixture: loaded under a
// deterministic import path, it calls transitively tainted, clean, and
// sanctioned helpers from the dependency fixture, plus an in-package
// map-order-dependent helper.
package fixture

import clockutil "probqos/internal/clockutil/fixture"

// StepDelay calls a helper whose result derives from the wall clock two
// calls down: bad.
func StepDelay() float64 {
	return clockutil.Jitter()
}

// Width calls a clean helper: fine.
func Width(a, b float64) float64 {
	return clockutil.Span(a, b)
}

// Seed calls a sanctioned boundary: fine.
func Seed() int64 {
	return clockutil.SeedFromEnv()
}

// pick is order-dependent: it returns whichever key the runtime happens to
// iterate first, so every caller inherits the taint.
func pick(m map[string]int) int {
	for _, v := range m {
		return v
	}
	return 0
}

// First calls the order-dependent helper: bad.
func First(m map[string]int) int {
	return pick(m)
}
