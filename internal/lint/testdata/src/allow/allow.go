// Package fixture exercises allow-directive scoping: a directive suppresses
// only the analyzer it names, stacked whole-line directives cover the same
// statement, and the trailing form covers its own line.
package fixture

import "time"

// WrongName carries an allow for detrand, which must not silence the
// detwallclock finding on the next line.
func WrongName() time.Time {
	//qoslint:allow detrand names the wrong analyzer on purpose
	return time.Now()
}

// Stacked suppresses two different analyzers on one statement.
func Stacked(a float64) bool {
	//qoslint:allow detwallclock fixture boundary
	//qoslint:allow floateq fixture exact sentinel
	return time.Since(time.Unix(0, 0)).Seconds() == a
}

// HalfAllowed allows only floateq; the detwallclock finding on the same
// line must survive.
func HalfAllowed(a float64) bool {
	//qoslint:allow floateq fixture exact sentinel
	return time.Since(time.Unix(0, 0)).Seconds() == a
}

// Trailing uses the same-line form.
func Trailing() time.Time {
	return time.Now() //qoslint:allow detwallclock fixture boundary
}
