// Package fixture seeds malformed allow directives, which the framework
// itself reports and which cannot be suppressed.
package fixture

//qoslint:allow
func MissingEverything() {}

//qoslint:allow floateq
func MissingReason() {}

//qoslint:allow nosuch the analyzer name does not exist
func UnknownAnalyzer() {}
