// Package fixture is dettaint's dependency fixture: module helpers loaded
// under a non-deterministic import path, exercising taint that is invisible
// to the syntactic analyzers because the wall-clock read sits two calls
// away from the deterministic caller.
package fixture

import "time"

// wallSeconds is the primitive source: a direct wall-clock read.
func wallSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// Jitter launders the read through a second helper: callers are tainted
// two calls away from time.Now.
func Jitter() float64 {
	return wallSeconds() * 0.5
}

// Span is clean: pure arithmetic, callable from anywhere.
func Span(a, b float64) float64 {
	return b - a
}

// SeedFromEnv is a reviewed boundary: the annotation sanctions the source,
// so callers in deterministic packages are not tainted by it.
func SeedFromEnv() int64 {
	return time.Now().UnixNano() //qoslint:allow dettaint reviewed boundary, seed is recorded in run metadata and replayed
}
