// Package fixture exercises walswitch: a string record-kind group whose
// apply switch misses a member, a complete replay switch that must stay
// silent, and a kind that is discriminated on but never produced.
package fixture

// Record kinds journaled by the fixture's imaginary WAL.
const (
	opAlpha = "alpha"
	opBeta  = "beta"
	opGamma = "gamma"
)

type rec struct{ Kind string }

// Apply misses opGamma: a record of that kind would hit the default and
// fail replay.
func Apply(r rec) int {
	switch r.Kind {
	case opAlpha:
		return 1
	case opBeta:
		return 2
	default:
		return 0
	}
}

// Replay covers every kind: fine.
func Replay(r rec) int {
	switch r.Kind {
	case opAlpha:
		return 1
	case opBeta, opGamma:
		return 2
	default:
		return 0
	}
}

// Produce constructs every kind of the first group.
func Produce() []rec {
	return []rec{{Kind: opAlpha}, {Kind: opBeta}, {Kind: opGamma}}
}

// A second group with a member nothing ever produces.
const (
	evUsed   = "used"
	evOrphan = "orphan"
)

// Route covers both members, so the only finding is the orphaned producer.
func Route(kind string) bool {
	switch kind {
	case evUsed:
		return true
	case evOrphan:
		return false
	}
	return false
}

// MkUsed constructs evUsed; evOrphan has no producer anywhere.
func MkUsed() rec { return rec{Kind: evUsed} }
