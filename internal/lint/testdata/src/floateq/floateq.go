// Package fixture seeds floateq violations and corrected forms for the
// analyzer tests.
package fixture

const eps = 1e-9

// Violations compares floats exactly three ways: two variables, float32
// operands, and a variable against a constant.
func Violations(a, b float64, f, g float32) bool {
	if a == b {
		return true
	}
	if f != g {
		return false
	}
	return a != 0
}

// Clean holds the forms the analyzer must stay silent on: integer equality,
// epsilon comparison, ordered comparison, and constant folding.
func Clean(a, b float64, n, m int) bool {
	if n == m {
		return true
	}
	if d := a - b; -eps < d && d < eps {
		return true
	}
	const half = 0.5
	return half == 0.5 && a < b
}

// Allowed shows the annotated exact-sentinel form.
func Allowed(u float64) bool {
	//qoslint:allow floateq fixture exact sentinel
	return u == 0
}
