// Package fixture exercises lockheld: blocking operations inside critical
// sections and lock leaks on early returns, plus the corrected forms that
// must stay silent.
package fixture

import (
	"os"
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
	ch chan int
}

// BlockUnderLock sleeps while holding the mutex: bad.
func (c *counter) BlockUnderLock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond)
	c.mu.Unlock()
}

// SendUnderDeferredLock sends on a channel with the deferred unlock still
// pending: the lock is held across the send.
func (c *counter) SendUnderDeferredLock(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- v
}

// LeakOnError returns early with the mutex still held: bad.
func (c *counter) LeakOnError(err error) error {
	c.mu.Lock()
	if err != nil {
		return err
	}
	c.mu.Unlock()
	return nil
}

// Balanced unlocks on every path: fine.
func (c *counter) Balanced(err error) error {
	c.mu.Lock()
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// DeferBalanced relies on the deferred unlock: fine.
func (c *counter) DeferBalanced() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// TryNotify uses a select with a default clause: the send is a non-blocking
// attempt, so holding the lock across it is fine.
func (c *counter) TryNotify(v int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.ch <- v:
		return true
	default:
		return false
	}
}

// ReleaseBeforeBlocking unlocks before the send: fine.
func (c *counter) ReleaseBeforeBlocking(v int) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.ch <- v
}

type store struct {
	rw sync.RWMutex
	f  *os.File
}

// FlushUnderRLock fsyncs while holding the read lock: a slow disk stalls
// every writer.
func (s *store) FlushUnderRLock() {
	s.rw.RLock()
	s.f.Sync() //qoslint:allow syncerr fixture exercises lockheld, not syncerr
	s.rw.RUnlock()
}

// ClosureLeak leaks inside a function literal, which gets its own graph.
func ClosureLeak(c *counter, errs <-chan error) func() error {
	return func() error {
		c.mu.Lock()
		if err := <-errs; err != nil {
			return err
		}
		c.mu.Unlock()
		return nil
	}
}
