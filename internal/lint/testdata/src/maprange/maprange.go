// Package fixture seeds maprange violations and corrected forms for the
// analyzer tests.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Violations iterates maps into order-sensitive sinks: a string builder, the
// fmt print family, and a slice that escapes unsorted.
func Violations(m map[string]int, w *strings.Builder) []string {
	for k := range m {
		w.WriteString(k)
	}
	for k, v := range m {
		fmt.Println(k, v)
	}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the corrected form: the appended slice is sorted in the
// same function, so iteration order cannot leak.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Aggregate is order-insensitive and must not be flagged.
func Aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Allowed shows the annotated order-does-not-matter form.
func Allowed(m map[string]int) {
	//qoslint:allow maprange fixture output order is irrelevant
	for k := range m {
		fmt.Println(k)
	}
}
