// Package fixture is dettaint's flow-direction fixture: a non-deterministic
// driver package passing freshly read nondeterministic values into a
// deterministic package's functions.
package fixture

import (
	"time"

	simfix "probqos/internal/sim/fixture"
)

// FeedClock hands a live wall-clock read straight into the deterministic
// package: bad.
func FeedClock() float64 {
	return simfix.Width(float64(time.Now().UnixNano()), 0)
}

// FeedJitter hands a transitively tainted value in: bad.
func FeedJitter() float64 {
	return simfix.Width(simfix.StepDelay(), 0)
}

// FeedConst passes plain data: fine.
func FeedConst() float64 {
	return simfix.Width(1.5, 0.5)
}
