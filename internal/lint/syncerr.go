package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncErr flags Sync and Close calls on writable files whose error result
// is discarded, inside the durability-critical packages (internal/durability
// and internal/service). A dropped fsync or close error means the WAL can
// acknowledge a record the disk never accepted — the exact failure the
// crash-recovery suite exists to rule out. Best-effort cleanup on an error
// path is annotated with //qoslint:allow syncerr <reason>.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc:  "forbid discarding Sync/Close errors on writable files in durability-critical packages",
	Run:  runSyncErr,
}

// writerIface is io.Writer built from first principles so the analyzer does
// not depend on type-checking the io package: anything whose method set has
// Write([]byte) (int, error) counts as a writable handle.
var writerIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func runSyncErr(pass *Pass) error {
	if !durabilityCriticalPkg(pass.Pkg.Path) {
		return nil
	}
	forEachNode(pass, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		case *ast.GoStmt:
			call = stmt.Call
		case *ast.AssignStmt:
			// `_ = f.Close()`: a single call whose one result lands in blank.
			if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 1 {
				return true
			}
			if id, ok := stmt.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
			call, _ = stmt.Rhs[0].(*ast.CallExpr)
		default:
			return true
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Sync" && sel.Sel.Name != "Close") {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !returnsOnlyError(sig) {
			return true
		}
		recv, ok := pass.Pkg.Info.Types[sel.X]
		if !ok || !isWritableHandle(recv.Type) {
			return true
		}
		pass.Reportf(call.Pos(),
			"error from %s.%s is discarded in durability-critical package %s; a lost write error breaks the crash-safety guarantee — handle it, or annotate best-effort cleanup with %s %s <reason>",
			exprString(pass.Pkg.Fset, sel.X), sel.Sel.Name, pass.Pkg.Path, DirectivePrefix, pass.Analyzer.Name)
		return true
	})
	return nil
}

func returnsOnlyError(sig *types.Signature) bool {
	if sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error")
}

// isWritableHandle reports whether t (or *t) satisfies the structural
// io.Writer shape — a file open for writing, a WAL segment, a snapshot
// temp file.
func isWritableHandle(t types.Type) bool {
	if types.Implements(t, writerIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return types.Implements(types.NewPointer(t), writerIface)
		}
	}
	return false
}
