package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetTaint is the interprocedural complement of detwallclock and detrand:
// those catch a literal time.Now or rand.Float64 written inside a
// deterministic package, while this one catches the same read laundered
// through any chain of module helpers. A function whose result derives —
// directly or through calls — from the wall clock, the process-global
// PRNG, or map-iteration order is marked with a nondeterministic-source
// fact; any call to (or reference of) such a function from a deterministic
// package is a finding, reported with the full taint chain down to the
// original source.
//
// Sources that are already annotated (//qoslint:allow detwallclock,
// detrand, maprange, or dettaint on the source line) are sanctioned
// boundaries — profiling reads that feed obs and never simulation state —
// and do not seed taint, so one reviewed annotation clears both the
// syntactic and the flow-aware analyzer.
//
// Known limits, all deliberate: calls through interfaces and function
// values are not chased (sim.Probe implementations may read the clock —
// their call sites are annotated); recursion is resolved optimistically;
// and an argument must contain a tainted call syntactically for the
// into-deterministic direction to fire — a wall-clock value parked in a
// local first is the service layer's speedup clock, which is the one
// sanctioned way real time enters the system.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "forbid calls whose results transitively derive from wall clock, global PRNG, or map order in deterministic packages",
	Run:  runDetTaint,
}

// taintFactNS namespaces dettaint's facts in the Program store.
const taintFactNS = "dettaint"

// taintFact marks one function as a nondeterministic source. Chain walks
// from the function itself down to the primitive source, rendered as
// "pkg.F -> pkg.g -> time.Now".
type taintFact struct {
	// Reason names the primitive source: "time.Now", "rand.Intn",
	// "map iteration order".
	Reason string
	// Chain lists the call path from the marked function to the source.
	Chain []string
}

// notTainted is cached for functions proven clean, so the demand-driven
// walk visits every function at most once per Program.
type notTainted struct{}

func runDetTaint(pass *Pass) error {
	if pass.Prog == nil {
		return fmt.Errorf("dettaint requires a Program (use Run or RunProgram)")
	}
	d := &tainter{prog: pass.Prog}
	det := IsDeterministicPkg(pass.Pkg.Path)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if !det {
					return true
				}
				// A use of a tainted module function — call or value
				// reference — inside a deterministic package.
				fn, ok := pass.Pkg.Info.Uses[n].(*types.Func)
				if !ok {
					return true
				}
				fact := d.taintOf(fn)
				if fact == nil {
					return true
				}
				pass.Reportf(n.Pos(),
					"%s is a nondeterministic source (%s) used in deterministic package %s; derive the value from engine state, or annotate a reviewed boundary with %s %s <reason>",
					chainString(fact), fact.Reason, pass.Pkg.Path, DirectivePrefix, pass.Analyzer.Name)
				return true
			case *ast.CallExpr:
				if det {
					return true
				}
				// The other direction: a non-deterministic package passing a
				// freshly produced nondeterministic value into a
				// deterministic package's function.
				callee := calleeOf(pass.Pkg, n)
				if callee == nil || callee.Pkg() == nil || !IsDeterministicPkg(callee.Pkg().Path()) {
					return true
				}
				for _, arg := range n.Args {
					if src, reason := d.directTaintIn(pass.Pkg, arg); src != nil {
						pass.Reportf(src.Pos(),
							"%s flows into deterministic package %s via the call to %s; nondeterministic inputs must be journaled state, not live reads — or annotate with %s %s <reason>",
							reason, callee.Pkg().Path(), callee.Name(), DirectivePrefix, pass.Analyzer.Name)
					}
				}
				return true
			}
			return true
		})
	}
	return nil
}

// tainter computes and caches nondeterministic-source facts on demand.
type tainter struct {
	prog *Program
	// inProgress guards against recursion: a cycle is resolved
	// optimistically (the function is clean unless something acyclic taints
	// it), which can only under-report.
	inProgress map[*types.Func]bool
}

// taintOf returns the source fact for fn, computing and caching it on
// first demand. Functions without loadable bodies (stdlib other than the
// recognized time/rand primitives, interface methods) are clean.
func (d *tainter) taintOf(fn *types.Func) *taintFact {
	if f, ok := d.prog.Facts.Get(fn, taintFactNS); ok {
		if tf, ok := f.(*taintFact); ok {
			return tf
		}
		return nil
	}
	if d.inProgress[fn] {
		return nil
	}
	if d.inProgress == nil {
		d.inProgress = make(map[*types.Func]bool)
	}
	d.inProgress[fn] = true
	defer delete(d.inProgress, fn)

	fact := d.compute(fn)
	if fact != nil {
		d.prog.Facts.Set(fn, taintFactNS, fact)
	} else {
		d.prog.Facts.Set(fn, taintFactNS, notTainted{})
	}
	return fact
}

// compute scans fn's body for the first nondeterministic source in syntax
// order: a wall-clock or global-PRNG reference, an order-dependent map
// range, or a call to an already tainted module function.
func (d *tainter) compute(fn *types.Func) *taintFact {
	src, ok := d.prog.FuncSource(fn)
	if !ok || src.Decl.Body == nil {
		return nil
	}
	pkg := src.Pkg
	var fact *taintFact
	ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
		if fact != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if reason := primitiveSource(pkg, n); reason != "" && !d.allowedSource(pkg, n.Pos()) {
				fact = &taintFact{Reason: reason, Chain: []string{funcLabel(fn), reason}}
				return false
			}
		case *ast.RangeStmt:
			if reason := mapOrderSource(pkg, n); reason != "" && !d.allowedSource(pkg, n.For) {
				fact = &taintFact{Reason: reason, Chain: []string{funcLabel(fn), reason}}
				return false
			}
		case *ast.CallExpr:
			callee := calleeOf(pkg, n)
			if callee == nil || callee == fn {
				return true
			}
			if sub := d.taintOf(callee); sub != nil && !d.allowedSource(pkg, n.Pos()) {
				fact = &taintFact{Reason: sub.Reason, Chain: append([]string{funcLabel(fn)}, sub.Chain...)}
				return false
			}
		}
		return true
	})
	return fact
}

// taintAllowNames are the analyzers whose allow directive sanctions a
// source line against seeding taint: the flow-aware analyzer itself plus
// the syntactic determinism analyzers, so one reviewed annotation clears
// both layers.
var taintAllowNames = []string{"dettaint", "detwallclock", "detrand", "maprange"}

// allowedSource reports whether an allow directive for dettaint or one of
// the syntactic determinism analyzers covers the position — a reviewed
// boundary that must not seed taint.
func (d *tainter) allowedSource(pkg *Package, pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	p := pkg.Fset.Position(pos)
	for _, name := range taintAllowNames {
		if d.prog.Allowed(name, p.Filename, p.Line) {
			return true
		}
	}
	return false
}

// directTaintIn scans an argument expression for a syntactically direct
// nondeterministic producer: a wall-clock/PRNG reference or a call to a
// tainted module function. It returns the offending node and a label.
func (d *tainter) directTaintIn(pkg *Package, arg ast.Expr) (ast.Node, string) {
	var node ast.Node
	var label string
	ast.Inspect(arg, func(n ast.Node) bool {
		if node != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if reason := primitiveSource(pkg, n); reason != "" && !d.allowedSource(pkg, n.Pos()) {
				node, label = n, reason
				return false
			}
		case *ast.CallExpr:
			callee := calleeOf(pkg, n)
			if callee == nil {
				return true
			}
			if sub := d.taintOf(callee); sub != nil && !d.allowedSource(pkg, n.Pos()) {
				node, label = n, chainString(sub)
				return false
			}
		}
		return true
	})
	return node, label
}

// primitiveSource classifies a selector as a primitive nondeterministic
// read: a wall-clock function from time, or a process-global math/rand
// function.
func primitiveSource(pkg *Package, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	switch path := pkgNameOf(&Pass{Pkg: pkg}, id); path {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			return "time." + sel.Sel.Name
		}
	case "math/rand", "math/rand/v2":
		if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); isFunc && !randConstructors[sel.Sel.Name] {
			return "rand." + sel.Sel.Name
		}
	}
	return ""
}

// mapOrderSource reports whether a range statement iterates a map in a way
// that makes the function's behaviour order-dependent: the body returns or
// breaks (first-key-wins), which is the interprocedural shape maprange's
// sink rules cannot see.
func mapOrderSource(pkg *Package, rs *ast.RangeStmt) string {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok {
		return ""
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return ""
	}
	if stmtEscapesLoop(rs.Body, true) {
		return "map iteration order"
	}
	return ""
}

// stmtEscapesLoop reports whether executing s can leave the enclosing map
// range early: a return anywhere (closures excluded — statement traversal
// never descends into expressions), or an unlabeled break bound to that
// range. breakMine is true while an unlabeled break still binds to the map
// range rather than to a nested loop, switch, or select.
func stmtEscapesLoop(s ast.Stmt, breakMine bool) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return breakMine && s.Tok == token.BREAK && s.Label == nil
	case *ast.BlockStmt:
		for _, st := range s.List {
			if stmtEscapesLoop(st, breakMine) {
				return true
			}
		}
	case *ast.IfStmt:
		return stmtEscapesLoop(s.Body, breakMine) || stmtEscapesLoop(s.Else, breakMine)
	case *ast.ForStmt:
		return stmtEscapesLoop(s.Body, false)
	case *ast.RangeStmt:
		return stmtEscapesLoop(s.Body, false)
	case *ast.SwitchStmt:
		return switchBodyEscapes(s.Body)
	case *ast.TypeSwitchStmt:
		return switchBodyEscapes(s.Body)
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			for _, st := range cl.(*ast.CommClause).Body {
				if stmtEscapesLoop(st, false) {
					return true
				}
			}
		}
	case *ast.LabeledStmt:
		return stmtEscapesLoop(s.Stmt, breakMine)
	}
	return false
}

func switchBodyEscapes(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		for _, st := range cl.(*ast.CaseClause).Body {
			if stmtEscapesLoop(st, false) {
				return true
			}
		}
	}
	return false
}

// chainString renders a taint chain as "pkg.F -> pkg.g -> time.Now".
func chainString(f *taintFact) string {
	return strings.Join(f.Chain, " -> ")
}

// funcLabel renders a function for taint chains: pkg.Name for package
// functions, pkg.(Recv).Name for methods, with the module prefix dropped
// for brevity.
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = recvLabel(sig.Recv().Type()) + "." + name
	}
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		name = p + "." + name
	}
	return name
}

func recvLabel(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
