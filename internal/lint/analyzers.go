package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// All returns the registered analyzer set in the order the driver runs them.
func All() []*Analyzer {
	return []*Analyzer{
		DetWallClock,
		DetRand,
		FloatEq,
		SyncErr,
		MapRange,
		ObsImport,
		DetTaint,
		LockHeld,
		PoolEscape,
		WalSwitch,
	}
}

// Names returns the names of every registered analyzer; allow directives may
// only name these.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// deterministicDirs names the internal packages whose behaviour must be a
// pure function of their inputs: a replayed history (WAL replay, golden
// corpus rerun) has to reproduce the promised (deadline, p) pairs exactly,
// so nothing in these packages may read the wall clock or the process-global
// PRNG. The obs/service wall-clock boundary sits outside this set.
var deterministicDirs = map[string]bool{
	"sim":        true,
	"sched":      true,
	"predict":    true,
	"checkpoint": true,
	"negotiate":  true,
	"failure":    true,
	"experiment": true,
	"durability": true,
	// The scenario runner replays declarative timelines onto the engine;
	// golden zoo reports are byte-compared in CI, so the whole package —
	// decoder included — must be input-pure. The promise-ledger import is
	// annotated at the two sites that hold deterministic ledger state.
	"scenario": true,
}

// IsDeterministicPkg reports whether the import path lies in (or under) one
// of the deterministic internal packages.
func IsDeterministicPkg(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && deterministicDirs[segs[i+1]] {
			return true
		}
	}
	return false
}

// observabilityDirs names the internal packages on the wall-clock side of
// the boundary: metrics exposition (obs) and request tracing / promise
// conformance (trace). They may read the process clock — annotated at each
// site — but the dependency between them and the deterministic set must
// point one way only: the service layer hands state to observability,
// never the reverse.
var observabilityDirs = map[string]bool{
	"obs":   true,
	"trace": true,
}

// IsObservabilityPkg reports whether the import path lies in (or under) one
// of the observability internal packages.
func IsObservabilityPkg(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && observabilityDirs[segs[i+1]] {
			return true
		}
	}
	return false
}

// durabilityCriticalPkg reports whether the import path is in scope for the
// syncerr analyzer: the WAL/snapshot layer and the service that wires it.
func durabilityCriticalPkg(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && (segs[i+1] == "durability" || segs[i+1] == "service") {
			return true
		}
	}
	return false
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" if the identifier is not a package name.
func pkgNameOf(pass *Pass, id *ast.Ident) string {
	if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// exprString renders an expression as source text for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "expression"
	}
	return buf.String()
}
