package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"probqos/internal/lint/cfg"
)

// LockHeld is a path-sensitive critical-section checker for sync.Mutex and
// sync.RWMutex. Two invariants, both checked over the function's control-
// flow graph rather than its syntax:
//
//   - No blocking operation — channel send or receive, fsync on a writable
//     handle, network I/O, time.Sleep, a sim run — may execute on any path
//     where a lock is held. qosd's state machine is single-goroutine by
//     design precisely so the hot path never sleeps under a lock; anywhere
//     else, a blocked holder stalls every other user of that lock.
//   - Every path from Lock to a return must pass an Unlock or be covered by
//     a deferred one. The classic leak — Lock, early error return, Unlock
//     never reached — deadlocks the next caller, and shows up only under
//     the error injection the race detector doesn't drive.
//
// Locks are named by their receiver expression within one function
// ("s.mu"), so aliasing through pointers is invisible — conservative in
// the direction of missing findings, never inventing them. Channel
// operations in a select with a default clause are non-blocking attempts
// and are exempt.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "forbid blocking operations while a sync.Mutex/RWMutex is held and lock leaks on return paths",
	Run:  runLockHeld,
}

// Lock status bits for the may-analysis: a lock can be in several of these
// at a merge point, one per path.
const (
	lsUnheld    uint8 = 1 << iota
	lsHeld            // locked, no deferred unlock seen on this path
	lsHeldDefer       // locked, a deferred unlock will release it at return
)

// lockState maps a lock key (receiver source text) to its status bits.
// A missing key means unheld.
type lockState map[string]uint8

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeLockState ORs src into dst, treating missing keys as unheld.
// Reports whether dst changed.
func mergeLockState(dst, src lockState) bool {
	changed := false
	for k, v := range src {
		old := dst[k]
		if old == 0 {
			old = lsUnheld
		}
		if old|v != old {
			dst[k] = old | v
			changed = true
		} else if _, ok := dst[k]; !ok {
			dst[k] = old | v
			changed = true
		}
	}
	for k, v := range dst {
		if _, ok := src[k]; !ok && v|lsUnheld != v {
			dst[k] = v | lsUnheld
			changed = true
		}
	}
	return changed
}

const (
	evAcquire = iota
	evRelease
	evDeferRelease
	evBlock
)

// A lockEvent is one lock transition or blocking operation inside a CFG
// node, ordered by position.
type lockEvent struct {
	pos  token.Pos
	kind int
	key  string // lock key for acquire/release events
	desc string // operation description for block events
}

func runLockHeld(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFlow(pass, fd.Body)
		}
		// Function literals get their own graphs: a closure's critical
		// section is its own flow problem, not the enclosing function's.
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkLockFlow(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

func checkLockFlow(pass *Pass, body *ast.BlockStmt) {
	lc := &lockChecker{
		pass:        pass,
		nonBlocking: nonBlockingComms(body),
		events:      make(map[ast.Node][]lockEvent),
		reported:    make(map[string]bool),
	}
	g := cfg.New(body)
	entries := lc.fixpoint(g)
	// Emit findings in a second pass over the converged states, so loop
	// iteration order cannot duplicate or reorder reports.
	for _, blk := range g.Blocks {
		st, reachable := entries[blk]
		if !reachable {
			continue
		}
		lc.applyBlock(blk, st.clone(), true, body.Rbrace, blockFallsToExit(blk, g))
	}
}

// blockFallsToExit reports whether blk reaches the exit without a return
// statement: the fall-off end of the function body.
func blockFallsToExit(blk *cfg.Block, g *cfg.Graph) bool {
	toExit := false
	for _, s := range blk.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if len(blk.Nodes) > 0 {
		if _, isReturn := blk.Nodes[len(blk.Nodes)-1].(*ast.ReturnStmt); isReturn {
			return false
		}
		if br, isBranch := blk.Nodes[len(blk.Nodes)-1].(*ast.BranchStmt); isBranch && br.Tok == token.GOTO {
			return false
		}
	}
	return true
}

type lockChecker struct {
	pass        *Pass
	nonBlocking map[ast.Node]bool
	events      map[ast.Node][]lockEvent
	reported    map[string]bool
}

// fixpoint propagates lock states forward until entry states stabilize.
// Only reachable blocks appear in the result.
func (lc *lockChecker) fixpoint(g *cfg.Graph) map[*cfg.Block]lockState {
	entries := map[*cfg.Block]lockState{g.Entry: make(lockState)}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		exit := lc.applyBlock(blk, entries[blk].clone(), false, token.NoPos, false)
		for _, succ := range blk.Succs {
			dst, ok := entries[succ]
			if !ok {
				entries[succ] = exit.clone()
				work = append(work, succ)
				continue
			}
			if mergeLockState(dst, exit) {
				work = append(work, succ)
			}
		}
	}
	return entries
}

// applyBlock runs the transfer function over one block. With emit set it
// also reports blocking-under-lock and leak-on-return findings; rbrace and
// fallsOff drive the fall-off-end leak check.
func (lc *lockChecker) applyBlock(blk *cfg.Block, st lockState, emit bool, rbrace token.Pos, fallsOff bool) lockState {
	for _, n := range blk.Nodes {
		for _, ev := range lc.eventsFor(n) {
			switch ev.kind {
			case evAcquire:
				st[ev.key] = lsHeld
			case evRelease:
				st[ev.key] = lsUnheld
			case evDeferRelease:
				bits := st[ev.key]
				if bits&lsHeld != 0 {
					st[ev.key] = (bits &^ lsHeld) | lsHeldDefer
				}
			case evBlock:
				if !emit {
					continue
				}
				for key, bits := range st {
					if bits&(lsHeld|lsHeldDefer) == 0 {
						continue
					}
					lc.reportOnce(ev.pos, "block:"+key,
						"%s while %s is locked; a blocked holder stalls every other user of the lock — release first, or annotate with %s %s <reason>",
						ev.desc, key, DirectivePrefix, lc.pass.Analyzer.Name)
				}
			}
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && emit {
			lc.leakCheck(st, ret.Pos())
		}
	}
	if emit && fallsOff {
		lc.leakCheck(st, rbrace)
	}
	return st
}

// leakCheck reports every lock that can still be held — with no deferred
// unlock covering it — when control leaves the function here.
func (lc *lockChecker) leakCheck(st lockState, pos token.Pos) {
	var keys []string
	for key, bits := range st {
		if bits&lsHeld != 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		lc.reportOnce(pos, "leak:"+key,
			"%s can still be locked when this path returns (no Unlock and no deferred one); the next Lock deadlocks — unlock on every path, or annotate with %s %s <reason>",
			key, DirectivePrefix, lc.pass.Analyzer.Name)
	}
}

func (lc *lockChecker) reportOnce(pos token.Pos, tag, format string, args ...any) {
	id := fmt.Sprintf("%d:%s", pos, tag)
	if lc.reported[id] {
		return
	}
	lc.reported[id] = true
	lc.pass.Reportf(pos, format, args...)
}

// eventsFor extracts the lock and blocking events inside one CFG node, in
// position order, memoized. Function literal bodies are skipped — they are
// analyzed as their own graphs — except that a deferred closure is scanned
// for the unlocks it will run at return.
func (lc *lockChecker) eventsFor(n ast.Node) []lockEvent {
	if evs, ok := lc.events[n]; ok {
		return evs
	}
	var evs []lockEvent
	pkg := lc.pass.Pkg
	var scan func(node ast.Node, deferred bool)
	scan = func(node ast.Node, deferred bool) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if key, mth, ok := lockMethodCall(pkg, m.Call); ok {
					if mth == "Unlock" || mth == "RUnlock" {
						evs = append(evs, lockEvent{pos: m.Pos(), kind: evDeferRelease, key: key})
					}
					return false
				}
				if fl, ok := m.Call.Fun.(*ast.FuncLit); ok {
					// defer func() { ...; mu.Unlock() }(): the closure's
					// unlocks count as deferred releases here.
					scan(fl.Body, true)
				}
				for _, arg := range m.Call.Args {
					scan(arg, false)
				}
				return false
			case *ast.GoStmt:
				for _, arg := range m.Call.Args {
					scan(arg, false)
				}
				return false
			case *ast.CallExpr:
				if key, mth, ok := lockMethodCall(pkg, m); ok {
					kind := evAcquire
					if mth == "Unlock" || mth == "RUnlock" {
						kind = evRelease
						if deferred {
							kind = evDeferRelease
						}
					} else if deferred {
						return true
					}
					evs = append(evs, lockEvent{pos: m.Pos(), kind: kind, key: key})
					return true
				}
				if deferred {
					return true
				}
				if desc := blockingCall(pkg, m); desc != "" {
					evs = append(evs, lockEvent{pos: m.Pos(), kind: evBlock, desc: desc})
				}
			case *ast.SendStmt:
				if !deferred && !lc.nonBlocking[n] {
					evs = append(evs, lockEvent{pos: m.Arrow, kind: evBlock, desc: "channel send"})
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !deferred && !lc.nonBlocking[n] {
					evs = append(evs, lockEvent{pos: m.OpPos, kind: evBlock, desc: "channel receive"})
				}
			}
			return true
		})
	}
	scan(n, false)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	lc.events[n] = evs
	return evs
}

// nonBlockingComms collects the comm statements of every select that has a
// default clause: those sends and receives are non-blocking attempts.
func nonBlockingComms(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, cl := range sel.Body.List {
				if comm := cl.(*ast.CommClause).Comm; comm != nil {
					out[comm] = true
				}
			}
		}
		return true
	})
	return out
}

// lockMethodCall classifies a call as a sync lock operation, returning the
// lock's key (receiver source text) and the method name. Promoted methods
// of embedded mutexes resolve to package sync too, so embedding is covered.
func lockMethodCall(pkg *Package, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprString(pkg.Fset, sel.X), sel.Sel.Name, true
}

// blockingCall classifies a call that can block indefinitely: network I/O,
// an fsync on a writable handle, time.Sleep, or running the simulator.
func blockingCall(pkg *Package, call *ast.CallExpr) string {
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case path == "net" || strings.HasPrefix(path, "net/"):
		short := path
		if i := strings.LastIndex(short, "/"); i >= 0 {
			short = short[i+1:]
		}
		return "network I/O (" + short + "." + fn.Name() + ")"
	case fn.Name() == "Sync":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			returnsOnlyError(sig) && isWritableHandle(sig.Recv().Type()) {
			return "fsync (" + fn.Name() + " on a writable handle)"
		}
	case strings.HasSuffix(path, "internal/sim") && fn.Name() == "Run":
		return "sim.Run"
	}
	return ""
}
