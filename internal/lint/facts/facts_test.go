package facts

import (
	"go/token"
	"go/types"
	"testing"
)

func newFunc(pkg *types.Package, name string) *types.Func {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func TestSetGetRoundtrip(t *testing.T) {
	s := NewStore()
	pkg := types.NewPackage("example/p", "p")
	f := newFunc(pkg, "F")
	if err := s.Set(f, "taint", "wall-clock"); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(f, "taint")
	if !ok || got != "wall-clock" {
		t.Fatalf("Get = %v, %v; want wall-clock, true", got, ok)
	}
	if _, ok := s.Get(f, "other"); ok {
		t.Error("fact leaked across namespaces")
	}
	if _, ok := s.Get(newFunc(pkg, "G"), "taint"); ok {
		t.Error("fact leaked across objects")
	}
}

func TestSetReplaces(t *testing.T) {
	s := NewStore()
	pkg := types.NewPackage("example/p", "p")
	f := newFunc(pkg, "F")
	s.Set(f, "n", 1)
	s.Set(f, "n", 2)
	got, _ := s.Get(f, "n")
	if got != 2 {
		t.Fatalf("Get = %v, want 2", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestNilObjectRejected(t *testing.T) {
	s := NewStore()
	if err := s.Set(nil, "n", 1); err == nil {
		t.Fatal("nil object accepted")
	}
}

func TestAllSortedDeterministically(t *testing.T) {
	s := NewStore()
	pa := types.NewPackage("example/a", "a")
	pb := types.NewPackage("example/b", "b")
	fb := newFunc(pb, "B")
	fa := newFunc(pa, "A")
	fa2 := newFunc(pa, "Z")
	s.Set(fb, "n", "b")
	s.Set(fa2, "n", "z")
	s.Set(fa, "n", "a")
	s.Set(fa, "other", "x") // different namespace, excluded
	got := s.All("n")
	if len(got) != 3 {
		t.Fatalf("All returned %d entries, want 3", len(got))
	}
	wantOrder := []types.Object{fa, fa2, fb}
	for i, e := range got {
		if e.Obj != wantOrder[i] {
			t.Errorf("All[%d] = %v, want %v", i, e.Obj, wantOrder[i])
		}
	}
}
