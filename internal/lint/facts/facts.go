// Package facts is a per-object fact store for cross-package analysis,
// mirroring the shape of go/analysis facts with nothing beyond go/types.
// An analyzer computing a property of a function in one package (say,
// "this function's result derives from the wall clock") records it against
// the types.Object; when another package's analysis reaches a call to that
// function, it looks the fact up instead of re-deriving it. Facts are
// namespaced by analyzer so two analyzers can attach independent facts to
// the same object.
package facts

import (
	"fmt"
	"go/types"
	"sort"
)

// A Store holds facts keyed by (object, namespace). It is not safe for
// concurrent use: the lint driver is single-threaded by design, because
// finding order must be deterministic.
type Store struct {
	m map[types.Object]map[string]any
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[types.Object]map[string]any)}
}

// Set records fact under (obj, ns), replacing any previous value. A nil
// object is rejected: facts must be attachable to a resolvable identity.
func (s *Store) Set(obj types.Object, ns string, fact any) error {
	if obj == nil {
		return fmt.Errorf("facts: nil object for namespace %q", ns)
	}
	byNS := s.m[obj]
	if byNS == nil {
		byNS = make(map[string]any)
		s.m[obj] = byNS
	}
	byNS[ns] = fact
	return nil
}

// Get returns the fact recorded under (obj, ns), if any.
func (s *Store) Get(obj types.Object, ns string) (any, bool) {
	f, ok := s.m[obj][ns]
	return f, ok
}

// An Entry pairs an object with its recorded fact, for All.
type Entry struct {
	Obj  types.Object
	Fact any
}

// All returns every fact in namespace ns, sorted by the object's full
// qualified name so iteration is deterministic.
func (s *Store) All(ns string) []Entry {
	var out []Entry
	for obj, byNS := range s.m {
		if f, ok := byNS[ns]; ok {
			out = append(out, Entry{Obj: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return fullName(out[i].Obj) < fullName(out[j].Obj) })
	return out
}

// Len reports the number of objects carrying at least one fact.
func (s *Store) Len() int { return len(s.m) }

// fullName renders pkgpath.Name (with the receiver for methods) for stable
// sorting.
func fullName(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		return pkg + "." + fn.FullName()
	}
	return pkg + "." + obj.Name()
}
