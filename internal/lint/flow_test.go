package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureSpec names one fixture directory and the import path to load it
// under.
type fixtureSpec struct {
	dir        string
	importPath string
}

// loadFixtureProgram loads several fixture packages through one loader, in
// order, so later fixtures can import earlier ones by their fake paths. It
// returns the loaded packages (same order) plus a Program over everything
// the loader saw.
func loadFixtureProgram(t *testing.T, specs ...fixtureSpec) ([]*Package, *Program) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, s := range specs {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", s.dir), s.importPath)
		if err != nil {
			t.Fatalf("loading fixture %s as %s: %v", s.dir, s.importPath, err)
		}
		if pkg == nil {
			t.Fatalf("fixture %s has no Go files", s.dir)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, NewProgram(l.Packages(), Names())
}

// runProgramOn runs one analyzer over one target package with the given
// Program and renders the findings.
func runProgramOn(t *testing.T, prog *Program, target *Package, a *Analyzer) []string {
	t.Helper()
	fs, err := RunProgram(prog, []*Package{target}, []*Analyzer{a}, Names())
	if err != nil {
		t.Fatal(err)
	}
	return render(fs)
}

// dettaintFixtures loads the three-package dettaint fixture set: helpers
// under a non-deterministic path, a deterministic caller, and a driver that
// feeds values in.
func dettaintFixtures(t *testing.T) (dep, det, driver *Package, prog *Program) {
	t.Helper()
	pkgs, prog := loadFixtureProgram(t,
		fixtureSpec{"dettaintdep", "probqos/internal/clockutil/fixture"},
		fixtureSpec{"dettaint", "probqos/internal/sim/fixture"},
		fixtureSpec{"dettaintcall", "probqos/internal/qosd/fixture"},
	)
	return pkgs[0], pkgs[1], pkgs[2], prog
}

// TestDetTaintInterprocedural asserts the deterministic-side findings: a
// helper tainted two calls away from time.Now, an in-package map-order
// helper, and silence for the clean and sanctioned helpers.
func TestDetTaintInterprocedural(t *testing.T) {
	_, det, _, prog := dettaintFixtures(t)
	got := runProgramOn(t, prog, det, DetTaint)
	want := []string{
		"dettaint.go:12:19: [dettaint] fixture.Jitter -> fixture.wallSeconds -> time.Now is a nondeterministic source (time.Now) used in deterministic package probqos/internal/sim/fixture; derive the value from engine state, or annotate a reviewed boundary with //qoslint:allow dettaint <reason>",
		"dettaint.go:36:9: [dettaint] fixture.pick -> map iteration order is a nondeterministic source (map iteration order) used in deterministic package probqos/internal/sim/fixture; derive the value from engine state, or annotate a reviewed boundary with //qoslint:allow dettaint <reason>",
	}
	diffStrings(t, got, want)
}

// TestDetTaintFlowIntoDeterministic asserts the other direction: a
// non-deterministic driver handing live reads into deterministic code.
func TestDetTaintFlowIntoDeterministic(t *testing.T) {
	_, _, driver, prog := dettaintFixtures(t)
	got := runProgramOn(t, prog, driver, DetTaint)
	want := []string{
		"dettaintcall.go:15:30: [dettaint] time.Now flows into deterministic package probqos/internal/sim/fixture via the call to Width; nondeterministic inputs must be journaled state, not live reads — or annotate with //qoslint:allow dettaint <reason>",
		"dettaintcall.go:20:22: [dettaint] fixture.StepDelay -> fixture.Jitter -> fixture.wallSeconds -> time.Now flows into deterministic package probqos/internal/sim/fixture via the call to Width; nondeterministic inputs must be journaled state, not live reads — or annotate with //qoslint:allow dettaint <reason>",
	}
	diffStrings(t, got, want)
}

// TestDetTaintSilentInNonDeterministicPackage asserts that merely being
// tainted is legal outside the deterministic set: the helper package
// itself produces no findings.
func TestDetTaintSilentInNonDeterministicPackage(t *testing.T) {
	dep, _, _, prog := dettaintFixtures(t)
	if got := runProgramOn(t, prog, dep, DetTaint); len(got) != 0 {
		t.Errorf("dettaint fired in a non-deterministic package:\n  %s", strings.Join(got, "\n  "))
	}
}

func TestLockHeldFixture(t *testing.T) {
	pkg := loadFixture(t, "lockheld", "probqos/internal/fixture")
	got := runOn(t, pkg, LockHeld)
	want := []string{
		"lockheld.go:21:2: [lockheld] time.Sleep while c.mu is locked; a blocked holder stalls every other user of the lock — release first, or annotate with //qoslint:allow lockheld <reason>",
		"lockheld.go:30:7: [lockheld] channel send while c.mu is locked; a blocked holder stalls every other user of the lock — release first, or annotate with //qoslint:allow lockheld <reason>",
		"lockheld.go:37:3: [lockheld] c.mu can still be locked when this path returns (no Unlock and no deferred one); the next Lock deadlocks — unlock on every path, or annotate with //qoslint:allow lockheld <reason>",
		"lockheld.go:93:2: [lockheld] fsync (Sync on a writable handle) while s.rw is locked; a blocked holder stalls every other user of the lock — release first, or annotate with //qoslint:allow lockheld <reason>",
		"lockheld.go:101:13: [lockheld] channel receive while c.mu is locked; a blocked holder stalls every other user of the lock — release first, or annotate with //qoslint:allow lockheld <reason>",
		"lockheld.go:102:4: [lockheld] c.mu can still be locked when this path returns (no Unlock and no deferred one); the next Lock deadlocks — unlock on every path, or annotate with //qoslint:allow lockheld <reason>",
	}
	diffStrings(t, got, want)
}

func TestPoolEscapeFixture(t *testing.T) {
	pkg := loadFixture(t, "poolescape", "probqos/internal/fixture")
	got := runOn(t, pkg, PoolEscape)
	want := []string{
		"poolescape.go:16:13: [poolescape] b is used after being released to the pool (sync.Pool Put at line 15); the object may already be recycled and rewritten — copy what you need before releasing, or annotate with //qoslint:allow poolescape <reason>",
		"poolescape.go:25:11: [poolescape] b may be released twice (previously sync.Pool Put at line 23); a double release hands the same object to two callers — release on exactly one path, or annotate with //qoslint:allow poolescape <reason>",
		"poolescape.go:65:9: [poolescape] ev is used after being released to the pool (put at line 64); the object may already be recycled and rewritten — copy what you need before releasing, or annotate with //qoslint:allow poolescape <reason>",
		"poolescape.go:71:26: [poolescape] ev may be released twice (previously pushed onto the freelist at line 70); a double release hands the same object to two callers — release on exactly one path, or annotate with //qoslint:allow poolescape <reason>",
	}
	diffStrings(t, got, want)
}

func TestWalSwitchFixture(t *testing.T) {
	pkg := loadFixture(t, "walswitch", "probqos/internal/service/fixture")
	got := runOn(t, pkg, WalSwitch)
	want := []string{
		"walswitch.go:18:2: [walswitch] switch covers only 2 of 3 kinds declared at walswitch/walswitch.go:7 (missing opGamma); every journaled kind needs identical live and replay handling — add the cases, or annotate with //qoslint:allow walswitch <reason>",
		"walswitch.go:48:2: [walswitch] record kind evOrphan is switched on but never constructed; a kind nothing journals cannot appear in a WAL — wire up its producer or delete it",
	}
	diffStrings(t, got, want)
}

// TestWalSwitchRealReplaySwitchesExhaustive pins the actual crash-safety
// contract: the service's machine.apply and the engine's Restore currently
// handle every journaled kind, so walswitch is silent on the real packages.
// Together with TestWalSwitchCatchesDeletedReplayCase this is the
// acceptance guarantee that adding a WAL record kind without replay
// coverage fails lint.
func TestWalSwitchRealReplaySwitchesExhaustive(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var targets []*Package
	for _, ip := range []string{"probqos/internal/service", "probqos/internal/sim"} {
		pkg, err := l.LoadDir(filepath.Join(root, strings.TrimPrefix(ip, "probqos/")), ip)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, pkg)
	}
	prog := NewProgram(l.Packages(), Names())
	fs, err := RunProgram(prog, targets, []*Analyzer{WalSwitch}, Names())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("walswitch fired on the real replay switches:\n  %s", strings.Join(render(fs), "\n  "))
	}
}

// loadMutatedPackage copies a real package's sources into a temp dir with
// one textual edit applied, then loads it under its real import path so
// tests can assert an analyzer catches the regression.
func loadMutatedPackage(t *testing.T, relDir, importPath, file, old, new string) (*Package, *Program) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(root, relDir)
	tmp := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	edited := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == file {
			if !bytes.Contains(data, []byte(old)) {
				t.Fatalf("%s no longer contains %q; update the mutation test", file, old)
			}
			data = bytes.Replace(data, []byte(old), []byte(new), 1)
			edited = true
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !edited {
		t.Fatalf("file %s not found in %s", file, relDir)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(tmp, importPath)
	if err != nil {
		t.Fatalf("loading mutated %s: %v", importPath, err)
	}
	return pkg, NewProgram(l.Packages(), Names())
}

// TestWalSwitchCatchesDeletedReplayCase deletes one replay case from the
// real service and engine switches (by making the case expression a
// non-constant so it no longer counts as coverage) and asserts walswitch
// reports exactly the missing kind.
func TestWalSwitchCatchesDeletedReplayCase(t *testing.T) {
	cases := []struct {
		name, relDir, importPath, file, old, missing string
	}{
		{"service-apply", "internal/service", "probqos/internal/service",
			"durable.go", "case opFault:", `case opFault + "-disabled":`},
		{"engine-restore", "internal/sim", "probqos/internal/sim",
			"state.go", "case OpFault:", `case OpFault + "-disabled":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg, prog := loadMutatedPackage(t, tc.relDir, tc.importPath, tc.file, tc.old, tc.missing)
			fs, err := RunProgram(prog, []*Package{pkg}, []*Analyzer{WalSwitch}, Names())
			if err != nil {
				t.Fatal(err)
			}
			if len(fs) != 1 {
				t.Fatalf("got %d findings, want exactly the deleted case:\n  %s",
					len(fs), strings.Join(render(fs), "\n  "))
			}
			wantKind := strings.TrimSuffix(strings.TrimPrefix(tc.old, "case "), ":")
			if !strings.Contains(fs[0].Message, "missing "+wantKind) {
				t.Errorf("finding does not name the deleted kind %s: %s", wantKind, fs[0].Message)
			}
		})
	}
}
