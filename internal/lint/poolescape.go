package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"probqos/internal/lint/cfg"
)

// PoolEscape is a use-after-release checker for recycled objects: values
// handed back to a sync.Pool, to the simulator's event arena, or to a
// freelist slice. Once released, the object belongs to the pool and may be
// handed to another caller and overwritten; reading it, storing it, or
// releasing it again is the aliasing bug the event-arena tests can only
// catch probabilistically.
//
// A release is one of:
//
//   - (*sync.Pool).Put(x)
//   - a module-local method or function named put, free, recycle, or
//     release taking exactly one pointer argument (the arena and slab
//     idiom)
//   - a freelist push, x = append(x, v), where the slice's name contains
//     "free"
//
// After a release on any CFG path, every later use of the released
// variable is reported until an assignment rebinds it. The analysis is
// per-function and tracks plain variables only: aliases made before the
// release are invisible, which under-reports but never invents findings.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "forbid using a pooled or freelisted object after it was released",
	Run:  runPoolEscape,
}

const (
	prLive     uint8 = 1 << iota
	prReleased       // released on some path and not yet rebound
)

// poolState carries per-variable liveness plus where the release that makes
// a later use dangerous happened.
type poolState struct {
	bits    map[*types.Var]uint8
	relPos  map[*types.Var]token.Position
	relVerb map[*types.Var]string
}

func newPoolState() *poolState {
	return &poolState{
		bits:    make(map[*types.Var]uint8),
		relPos:  make(map[*types.Var]token.Position),
		relVerb: make(map[*types.Var]string),
	}
}

func (s *poolState) clone() *poolState {
	out := newPoolState()
	for v, b := range s.bits {
		out.bits[v] = b
	}
	for v, p := range s.relPos {
		out.relPos[v] = p
	}
	for v, l := range s.relVerb {
		out.relVerb[v] = l
	}
	return out
}

// mergePoolState ORs src into dst (missing variables are live), keeping the
// earliest release site for messages. Reports whether dst changed.
func mergePoolState(dst, src *poolState) bool {
	changed := false
	for v, b := range src.bits {
		old := dst.bits[v]
		if old == 0 {
			old = prLive
		}
		if _, ok := dst.bits[v]; !ok || old|b != old {
			dst.bits[v] = old | b
			changed = true
		}
		if p, ok := src.relPos[v]; ok {
			if q, have := dst.relPos[v]; !have || p.Line < q.Line {
				dst.relPos[v] = p
				dst.relVerb[v] = src.relVerb[v]
			}
		}
	}
	for v, b := range dst.bits {
		if _, ok := src.bits[v]; !ok && b|prLive != b {
			dst.bits[v] = b | prLive
			changed = true
		}
	}
	return changed
}

const (
	pvUse = iota
	pvRelease
	pvKill
)

type poolEvent struct {
	pos  token.Pos
	kind int
	obj  *types.Var
	verb string // release verb for messages: "put", "sync.Pool Put", ...
}

func runPoolEscape(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFlow(pass, fd.Body)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkPoolFlow(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

func checkPoolFlow(pass *Pass, body *ast.BlockStmt) {
	pc := &poolChecker{pass: pass, tracked: trackedPoolVars(pass, body)}
	if len(pc.tracked) == 0 {
		return
	}
	pc.rangeHeads = make(map[ast.Node]*ast.RangeStmt)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			pc.rangeHeads[rs.X] = rs
		}
		return true
	})
	pc.events = make(map[ast.Node][]poolEvent)
	pc.reported = make(map[string]bool)

	g := cfg.New(body)
	entries := map[*cfg.Block]*poolState{g.Entry: newPoolState()}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		exit := pc.applyBlock(blk, entries[blk].clone(), false)
		for _, succ := range blk.Succs {
			dst, ok := entries[succ]
			if !ok {
				entries[succ] = exit.clone()
				work = append(work, succ)
				continue
			}
			if mergePoolState(dst, exit) {
				work = append(work, succ)
			}
		}
	}
	for _, blk := range g.Blocks {
		st, reachable := entries[blk]
		if !reachable {
			continue
		}
		pc.applyBlock(blk, st.clone(), true)
	}
}

type poolChecker struct {
	pass       *Pass
	tracked    map[*types.Var]bool
	rangeHeads map[ast.Node]*ast.RangeStmt
	events     map[ast.Node][]poolEvent
	reported   map[string]bool
}

func (pc *poolChecker) applyBlock(blk *cfg.Block, st *poolState, emit bool) *poolState {
	for _, n := range blk.Nodes {
		for _, ev := range pc.eventsFor(n) {
			bits := st.bits[ev.obj]
			if bits == 0 {
				bits = prLive
			}
			switch ev.kind {
			case pvUse:
				if emit && bits&prReleased != 0 {
					pc.reportOnce(ev.pos, ev.obj,
						"%s is used after being released to the pool (%s at line %d); the object may already be recycled and rewritten — copy what you need before releasing, or annotate with %s %s <reason>",
						ev.obj.Name(), st.relVerb[ev.obj], st.relPos[ev.obj].Line,
						DirectivePrefix, pc.pass.Analyzer.Name)
				}
			case pvRelease:
				if emit && bits&prReleased != 0 {
					pc.reportOnce(ev.pos, ev.obj,
						"%s may be released twice (previously %s at line %d); a double release hands the same object to two callers — release on exactly one path, or annotate with %s %s <reason>",
						ev.obj.Name(), st.relVerb[ev.obj], st.relPos[ev.obj].Line,
						DirectivePrefix, pc.pass.Analyzer.Name)
				}
				st.bits[ev.obj] = prReleased
				st.relPos[ev.obj] = pc.pass.Pkg.Fset.Position(ev.pos)
				st.relVerb[ev.obj] = ev.verb
			case pvKill:
				st.bits[ev.obj] = prLive
				delete(st.relPos, ev.obj)
				delete(st.relVerb, ev.obj)
			}
		}
	}
	return st
}

func (pc *poolChecker) reportOnce(pos token.Pos, obj *types.Var, format string, args ...any) {
	id := fmt.Sprintf("%d:%s", pos, obj.Name())
	if pc.reported[id] {
		return
	}
	pc.reported[id] = true
	pc.pass.Reportf(pos, format, args...)
}

// trackedPoolVars pre-scans the body for release sites and returns the set
// of variables they release; only these need flow tracking.
func trackedPoolVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	tracked := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if v, _ := releaseCallArg(pass.Pkg, n); v != nil {
				tracked[v] = true
			}
		case *ast.AssignStmt:
			for _, v := range freelistPushVars(pass.Pkg, n) {
				tracked[v] = true
			}
		}
		return true
	})
	return tracked
}

// eventsFor extracts uses, releases, and rebindings of tracked variables
// from one CFG node, in execution order: right-hand sides before the
// left-hand-side kills of the same assignment, a range operand before the
// iteration variables it rebinds.
func (pc *poolChecker) eventsFor(n ast.Node) []poolEvent {
	if evs, ok := pc.events[n]; ok {
		return evs
	}
	var evs []poolEvent
	pkg := pc.pass.Pkg

	// Idents consumed by a recognized release become release events rather
	// than plain uses; assignment LHS idents become kills at the statement's
	// end so RHS uses order first.
	releases := make(map[*ast.Ident]string)
	kills := make(map[*ast.Ident]token.Pos)
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if v, verb := releaseCallArg(pkg, m); v != nil {
				if id, ok := ast.Unparen(m.Args[len(m.Args)-1]).(*ast.Ident); ok {
					releases[id] = verb
				}
			}
		case *ast.AssignStmt:
			if ids := freelistPushIdents(pkg, m); len(ids) > 0 {
				for _, id := range ids {
					releases[id] = "pushed onto the freelist"
				}
			}
			for _, lhs := range m.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := identVar(pkg, id); obj != nil && pc.tracked[obj] {
						kills[id] = m.End()
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range m.Names {
				if obj := identVar(pkg, name); obj != nil && pc.tracked[obj] {
					kills[name] = m.End()
				}
			}
		}
		return true
	})
	if rs, ok := pc.rangeHeads[n]; ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && e != nil {
				if obj := identVar(pkg, id); obj != nil && pc.tracked[obj] {
					kills[id] = rs.X.End()
				}
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identVar(pkg, id)
		if obj == nil || !pc.tracked[obj] {
			return true
		}
		if verb, ok := releases[id]; ok {
			evs = append(evs, poolEvent{pos: id.Pos(), kind: pvRelease, obj: obj, verb: verb})
			return true
		}
		if pos, ok := kills[id]; ok {
			evs = append(evs, poolEvent{pos: pos, kind: pvKill, obj: obj})
			return true
		}
		evs = append(evs, poolEvent{pos: id.Pos(), kind: pvUse, obj: obj})
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	pc.events[n] = evs
	return evs
}

// identVar resolves an identifier to the variable it uses or defines.
func identVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// releaseCallArg classifies a call as a pool release and returns the
// variable it releases: (*sync.Pool).Put(x), or a module-local function or
// method named put/free/recycle/release taking exactly one pointer
// argument.
func releaseCallArg(pkg *Package, call *ast.CallExpr) (*types.Var, string) {
	fn := calleeOf(pkg, call)
	if fn == nil || len(call.Args) == 0 {
		return nil, ""
	}
	last := ast.Unparen(call.Args[len(call.Args)-1])
	id, ok := last.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, ""
	}
	if fn.Name() == "Put" && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && len(call.Args) == 1 {
		return v, "sync.Pool Put"
	}
	switch fn.Name() {
	case "put", "free", "recycle", "release":
	default:
		return nil, ""
	}
	if len(call.Args) != 1 || fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return nil, ""
	}
	if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr {
		return nil, ""
	}
	return v, fn.Name()
}

// freelistPushIdents recognizes the freelist push idiom
//
//	s.free = append(s.free, x)
//
// where the slice expression's terminal name contains "free", and returns
// the pushed identifiers.
func freelistPushIdents(pkg *Package, as *ast.AssignStmt) []*ast.Ident {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
		pkg.Info.Uses[id] != types.Universe.Lookup("append") {
		return nil
	}
	if !isFreelistName(as.Lhs[0]) ||
		exprString(pkg.Fset, as.Lhs[0]) != exprString(pkg.Fset, call.Args[0]) {
		return nil
	}
	var out []*ast.Ident
	for _, arg := range call.Args[1:] {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v := identVar(pkg, id); v != nil {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
					out = append(out, id)
				}
			}
		}
	}
	return out
}

// freelistPushVars is trackedPoolVars' view of freelistPushIdents.
func freelistPushVars(pkg *Package, as *ast.AssignStmt) []*types.Var {
	var out []*types.Var
	for _, id := range freelistPushIdents(pkg, as) {
		if v := identVar(pkg, id); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// isFreelistName reports whether the expression's terminal identifier names
// a freelist: "free", "resFree", "freeList".
func isFreelistName(e ast.Expr) bool {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "free")
}
