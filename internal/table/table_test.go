package table

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tb := New("Demo", "a", "metric")
	tb.Add("0.1", "0.93")
	tb.Add("1", "0.99")
	got := tb.String()
	for _, want := range []string{"Demo", "a    metric", "0.1  0.93", "1    0.99", "---"} {
		if !strings.Contains(got, want) {
			t.Errorf("text output missing %q:\n%s", want, got)
		}
	}
}

func TestAddPadsAndExtends(t *testing.T) {
	tb := New("", "x", "y")
	tb.Add("1")
	tb.Add("1", "2", "3")
	if len(tb.Rows[0]) != 2 {
		t.Errorf("short row not padded: %v", tb.Rows[0])
	}
	if len(tb.Columns) != 3 {
		t.Errorf("columns not extended: %v", tb.Columns)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("t", "name", "value")
	tb.Add(`with "quote", and comma`, "1")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"with \"\"quote\"\", and comma\",1\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Float(0.93456, 3); got != "0.935" {
		t.Errorf("Float = %q", got)
	}
	if got := Sci(4.5e7); got != "4.50e+07" {
		t.Errorf("Sci = %q", got)
	}
}
