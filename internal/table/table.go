// Package table renders experiment output as aligned text tables and CSV,
// the two formats cmd/qossweep and the benchmark harness emit.
package table

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. Short rows are padded with empty cells; long rows
// extend the column set with empty headers.
func (t *Table) Add(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	for len(t.Columns) < len(cells) {
		t.Columns = append(t.Columns, "")
	}
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Columns)
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("table: write: %w", err)
	}
	return nil
}

// WriteCSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				bw.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			bw.WriteString(cell)
		}
		bw.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("table: write csv: %w", err)
	}
	return nil
}

// String renders the table as text, for logs and tests.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.WriteText(&sb); err != nil {
		return fmt.Sprintf("table: %v", err)
	}
	return sb.String()
}

// Float formats a float with the given number of decimals.
func Float(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Sci formats a float in scientific notation with three significant digits,
// the natural format for lost-work magnitudes.
func Sci(v float64) string {
	return strconv.FormatFloat(v, 'e', 2, 64)
}
