package metrics

import (
	"probqos/internal/sim"
	"probqos/internal/stats"
)

// CalibrationBin is one row of a reliability diagram: among jobs promised a
// success probability inside the bin, how often was the promise kept?
// An honest system's Observed is at least PromisedMean in every populated
// bin — the quantitative version of the paper's "a system that makes
// unqualified performance guarantees is lying".
type CalibrationBin struct {
	// Lo and Hi bound the promised-probability bin [Lo, Hi).
	Lo, Hi float64
	// Jobs is the number of jobs whose promise fell in the bin.
	Jobs int
	// PromisedMean is the mean promise inside the bin.
	PromisedMean float64
	// Observed is the fraction of those jobs that met their deadline.
	Observed float64
	// WorkShare is the fraction of total useful work in the bin.
	WorkShare float64
}

// BinIndex maps a promised probability onto one of bins uniform
// reliability-diagram buckets: [i/bins, (i+1)/bins), with the final bin
// closed so a promise of exactly 1.0 lands in it. The rule lives in
// stats.BinIndex so qosd's live promise ledger (internal/trace) bins
// identically without importing the whole metrics layer.
func BinIndex(promised float64, bins int) int { return stats.BinIndex(promised, bins) }

// Calibration computes a reliability diagram over the promised success
// probabilities with the given number of uniform bins (minimum 1). The
// final bin is closed, so a promise of exactly 1.0 lands in it.
func Calibration(res *sim.Result, bins int) []CalibrationBin {
	if bins < 1 {
		bins = 1
	}
	out := make([]CalibrationBin, bins)
	for i := range out {
		out[i].Lo = float64(i) / float64(bins)
		out[i].Hi = float64(i+1) / float64(bins)
	}
	if res == nil || len(res.Jobs) == 0 {
		return out
	}
	var totalWork float64
	met := make([]int, bins)
	for _, j := range res.Jobs {
		totalWork += j.Exec.Seconds() * float64(j.Nodes)
	}
	for _, j := range res.Jobs {
		i := BinIndex(j.Promised, bins)
		b := &out[i]
		b.Jobs++
		b.PromisedMean += j.Promised
		if j.MetDeadline {
			met[i]++
		}
		if totalWork > 0 {
			b.WorkShare += j.Exec.Seconds() * float64(j.Nodes) / totalWork
		}
	}
	for i := range out {
		if out[i].Jobs > 0 {
			out[i].PromisedMean /= float64(out[i].Jobs)
			out[i].Observed = float64(met[i]) / float64(out[i].Jobs)
		}
	}
	return out
}

// Overconfidence returns the largest shortfall of observed success below
// the mean promise across populated calibration bins (0 if the system
// over-delivered everywhere). It is the single-number honesty check.
func Overconfidence(bins []CalibrationBin) float64 {
	var worst float64
	for _, b := range bins {
		if b.Jobs == 0 {
			continue
		}
		if short := b.PromisedMean - b.Observed; short > worst {
			worst = short
		}
	}
	return worst
}
