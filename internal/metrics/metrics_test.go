package metrics

import (
	"math"
	"testing"

	"probqos/internal/sim"
	"probqos/internal/units"
)

func TestComputeEmpty(t *testing.T) {
	if r := Compute(nil); r.QoS != 0 || r.Utilization != 0 {
		t.Errorf("nil result report = %+v", r)
	}
	if r := Compute(&sim.Result{}); r.QoS != 0 {
		t.Errorf("empty result report = %+v", r)
	}
}

func TestComputeEquationTwo(t *testing.T) {
	// Two jobs of equal work; one meets its deadline with p=0.8, the other
	// misses. QoS = (w*0.8*1 + w*0.9*0) / (2w) = 0.4.
	res := &sim.Result{
		ClusterNodes: 4,
		Jobs: []sim.JobRecord{
			{
				ID: 1, Nodes: 2, Exec: 100, Arrival: 0, LastStart: 0, Finish: 100,
				Deadline: 100, Promised: 0.8, MetDeadline: true,
			},
			{
				ID: 2, Nodes: 2, Exec: 100, Arrival: 0, LastStart: 100, Finish: 200,
				Deadline: 150, Promised: 0.9, MetDeadline: false,
			},
		},
		Start: 0,
		End:   200,
	}
	r := Compute(res)
	if math.Abs(r.QoS-0.4) > 1e-12 {
		t.Errorf("QoS = %v, want 0.4", r.QoS)
	}
	// Utilization: 400 node-s of useful work over 200 s * 4 nodes.
	if math.Abs(r.Utilization-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", r.Utilization)
	}
	if r.DeadlineMissRate != 0.5 || r.WorkMissRate != 0.5 {
		t.Errorf("miss rates = %v/%v, want 0.5/0.5", r.DeadlineMissRate, r.WorkMissRate)
	}
	if math.Abs(r.MeanPromise-0.85) > 1e-12 {
		t.Errorf("mean promise = %v", r.MeanPromise)
	}
	if r.ObservedSuccess != 0.5 {
		t.Errorf("observed success = %v", r.ObservedSuccess)
	}
	if r.MeanWaitSeconds != 50 {
		t.Errorf("mean wait = %v, want 50", r.MeanWaitSeconds)
	}
}

func TestComputeLostWorkAndFailures(t *testing.T) {
	res := &sim.Result{
		ClusterNodes: 4,
		Jobs: []sim.JobRecord{
			{ID: 1, Nodes: 2, Exec: 100, Finish: 100, MetDeadline: true, Promised: 1},
		},
		Failures: []sim.FailureRecord{
			{Time: 10, Node: 0, JobID: 1, LostWork: 500},
			{Time: 20, Node: 1},
			{Time: 30, Node: 2, JobID: 1, LostWork: 250},
		},
		End: 100,
	}
	r := Compute(res)
	if r.LostWork != 750 {
		t.Errorf("lost work = %v, want 750", r.LostWork)
	}
	if r.JobFailures != 2 {
		t.Errorf("job failures = %d, want 2", r.JobFailures)
	}
}

func TestBoundedSlowdownFloor(t *testing.T) {
	// A 1-second job that waited 9 seconds: slowdown uses the 10 s floor,
	// (9+1)/10 = 1; never below 1.
	res := &sim.Result{
		ClusterNodes: 1,
		Jobs: []sim.JobRecord{
			{ID: 1, Nodes: 1, Exec: 1, Arrival: 0, LastStart: 9, Finish: 10, MetDeadline: true, Promised: 1},
		},
		End: 10,
	}
	r := Compute(res)
	if r.MeanBoundedSlowdown != 1 {
		t.Errorf("bounded slowdown = %v, want 1", r.MeanBoundedSlowdown)
	}
}

func TestQoSBoundsProperty(t *testing.T) {
	// QoS is always within [0, 1] and equals 1 only if every job met its
	// deadline with promise 1.
	res := &sim.Result{
		ClusterNodes: 8,
		Jobs: []sim.JobRecord{
			{ID: 1, Nodes: 3, Exec: 50, Finish: 50, MetDeadline: true, Promised: 1},
			{ID: 2, Nodes: 5, Exec: 70, Finish: 120, MetDeadline: true, Promised: 1},
		},
		End: 120,
	}
	r := Compute(res)
	if r.QoS != 1 {
		t.Errorf("all-met all-certain QoS = %v, want 1", r.QoS)
	}
	res.Jobs[1].Promised = 0.5
	if got := Compute(res).QoS; got >= 1 || got <= 0 {
		t.Errorf("QoS = %v, want in (0,1)", got)
	}
	if overhead := Compute(res).CheckpointOverhead; overhead != 0 {
		t.Errorf("overhead = %v", overhead)
	}
}

func TestSpanUsesArrivalToFinish(t *testing.T) {
	res := &sim.Result{
		ClusterNodes: 1,
		Jobs: []sim.JobRecord{
			{ID: 1, Nodes: 1, Exec: 10, Arrival: 100, LastStart: 100, Finish: 110, MetDeadline: true, Promised: 1},
		},
		Start: 100,
		End:   110,
	}
	if r := Compute(res); r.Span != units.Duration(10) {
		t.Errorf("span = %v, want 10", r.Span)
	}
}
