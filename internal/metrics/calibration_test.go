package metrics

import (
	"math"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/sim"
	"probqos/internal/workload"
)

func TestCalibrationBinning(t *testing.T) {
	res := &sim.Result{
		ClusterNodes: 4,
		Jobs: []sim.JobRecord{
			{ID: 1, Nodes: 1, Exec: 100, Promised: 0.05, MetDeadline: false},
			{ID: 2, Nodes: 1, Exec: 100, Promised: 0.05, MetDeadline: true},
			{ID: 3, Nodes: 1, Exec: 100, Promised: 0.95, MetDeadline: true},
			{ID: 4, Nodes: 1, Exec: 100, Promised: 1.0, MetDeadline: true}, // closed top bin
		},
		End: 100,
	}
	bins := Calibration(res, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	lo := bins[0]
	if lo.Jobs != 2 || lo.Observed != 0.5 || math.Abs(lo.PromisedMean-0.05) > 1e-12 {
		t.Errorf("low bin = %+v", lo)
	}
	hi := bins[9]
	if hi.Jobs != 2 || hi.Observed != 1 {
		t.Errorf("high bin = %+v", hi)
	}
	var workShare float64
	for _, b := range bins {
		workShare += b.WorkShare
	}
	if math.Abs(workShare-1) > 1e-9 {
		t.Errorf("work shares sum to %v", workShare)
	}
}

func TestCalibrationDegenerate(t *testing.T) {
	if got := Calibration(nil, 0); len(got) != 1 {
		t.Errorf("nil result bins = %d", len(got))
	}
	bins := Calibration(&sim.Result{}, 5)
	for _, b := range bins {
		if b.Jobs != 0 || b.Observed != 0 {
			t.Errorf("empty result bin = %+v", b)
		}
	}
}

func TestOverconfidence(t *testing.T) {
	bins := []CalibrationBin{
		{Jobs: 10, PromisedMean: 0.9, Observed: 0.95}, // over-delivered
		{Jobs: 10, PromisedMean: 0.8, Observed: 0.6},  // short by 0.2
		{Jobs: 0, PromisedMean: 1, Observed: 0},       // empty: ignored
	}
	if got := Overconfidence(bins); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Overconfidence = %v, want 0.2", got)
	}
	if got := Overconfidence(nil); got != 0 {
		t.Errorf("Overconfidence(nil) = %v", got)
	}
}

func TestSystemPromisesAreMostlyHonestEndToEnd(t *testing.T) {
	// Run a real simulation and check the reliability diagram: the system
	// should not be badly overconfident in any promise range.
	log := workload.GenerateSDSC(workload.GenConfig{Jobs: 1500, Seed: 21})
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 21}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(log, tr)
	cfg.Accuracy = 0.8
	cfg.UserRisk = 0.5
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bins := Calibration(res, 5)
	for _, b := range bins {
		if b.Jobs > 0 {
			t.Logf("promise [%.1f,%.1f): %d jobs, promised %.3f, observed %.3f",
				b.Lo, b.Hi, b.Jobs, b.PromisedMean, b.Observed)
		}
	}
	// The deterministic predictor makes doomed-window promises possible
	// (a detectable failure *will* happen), so allow some slack, but the
	// top bin — where almost all work lives — must be close to honest.
	top := bins[len(bins)-1]
	if top.Jobs == 0 {
		t.Fatal("no jobs in the top promise bin")
	}
	if top.PromisedMean-top.Observed > 0.12 {
		t.Errorf("top-bin overconfidence %.3f too large (promised %.3f, observed %.3f)",
			top.PromisedMean-top.Observed, top.PromisedMean, top.Observed)
	}
}
