package metrics

import (
	"math"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/sim"
	"probqos/internal/workload"
)

func TestByClassesAssignsAndAggregates(t *testing.T) {
	res := &sim.Result{
		ClusterNodes: 128,
		Jobs: []sim.JobRecord{
			{ID: 1, Nodes: 2, Exec: 100, Promised: 1, MetDeadline: true, Arrival: 0, LastStart: 10},
			{ID: 2, Nodes: 4, Exec: 100, Promised: 0.5, MetDeadline: false, FailuresSuffered: 1, LostWork: 300, Arrival: 0, LastStart: 30},
			{ID: 3, Nodes: 100, Exec: 1000, Promised: 1, MetDeadline: true, Arrival: 0, LastStart: 0},
		},
		End: 2000,
	}
	classes := ByClasses(res, []ClassReport{
		{Label: "small", MinNodes: 1, MaxNodes: 8},
		{Label: "large", MinNodes: 65, MaxNodes: 1 << 30},
	})
	small, large := classes[0], classes[1]
	if small.Jobs != 2 || large.Jobs != 1 {
		t.Fatalf("population: %+v / %+v", small, large)
	}
	// Small class: work 200+400=600; met work contributes 200*1.
	if math.Abs(small.QoS-200.0/600.0) > 1e-12 {
		t.Errorf("small QoS = %v", small.QoS)
	}
	if small.MissRate != 0.5 || small.FailureRate != 0.5 {
		t.Errorf("small rates = %+v", small)
	}
	if small.LostWork != 300 {
		t.Errorf("small lost = %v", small.LostWork)
	}
	if small.MeanWaitSeconds != 20 {
		t.Errorf("small wait = %v", small.MeanWaitSeconds)
	}
	if large.QoS != 1 || large.MissRate != 0 {
		t.Errorf("large = %+v", large)
	}
	// Work shares: small 600, large 100000 of 100600 total.
	if math.Abs(small.WorkShare+large.WorkShare-1) > 1e-12 {
		t.Errorf("shares = %v + %v", small.WorkShare, large.WorkShare)
	}
}

func TestByClassesEmptyAndUnmatched(t *testing.T) {
	if got := BySize(nil); len(got) != len(DefaultClasses()) {
		t.Errorf("nil result classes = %d", len(got))
	}
	res := &sim.Result{Jobs: []sim.JobRecord{{ID: 1, Nodes: 500, Exec: 10}}}
	classes := ByClasses(res, []ClassReport{{Label: "tiny", MinNodes: 1, MaxNodes: 2}})
	if classes[0].Jobs != 0 {
		t.Errorf("unmatched job counted: %+v", classes[0])
	}
}

func TestBySizeEndToEndLargeJobsCarryTheRisk(t *testing.T) {
	log := workload.GenerateSDSC(workload.GenConfig{Jobs: 2000, Seed: 31})
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 31}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(log, tr)
	cfg.Accuracy = 0.3
	cfg.UserRisk = 0.5
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	classes := BySize(res)
	var narrow, wide *ClassReport
	for i := range classes {
		switch classes[i].Label {
		case "1-4 nodes":
			narrow = &classes[i]
		case "65+ nodes":
			wide = &classes[i]
		}
	}
	if narrow == nil || wide == nil || narrow.Jobs == 0 || wide.Jobs == 0 {
		t.Fatalf("classes unpopulated: %+v", classes)
	}
	t.Logf("narrow: %+v", *narrow)
	t.Logf("wide:   %+v", *wide)
	// Exposure scales with nodes x time: wide jobs must fail more often.
	if wide.FailureRate <= narrow.FailureRate {
		t.Errorf("wide failure rate %.3f should exceed narrow %.3f",
			wide.FailureRate, narrow.FailureRate)
	}
}
