package metrics

import (
	"probqos/internal/sim"
	"probqos/internal/units"
)

// ClassReport summarizes one job-size class. The QoS metric weights jobs
// by work, so the system's behaviour on large jobs dominates the headline
// number; the breakdown shows where QoS is actually won and lost.
type ClassReport struct {
	// Label names the class ("1-8 nodes").
	Label string
	// MinNodes and MaxNodes bound the class (inclusive).
	MinNodes, MaxNodes int
	// Jobs is the class population.
	Jobs int
	// WorkShare is the class's fraction of total useful work.
	WorkShare float64
	// QoS is Equation 2 restricted to the class.
	QoS float64
	// MissRate is the fraction of the class's jobs missing deadlines.
	MissRate float64
	// FailureRate is the fraction of the class's jobs that suffered at
	// least one failure.
	FailureRate float64
	// LostWork is the class's total lost work.
	LostWork units.Work
	// MeanWaitSeconds is the class's mean (last start - arrival).
	MeanWaitSeconds float64
}

// DefaultClasses are the size classes used by the breakdown: narrow,
// medium, wide, and huge jobs on a 128-node machine.
func DefaultClasses() []ClassReport {
	return []ClassReport{
		{Label: "1-4 nodes", MinNodes: 1, MaxNodes: 4},
		{Label: "5-16 nodes", MinNodes: 5, MaxNodes: 16},
		{Label: "17-64 nodes", MinNodes: 17, MaxNodes: 64},
		{Label: "65+ nodes", MinNodes: 65, MaxNodes: 1 << 30},
	}
}

// BySize computes the per-class breakdown of a run using DefaultClasses.
func BySize(res *sim.Result) []ClassReport {
	return ByClasses(res, DefaultClasses())
}

// ByClasses computes the breakdown over caller-provided classes. Jobs whose
// size falls in no class are ignored.
func ByClasses(res *sim.Result, classes []ClassReport) []ClassReport {
	out := make([]ClassReport, len(classes))
	copy(out, classes)
	if res == nil || len(res.Jobs) == 0 {
		return out
	}
	var totalWork float64
	for _, j := range res.Jobs {
		totalWork += j.Exec.Seconds() * float64(j.Nodes)
	}
	type accum struct {
		work, qosNum, wait float64
		missed, failed     int
	}
	accums := make([]accum, len(out))
	for _, j := range res.Jobs {
		for i := range out {
			if j.Nodes < out[i].MinNodes || j.Nodes > out[i].MaxNodes {
				continue
			}
			a := &accums[i]
			w := j.Exec.Seconds() * float64(j.Nodes)
			a.work += w
			if j.MetDeadline {
				a.qosNum += w * j.Promised
			} else {
				a.missed++
			}
			if j.FailuresSuffered > 0 {
				a.failed++
			}
			a.wait += j.LastStart.Sub(j.Arrival).Seconds()
			out[i].Jobs++
			out[i].LostWork += j.LostWork
			break
		}
	}
	for i := range out {
		a := accums[i]
		if out[i].Jobs == 0 {
			continue
		}
		n := float64(out[i].Jobs)
		if a.work > 0 {
			out[i].QoS = a.qosNum / a.work
		}
		if totalWork > 0 {
			out[i].WorkShare = a.work / totalWork
		}
		out[i].MissRate = float64(a.missed) / n
		out[i].FailureRate = float64(a.failed) / n
		out[i].MeanWaitSeconds = a.wait / n
	}
	return out
}
