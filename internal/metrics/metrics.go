// Package metrics computes the paper's evaluation metrics (§3.5) from a
// simulation result: QoS (Equation 2), capacity utilized, and total lost
// work, plus the usual scheduling diagnostics.
package metrics

import (
	"math"

	"probqos/internal/sim"
	"probqos/internal/units"
)

// Report holds every metric computed for one simulation run.
type Report struct {
	// QoS is Equation 2: sum(e_j n_j q_j p_j) / sum(e_j n_j). It rewards
	// the system for promising only what it delivers and delivering all it
	// can; jobs that miss their deadline contribute nothing.
	QoS float64
	// Utilization is ω_util: sum(e_j n_j) / (T * N), with T the span from
	// first arrival to last finish. Checkpoint overheads count as
	// unnecessary work and are excluded, per §3.5.
	Utilization float64
	// LostWork is ω_lost: sum over failures of (t_x - c_jx) * n_jx.
	LostWork units.Work
	// JobFailures counts failures that killed a running job.
	JobFailures int
	// DeadlineMissRate is the fraction of jobs with q_j = 0.
	DeadlineMissRate float64
	// WorkMissRate is the work-weighted fraction of jobs with q_j = 0.
	WorkMissRate float64
	// MeanPromise is the average promised success probability p_j.
	MeanPromise float64
	// ObservedSuccess is the fraction of jobs that met their deadline; when
	// the system is honest it should not fall below MeanPromise.
	ObservedSuccess float64
	// MeanWaitSeconds is the mean of (last start - arrival), the paper's
	// "last start time" convention.
	MeanWaitSeconds float64
	// MeanBoundedSlowdown is the mean bounded slowdown with the usual 10 s
	// threshold.
	MeanBoundedSlowdown float64
	// CheckpointsDone and CheckpointsSkipped count checkpoint decisions.
	CheckpointsDone    int
	CheckpointsSkipped int
	// CheckpointOverhead is the total wall time spent in checkpoints.
	CheckpointOverhead units.Duration
	// OccupiedFraction is raw node occupancy over T*N: useful work plus
	// checkpoint overhead plus work later lost to failures.
	OccupiedFraction float64
	// Span is T.
	Span units.Duration
}

// Compute derives the report from a simulation result.
func Compute(res *sim.Result) Report {
	var r Report
	if res == nil || len(res.Jobs) == 0 {
		return r
	}

	var (
		totalWork  float64 // sum e_j n_j
		qosNum     float64 // sum e_j n_j q_j p_j
		missedWork float64
		missed     int
		promiseSum float64
		waitSum    float64
		slowSum    float64
	)
	const slowdownFloor = 10.0
	for _, j := range res.Jobs {
		w := j.Exec.Seconds() * float64(j.Nodes)
		totalWork += w
		promiseSum += j.Promised
		if j.MetDeadline {
			qosNum += w * j.Promised
		} else {
			missed++
			missedWork += w
		}
		wait := j.LastStart.Sub(j.Arrival).Seconds()
		waitSum += wait
		run := j.Finish.Sub(j.LastStart).Seconds()
		slow := (wait + run) / math.Max(j.Exec.Seconds(), slowdownFloor)
		slowSum += math.Max(slow, 1)

		r.CheckpointsDone += j.CheckpointsDone
		r.CheckpointsSkipped += j.CheckpointsSkipped
		r.CheckpointOverhead += j.CheckpointOverheads
	}

	n := float64(len(res.Jobs))
	r.Span = res.Span()
	if totalWork > 0 {
		r.QoS = qosNum / totalWork
		r.WorkMissRate = missedWork / totalWork
	}
	if r.Span > 0 && res.ClusterNodes > 0 {
		r.Utilization = totalWork / (r.Span.Seconds() * float64(res.ClusterNodes))
	}
	r.LostWork = res.TotalLostWork()
	r.JobFailures = res.JobFailures()
	r.OccupiedFraction = res.OccupiedFraction()
	r.DeadlineMissRate = float64(missed) / n
	r.ObservedSuccess = 1 - r.DeadlineMissRate
	r.MeanPromise = promiseSum / n
	r.MeanWaitSeconds = waitSum / n
	r.MeanBoundedSlowdown = slowSum / n
	return r
}
