package eventlog

import (
	"bytes"
	"strings"
	"testing"

	"probqos/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	notes := []sim.Note{
		{Time: 10, Kind: "arrival", JobID: 1, Detail: "deadline=d0+00:10:00 p=1.000"},
		{Time: 20, Kind: "failure", Node: 5, Detail: "lost=120"},
		{Time: 30, Kind: "finish", JobID: 1},
	}
	for _, n := range notes {
		w.Observe(n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(notes) {
		t.Fatalf("read %d notes, want %d", len(got), len(notes))
	}
	for i := range notes {
		if got[i] != notes[i] {
			t.Errorf("note %d = %+v, want %+v", i, got[i], notes[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"time\":1}\nnot json\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestSummary(t *testing.T) {
	counts := Summary([]sim.Note{
		{Kind: "arrival"}, {Kind: "arrival"}, {Kind: "finish"},
	})
	if counts["arrival"] != 2 || counts["finish"] != 1 {
		t.Errorf("summary = %v", counts)
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	return 0, &writeError{}
}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestStickyError(t *testing.T) {
	w := NewWriter(&failingWriter{})
	// The bufio layer absorbs small writes; force enough volume to flush.
	big := strings.Repeat("x", 8192)
	for i := 0; i < 4; i++ {
		w.Observe(sim.Note{Kind: big})
	}
	if w.Err() == nil && w.Close() == nil {
		t.Error("expected a sticky write error")
	}
}

func TestJobTimeline(t *testing.T) {
	notes := []sim.Note{
		{Time: 30, Kind: "finish", JobID: 1},
		{Time: 10, Kind: "arrival", JobID: 1},
		{Time: 20, Kind: "start", JobID: 2},
		{Time: 15, Kind: "start", JobID: 1},
	}
	got := JobTimeline(notes, 1)
	if len(got) != 3 {
		t.Fatalf("timeline length = %d", len(got))
	}
	if got[0].Kind != "arrival" || got[1].Kind != "start" || got[2].Kind != "finish" {
		t.Errorf("timeline out of order: %+v", got)
	}
}

func TestNodeTimeline(t *testing.T) {
	notes := []sim.Note{
		{Time: 50, Kind: "recovery", Node: 3},
		{Time: 40, Kind: "failure", Node: 3},
		{Time: 45, Kind: "start", Node: 3, JobID: 9}, // not a node lifecycle event
		{Time: 41, Kind: "failure", Node: 4},
	}
	got := NodeTimeline(notes, 3)
	if len(got) != 2 || got[0].Kind != "failure" || got[1].Kind != "recovery" {
		t.Errorf("node timeline = %+v", got)
	}
}

func TestOccupancySeries(t *testing.T) {
	notes := []sim.Note{
		{Time: 0, Kind: "start", JobID: 1, Width: 4},
		{Time: 100, Kind: "start", JobID: 2, Width: 2},
		{Time: 150, Kind: "failure", JobID: 2, Node: 5, Width: 2},
		{Time: 200, Kind: "finish", JobID: 1, Width: 4},
	}
	series := OccupancySeries(notes, 8, 50)
	want := []float64{0.5, 0.5, 0.75, 0.5, 0} // t = 0,50,100,150,200
	if len(series) != len(want) {
		t.Fatalf("series length = %d, want %d: %v", len(series), len(want), series)
	}
	for i := range want {
		if series[i] != want[i] {
			t.Errorf("series[%d] = %v, want %v (full %v)", i, series[i], want[i], series)
		}
	}
	if got := OccupancySeries(nil, 8, 50); got != nil {
		t.Errorf("empty journal series = %v", got)
	}
}
