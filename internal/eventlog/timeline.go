package eventlog

import (
	"sort"

	"probqos/internal/sim"
	"probqos/internal/units"
)

// JobTimeline extracts one job's notes from a journal, in time order: the
// quickest way to answer "what happened to job 4711?" after a run.
func JobTimeline(notes []sim.Note, jobID int) []sim.Note {
	var out []sim.Note
	for _, n := range notes {
		if n.JobID == jobID {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// NodeTimeline extracts one node's failure/recovery notes from a journal.
func NodeTimeline(notes []sim.Note, node int) []sim.Note {
	var out []sim.Note
	for _, n := range notes {
		if n.Node == node && (n.Kind == "failure" || n.Kind == "recovery") {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// OccupancySeries reconstructs the busy-node count over time from a
// journal: one sample per step, derived from width-annotated start, finish,
// and job-killing failure notes. It returns fractions of clusterNodes.
func OccupancySeries(notes []sim.Note, clusterNodes int, step units.Duration) []float64 {
	if clusterNodes <= 0 || step <= 0 || len(notes) == 0 {
		return nil
	}
	type change struct {
		at    units.Time
		delta int
	}
	var changes []change
	var end units.Time
	for _, n := range notes {
		if n.Time > end {
			end = n.Time
		}
		switch n.Kind {
		case "start":
			changes = append(changes, change{at: n.Time, delta: n.Width})
		case "finish":
			changes = append(changes, change{at: n.Time, delta: -n.Width})
		case "failure":
			if n.JobID != 0 {
				changes = append(changes, change{at: n.Time, delta: -n.Width})
			}
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].at < changes[j].at })

	samples := int(end/units.Time(step)) + 1
	out := make([]float64, samples)
	busy, k := 0, 0
	for i := 0; i < samples; i++ {
		at := units.Time(i) * units.Time(step)
		for k < len(changes) && changes[k].at <= at {
			busy += changes[k].delta
			k++
		}
		out[i] = float64(busy) / float64(clusterNodes)
	}
	return out
}
