// Package eventlog records the simulator's event journal as JSON lines and
// reads it back for analysis. cmd/qossim -journal uses it.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"probqos/internal/sim"
)

// Writer is a sim.Observer that appends each note as one JSON line. Errors
// are sticky: the first write failure is remembered and later notes are
// dropped; check Err (or Close) when the run finishes.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

var _ sim.Observer = (*Writer)(nil)

// NewWriter creates a journal writer over w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Observe implements sim.Observer.
func (w *Writer) Observe(n sim.Note) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err := w.enc.Encode(n); err != nil {
		w.err = fmt.Errorf("eventlog: write: %w", err)
	}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes buffered notes and returns the first error seen.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("eventlog: flush: %w", err)
	}
	return w.err
}

// Read parses a journal written by Writer.
func Read(r io.Reader) ([]sim.Note, error) {
	var notes []sim.Note
	dec := json.NewDecoder(r)
	for {
		var n sim.Note
		if err := dec.Decode(&n); err == io.EOF {
			return notes, nil
		} else if err != nil {
			return nil, fmt.Errorf("eventlog: parse line %d: %w", len(notes)+1, err)
		}
		notes = append(notes, n)
	}
}

// Summary counts notes by kind.
func Summary(notes []sim.Note) map[string]int {
	counts := make(map[string]int)
	for _, n := range notes {
		counts[n.Kind]++
	}
	return counts
}
