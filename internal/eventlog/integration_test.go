package eventlog

import (
	"bytes"
	"math"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/sim"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// TestJournalMatchesSimulatorAccounting runs a real simulation with the
// journal attached and cross-checks the journal-reconstructed occupancy
// against the simulator's own busy-node-second integration. The two are
// independent code paths over the same events, so agreement is a strong
// consistency check.
func TestJournalMatchesSimulatorAccounting(t *testing.T) {
	log := workload.GenerateSDSC(workload.GenConfig{Jobs: 150, Seed: 17, ClusterNodes: 16})
	for i := range log.Jobs {
		if log.Jobs[i].Nodes > 16 {
			log.Jobs[i].Nodes = 16
		}
	}
	tr, err := failure.GenerateTrace(
		failure.RawConfig{Nodes: 16, Episodes: 40, Span: 90 * units.Day, Seed: 17},
		failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	journal := NewWriter(&buf)
	cfg := sim.DefaultConfig(log, tr)
	cfg.Nodes = 16
	cfg.Accuracy = 0.6
	cfg.UserRisk = 0.5
	cfg.Observer = journal
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	notes, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	const step = units.Duration(60)
	series := OccupancySeries(notes, 16, step)
	if len(series) == 0 {
		t.Fatal("no occupancy series")
	}
	var integrated float64
	for _, frac := range series {
		if frac < 0 || frac > 1 {
			t.Fatalf("occupancy fraction out of range: %v", frac)
		}
		integrated += frac * step.Seconds() * 16
	}
	want := res.BusyNodeSeconds.NodeSeconds()
	if want == 0 {
		t.Fatal("simulator accounted no busy time")
	}
	// Riemann-sum discretization error only.
	if rel := math.Abs(integrated-want) / want; rel > 0.01 {
		t.Errorf("journal occupancy %.4g vs simulator %.4g (relative error %.4f)",
			integrated, want, rel)
	}

	// The journal's per-job story must be complete: every job has an
	// arrival, at least one start, and exactly one finish.
	for _, j := range res.Jobs {
		timeline := JobTimeline(notes, j.ID)
		counts := Summary(timeline)
		if counts["arrival"] != 1 || counts["finish"] != 1 || counts["start"] < 1 {
			t.Fatalf("job %d journal incomplete: %v", j.ID, counts)
		}
	}
}
