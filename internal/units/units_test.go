package units

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	tests := []struct {
		name string
		base Time
		d    Duration
		want Time
	}{
		{name: "add zero", base: 100, d: 0, want: 100},
		{name: "add positive", base: 100, d: 50, want: 150},
		{name: "add negative", base: 100, d: -30, want: 70},
		{name: "add hour", base: 0, d: Hour, want: 3600},
		{name: "add day", base: 0, d: Day, want: 86400},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.base.Add(tt.d); got != tt.want {
				t.Errorf("Add: got %d, want %d", got, tt.want)
			}
		})
	}
}

func TestTimeSub(t *testing.T) {
	if got := Time(150).Sub(100); got != 50 {
		t.Errorf("Sub: got %d, want 50", got)
	}
	if got := Time(100).Sub(150); got != -50 {
		t.Errorf("Sub: got %d, want -50", got)
	}
}

func TestTimeOrdering(t *testing.T) {
	if !Time(1).Before(2) {
		t.Error("1 should be before 2")
	}
	if Time(2).Before(2) {
		t.Error("2 should not be before 2")
	}
	if !Time(3).After(2) {
		t.Error("3 should be after 2")
	}
	if got := Time(5).Min(3); got != 3 {
		t.Errorf("Min: got %d, want 3", got)
	}
	if got := Time(5).Max(3); got != 5 {
		t.Errorf("Max: got %d, want 5", got)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		give Time
		want string
	}{
		{give: 0, want: "d0+00:00:00"},
		{give: Time(Day + Hour + Minute + 1), want: "d1+01:01:01"},
		{give: -1, want: "-d0+00:00:01"},
		{give: Forever, want: "forever"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}

func TestWorkFor(t *testing.T) {
	tests := []struct {
		name  string
		nodes int
		d     Duration
		want  Work
	}{
		{name: "zero nodes", nodes: 0, d: 100, want: 0},
		{name: "simple", nodes: 4, d: 100, want: 400},
		{name: "negative duration clamps", nodes: 4, d: -100, want: 0},
		{name: "one node one hour", nodes: 1, d: Hour, want: 3600},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := WorkFor(tt.nodes, tt.d); got != tt.want {
				t.Errorf("WorkFor(%d, %d) = %d, want %d", tt.nodes, tt.d, got, tt.want)
			}
		})
	}
}

func TestDurationConversions(t *testing.T) {
	if got := Hour.Seconds(); got != 3600 {
		t.Errorf("Hour.Seconds() = %v, want 3600", got)
	}
	if got := (90 * Minute).Hours(); got != 1.5 {
		t.Errorf("(90m).Hours() = %v, want 1.5", got)
	}
	if got := Duration(5).String(); got != "5s" {
		t.Errorf("Duration(5).String() = %q", got)
	}
	if got := Work(7).String(); got != "7node-s" {
		t.Errorf("Work(7).String() = %q", got)
	}
	if got := Work(7).NodeSeconds(); got != 7 {
		t.Errorf("Work(7).NodeSeconds() = %v", got)
	}
}

func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(base int32, delta int32) bool {
		tm := Time(base)
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mn, mx := x.Min(y), x.Max(y)
		return mn <= mx && (mn == x || mn == y) && (mx == x || mx == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
