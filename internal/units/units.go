// Package units defines the primitive quantities shared by every layer of
// the simulator: simulation time, durations, and work (node-seconds).
//
// The simulator runs on an integer-second clock. All timestamps are offsets
// from the start of the simulated trace, so Time zero is "trace start", not
// any wall-clock instant. Using integers keeps event ordering exact and the
// simulation bit-for-bit reproducible across runs and platforms.
package units

import (
	"fmt"
	"strconv"
)

// Time is an instant on the simulation clock, in seconds since trace start.
type Time int64

// Duration is a span of simulation time, in seconds.
type Duration int64

// Work is an amount of computation in node-seconds: occupying n nodes for
// k seconds consumes Work(n*k). This is the unit of the paper's utilization
// and lost-work metrics.
type Work int64

// Common durations.
const (
	Second Duration = 1
	Minute          = 60 * Second
	Hour            = 60 * Minute
	Day             = 24 * Hour
	Week            = 7 * Day
	Year            = 365 * Day
)

// Forever is a sentinel Time later than any event in a simulation.
const Forever Time = 1<<62 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Min returns the earlier of t and u.
func (t Time) Min(u Time) Time {
	if t < u {
		return t
	}
	return u
}

// Max returns the later of t and u.
func (t Time) Max(u Time) Time {
	if t > u {
		return t
	}
	return u
}

// String renders the instant as a day/hour/minute/second offset, which reads
// better than a raw second count in logs spanning months.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	neg := ""
	v := int64(t)
	if v < 0 {
		neg = "-"
		v = -v
	}
	d := v / int64(Day)
	rem := v % int64(Day)
	h := rem / int64(Hour)
	rem %= int64(Hour)
	m := rem / int64(Minute)
	s := rem % int64(Minute)
	return fmt.Sprintf("%sd%d+%02d:%02d:%02d", neg, d, h, m, s)
}

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Hours returns the duration as a float64 hour count.
func (d Duration) Hours() float64 { return float64(d) / float64(Hour) }

// String renders the duration in seconds.
func (d Duration) String() string { return strconv.FormatInt(int64(d), 10) + "s" }

// WorkFor returns the work consumed by n nodes over duration d.
func WorkFor(n int, d Duration) Work {
	if d < 0 {
		d = 0
	}
	return Work(int64(n) * int64(d))
}

// NodeSeconds returns the work as a float64 node-second count.
func (w Work) NodeSeconds() float64 { return float64(w) }

// String renders the work in node-seconds.
func (w Work) String() string { return strconv.FormatInt(int64(w), 10) + "node-s" }
