package negotiate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"probqos/internal/units"
)

// Session is one open quote dialog: the offers extended to a user who has
// not yet accepted or walked away. In the batch simulator the dialog is a
// single synchronous Negotiate call; the online service splits it into
// quote and accept requests, so the state between them — which offers were
// made, for what request, until when they stand — lives here instead of in
// the simulation loop.
type Session struct {
	// ID names the session in accept requests.
	ID string `json:"id"`
	// Size and Exec restate the quoted request: job size in nodes and
	// checkpoint-free execution time.
	Size int            `json:"size"`
	Exec units.Duration `json:"exec_seconds"`
	// Created and Expires bound the session's validity on the virtual
	// clock. An offer accepted after Expires is refused: the cluster state
	// it priced has moved on.
	Created units.Time `json:"created"`
	Expires units.Time `json:"expires"`
	// Quotes are the offers, earliest deadline first.
	Quotes []Quote `json:"quotes"`
}

// Book tracks open sessions for an online negotiation service. It is not
// safe for concurrent use: the owning state-machine goroutine serializes
// access, like every other piece of scheduler state.
type Book struct {
	ttl     units.Duration
	seq     int64
	open    map[string]*Session
	expired int
}

// NewBook creates a session book whose sessions stand for ttl of virtual
// time after opening.
func NewBook(ttl units.Duration) (*Book, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("negotiate: session TTL must be positive, got %v", ttl)
	}
	return &Book{ttl: ttl, open: make(map[string]*Session)}, nil
}

// Open records a new session over the given quotes and returns it.
func (b *Book) Open(now units.Time, size int, exec units.Duration, quotes []Quote) *Session {
	b.seq++
	s := &Session{
		ID:      fmt.Sprintf("q-%d", b.seq),
		Size:    size,
		Exec:    exec,
		Created: now,
		Expires: now.Add(b.ttl),
		Quotes:  append([]Quote(nil), quotes...),
	}
	b.open[s.ID] = s
	return s
}

// Take removes and returns the session, consuming it: an accept settles
// the dialog whether or not the reservation then succeeds, and a failed
// reservation means the quotes are stale anyway. Sessions past their
// expiry are dropped and not returned.
func (b *Book) Take(id string, now units.Time) (*Session, bool) {
	s, ok := b.open[id]
	if !ok {
		return nil, false
	}
	delete(b.open, id)
	if now.After(s.Expires) {
		b.expired++
		return nil, false
	}
	return s, true
}

// Sweep drops every session past its expiry and returns how many it
// removed. The service calls it as the virtual clock advances so the book
// does not accumulate abandoned dialogs.
func (b *Book) Sweep(now units.Time) int {
	dropped := 0
	for id, s := range b.open {
		if now.After(s.Expires) {
			delete(b.open, id)
			dropped++
		}
	}
	b.expired += dropped
	return dropped
}

// Len returns the number of open sessions.
func (b *Book) Len() int { return len(b.open) }

// Expired returns the cumulative count of sessions that lapsed unaccepted.
func (b *Book) Expired() int { return b.expired }

// BookState is a serializable snapshot of a Book, minus the TTL (which is
// configuration, not state, and stays with the restoring book).
type BookState struct {
	Seq      int64     `json:"seq"`
	Expired  int       `json:"expired"`
	Sessions []Session `json:"sessions,omitempty"`
}

// Export snapshots the book. Sessions come out in creation order (the
// numeric order of their q-N IDs) so the encoding is deterministic.
func (b *Book) Export() BookState {
	st := BookState{Seq: b.seq, Expired: b.expired}
	for _, s := range b.open {
		st.Sessions = append(st.Sessions, *s)
	}
	sort.Slice(st.Sessions, func(i, j int) bool {
		return sessionSeq(st.Sessions[i].ID) < sessionSeq(st.Sessions[j].ID)
	})
	return st
}

// Import replaces the book's state with an exported snapshot, keeping the
// configured TTL.
func (b *Book) Import(st BookState) error {
	open := make(map[string]*Session, len(st.Sessions))
	for i := range st.Sessions {
		s := st.Sessions[i]
		if _, dup := open[s.ID]; dup {
			return fmt.Errorf("negotiate: duplicate session %q in book state", s.ID)
		}
		open[s.ID] = &s
	}
	b.seq = st.Seq
	b.expired = st.Expired
	b.open = open
	return nil
}

// Insert re-opens a session exactly as recorded, for write-ahead-log
// replay. The sequence counter is bumped past the session's own number so
// sessions opened after recovery cannot collide with replayed IDs.
func (b *Book) Insert(s *Session) {
	if n := sessionSeq(s.ID); n > b.seq {
		b.seq = n
	}
	cp := *s
	b.open[cp.ID] = &cp
}

// sessionSeq extracts the numeric suffix of a q-N session ID; IDs minted
// elsewhere sort first.
func sessionSeq(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "q-"), 10, 64)
	if err != nil {
		return -1
	}
	return n
}
