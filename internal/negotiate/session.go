package negotiate

import (
	"fmt"

	"probqos/internal/units"
)

// Session is one open quote dialog: the offers extended to a user who has
// not yet accepted or walked away. In the batch simulator the dialog is a
// single synchronous Negotiate call; the online service splits it into
// quote and accept requests, so the state between them — which offers were
// made, for what request, until when they stand — lives here instead of in
// the simulation loop.
type Session struct {
	// ID names the session in accept requests.
	ID string
	// Size and Exec restate the quoted request: job size in nodes and
	// checkpoint-free execution time.
	Size int
	Exec units.Duration
	// Created and Expires bound the session's validity on the virtual
	// clock. An offer accepted after Expires is refused: the cluster state
	// it priced has moved on.
	Created units.Time
	Expires units.Time
	// Quotes are the offers, earliest deadline first.
	Quotes []Quote
}

// Book tracks open sessions for an online negotiation service. It is not
// safe for concurrent use: the owning state-machine goroutine serializes
// access, like every other piece of scheduler state.
type Book struct {
	ttl     units.Duration
	seq     int64
	open    map[string]*Session
	expired int
}

// NewBook creates a session book whose sessions stand for ttl of virtual
// time after opening.
func NewBook(ttl units.Duration) (*Book, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("negotiate: session TTL must be positive, got %v", ttl)
	}
	return &Book{ttl: ttl, open: make(map[string]*Session)}, nil
}

// Open records a new session over the given quotes and returns it.
func (b *Book) Open(now units.Time, size int, exec units.Duration, quotes []Quote) *Session {
	b.seq++
	s := &Session{
		ID:      fmt.Sprintf("q-%d", b.seq),
		Size:    size,
		Exec:    exec,
		Created: now,
		Expires: now.Add(b.ttl),
		Quotes:  append([]Quote(nil), quotes...),
	}
	b.open[s.ID] = s
	return s
}

// Take removes and returns the session, consuming it: an accept settles
// the dialog whether or not the reservation then succeeds, and a failed
// reservation means the quotes are stale anyway. Sessions past their
// expiry are dropped and not returned.
func (b *Book) Take(id string, now units.Time) (*Session, bool) {
	s, ok := b.open[id]
	if !ok {
		return nil, false
	}
	delete(b.open, id)
	if now.After(s.Expires) {
		b.expired++
		return nil, false
	}
	return s, true
}

// Sweep drops every session past its expiry and returns how many it
// removed. The service calls it as the virtual clock advances so the book
// does not accumulate abandoned dialogs.
func (b *Book) Sweep(now units.Time) int {
	dropped := 0
	for id, s := range b.open {
		if now.After(s.Expires) {
			delete(b.open, id)
			dropped++
		}
	}
	b.expired += dropped
	return dropped
}

// Len returns the number of open sessions.
func (b *Book) Len() int { return len(b.open) }

// Expired returns the cumulative count of sessions that lapsed unaccepted.
func (b *Book) Expired() int { return b.expired }
