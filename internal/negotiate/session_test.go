package negotiate

import (
	"testing"

	"probqos/internal/units"
)

func TestBookOpenTake(t *testing.T) {
	b, err := NewBook(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	q := []Quote{{Deadline: 100, Success: 0.9}}
	s := b.Open(10, 4, 600, q)
	if s.ID == "" || s.Size != 4 || s.Exec != 600 {
		t.Fatalf("bad session: %+v", s)
	}
	if s.Expires != s.Created.Add(units.Hour) {
		t.Errorf("expiry %v, want created+1h", s.Expires)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}

	got, ok := b.Take(s.ID, 20)
	if !ok || got.ID != s.ID || len(got.Quotes) != 1 || got.Quotes[0].Success != 0.9 {
		t.Fatalf("Take = %+v, %v", got, ok)
	}
	if b.Len() != 0 {
		t.Errorf("session not consumed, Len = %d", b.Len())
	}
	if _, ok := b.Take(s.ID, 20); ok {
		t.Error("second Take of the same session succeeded")
	}
}

func TestBookTakeUnknown(t *testing.T) {
	b, _ := NewBook(units.Hour)
	if _, ok := b.Take("q-999", 0); ok {
		t.Error("unknown session returned")
	}
}

func TestBookExpiry(t *testing.T) {
	b, _ := NewBook(units.Minute)
	s := b.Open(0, 1, 60, nil)
	// Exactly at expiry the session still stands; one second later it lapses.
	if _, ok := b.Take(s.ID, s.Expires); !ok {
		t.Fatal("session refused at its expiry instant")
	}
	s = b.Open(0, 1, 60, nil)
	if _, ok := b.Take(s.ID, s.Expires.Add(1)); ok {
		t.Fatal("expired session accepted")
	}
	if b.Expired() != 1 {
		t.Errorf("Expired = %d, want 1", b.Expired())
	}
}

func TestBookSweep(t *testing.T) {
	b, _ := NewBook(units.Minute)
	b.Open(0, 1, 60, nil)
	b.Open(0, 2, 60, nil)
	live := b.Open(120, 3, 60, nil)
	if n := b.Sweep(90); n != 2 {
		t.Fatalf("Sweep dropped %d, want 2", n)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1", b.Len())
	}
	if _, ok := b.Take(live.ID, 121); !ok {
		t.Error("live session lost in sweep")
	}
	if b.Expired() != 2 {
		t.Errorf("Expired = %d, want 2", b.Expired())
	}
}

func TestBookQuotesCopied(t *testing.T) {
	b, _ := NewBook(units.Hour)
	src := []Quote{{Success: 0.5}}
	s := b.Open(0, 1, 60, src)
	src[0].Success = 0.1
	if s.Quotes[0].Success != 0.5 {
		t.Error("session shares the caller's quote slice")
	}
}

func TestNewBookRejectsBadTTL(t *testing.T) {
	if _, err := NewBook(0); err == nil {
		t.Error("TTL 0 accepted")
	}
	if _, err := NewBook(-1); err == nil {
		t.Error("negative TTL accepted")
	}
}
