package negotiate

import (
	"encoding/json"
	"testing"

	"probqos/internal/units"
)

func TestBookOpenTake(t *testing.T) {
	b, err := NewBook(units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	q := []Quote{{Deadline: 100, Success: 0.9}}
	s := b.Open(10, 4, 600, q)
	if s.ID == "" || s.Size != 4 || s.Exec != 600 {
		t.Fatalf("bad session: %+v", s)
	}
	if s.Expires != s.Created.Add(units.Hour) {
		t.Errorf("expiry %v, want created+1h", s.Expires)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}

	got, ok := b.Take(s.ID, 20)
	if !ok || got.ID != s.ID || len(got.Quotes) != 1 || got.Quotes[0].Success != 0.9 {
		t.Fatalf("Take = %+v, %v", got, ok)
	}
	if b.Len() != 0 {
		t.Errorf("session not consumed, Len = %d", b.Len())
	}
	if _, ok := b.Take(s.ID, 20); ok {
		t.Error("second Take of the same session succeeded")
	}
}

func TestBookTakeUnknown(t *testing.T) {
	b, _ := NewBook(units.Hour)
	if _, ok := b.Take("q-999", 0); ok {
		t.Error("unknown session returned")
	}
}

func TestBookExpiry(t *testing.T) {
	b, _ := NewBook(units.Minute)
	s := b.Open(0, 1, 60, nil)
	// Exactly at expiry the session still stands; one second later it lapses.
	if _, ok := b.Take(s.ID, s.Expires); !ok {
		t.Fatal("session refused at its expiry instant")
	}
	s = b.Open(0, 1, 60, nil)
	if _, ok := b.Take(s.ID, s.Expires.Add(1)); ok {
		t.Fatal("expired session accepted")
	}
	if b.Expired() != 1 {
		t.Errorf("Expired = %d, want 1", b.Expired())
	}
}

func TestBookSweep(t *testing.T) {
	b, _ := NewBook(units.Minute)
	b.Open(0, 1, 60, nil)
	b.Open(0, 2, 60, nil)
	live := b.Open(120, 3, 60, nil)
	if n := b.Sweep(90); n != 2 {
		t.Fatalf("Sweep dropped %d, want 2", n)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1", b.Len())
	}
	if _, ok := b.Take(live.ID, 121); !ok {
		t.Error("live session lost in sweep")
	}
	if b.Expired() != 2 {
		t.Errorf("Expired = %d, want 2", b.Expired())
	}
}

func TestBookQuotesCopied(t *testing.T) {
	b, _ := NewBook(units.Hour)
	src := []Quote{{Success: 0.5}}
	s := b.Open(0, 1, 60, src)
	src[0].Success = 0.1
	if s.Quotes[0].Success != 0.5 {
		t.Error("session shares the caller's quote slice")
	}
}

func TestNewBookRejectsBadTTL(t *testing.T) {
	if _, err := NewBook(0); err == nil {
		t.Error("TTL 0 accepted")
	}
	if _, err := NewBook(-1); err == nil {
		t.Error("negative TTL accepted")
	}
}

func TestBookExportImportRoundTrip(t *testing.T) {
	b, _ := NewBook(units.Hour)
	q := []Quote{{Deadline: 100, Success: 0.9}, {Deadline: 200, Success: 0.99}}
	for i := 0; i < 12; i++ {
		b.Open(units.Time(i), 2, 600, q)
	}
	b.Take("q-3", 5)          // consumed
	b.Sweep(units.Time(3603)) // expires the ones opened before t=3

	st := b.Export()
	if st.Seq != 12 || st.Expired != b.Expired() || len(st.Sessions) != b.Len() {
		t.Fatalf("export = %+v vs book len %d expired %d", st, b.Len(), b.Expired())
	}
	for i := 1; i < len(st.Sessions); i++ {
		if sessionSeq(st.Sessions[i-1].ID) >= sessionSeq(st.Sessions[i].ID) {
			t.Fatalf("export not in creation order: %s before %s",
				st.Sessions[i-1].ID, st.Sessions[i].ID)
		}
	}

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BookState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	b2, _ := NewBook(units.Hour)
	if err := b2.Import(decoded); err != nil {
		t.Fatal(err)
	}
	if b2.Len() != b.Len() || b2.Expired() != b.Expired() {
		t.Fatalf("imported book: len %d expired %d, want %d/%d",
			b2.Len(), b2.Expired(), b.Len(), b.Expired())
	}
	// Sequencing continues where the exporter left off.
	if s := b2.Open(0, 1, 60, q); s.ID != "q-13" {
		t.Fatalf("next session after import = %s, want q-13", s.ID)
	}
	// Imported sessions are takeable with their recorded quotes.
	got, ok := b2.Take("q-12", units.Time(11).Add(units.Hour))
	if !ok || len(got.Quotes) != 2 || got.Quotes[1].Success != 0.99 {
		t.Fatalf("take imported session = %+v, %v", got, ok)
	}
}

func TestBookImportRejectsDuplicates(t *testing.T) {
	b, _ := NewBook(units.Hour)
	s := Session{ID: "q-1", Size: 1, Exec: 60}
	err := b.Import(BookState{Seq: 1, Sessions: []Session{s, s}})
	if err == nil {
		t.Fatal("duplicate session IDs imported")
	}
}

func TestBookInsertBumpsSequence(t *testing.T) {
	b, _ := NewBook(units.Hour)
	b.Insert(&Session{ID: "q-7", Size: 1, Exec: 60, Expires: units.Time(units.Hour)})
	if b.Len() != 1 {
		t.Fatalf("Len = %d after insert", b.Len())
	}
	if s := b.Open(0, 1, 60, nil); s.ID != "q-8" {
		t.Fatalf("open after insert minted %s, want q-8", s.ID)
	}
	// Foreign IDs insert fine and leave the sequence alone.
	b.Insert(&Session{ID: "external", Size: 1, Exec: 60})
	if s := b.Open(0, 1, 60, nil); s.ID != "q-9" {
		t.Fatalf("open after foreign insert minted %s, want q-9", s.ID)
	}
}
