package negotiate

import (
	"math"
	"testing"
	"testing/quick"

	"probqos/internal/failure"
	"probqos/internal/predict"
	"probqos/internal/sched"
	"probqos/internal/units"
)

func newScheduler(t *testing.T, a float64, events ...failure.Event) (*sched.Scheduler, *predict.Trace) {
	t.Helper()
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	p, err := predict.NewTrace(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	return sched.New(8, p), p
}

func TestNewUserValidation(t *testing.T) {
	for _, u := range []float64{-0.1, 1.01, math.NaN()} {
		if _, err := NewUser(u); err == nil {
			t.Errorf("expected error for U=%v", u)
		}
	}
	u, err := NewUser(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Accepts(0.5) {
		t.Error("Equation 3 is inclusive: p_j >= U")
	}
	if u.Accepts(0.49) {
		t.Error("promise below U must be rejected")
	}
}

func TestNegotiateFirstQuoteOnCleanCluster(t *testing.T) {
	s, p := newScheduler(t, 1)
	n := New(s, WithLocator(p))
	q, offers, err := n.Negotiate(100, 4, 500, User{U: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if offers != 1 {
		t.Errorf("offers = %d, want 1", offers)
	}
	if q.Candidate.Start != 100 || q.Deadline != 600 || q.Success != 1 {
		t.Errorf("quote = %+v", q)
	}
}

func TestNegotiateExtendsDeadlinePastPredictedFailure(t *testing.T) {
	// All 8 nodes have detectable failures in the immediate window, so a
	// demanding user forces a later slot.
	var events []failure.Event
	for node := 0; node < 8; node++ {
		events = append(events, failure.Event{Time: 250, Node: node, Detectability: 0.5})
	}
	s, p := newScheduler(t, 1, events...)
	n := New(s, WithLocator(p))

	easy, offers, err := n.Negotiate(0, 8, 500, User{U: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if offers != 1 || easy.Candidate.Start != 0 {
		t.Errorf("U=0.1 should take the first quote: %+v after %d offers", easy, offers)
	}
	if easy.Success != 0.5 {
		t.Errorf("promised success = %v, want 0.5", easy.Success)
	}

	strict, offers, err := n.Negotiate(0, 8, 500, User{U: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if offers < 2 {
		t.Errorf("U=0.9 accepted after %d offers, expected a renegotiation", offers)
	}
	if strict.Candidate.Start <= 250-500 {
		t.Errorf("strict start = %v, should clear the failure at t=250", strict.Candidate.Start)
	}
	if strict.Success < 0.9 {
		t.Errorf("accepted success %v < U", strict.Success)
	}
	if strict.Deadline <= easy.Deadline {
		t.Error("higher U must mean a later (relaxed) deadline here")
	}
}

func TestNegotiateLaterDeadlineHigherSuccessMonotonicity(t *testing.T) {
	// The market structure of §3.5: successive quotes never promise less.
	var events []failure.Event
	for node := 0; node < 8; node++ {
		events = append(events, failure.Event{Time: 300, Node: node, Detectability: 0.7})
	}
	s, p := newScheduler(t, 1, events...)
	n := New(s, WithLocator(p))
	quotes := n.Quotes(0, 8, 600, 5)
	if len(quotes) < 2 {
		t.Fatalf("expected several quotes, got %d", len(quotes))
	}
	for i := 1; i < len(quotes); i++ {
		if quotes[i].Deadline < quotes[i-1].Deadline {
			t.Errorf("quote %d deadline %v earlier than previous %v", i, quotes[i].Deadline, quotes[i-1].Deadline)
		}
	}
	last := quotes[len(quotes)-1]
	if last.Success <= quotes[0].Success {
		t.Errorf("relaxing the deadline should raise the promise: first %v, last %v",
			quotes[0].Success, last.Success)
	}
}

func TestNegotiateExponentialDeferral(t *testing.T) {
	// A failure storm across every node for a long stretch with a tiny
	// candidate budget: the negotiator must defer past the storm.
	var events []failure.Event
	for day := 0; day < 30; day++ {
		for node := 0; node < 8; node++ {
			events = append(events, failure.Event{
				Time: units.Time(int64(day) * int64(units.Day)), Node: node, Detectability: 0.3,
			})
		}
	}
	s, p := newScheduler(t, 1, events...)
	n := New(s, WithLocator(p), WithMaxQuotes(2))
	q, _, err := n.Negotiate(0, 8, units.Duration(2*units.Day), User{U: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if q.Success < 0.95 {
		t.Errorf("deferred quote promises %v < U", q.Success)
	}
	if q.Candidate.Start < units.Time(29*int64(units.Day)) {
		t.Errorf("start %v does not clear the 30-day storm", q.Candidate.Start)
	}
}

func TestNegotiateInvalidRequest(t *testing.T) {
	s, _ := newScheduler(t, 1)
	n := New(s)
	if _, _, err := n.Negotiate(0, 100, 500, User{U: 0}); err == nil {
		t.Error("expected error for oversized job")
	}
}

func TestInsensitivityWhenAccuracyBelowThreshold(t *testing.T) {
	// The predictor caps pf at a, so for U <= 1-a every first quote is
	// accepted and U does not matter (§4.2 discussion / Figure 7).
	var events []failure.Event
	for node := 0; node < 8; node++ {
		events = append(events, failure.Event{Time: 100, Node: node, Detectability: 0.45})
	}
	s, p := newScheduler(t, 0.5, events...)
	n := New(s, WithLocator(p))
	for _, u := range []float64{0, 0.2, 0.5} {
		_, offers, err := n.Negotiate(0, 8, 400, User{U: u})
		if err != nil {
			t.Fatal(err)
		}
		if offers != 1 {
			t.Errorf("U=%v: offers = %d, want 1 (insensitive regime)", u, offers)
		}
	}
	// Above the threshold the cap no longer protects the first quote.
	_, offers, err := n.Negotiate(0, 8, 400, User{U: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if offers < 2 {
		t.Errorf("U=0.8: offers = %d, want renegotiation", offers)
	}
}

func TestAcceptedPromiseAlwaysMeetsUProperty(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Nodes: 8, Episodes: 60, Span: 30 * units.Day, Seed: 5}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, uRaw uint8, size uint8, durRaw uint16) bool {
		a := float64(aRaw%11) / 10
		u := float64(uRaw%11) / 10
		p, err := predict.NewTrace(tr, a)
		if err != nil {
			return false
		}
		s := sched.New(8, p)
		n := New(s, WithLocator(p))
		sz := int(size)%8 + 1
		dur := units.Duration(durRaw)/4 + 1
		q, _, err := n.Negotiate(0, sz, dur, User{U: u})
		if err != nil {
			return false
		}
		return q.Success >= u && q.Success == 1-q.Candidate.PFail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFailureSlackOption(t *testing.T) {
	// A failure 60 s before the scheduler-offered start: without slack the
	// quote ignores it; with slack, the negotiator steps past it for a
	// strict user and the quoted window clears the restart.
	events := []failure.Event{{Time: 940, Node: 0, Detectability: 0.5}}
	tr, err := failure.NewTrace(1, events)
	if err != nil {
		t.Fatal(err)
	}
	p, err := predict.NewTrace(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(1, p, sched.WithQuoteSlack(120))
	n := New(s, WithLocator(p), WithFailureSlack(120))
	q, _, err := n.Negotiate(1000, 1, 500, User{U: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if q.Candidate.Start < 940+120+1 {
		t.Errorf("start = %v, want past failure+slack", q.Candidate.Start)
	}
	if q.Success != 1 {
		t.Errorf("success = %v", q.Success)
	}
}

func TestWalkWithoutLocatorFallsBackToDeferral(t *testing.T) {
	// No locator: after the first risky quote the walk must still converge
	// via exponential deferral.
	var events []failure.Event
	for n := 0; n < 8; n++ {
		events = append(events, failure.Event{Time: 250, Node: n, Detectability: 0.5})
	}
	s, _ := newScheduler(t, 1, events...)
	n := New(s) // deliberately no locator
	q, offers, err := n.Negotiate(0, 8, 500, User{U: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if offers < 2 || q.Success < 0.9 {
		t.Errorf("quote = %+v after %d offers", q, offers)
	}
	if q.Candidate.Start < units.Time(units.Day) {
		t.Errorf("deferral start = %v, want at least one day jump", q.Candidate.Start)
	}
}
