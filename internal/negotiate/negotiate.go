// Package negotiate implements the deadline negotiation of §3.5 and the
// simulated user model of §4.2: the system quotes (deadline, probability of
// success) pairs for successively later schedulable slots, and a user with
// risk strategy U accepts the earliest quote whose promised success
// probability is at least U (Equation 3).
package negotiate

import (
	"fmt"
	"math"

	"probqos/internal/failure"
	"probqos/internal/sched"
	"probqos/internal/units"
)

// User is the simulated user risk strategy U in [0, 1]. U = 0 accepts any
// quote immediately (deadline is everything); U = 1 demands certainty and
// will push the deadline as far as needed.
type User struct {
	U float64
}

// NewUser validates U.
func NewUser(u float64) (User, error) {
	if u < 0 || u > 1 || math.IsNaN(u) {
		return User{}, fmt.Errorf("negotiate: user parameter %v outside [0,1]", u)
	}
	return User{U: u}, nil
}

// Accepts reports whether the user takes a quote promising the given
// probability of success (Equation 3: p_j >= U).
func (u User) Accepts(promised float64) bool { return promised >= u.U }

// Quote is one offer in the dialog: "this job can be completed by Deadline
// with probability Success".
type Quote struct {
	Candidate sched.Candidate `json:"candidate"`
	// Deadline is the promised completion instant for this slot.
	Deadline units.Time `json:"deadline"`
	// Success is p_j = 1 - pf, the promised probability of success.
	Success float64 `json:"success"`
}

// failureLocator is the optional predictor capability the negotiator uses
// to propose the next deadline: "which failure made this quote risky?".
// predict.Trace implements it; for predictors that do not, the negotiator
// falls back to exponential deferral.
type failureLocator interface {
	FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool)
}

// Option configures a Negotiator.
type Option interface{ apply(*Negotiator) }

type optionFunc func(*Negotiator)

func (f optionFunc) apply(n *Negotiator) { f(n) }

// WithMaxQuotes bounds how many quotes one negotiation offers before
// switching to exponential deferral. Defaults to 128.
func WithMaxQuotes(n int) Option {
	return optionFunc(func(neg *Negotiator) { neg.maxQuotes = n })
}

// WithLocator provides the failure-locating predictor used to advance past
// predicted failures when proposing later deadlines.
func WithLocator(l interface {
	FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool)
}) Option {
	return optionFunc(func(neg *Negotiator) { neg.locator = l })
}

// WithFailureSlack sets the slack added when stepping past a located
// failure: the next proposed start is failure time + slack + 1, so the
// restarting node is back up before the job begins. Wire it to the node
// downtime (the scheduler's quote slack should match). Defaults to 0.
func WithFailureSlack(d units.Duration) Option {
	return optionFunc(func(neg *Negotiator) { neg.slack = d })
}

// Negotiator runs the system side of the dialog against a scheduler.
type Negotiator struct {
	sched     *sched.Scheduler
	locator   failureLocator
	slack     units.Duration
	maxQuotes int
}

// New creates a Negotiator over the scheduler.
func New(s *sched.Scheduler, opts ...Option) *Negotiator {
	n := &Negotiator{sched: s, maxQuotes: 128}
	for _, o := range opts {
		o.apply(n)
	}
	return n
}

// walk enumerates quotes for a request, earliest first, until yield returns
// false. Quote k+1 is obtained from quote k by stepping the allowed start
// past the failure that made quote k risky (locator available) or by
// exponentially deferring the start (no locator / budget exhausted). The
// walk ends on its own once a risk-free quote is produced: no later quote
// can promise more.
func (n *Negotiator) walk(now units.Time, size int, duration units.Duration, yield func(Quote) bool) error {
	from := now
	offers := 0
	for offers < n.maxQuotes {
		c, ok := n.sched.EarliestCandidate(from, size, duration)
		if !ok {
			return fmt.Errorf("negotiate: no schedulable candidate for size %d duration %v", size, duration)
		}
		offers++
		if !yield(Quote{Candidate: c, Deadline: c.Start.Add(duration), Success: 1 - c.PFail}) {
			return nil
		}
		if c.PFail <= 0 {
			return nil // perfect promise; no later quote improves on it
		}
		if n.locator == nil {
			break
		}
		ev, found := n.locator.FirstDetectable(c.Nodes, c.Start.Add(-n.slack), c.Start.Add(duration))
		if !found {
			break // risk came from somewhere the locator cannot see
		}
		next := ev.Time.Add(n.slack + 1)
		if next <= from {
			next = from + 1 // defensive: always make progress
		}
		from = next
	}

	// Exponential deferral: push the earliest allowed start forward in
	// doubling jumps until a quote clears. Passes the end of any finite
	// failure trace, where pf is necessarily 0.
	jump := units.Duration(units.Day)
	for i := 0; i < 64; i++ {
		from = from.Add(jump)
		jump *= 2
		c, ok := n.sched.EarliestCandidate(from, size, duration)
		if !ok {
			return fmt.Errorf("negotiate: no schedulable candidate for size %d duration %v", size, duration)
		}
		if !yield(Quote{Candidate: c, Deadline: c.Start.Add(duration), Success: 1 - c.PFail}) {
			return nil
		}
		if c.PFail <= 0 {
			return nil
		}
	}
	return fmt.Errorf("negotiate: quote walk did not converge for size %d duration %v", size, duration)
}

// Negotiate finds the earliest quote the user accepts for a job of the
// given size and reserved duration, starting no earlier than now. It
// returns the accepted quote and the number of quotes offered (1 means the
// first offer was accepted).
//
// Termination: the trace predictor never reports pf > a, so when U <= 1-a
// the very first quote is accepted; otherwise the walk steps past predicted
// failures and, in the limit, past the end of the failure trace ("a
// deadline may be pushed arbitrarily far into the future, but no further
// than necessary to satisfy Equation 3").
func (n *Negotiator) Negotiate(now units.Time, size int, duration units.Duration, user User) (Quote, int, error) {
	var (
		accepted Quote
		found    bool
		offers   int
	)
	err := n.walk(now, size, duration, func(q Quote) bool {
		offers++
		if user.Accepts(q.Success) {
			accepted, found = q, true
			return false
		}
		return true
	})
	if err != nil {
		return Quote{}, offers, err
	}
	if !found {
		// The walk ended on a risk-free quote, which every valid U accepts;
		// reaching here means the user parameter was out of range.
		return Quote{}, offers, fmt.Errorf("negotiate: user U=%v rejected a risk-free quote", user.U)
	}
	return accepted, offers, nil
}

// Quotes returns up to max successive quotes for a request without
// reserving anything: the raw material of the user dialog, used by the
// negotiation example and cmd/qossim's quote mode.
func (n *Negotiator) Quotes(now units.Time, size int, duration units.Duration, max int) []Quote {
	var out []Quote
	// The dialog is informational; ignore walk errors and return what we
	// have.
	_ = n.walk(now, size, duration, func(q Quote) bool {
		out = append(out, q)
		return len(out) < max
	})
	return out
}
