package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("sources with equal seeds diverged at sample %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("sources with different seeds produced %d/100 equal samples", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSource(7)
	c1 := parent.Split("alpha")
	parent2 := NewSource(7)
	c2 := parent2.Split("alpha")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split is not deterministic for equal parent state and label")
		}
	}
	// Different labels from the same parent state give different streams.
	p3 := NewSource(7)
	p4 := NewSource(7)
	a := p3.Split("alpha")
	b := p4.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different labels produced %d/100 equal samples", same)
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Errorf("Exp(100) sample mean = %v, want ~100", mean)
	}
}

func TestLogNormalMean(t *testing.T) {
	s := NewSource(2)
	mu, sigma := 2.0, 0.5
	want := math.Exp(mu + sigma*sigma/2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.LogNormal(mu, sigma)
	}
	mean := sum / n
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("LogNormal mean = %v, want ~%v", mean, want)
	}
}

func TestWeibullPositiveAndMean(t *testing.T) {
	s := NewSource(3)
	// shape=1 reduces to exponential with the given scale.
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Weibull(1, 50)
		if v < 0 {
			t.Fatalf("Weibull produced negative sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Errorf("Weibull(1,50) mean = %v, want ~50", mean)
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	s := NewSource(4)
	for i := 0; i < 10000; i++ {
		v := s.BoundedPareto(1.2, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestBoundedParetoPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid bounds")
		}
	}()
	NewSource(1).BoundedPareto(1, 5, 5)
}

func TestPoissonMean(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{name: "small mean", mean: 3},
		{name: "large mean uses normal approx", mean: 200},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSource(5)
			const n = 50000
			var sum float64
			for i := 0; i < n; i++ {
				sum += float64(s.Poisson(tt.mean))
			}
			mean := sum / n
			if math.Abs(mean-tt.mean)/tt.mean > 0.05 {
				t.Errorf("Poisson(%v) mean = %v", tt.mean, mean)
			}
		})
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := NewSource(1).Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSource(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	s := NewSource(9)
	f := func(_ int) bool {
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntSamplers(t *testing.T) {
	s := NewSource(21)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := s.Int63n(1000000); v < 0 || v >= 1000000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := NewSource(22)
	perm := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation: %v", perm)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}
