// Package stats provides the deterministic random-number and distribution
// substrate used by the synthetic trace generators, plus small descriptive
// statistics helpers used to calibrate and report on those traces.
//
// Every source of randomness in the repository flows through a seeded
// *stats.Source so that all traces, simulations, and experiments are
// bit-for-bit reproducible.
package stats

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with the
// samplers the trace generators need. A Source must be created with
// NewSource; the zero value is not usable.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded with the given seed. Equal seeds yield
// identical sample streams.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child source from s, keyed by label. The
// child stream is a deterministic function of (parent seed position, label),
// so generators can give each sub-process its own stream without the streams
// interfering when one consumes more samples than another.
func (s *Source) Split(label string) *Source {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewSource(h ^ s.rng.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63n returns a uniform sample in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 { return s.rng.Int63n(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Exp returns an exponential sample with the given mean. Mean must be
// positive.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Norm returns a normal sample with the given mean and standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return s.rng.NormFloat64()*stddev + mean
}

// LogNormal returns a sample whose logarithm is normal with parameters mu
// and sigma. The mean of the distribution is exp(mu + sigma^2/2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.rng.NormFloat64()*sigma + mu)
}

// Weibull returns a Weibull sample with the given shape and scale. Shape < 1
// gives a heavy tail and a decreasing hazard, the empirically observed
// pattern for cluster failure inter-arrival times.
func (s *Source) Weibull(shape, scale float64) float64 {
	u := s.rng.Float64()
	//qoslint:allow floateq Float64 can return exactly 0; rejection guard before log(0)
	for u == 0 {
		u = s.rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// BoundedPareto returns a Pareto sample with tail index alpha truncated to
// [lo, hi]. It panics if the bounds are not 0 < lo < hi.
func (s *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if !(lo > 0 && hi > lo) {
		panic("stats: BoundedPareto requires 0 < lo < hi")
	}
	u := s.rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// Inverse CDF of the bounded Pareto distribution.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Poisson returns a Poisson sample with the given mean, using inversion for
// small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(s.Norm(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }
