package stats

import "sort"

// WeightedChoice samples indices in proportion to fixed non-negative
// weights. It is used for categorical draws such as "job size class".
type WeightedChoice struct {
	cumulative []float64
	total      float64
}

// NewWeightedChoice builds a sampler over len(weights) categories. At least
// one weight must be positive; negative weights are treated as zero.
func NewWeightedChoice(weights []float64) *WeightedChoice {
	c := &WeightedChoice{cumulative: make([]float64, len(weights))}
	for i, w := range weights {
		if w > 0 {
			c.total += w
		}
		c.cumulative[i] = c.total
	}
	if c.total <= 0 {
		panic("stats: WeightedChoice requires a positive total weight")
	}
	return c
}

// Sample returns a category index drawn in proportion to the weights.
func (c *WeightedChoice) Sample(s *Source) int {
	u := s.Float64() * c.total
	i := sort.Search(len(c.cumulative), func(i int) bool { return c.cumulative[i] > u })
	if i == len(c.cumulative) { // guard against float rounding at the top end
		i = len(c.cumulative) - 1
	}
	return i
}

// N returns the number of categories.
func (c *WeightedChoice) N() int { return len(c.cumulative) }
