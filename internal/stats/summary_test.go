package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want Summary
	}{
		{
			name: "empty",
			give: nil,
			want: Summary{},
		},
		{
			name: "single",
			give: []float64{5},
			want: Summary{N: 1, Mean: 5, Min: 5, Max: 5, Sum: 5},
		},
		{
			name: "simple",
			give: []float64{1, 2, 3, 4},
			want: Summary{N: 4, Mean: 2.5, Min: 1, Max: 4, Sum: 10, Stddev: math.Sqrt(5.0 / 3.0)},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.give)
			if got.N != tt.want.N || got.Mean != tt.want.Mean ||
				got.Min != tt.want.Min || got.Max != tt.want.Max || got.Sum != tt.want.Sum {
				t.Errorf("Summarize = %+v, want %+v", got, tt.want)
			}
			if math.Abs(got.Stddev-tt.want.Stddev) > 1e-12 {
				t.Errorf("Stddev = %v, want %v", got.Stddev, tt.want.Stddev)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 10},
		{p: 50, want: 30},
		{p: 100, want: 50},
		{p: 25, want: 20},
		{p: 125, want: 50},
		{p: -5, want: 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty sample should be NaN")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 3}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if got := h.Fraction(0); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestEmptyHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	c := NewWeightedChoice([]float64{1, 0, 3})
	s := NewSource(11)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(s)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Errorf("category 0 fraction = %v, want ~0.25", frac0)
	}
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWeightedChoice([]float64{0, -1})
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep magnitudes small enough that the sum cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	s := NewSource(13)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = s.Float64() * 1000
	}
	f := func(a, b uint8) bool {
		p, q := float64(a%101), float64(b%101)
		if p > q {
			p, q = q, p
		}
		return Percentile(xs, p) <= Percentile(xs, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
