package stats

import (
	"math"
	"sort"
)

// BinIndex maps a probability p onto one of bins uniform buckets:
// [i/bins, (i+1)/bins), with the final bin closed so p = 1.0 lands in it
// and out-of-range inputs clamp to the edge bins. It is the single
// bucketing rule behind every reliability diagram in the repository
// (metrics.Calibration offline, the trace package's promise ledger live).
func BinIndex(p float64, bins int) int {
	i := int(p * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes descriptive statistics over xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts samples into uniform-width bins over [lo, hi]. Samples
// outside the range are clamped into the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins uniform bins over [lo, hi].
// It panics unless lo < hi and bins > 0.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(lo < hi) || bins <= 0 {
		panic("stats: NewHistogram requires lo < hi and bins > 0")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
