package predict

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/trace"
	"probqos/internal/units"
)

func benchTrace(b *testing.B) *failure.Trace {
	b.Helper()
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 1}, failure.FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTracePFail measures the hot predictor query the scheduler makes
// for every candidate node set.
func BenchmarkTracePFail(b *testing.B) {
	tr := benchTrace(b)
	p, err := NewTrace(tr, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = i * 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := units.Time(i%1000) * 3600
		p.PFail(nodes, from, from.Add(6*units.Hour))
	}
}

// BenchmarkTracePFailSingleNode measures the per-node scoring query used
// by fault-aware node selection.
func BenchmarkTracePFailSingleNode(b *testing.B) {
	tr := benchTrace(b)
	p, err := NewTrace(tr, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := units.Time(i%1000) * 3600
		p.PFail([]int{i % 128}, from, from.Add(6*units.Hour))
	}
}

// BenchmarkTracePFailSingleNodeTracingDisabled is the single-node quote
// query with the tracing layer compiled into the binary but disabled at
// runtime: the nil-tracer scope/span calls around the hot loop must cost
// nothing — bench-smoke asserts this stays at 0 allocs/op alongside the
// plain benchmark above.
func BenchmarkTracePFailSingleNodeTracingDisabled(b *testing.B) {
	tr := benchTrace(b)
	p, err := NewTrace(tr, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	var tracer *trace.Tracer // nil: tracing disabled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := tracer.StartScope("bench")
		sp := sc.Start("quote")
		from := units.Time(i%1000) * 3600
		p.PFail([]int{i % 128}, from, from.Add(6*units.Hour))
		sp.End()
		sc.Flush()
	}
}

// BenchmarkBaseRatePFail measures the MTBF-hazard floor computation.
func BenchmarkBaseRatePFail(b *testing.B) {
	p, err := NewBaseRate(45 * units.Day)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PFail(nodes, 0, units.Time(2*units.Hour))
	}
}
