package predict

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// testTrace builds the shared trace the allocation tests query.
func testTrace(t *testing.T) *failure.Trace {
	t.Helper()
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 1}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSingleNodePFailAllocationFree pins the hot-loop contract: the
// single-node risk query — both through PFailNode and through PFail with a
// caller-owned one-element slice — must not allocate. The scheduler issues
// it once per free node per candidate start, so one allocation here is
// millions per sweep.
func TestSingleNodePFailAllocationFree(t *testing.T) {
	tr := testTrace(t)
	base, err := NewBaseRate(45 * units.Day)
	if err != nil {
		t.Fatal(err)
	}
	tracePred, err := NewTrace(tr, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	decaying, err := NewDecaying(tr, 0.7, 6*units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	max, err := NewMax(tracePred, base)
	if err != nil {
		t.Fatal(err)
	}

	preds := []struct {
		name string
		p    NodePredictor
	}{
		{"Trace", tracePred},
		{"Decaying", decaying},
		{"BaseRate", base},
		{"Max", max},
		{"Null", Null{}},
	}
	for _, tc := range preds {
		i := 0
		avg := testing.AllocsPerRun(500, func() {
			from := units.Time(i%1000) * 3600
			tc.p.PFailNode(i%128, from, from.Add(6*units.Hour))
			i++
		})
		if avg != 0 {
			t.Errorf("%s.PFailNode allocates %.1f/op, want 0", tc.name, avg)
		}
	}

	// The general interface with a reused single-element slice must take
	// the same allocation-free path.
	nodes := make([]int, 1)
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		nodes[0] = i % 128
		from := units.Time(i%1000) * 3600
		tracePred.PFail(nodes, from, from.Add(6*units.Hour))
		i++
	})
	if avg != 0 {
		t.Errorf("Trace.PFail(single node) allocates %.1f/op, want 0", avg)
	}
}

// TestPFailNodeMatchesScanPath cross-checks the index-backed fast path
// against the generic multi-node scan on every (node, window) pair of a
// real trace: the fast path is an optimization, never a different answer.
func TestPFailNodeMatchesScanPath(t *testing.T) {
	tr := testTrace(t)
	for _, a := range []float64{0, 0.3, 0.7, 1} {
		p, err := NewTrace(tr, a)
		if err != nil {
			t.Fatal(err)
		}
		for node := 0; node < tr.Nodes(); node++ {
			for h := 0; h < 200; h++ {
				from := units.Time(h) * 7 * 3600
				to := from.Add(units.Duration(1+h%96) * units.Hour)
				// The generic path: scan and stop at the first
				// detectable failure, exactly as PFail used to.
				var want float64
				tr.Scan([]int{node, node}, from, to, func(e failure.Event) bool {
					if e.Detectability <= a {
						want = e.Detectability
						return false
					}
					return true
				})
				if got := p.PFailNode(node, from, to); got != want {
					t.Fatalf("a=%v node=%d [%v,%v): fast path %v, scan %v",
						a, node, from, to, got, want)
				}
			}
		}
	}
}
