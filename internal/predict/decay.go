package predict

import (
	"fmt"
	"math"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// Decaying wraps the trace predictor with a forecast horizon: §3.3 notes
// that "in practice, predictions are less accurate as they stretch further
// into the future", which the idealized simulator ignores. Decaying models
// it by shrinking the effective accuracy exponentially with how far past
// the window start a failure lies:
//
//	a_eff(t) = a0 * 2^(-(t - from)/halfLife)
//
// A failure is detected iff its detectability p_x <= a_eff(t). At
// halfLife -> infinity this reduces to the paper's static predictor. The
// window start stands in for "now": reservations are priced when they are
// quoted, so risk near the start of the window is near-term risk.
type Decaying struct {
	trace    *failure.Trace
	accuracy float64
	halfLife units.Duration
}

// NewDecaying builds a horizon-limited trace predictor. halfLife must be
// positive; accuracy a0 follows the usual [0, 1] rule.
func NewDecaying(tr *failure.Trace, a0 float64, halfLife units.Duration) (*Decaying, error) {
	if tr == nil {
		return nil, fmt.Errorf("predict: nil failure trace")
	}
	if a0 < 0 || a0 > 1 || math.IsNaN(a0) {
		return nil, fmt.Errorf("predict: accuracy %v outside [0,1]", a0)
	}
	if halfLife <= 0 {
		return nil, fmt.Errorf("predict: half-life must be positive, got %v", halfLife)
	}
	return &Decaying{trace: tr, accuracy: a0, halfLife: halfLife}, nil
}

// effective returns the accuracy applied to a failure at instant t for a
// window starting at from.
func (p *Decaying) effective(from units.Time, t units.Time) float64 {
	if t <= from {
		return p.accuracy
	}
	return p.accuracy * math.Exp2(-t.Sub(from).Seconds()/p.halfLife.Seconds())
}

// PFail implements Predictor: the first failure in the window detectable
// at its horizon-degraded accuracy wins.
func (p *Decaying) PFail(nodes []int, from, to units.Time) float64 {
	if len(nodes) == 1 {
		return p.PFailNode(nodes[0], from, to)
	}
	var px float64
	p.trace.Scan(nodes, from, to, func(e failure.Event) bool {
		if e.Detectability <= p.effective(from, e.Time) {
			px = e.Detectability
			return false
		}
		return true
	})
	return px
}

// PFailNode implements NodePredictor. The detection threshold decays with
// each event's distance from the window start, so there is no fixed cutoff
// to binary-search; the fast path is the allocation-free per-node walk.
func (p *Decaying) PFailNode(node int, from, to units.Time) float64 {
	var px float64
	p.trace.ScanNode(node, from, to, func(e failure.Event) bool {
		if e.Detectability <= p.effective(from, e.Time) {
			px = e.Detectability
			return false
		}
		return true
	})
	return px
}

// AppendPFailNodes implements BatchNodePredictor. The decayed threshold
// rules out a segment-tree descent (there is no fixed detectability
// cutoff), but the batch still answers every node in one call through the
// allocation-free per-node walks.
func (p *Decaying) AppendPFailNodes(dst []float64, nodes []int, from, to units.Time) []float64 {
	for _, n := range nodes {
		dst = append(dst, p.PFailNode(n, from, to))
	}
	return dst
}

// FirstDetectable mirrors Trace.FirstDetectable under the decayed rule, so
// the negotiator can still step past located failures.
func (p *Decaying) FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool) {
	var (
		hit   failure.Event
		found bool
	)
	p.trace.Scan(nodes, from, to, func(e failure.Event) bool {
		if e.Detectability <= p.effective(from, e.Time) {
			hit, found = e, true
			return false
		}
		return true
	})
	return hit, found
}
