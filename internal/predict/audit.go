package predict

import (
	"probqos/internal/failure"
	"probqos/internal/units"
)

// Audit quantifies a predictor's behaviour against the ground-truth trace:
// the per-failure detection rate and the windowed false-positive rate. For
// the trace predictor the paper's claims hold by construction (detection
// rate ≈ a, false positives = 0); Audit verifies them and characterizes any
// other Predictor the same way. cmd/predcheck prints this report.
type Audit struct {
	// Failures is the number of failures in the trace.
	Failures int
	// Detected is how many failures the predictor forecasts when asked
	// about exactly their node and an enclosing window.
	Detected int
	// Windows is the number of (node, window) probes evaluated.
	Windows int
	// FalsePositives counts probes with PFail > 0 but no failure in the
	// window.
	FalsePositives int
	// MeanConfidence is the average PFail over detected failures.
	MeanConfidence float64
}

// DetectionRate returns Detected/Failures (0 for an empty trace).
func (a Audit) DetectionRate() float64 {
	if a.Failures == 0 {
		return 0
	}
	return float64(a.Detected) / float64(a.Failures)
}

// FalsePositiveRate returns FalsePositives/Windows (0 for no probes).
func (a Audit) FalsePositiveRate() float64 {
	if a.Windows == 0 {
		return 0
	}
	return float64(a.FalsePositives) / float64(a.Windows)
}

// Run evaluates the predictor against the trace. Each failure is probed
// with a single-node window of the given width centered on the failure;
// false positives are probed with per-node windows tiling the trace span.
func Run(p Predictor, tr *failure.Trace, window units.Duration) Audit {
	var audit Audit
	if window <= 0 {
		window = units.Hour
	}

	events := tr.Events()
	audit.Failures = len(events)
	var confSum float64
	for _, e := range events {
		from := e.Time.Add(-window / 2)
		pf := PFailNode(p, e.Node, from, from.Add(window))
		if pf > 0 {
			audit.Detected++
			confSum += pf
		}
	}
	if audit.Detected > 0 {
		audit.MeanConfidence = confSum / float64(audit.Detected)
	}

	if len(events) == 0 {
		return audit
	}
	start, end := events[0].Time, events[len(events)-1].Time
	for node := 0; node < tr.Nodes(); node++ {
		for from := start; from < end; from = from.Add(window) {
			to := from.Add(window)
			audit.Windows++
			pf := PFailNode(p, node, from, to)
			if pf > 0 && len(tr.Window([]int{node}, from, to)) == 0 {
				audit.FalsePositives++
			}
		}
	}
	return audit
}
