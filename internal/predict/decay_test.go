package predict

import (
	"math"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/units"
)

func TestNewDecayingValidation(t *testing.T) {
	tr := newTestTrace(t, nil)
	if _, err := NewDecaying(nil, 0.5, units.Hour); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := NewDecaying(tr, 1.5, units.Hour); err == nil {
		t.Error("bad accuracy should fail")
	}
	if _, err := NewDecaying(tr, 0.5, 0); err == nil {
		t.Error("zero half-life should fail")
	}
}

func TestDecayingEffectiveAccuracy(t *testing.T) {
	// Failure detectability 0.4; a0 = 0.8 with a 1-hour half-life:
	// detected within ~1 half-life (a_eff 0.8 -> 0.4), missed beyond.
	mkTrace := func(at units.Time) *failure.Trace {
		tr, err := failure.NewTrace(4, []failure.Event{{Time: at, Node: 0, Detectability: 0.4}})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tests := []struct {
		name string
		at   units.Time
		want float64
	}{
		{name: "at window start full accuracy", at: 0, want: 0.4},
		{name: "just inside one half-life", at: units.Time(units.Hour - 1), want: 0.4},
		{name: "beyond one half-life missed", at: units.Time(units.Hour + 60), want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := NewDecaying(mkTrace(tt.at), 0.8, units.Hour)
			if err != nil {
				t.Fatal(err)
			}
			if got := p.PFail([]int{0}, 0, units.Time(units.Day)); got != tt.want {
				t.Errorf("PFail = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDecayingNeverExceedsStaticPredictor(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Episodes: 300, Seed: 12}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := NewTrace(tr, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	decaying, err := NewDecaying(tr, 0.7, 6*units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	detectedStatic, detectedDecaying := 0, 0
	for w := 0; w < 400; w++ {
		from := units.Time(w) * units.Time(units.Day/2)
		to := from.Add(units.Day)
		if static.PFail(nodes, from, to) > 0 {
			detectedStatic++
		}
		if decaying.PFail(nodes, from, to) > 0 {
			detectedDecaying++
		}
	}
	if detectedDecaying >= detectedStatic {
		t.Errorf("horizon decay should lose detections: %d vs %d", detectedDecaying, detectedStatic)
	}
	if detectedDecaying == 0 {
		t.Error("near-term failures should still be detected")
	}
}

func TestDecayingFirstDetectable(t *testing.T) {
	tr, err := failure.NewTrace(4, []failure.Event{
		{Time: units.Time(10 * units.Hour), Node: 0, Detectability: 0.3}, // too far out
		{Time: units.Time(20 * units.Hour), Node: 0, Detectability: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewDecaying(tr, 0.6, units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// At 10 h with 1 h half-life, a_eff ~= 0.6/1024 < 0.3: missed. At 20 h,
	// a_eff ~= 5.7e-7 < 0.001: missed too.
	if _, ok := p.FirstDetectable([]int{0}, 0, units.Time(30*units.Hour)); ok {
		t.Error("distant failures should be invisible")
	}
	// A window starting near the failure sees it again.
	ev, ok := p.FirstDetectable([]int{0}, units.Time(10*units.Hour)-100, units.Time(30*units.Hour))
	if !ok || ev.Detectability != 0.3 {
		t.Errorf("near-term FirstDetectable = %+v ok=%v", ev, ok)
	}
}

func TestDecayingConsistencyWithInfiniteHorizonLimit(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Episodes: 100, Seed: 14}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := NewTrace(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	nearlyStatic, err := NewDecaying(tr, 0.5, 1000*units.Year)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 50; w++ {
		from := units.Time(w) * units.Time(units.Week)
		to := from.Add(units.Week)
		a := static.PFail([]int{w % 128}, from, to)
		b := nearlyStatic.PFail([]int{w % 128}, from, to)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("window %d: static %v vs huge-half-life %v", w, a, b)
		}
	}
}
