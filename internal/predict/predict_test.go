package predict

import (
	"math"
	"testing"
	"testing/quick"

	"probqos/internal/failure"
	"probqos/internal/units"
)

func newTestTrace(t *testing.T, events []failure.Event) *failure.Trace {
	t.Helper()
	tr, err := failure.NewTrace(16, events)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNullPredictor(t *testing.T) {
	var p Null
	if got := p.PFail([]int{1, 2}, 0, 1000); got != 0 {
		t.Errorf("Null.PFail = %v, want 0", got)
	}
}

func TestNewTraceValidation(t *testing.T) {
	tr := newTestTrace(t, nil)
	if _, err := NewTrace(nil, 0.5); err == nil {
		t.Error("expected error for nil trace")
	}
	for _, a := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewTrace(tr, a); err == nil {
			t.Errorf("expected error for accuracy %v", a)
		}
	}
	p, err := NewTrace(tr, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Accuracy() != 0.7 {
		t.Errorf("Accuracy = %v", p.Accuracy())
	}
}

func TestTracePredictorFirstDetectableRule(t *testing.T) {
	tr := newTestTrace(t, []failure.Event{
		{Time: 100, Node: 1, Detectability: 0.9}, // invisible at a=0.5
		{Time: 200, Node: 1, Detectability: 0.3}, // first visible
		{Time: 300, Node: 1, Detectability: 0.1}, // visible but later
	})
	p, err := NewTrace(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name     string
		nodes    []int
		from, to units.Time
		want     float64
	}{
		{name: "first detectable wins", nodes: []int{1}, from: 0, to: 1000, want: 0.3},
		{name: "window excludes it", nodes: []int{1}, from: 250, to: 1000, want: 0.1},
		{name: "only undetectable", nodes: []int{1}, from: 0, to: 150, want: 0},
		{name: "no failures on node", nodes: []int{2}, from: 0, to: 1000, want: 0},
		{name: "empty window", nodes: []int{1}, from: 500, to: 400, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.PFail(tt.nodes, tt.from, tt.to); got != tt.want {
				t.Errorf("PFail = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTracePredictorAccuracyBoundary(t *testing.T) {
	tr := newTestTrace(t, []failure.Event{{Time: 100, Node: 0, Detectability: 0.5}})
	// px <= a is inclusive.
	p, err := NewTrace(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PFail([]int{0}, 0, 200); got != 0.5 {
		t.Errorf("PFail at boundary = %v, want 0.5", got)
	}
	p0, err := NewTrace(tr, 0.49)
	if err != nil {
		t.Fatal(err)
	}
	if got := p0.PFail([]int{0}, 0, 200); got != 0 {
		t.Errorf("PFail below boundary = %v, want 0", got)
	}
}

func TestTracePredictorNeverExceedsAccuracyProperty(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Episodes: 400, Seed: 8}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, nodeRaw uint16, fromRaw uint32, widthRaw uint16) bool {
		a := float64(aRaw%101) / 100
		p, err := NewTrace(tr, a)
		if err != nil {
			return false
		}
		node := int(nodeRaw) % tr.Nodes()
		from := units.Time(fromRaw)
		to := from.Add(units.Duration(widthRaw) * 100)
		pf := p.PFail([]int{node}, from, to)
		return pf >= 0 && pf <= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFirstDetectable(t *testing.T) {
	tr := newTestTrace(t, []failure.Event{
		{Time: 100, Node: 1, Detectability: 0.9},
		{Time: 200, Node: 2, Detectability: 0.2},
	})
	p, err := NewTrace(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := p.FirstDetectable([]int{1, 2}, 0, 1000)
	if !ok || e.Time != 200 || e.Node != 2 {
		t.Errorf("FirstDetectable = %+v ok=%v", e, ok)
	}
	if _, ok := p.FirstDetectable([]int{1}, 0, 1000); ok {
		t.Error("node 1's failure should be invisible at a=0.5")
	}
}

func TestBaseRate(t *testing.T) {
	if _, err := NewBaseRate(0); err == nil {
		t.Error("expected error for zero MTBF")
	}
	p, err := NewBaseRate(1000)
	if err != nil {
		t.Fatal(err)
	}
	got := p.PFail([]int{0}, 0, 1000) // one node for one MTBF
	want := 1 - math.Exp(-1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PFail = %v, want %v", got, want)
	}
	if got := p.PFail([]int{0}, 1000, 1000); got != 0 {
		t.Errorf("empty window PFail = %v", got)
	}
	// More nodes means more risk.
	if p.PFail([]int{0, 1}, 0, 100) <= p.PFail([]int{0}, 0, 100) {
		t.Error("two nodes should be riskier than one")
	}
}

func TestBaseRateFromTrace(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Episodes: 300, Seed: 2}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewBaseRateFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if pf := p.PFail([]int{0}, 0, units.Time(units.Day)); pf <= 0 || pf >= 1 {
		t.Errorf("PFail = %v, want in (0,1)", pf)
	}
	empty := newTestTrace(t, nil)
	if _, err := NewBaseRateFromTrace(empty); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestMax(t *testing.T) {
	if _, err := NewMax(); err == nil {
		t.Error("expected error for no predictors")
	}
	br, err := NewBaseRate(10000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMax(Null{}, br)
	if err != nil {
		t.Fatal(err)
	}
	want := br.PFail([]int{0}, 0, 100)
	if got := m.PFail([]int{0}, 0, 100); got != want {
		t.Errorf("Max.PFail = %v, want %v", got, want)
	}
}

func TestAuditTracePredictor(t *testing.T) {
	tr, err := failure.GenerateTrace(failure.RawConfig{Episodes: 500, Seed: 6}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{0, 0.5, 1} {
		p, err := NewTrace(tr, a)
		if err != nil {
			t.Fatal(err)
		}
		audit := Run(p, tr, units.Day)
		if audit.FalsePositives != 0 {
			t.Errorf("a=%v: trace predictor produced %d false positives", a, audit.FalsePositives)
		}
		got := audit.DetectionRate()
		if math.Abs(got-a) > 0.08 {
			t.Errorf("a=%v: detection rate = %.3f, want ~a", a, got)
		}
	}
}

func TestAuditEmptyTrace(t *testing.T) {
	tr := newTestTrace(t, nil)
	audit := Run(Null{}, tr, units.Hour)
	if audit.Failures != 0 || audit.DetectionRate() != 0 || audit.FalsePositiveRate() != 0 {
		t.Errorf("empty audit = %+v", audit)
	}
}
