package predict

import (
	"testing"
	"testing/quick"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// TestBatchMatchesPerNodeAllImplementations is the differential gate for the
// batched scoring path: every BatchNodePredictor in the package must append,
// node for node, exactly what its own PFailNode returns — and PFailNode must
// in turn agree with the general PFail on a singleton set. The scheduler
// leans on the first identity to batch its quote loop; NodePredictor's
// contract is the second.
func TestBatchMatchesPerNodeAllImplementations(t *testing.T) {
	tr := newTestTrace(t, []failure.Event{
		{Time: 100, Node: 1, Detectability: 0.9},
		{Time: 150, Node: 1, Detectability: 0.3},
		{Time: 150, Node: 2, Detectability: 0.3}, // time tie across nodes
		{Time: 200, Node: 2, Detectability: 0.0},
		{Time: 250, Node: 4, Detectability: 0.6},
		{Time: 300, Node: 4, Detectability: 0.6}, // repeat detectability
	})
	tp, err := NewTrace(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBaseRate(30 * units.Day)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := NewMax(tp, br)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecaying(tr, 0.5, 24*units.Hour)
	if err != nil {
		t.Fatal(err)
	}
	preds := []struct {
		name string
		p    Predictor
	}{
		{"Null", Null{}},
		{"Trace", tp},
		{"BaseRate", br},
		{"Max", mx},
		{"Decaying", dec},
	}
	for _, tc := range preds {
		t.Run(tc.name, func(t *testing.T) {
			bp, ok := tc.p.(BatchNodePredictor)
			if !ok {
				t.Fatalf("%T does not implement BatchNodePredictor", tc.p)
			}
			np := tc.p.(NodePredictor)
			f := func(fromRaw, spanRaw uint16, pick [4]uint8) bool {
				from := units.Time(fromRaw)
				to := from + units.Time(spanRaw)
				nodes := make([]int, len(pick))
				for i, r := range pick {
					nodes[i] = int(r) % 16
				}
				got := bp.AppendPFailNodes(nil, nodes, from, to)
				if len(got) != len(nodes) {
					return false
				}
				for i, n := range nodes {
					single := np.PFailNode(n, from, to)
					if got[i] != single {
						t.Logf("node %d in %v [%v,%v): batch %v, PFailNode %v", n, nodes, from, to, got[i], single)
						return false
					}
					if general := tc.p.PFail([]int{n}, from, to); single != general {
						t.Logf("node %d [%v,%v): PFailNode %v, PFail %v", n, from, to, single, general)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBatchAppendsToDst pins the append contract shared by every
// implementation the scheduler might resolve: dst's existing contents are
// preserved and spare capacity is reused, so a scratch slice truly makes the
// quote loop allocation-free.
func TestBatchAppendsToDst(t *testing.T) {
	tr := newTestTrace(t, []failure.Event{{Time: 100, Node: 1, Detectability: 0.2}})
	tp, err := NewTrace(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 1, 8)
	buf[0] = -1
	got := tp.AppendPFailNodes(buf, []int{0, 1}, 0, 1000)
	if len(got) != 3 || got[0] != -1 || got[1] != 0 || got[2] != 0.2 {
		t.Fatalf("AppendPFailNodes = %v, want [-1 0 0.2]", got)
	}
	if &got[0] != &buf[0] {
		t.Error("AppendPFailNodes reallocated despite spare capacity")
	}
}
