// Package predict implements the event-prediction mechanism of §3.2/§4.3:
// given a set of nodes (a partition) and a future time window, a Predictor
// estimates the probability that some node in the set suffers a critical
// failure during the window.
package predict

import (
	"fmt"
	"math"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// Predictor forecasts partition failures. Implementations must be
// deterministic: repeated calls with equal arguments return equal values
// (the paper's simulations rely on this, §4.3).
type Predictor interface {
	// PFail returns the estimated probability that at least one of the
	// nodes fails in [from, to).
	PFail(nodes []int, from, to units.Time) float64
}

// NodePredictor is the optional single-node fast path. The scheduler scores
// every free node at every candidate start, so this query dominates the
// quote path; implementations answer it without building a node slice or
// running the multi-node merge, and must return exactly what
// PFail([]int{node}, from, to) would.
type NodePredictor interface {
	// PFailNode returns the estimated probability that the node fails in
	// [from, to).
	PFailNode(node int, from, to units.Time) float64
}

// PFailNode queries p for a single node through its fast path when it has
// one, falling back to the general interface otherwise. Callers on a hot
// loop should type-assert NodePredictor once instead.
func PFailNode(p Predictor, node int, from, to units.Time) float64 {
	if np, ok := p.(NodePredictor); ok {
		return np.PFailNode(node, from, to)
	}
	return p.PFail([]int{node}, from, to)
}

// BatchNodePredictor is the optional batched scoring path: one call answers
// the single-node query for every node in the slice, appending one
// probability per node to dst (in node-slice order) and returning the
// extended slice. The scheduler scores every free node at every candidate
// start; answering the whole set in one pass removes a per-node interface
// call from the hottest loop in the system. Implementations must append
// exactly what PFailNode would return for each node.
type BatchNodePredictor interface {
	// AppendPFailNodes appends PFailNode(node, from, to) for each node to
	// dst and returns the extended slice.
	AppendPFailNodes(dst []float64, nodes []int, from, to units.Time) []float64
}

// Null is the no-forecasting predictor: it always reports zero risk. It is
// the "system that does not use event prediction" baseline.
type Null struct{}

// PFail always returns 0.
func (Null) PFail([]int, units.Time, units.Time) float64 { return 0 }

// PFailNode always returns 0.
func (Null) PFailNode(int, units.Time, units.Time) float64 { return 0 }

// AppendPFailNodes appends one zero per node.
func (Null) AppendPFailNodes(dst []float64, nodes []int, _, _ units.Time) []float64 {
	for range nodes {
		dst = append(dst, 0)
	}
	return dst
}

// Trace is the deterministic trace-driven predictor of §4.3. Every failure
// in the trace carries a static detectability p_x in [0,1]. Queried over a
// window, the predictor walks the window's failures in time order and
// returns the p_x of the first one with p_x <= a (the accuracy); if none
// qualifies it returns 0.
//
// Consequences, as in the paper: the false-positive rate is 0, the
// false-negative rate is 1-a, and no prediction ever exceeds a — a
// low-accuracy predictor does not make predictions with high confidence.
type Trace struct {
	trace    *failure.Trace
	accuracy float64
}

// NewTrace builds a trace predictor with accuracy a in [0, 1].
func NewTrace(tr *failure.Trace, a float64) (*Trace, error) {
	if tr == nil {
		return nil, fmt.Errorf("predict: nil failure trace")
	}
	if a < 0 || a > 1 || math.IsNaN(a) {
		return nil, fmt.Errorf("predict: accuracy %v outside [0,1]", a)
	}
	return &Trace{trace: tr, accuracy: a}, nil
}

// Accuracy returns the predictor's accuracy a.
func (p *Trace) Accuracy() float64 { return p.accuracy }

// PFail implements Predictor. The multi-node query is answered by the
// trace's batched segment-tree pass: the earliest detectable event across
// the partition, without merge-walking the undetectable events a Scan
// visits (or its per-call cursor allocation).
func (p *Trace) PFail(nodes []int, from, to units.Time) float64 {
	if len(nodes) == 1 {
		return p.PFailNode(nodes[0], from, to)
	}
	if e, ok := p.trace.FirstDetectableOnNodes(nodes, from, to, p.accuracy); ok {
		return e.Detectability
	}
	return 0
}

// PFailNode implements NodePredictor: "first failure in the window with
// p_x <= a" is answered straight from the trace's per-node detectability
// index, skipping the undetectable events a scan would visit.
func (p *Trace) PFailNode(node int, from, to units.Time) float64 {
	if e, ok := p.trace.FirstDetectableOnNode(node, from, to, p.accuracy); ok {
		return e.Detectability
	}
	return 0
}

// AppendPFailNodes implements BatchNodePredictor: every node answered in
// one pass over the trace index.
func (p *Trace) AppendPFailNodes(dst []float64, nodes []int, from, to units.Time) []float64 {
	return p.trace.AppendPFailBatch(dst, nodes, from, to, p.accuracy)
}

// FirstDetectable returns the first failure in the window the predictor can
// see, if any. The negotiation layer uses it to propose deadlines past the
// predicted failure.
func (p *Trace) FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool) {
	return p.trace.FirstDetectableOnNodes(nodes, from, to, p.accuracy)
}

// BaseRate predicts from the exponential (memoryless) hazard implied by a
// per-node MTBF, with no knowledge of individual failures:
// PFail = 1 - exp(-n * w / MTBF). It is the purely statistical forecaster
// the paper contrasts trace-driven prediction with.
type BaseRate struct {
	nodeMTBF units.Duration
}

// NewBaseRate builds a base-rate predictor from a per-node MTBF.
func NewBaseRate(nodeMTBF units.Duration) (*BaseRate, error) {
	if nodeMTBF <= 0 {
		return nil, fmt.Errorf("predict: node MTBF must be positive, got %v", nodeMTBF)
	}
	return &BaseRate{nodeMTBF: nodeMTBF}, nil
}

// NewBaseRateFromTrace derives the per-node MTBF from a trace's statistics.
func NewBaseRateFromTrace(tr *failure.Trace) (*BaseRate, error) {
	s := tr.Stats()
	if s.NodeMTBF <= 0 {
		return nil, fmt.Errorf("predict: trace too short to estimate a node MTBF")
	}
	return NewBaseRate(s.NodeMTBF)
}

// PFail implements Predictor.
func (p *BaseRate) PFail(nodes []int, from, to units.Time) float64 {
	if to <= from {
		return 0
	}
	w := to.Sub(from).Seconds()
	return 1 - math.Exp(-float64(len(nodes))*w/p.nodeMTBF.Seconds())
}

// PFailNode implements NodePredictor.
func (p *BaseRate) PFailNode(_ int, from, to units.Time) float64 {
	if to <= from {
		return 0
	}
	w := to.Sub(from).Seconds()
	return 1 - math.Exp(-w/p.nodeMTBF.Seconds())
}

// AppendPFailNodes implements BatchNodePredictor: the hazard is the same
// for every node, so the exponential is evaluated once per batch.
func (p *BaseRate) AppendPFailNodes(dst []float64, nodes []int, from, to units.Time) []float64 {
	v := p.PFailNode(0, from, to)
	for range nodes {
		dst = append(dst, v)
	}
	return dst
}

// Max combines predictors by taking the largest estimate. Blending the
// trace predictor with a base-rate floor gives the "cooperative" checkpoint
// policy a hazard estimate even when no specific failure is forecast.
type Max struct {
	preds []Predictor
	// nodePreds[i] is preds[i]'s fast path, or nil; resolved once here so
	// PFailNode does no per-call type assertions.
	nodePreds []NodePredictor
}

// NewMax combines the given predictors. At least one is required.
func NewMax(preds ...Predictor) (*Max, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("predict: Max needs at least one predictor")
	}
	m := &Max{preds: preds, nodePreds: make([]NodePredictor, len(preds))}
	for i, sub := range preds {
		if np, ok := sub.(NodePredictor); ok {
			m.nodePreds[i] = np
		}
	}
	return m, nil
}

// PFail implements Predictor.
func (p *Max) PFail(nodes []int, from, to units.Time) float64 {
	if len(nodes) == 1 {
		return p.PFailNode(nodes[0], from, to)
	}
	var best float64
	for _, sub := range p.preds {
		if v := sub.PFail(nodes, from, to); v > best {
			best = v
		}
	}
	return best
}

// PFailNode implements NodePredictor: the largest single-node estimate,
// using each sub-predictor's fast path where it exists.
func (p *Max) PFailNode(node int, from, to units.Time) float64 {
	var best float64
	for i, sub := range p.preds {
		var v float64
		if np := p.nodePreds[i]; np != nil {
			v = np.PFailNode(node, from, to)
		} else {
			v = sub.PFail([]int{node}, from, to)
		}
		if v > best {
			best = v
		}
	}
	return best
}

// AppendPFailNodes implements BatchNodePredictor: the per-node maximum over
// the sub-predictors, kept stateless so a shared Max stays safe under
// concurrent sweep workers.
func (p *Max) AppendPFailNodes(dst []float64, nodes []int, from, to units.Time) []float64 {
	for _, n := range nodes {
		dst = append(dst, p.PFailNode(n, from, to))
	}
	return dst
}
