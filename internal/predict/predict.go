// Package predict implements the event-prediction mechanism of §3.2/§4.3:
// given a set of nodes (a partition) and a future time window, a Predictor
// estimates the probability that some node in the set suffers a critical
// failure during the window.
package predict

import (
	"fmt"
	"math"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// Predictor forecasts partition failures. Implementations must be
// deterministic: repeated calls with equal arguments return equal values
// (the paper's simulations rely on this, §4.3).
type Predictor interface {
	// PFail returns the estimated probability that at least one of the
	// nodes fails in [from, to).
	PFail(nodes []int, from, to units.Time) float64
}

// Null is the no-forecasting predictor: it always reports zero risk. It is
// the "system that does not use event prediction" baseline.
type Null struct{}

// PFail always returns 0.
func (Null) PFail([]int, units.Time, units.Time) float64 { return 0 }

// Trace is the deterministic trace-driven predictor of §4.3. Every failure
// in the trace carries a static detectability p_x in [0,1]. Queried over a
// window, the predictor walks the window's failures in time order and
// returns the p_x of the first one with p_x <= a (the accuracy); if none
// qualifies it returns 0.
//
// Consequences, as in the paper: the false-positive rate is 0, the
// false-negative rate is 1-a, and no prediction ever exceeds a — a
// low-accuracy predictor does not make predictions with high confidence.
type Trace struct {
	trace    *failure.Trace
	accuracy float64
}

// NewTrace builds a trace predictor with accuracy a in [0, 1].
func NewTrace(tr *failure.Trace, a float64) (*Trace, error) {
	if tr == nil {
		return nil, fmt.Errorf("predict: nil failure trace")
	}
	if a < 0 || a > 1 || math.IsNaN(a) {
		return nil, fmt.Errorf("predict: accuracy %v outside [0,1]", a)
	}
	return &Trace{trace: tr, accuracy: a}, nil
}

// Accuracy returns the predictor's accuracy a.
func (p *Trace) Accuracy() float64 { return p.accuracy }

// PFail implements Predictor.
func (p *Trace) PFail(nodes []int, from, to units.Time) float64 {
	var px float64
	p.trace.Scan(nodes, from, to, func(e failure.Event) bool {
		if e.Detectability <= p.accuracy {
			px = e.Detectability
			return false
		}
		return true
	})
	return px
}

// FirstDetectable returns the first failure in the window the predictor can
// see, if any. The negotiation layer uses it to propose deadlines past the
// predicted failure.
func (p *Trace) FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool) {
	var (
		hit   failure.Event
		found bool
	)
	p.trace.Scan(nodes, from, to, func(e failure.Event) bool {
		if e.Detectability <= p.accuracy {
			hit, found = e, true
			return false
		}
		return true
	})
	return hit, found
}

// BaseRate predicts from the exponential (memoryless) hazard implied by a
// per-node MTBF, with no knowledge of individual failures:
// PFail = 1 - exp(-n * w / MTBF). It is the purely statistical forecaster
// the paper contrasts trace-driven prediction with.
type BaseRate struct {
	nodeMTBF units.Duration
}

// NewBaseRate builds a base-rate predictor from a per-node MTBF.
func NewBaseRate(nodeMTBF units.Duration) (*BaseRate, error) {
	if nodeMTBF <= 0 {
		return nil, fmt.Errorf("predict: node MTBF must be positive, got %v", nodeMTBF)
	}
	return &BaseRate{nodeMTBF: nodeMTBF}, nil
}

// NewBaseRateFromTrace derives the per-node MTBF from a trace's statistics.
func NewBaseRateFromTrace(tr *failure.Trace) (*BaseRate, error) {
	s := tr.Stats()
	if s.NodeMTBF <= 0 {
		return nil, fmt.Errorf("predict: trace too short to estimate a node MTBF")
	}
	return NewBaseRate(s.NodeMTBF)
}

// PFail implements Predictor.
func (p *BaseRate) PFail(nodes []int, from, to units.Time) float64 {
	if to <= from {
		return 0
	}
	w := to.Sub(from).Seconds()
	return 1 - math.Exp(-float64(len(nodes))*w/p.nodeMTBF.Seconds())
}

// Max combines predictors by taking the largest estimate. Blending the
// trace predictor with a base-rate floor gives the "cooperative" checkpoint
// policy a hazard estimate even when no specific failure is forecast.
type Max struct {
	preds []Predictor
}

// NewMax combines the given predictors. At least one is required.
func NewMax(preds ...Predictor) (*Max, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("predict: Max needs at least one predictor")
	}
	return &Max{preds: preds}, nil
}

// PFail implements Predictor.
func (p *Max) PFail(nodes []int, from, to units.Time) float64 {
	var best float64
	for _, sub := range p.preds {
		if v := sub.PFail(nodes, from, to); v > best {
			best = v
		}
	}
	return best
}
