package workload

import (
	"fmt"
	"math"
	"sort"

	"probqos/internal/stats"
	"probqos/internal/units"
)

// GenConfig parameterizes the synthetic log generators.
//
// The generators substitute for the archive logs the paper used (the module
// builds offline, so the real SWF files cannot be fetched; ParseSWF accepts
// them when available). They are calibrated so that the Table 1 aggregate
// characteristics and the offered-load regime of the paper's experiments are
// reproduced; see DESIGN.md §3.
type GenConfig struct {
	// Jobs is the number of jobs to generate. Defaults to 10000, the log
	// length used in the paper.
	Jobs int
	// Seed selects the deterministic random stream. The default 0 is a
	// valid seed.
	Seed int64
	// ClusterNodes caps job sizes. Defaults to 128.
	ClusterNodes int
	// Load is the target offered load (total work / capacity over the
	// arrival span). Defaults to the per-log calibrated value.
	Load float64
	// Diurnal, in [0, 1), superimposes a day/night cycle on the arrival
	// process: the instantaneous arrival rate is modulated by
	// 1 + Diurnal*sin(2*pi*t/day). Zero (the default) keeps the plain
	// bursty process; real archive logs show strong diurnal cycles.
	Diurnal float64
	// EstimateInflation, when positive, gives every job an overestimated
	// user runtime estimate: Estimate = Exec * (1 + Exp(EstimateInflation)),
	// capped at 8x. Zero (the default) keeps the paper's exact estimates.
	// Underestimation (which real sites handle by killing jobs at their
	// estimate) is deliberately not modelled.
	EstimateInflation float64
}

func (c GenConfig) withDefaults(defaultLoad float64) GenConfig {
	if c.Jobs == 0 {
		c.Jobs = 10000
	}
	if c.ClusterNodes == 0 {
		c.ClusterNodes = 128
	}
	if c.Load <= 0 {
		c.Load = defaultLoad
	}
	return c
}

// logShape captures everything that differs between the two synthetic logs.
type logShape struct {
	name string
	// size classes and their sampling weights
	sizes   []int
	weights []float64
	// runtime model: lognormal(mu0 + corr*ln(size), sigma), clamped to
	// [minExec, maxExec]. Larger jobs run longer (corr > 0), which is what
	// puts most of the log's *work* in its long large jobs.
	mu0, sigma, corr float64
	minExec, maxExec units.Duration
	// maxNodeHours caps exec*size, modeling the per-queue runtime limits
	// production schedulers impose: long runtimes are only reachable at
	// small node counts (the archive logs' 100h+ jobs are narrow ones).
	maxNodeHours float64
	// burstShape < 1 makes inter-arrival gaps Weibull-bursty.
	burstShape  float64
	defaultLoad float64
}

// nasaShape reproduces the NASA Ames iPSC/860 log regime: strictly
// power-of-two sizes, short average runtime (Table 1: avg 6.3 nodes, avg
// 381 s, max 12 h), relatively light load.
var nasaShape = logShape{
	name:         "NASA",
	sizes:        []int{1, 2, 4, 8, 16, 32, 64, 128},
	weights:      []float64{0.34, 0.24, 0.17, 0.115, 0.075, 0.040, 0.014, 0.006},
	mu0:          4.02,
	sigma:        1.55,
	corr:         0.50,
	minExec:      1,
	maxExec:      12 * units.Hour,
	maxNodeHours: 800,
	burstShape:   0.65,
	defaultLoad:  0.72,
}

// sdscShape reproduces the SDSC SP log regime: arbitrary ("odd") sizes that
// fragment the node pool, long heavy-tailed runtimes (Table 1: avg 9.7
// nodes, avg 7722 s, max 132 h), heavier load.
var sdscShape = logShape{
	name:         "SDSC",
	sizes:        nil, // filled by init-time builder below
	weights:      nil,
	mu0:          7.08,
	sigma:        1.75,
	corr:         0.28,
	minExec:      10,
	maxExec:      132 * units.Hour,
	maxNodeHours: 2300,
	burstShape:   0.70,
	defaultLoad:  0.72,
}

// buildSDSCSizes fills the SDSC size mixture: a geometric-ish spread over
// all sizes 1..128 with extra mass on the popular small sizes and on the
// power-of-two "natural" sizes, yielding a mean near 9.7 with plenty of odd
// sizes in between.
func buildSDSCSizes() ([]int, []float64) {
	sizes := make([]int, 0, 128)
	weights := make([]float64, 0, 128)
	for s := 1; s <= 128; s++ {
		w := math.Pow(float64(s), -1.48) // heavy preference for small jobs
		switch s {
		case 8, 16:
			w *= 4.0
		case 32:
			w *= 4.0
		case 64:
			w *= 5.0
		case 128:
			w *= 5.0
		}
		sizes = append(sizes, s)
		weights = append(weights, w)
	}
	return sizes, weights
}

// GenerateNASA returns a synthetic log in the NASA iPSC/860 regime.
func GenerateNASA(cfg GenConfig) *Log { return generate(nasaShape, cfg) }

// GenerateSDSC returns a synthetic log in the SDSC SP regime.
func GenerateSDSC(cfg GenConfig) *Log { return generate(sdscShape, cfg) }

// Generate returns the named synthetic log ("NASA" or "SDSC").
func Generate(name string, cfg GenConfig) (*Log, error) {
	switch name {
	case "NASA", "nasa":
		return GenerateNASA(cfg), nil
	case "SDSC", "sdsc":
		return GenerateSDSC(cfg), nil
	}
	return nil, fmt.Errorf("workload: unknown synthetic log %q (want NASA or SDSC)", name)
}

func generate(shape logShape, cfg GenConfig) *Log {
	cfg = cfg.withDefaults(shape.defaultLoad)
	if shape.sizes == nil {
		shape.sizes, shape.weights = buildSDSCSizes()
	}
	src := stats.NewSource(cfg.Seed ^ int64(len(shape.name))<<32)
	sizeSrc := src.Split(shape.name + "/size")
	runSrc := src.Split(shape.name + "/runtime")
	arrSrc := src.Split(shape.name + "/arrival")

	choice := stats.NewWeightedChoice(shape.weights)
	jobs := make([]Job, cfg.Jobs)
	var totalWork float64
	for i := range jobs {
		size := shape.sizes[choice.Sample(sizeSrc)]
		if size > cfg.ClusterNodes {
			size = cfg.ClusterNodes
		}
		mu := shape.mu0 + shape.corr*math.Log(float64(size))
		exec := units.Duration(math.Round(runSrc.LogNormal(mu, shape.sigma)))
		if exec < shape.minExec {
			exec = shape.minExec
		}
		if exec > shape.maxExec {
			exec = shape.maxExec
		}
		if cap := shape.maxNodeHours; cap > 0 {
			if limit := units.Duration(cap * 3600 / float64(size)); exec > limit {
				exec = limit
			}
		}
		jobs[i] = Job{ID: i + 1, Nodes: size, Exec: exec}
		if cfg.EstimateInflation > 0 {
			factor := 1 + runSrc.Exp(cfg.EstimateInflation)
			if factor > 8 {
				factor = 8
			}
			// An estimate that rounds to the exact runtime carries no
			// information; keep the zero ("exact") encoding for it.
			if est := units.Duration(math.Round(float64(exec) * factor)); est > exec {
				jobs[i].Estimate = est
			}
		}
		totalWork += float64(size) * float64(exec)
	}

	// Arrival process: bursty Weibull gaps, optionally modulated by a
	// diurnal cycle, rescaled so that the offered load over the arrival
	// span hits cfg.Load exactly.
	span := totalWork / (cfg.Load * float64(cfg.ClusterNodes))
	gaps := make([]float64, cfg.Jobs)
	var gapSum float64
	for i := range gaps {
		gaps[i] = arrSrc.Weibull(shape.burstShape, 1)
		gapSum += gaps[i]
	}
	if cfg.Diurnal > 0 {
		// Map the cumulative gap positions through the inverse of the
		// cumulative modulated rate Λ(t) = t + A·(day/2π)(1 − cos(2πt/day)),
		// so arrivals are dense where the instantaneous rate
		// 1 + A·sin(2πt/day) is high while the span stays exact.
		lambdaTotal := diurnalLambda(span, cfg.Diurnal)
		cum := 0.0
		for i := range jobs {
			cum += gaps[i]
			target := cum / gapSum * lambdaTotal
			jobs[i].Arrival = units.Time(math.Round(invertDiurnalLambda(target, span, cfg.Diurnal)))
		}
	} else {
		scale := span / gapSum
		t := 0.0
		for i := range jobs {
			t += gaps[i] * scale
			jobs[i].Arrival = units.Time(math.Round(t))
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	for i := range jobs {
		jobs[i].ID = i + 1 // renumber in arrival order
	}
	return &Log{Name: shape.name, Jobs: jobs}
}

// diurnalLambda is the cumulative arrival-rate integral of the modulated
// process: Λ(t) = t + A·(day/2π)(1 − cos(2πt/day)).
func diurnalLambda(t, amplitude float64) float64 {
	day := units.Day.Seconds()
	return t + amplitude*day/(2*math.Pi)*(1-math.Cos(2*math.Pi*t/day))
}

// invertDiurnalLambda solves Λ(t) = target for t by bisection; Λ is
// strictly increasing for amplitude < 1.
func invertDiurnalLambda(target, span, amplitude float64) float64 {
	lo, hi := 0.0, span
	for diurnalLambda(hi, amplitude) < target {
		hi += span/16 + 1
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if diurnalLambda(mid, amplitude) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
