// Package workload models parallel job logs: the job records the simulator
// consumes, a parser and writer for the Standard Workload Format (SWF)
// subset those records need, and synthetic generators calibrated to the two
// logs the paper evaluates on (NASA Ames iPSC/860 and SDSC SP, Table 1).
package workload

import (
	"fmt"

	"probqos/internal/units"
)

// Job is a single parallel job as submitted to the cluster.
//
// Exec is the checkpoint-free execution time e_j; the time including
// checkpoints (E_j) depends on the checkpointing policy and is computed by
// the simulator, not stored here. Per the paper, runtime estimates are taken
// to be exact.
type Job struct {
	// ID identifies the job within its log (1-based, unique).
	ID int `json:"id"`
	// Arrival is the submission instant v_j.
	Arrival units.Time `json:"arrival"`
	// Nodes is the job size n_j in nodes.
	Nodes int `json:"nodes"`
	// Exec is the execution time e_j excluding all checkpoint overhead.
	Exec units.Duration `json:"exec_seconds"`
	// Estimate is the user-supplied runtime estimate the system plans
	// with. Zero means exact (the paper's assumption: "our simulations
	// assume that the estimated execution times are accurate"). Real users
	// overestimate, which the generators can model; see
	// GenConfig.EstimateInflation.
	Estimate units.Duration `json:"estimate_seconds,omitempty"`
}

// PlanExec returns the runtime the system should plan with: the user
// estimate when one is given, otherwise the exact execution time.
func (j Job) PlanExec() units.Duration {
	if j.Estimate > 0 {
		return j.Estimate
	}
	return j.Exec
}

// Work returns the job's useful work e_j * n_j in node-seconds.
func (j Job) Work() units.Work { return units.WorkFor(j.Nodes, j.Exec) }

// Validate reports an error if the job's fields are not usable by the
// simulator (non-positive size or runtime, negative arrival).
func (j Job) Validate(clusterNodes int) error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("workload: job %d has non-positive size %d", j.ID, j.Nodes)
	case clusterNodes > 0 && j.Nodes > clusterNodes:
		return fmt.Errorf("workload: job %d needs %d nodes but the cluster has %d", j.ID, j.Nodes, clusterNodes)
	case j.Exec <= 0:
		return fmt.Errorf("workload: job %d has non-positive runtime %d", j.ID, j.Exec)
	case j.Estimate < 0:
		return fmt.Errorf("workload: job %d has negative estimate %d", j.ID, j.Estimate)
	case j.Estimate > 0 && j.Estimate < j.Exec:
		return fmt.Errorf("workload: job %d underestimates its runtime (%d < %d); the simulator does not model estimate kills", j.ID, j.Estimate, j.Exec)
	case j.Arrival < 0:
		return fmt.Errorf("workload: job %d has negative arrival %d", j.ID, j.Arrival)
	}
	return nil
}

// Log is an ordered job log. Jobs are sorted by arrival time.
type Log struct {
	// Name labels the log in reports (e.g. "NASA", "SDSC").
	Name string
	// Jobs holds the jobs sorted by non-decreasing arrival time.
	Jobs []Job
}

// Characteristics are the aggregate properties reported in Table 1 of the
// paper, plus the totals the metrics need.
type Characteristics struct {
	Jobs      int
	AvgNodes  float64        // average n_j
	AvgExec   float64        // average e_j, seconds
	MaxExec   units.Duration // maximum e_j
	Span      units.Duration // last arrival - first arrival
	TotalWork units.Work     // sum of e_j * n_j
}

// Characteristics computes the log's aggregate properties.
func (l *Log) Characteristics() Characteristics {
	var c Characteristics
	c.Jobs = len(l.Jobs)
	if c.Jobs == 0 {
		return c
	}
	var (
		sumNodes int64
		sumExec  int64
		first    = l.Jobs[0].Arrival
		last     = l.Jobs[0].Arrival
	)
	for _, j := range l.Jobs {
		sumNodes += int64(j.Nodes)
		sumExec += int64(j.Exec)
		if j.Exec > c.MaxExec {
			c.MaxExec = j.Exec
		}
		first = first.Min(j.Arrival)
		last = last.Max(j.Arrival)
		c.TotalWork += j.Work()
	}
	c.AvgNodes = float64(sumNodes) / float64(c.Jobs)
	c.AvgExec = float64(sumExec) / float64(c.Jobs)
	c.Span = last.Sub(first)
	return c
}

// Validate checks every job in the log. clusterNodes <= 0 skips the size
// check. It also verifies that jobs are sorted by arrival.
func (l *Log) Validate(clusterNodes int) error {
	for i, j := range l.Jobs {
		if err := j.Validate(clusterNodes); err != nil {
			return err
		}
		if i > 0 && j.Arrival < l.Jobs[i-1].Arrival {
			return fmt.Errorf("workload: job %d arrives before its predecessor", j.ID)
		}
	}
	return nil
}

// OfferedLoad returns the log's offered load on a cluster of n nodes: total
// work divided by the capacity available over the log's arrival span. A
// value near 1 means the cluster is saturated.
func (l *Log) OfferedLoad(n int) float64 {
	c := l.Characteristics()
	if c.Span <= 0 || n <= 0 {
		return 0
	}
	return c.TotalWork.NodeSeconds() / (c.Span.Seconds() * float64(n))
}
