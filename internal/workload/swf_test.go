package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"probqos/internal/units"
)

func TestParseSWF(t *testing.T) {
	const in = `; Comment line
; Another comment

1 0 5 100 4 -1 -1 4 100 -1 1 -1 -1 -1 -1 -1 -1 -1
2 50 0 200 8 -1 -1 8 200 -1 1 -1 -1 -1 -1 -1 -1 -1
3 60 0 -1 8 -1 -1 8 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
4 70 0 300 0 -1 -1 0 300 -1 0 -1 -1 -1 -1 -1 -1 -1
`
	log, err := ParseSWF("test", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Jobs) != 2 {
		t.Fatalf("parsed %d jobs, want 2 (incomplete records dropped)", len(log.Jobs))
	}
	want := []Job{
		{ID: 1, Arrival: 0, Nodes: 4, Exec: 100},
		{ID: 2, Arrival: 50, Nodes: 8, Exec: 200},
	}
	for i, j := range log.Jobs {
		if j != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, j, want[i])
		}
	}
}

func TestParseSWFSortsByArrival(t *testing.T) {
	const in = `2 100 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1
1 50 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	log, err := ParseSWF("test", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if log.Jobs[0].ID != 1 || log.Jobs[1].ID != 2 {
		t.Errorf("jobs not sorted by arrival: %+v", log.Jobs)
	}
}

func TestParseSWFErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "too few fields", give: "1 2 3\n"},
		{name: "bad job number", give: "x 0 0 10 1\n"},
		{name: "bad submit", give: "1 x 0 10 1\n"},
		{name: "bad runtime", give: "1 0 0 x 1\n"},
		{name: "bad procs", give: "1 0 0 10 x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseSWF("bad", strings.NewReader(tt.give)); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := GenerateNASA(GenConfig{Jobs: 300, Seed: 5})
	var buf bytes.Buffer
	if err := orig.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSWF("NASA", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Jobs) != len(orig.Jobs) {
		t.Fatalf("round trip lost jobs: %d -> %d", len(orig.Jobs), len(parsed.Jobs))
	}
	for i := range orig.Jobs {
		if parsed.Jobs[i] != orig.Jobs[i] {
			t.Fatalf("job %d: %+v != %+v", i, parsed.Jobs[i], orig.Jobs[i])
		}
	}
}

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Job
		nodes   int
		wantErr bool
	}{
		{name: "valid", give: Job{ID: 1, Nodes: 4, Exec: 10}, nodes: 128},
		{name: "zero size", give: Job{ID: 1, Nodes: 0, Exec: 10}, nodes: 128, wantErr: true},
		{name: "too big", give: Job{ID: 1, Nodes: 200, Exec: 10}, nodes: 128, wantErr: true},
		{name: "size check skipped", give: Job{ID: 1, Nodes: 200, Exec: 10}, nodes: 0},
		{name: "zero exec", give: Job{ID: 1, Nodes: 4, Exec: 0}, nodes: 128, wantErr: true},
		{name: "negative arrival", give: Job{ID: 1, Nodes: 4, Exec: 10, Arrival: -1}, nodes: 128, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate(tt.nodes)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestLogValidateOrdering(t *testing.T) {
	log := &Log{Jobs: []Job{
		{ID: 1, Arrival: 100, Nodes: 1, Exec: 1},
		{ID: 2, Arrival: 50, Nodes: 1, Exec: 1},
	}}
	if err := log.Validate(128); err == nil {
		t.Error("expected ordering error")
	}
}

func TestCharacteristicsEmpty(t *testing.T) {
	var l Log
	c := l.Characteristics()
	if c.Jobs != 0 || c.TotalWork != 0 {
		t.Errorf("empty log characteristics: %+v", c)
	}
	if l.OfferedLoad(128) != 0 {
		t.Error("empty log offered load should be 0")
	}
}

func TestJobWork(t *testing.T) {
	j := Job{Nodes: 4, Exec: 25}
	if got := j.Work(); got != 100 {
		t.Errorf("Work = %v, want 100", got)
	}
}

func TestOfferedLoad(t *testing.T) {
	l := &Log{Jobs: []Job{
		{ID: 1, Arrival: 0, Nodes: 10, Exec: 100},
		{ID: 2, Arrival: 1000, Nodes: 10, Exec: 100},
	}}
	// work = 2000 node-s over span 1000 s on 2 nodes -> load 1.0
	if got := l.OfferedLoad(2); got != 1.0 {
		t.Errorf("OfferedLoad = %v, want 1.0", got)
	}
	if got := l.OfferedLoad(0); got != 0 {
		t.Errorf("OfferedLoad(0) = %v, want 0", got)
	}
}

func TestCharacteristicsSpan(t *testing.T) {
	l := &Log{Jobs: []Job{
		{ID: 1, Arrival: 10, Nodes: 1, Exec: 1},
		{ID: 2, Arrival: 250, Nodes: 1, Exec: 1},
	}}
	if c := l.Characteristics(); c.Span != units.Duration(240) {
		t.Errorf("Span = %v, want 240", c.Span)
	}
}

func TestParseSWFNeverPanicsProperty(t *testing.T) {
	// The parser must reject or clean arbitrary junk without panicking and
	// never produce jobs that fail validation.
	f := func(raw []byte) bool {
		log, err := ParseSWF("fuzz", bytes.NewReader(raw))
		if err != nil {
			return true
		}
		for _, j := range log.Jobs {
			if j.Nodes <= 0 || j.Exec <= 0 || j.Arrival < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
