package workload

import (
	"math"
	"strings"
	"testing"
)

func TestBuildProfileSimple(t *testing.T) {
	l := &Log{Jobs: []Job{
		{ID: 1, Nodes: 2, Exec: 100},
		{ID: 2, Nodes: 3, Exec: 200},
		{ID: 3, Nodes: 4, Exec: 300},
		{ID: 4, Nodes: 4, Exec: 10000},
	}}
	p := BuildProfile(l)
	if p.SizeCounts[4] != 2 || p.SizeCounts[3] != 1 {
		t.Errorf("size counts = %v", p.SizeCounts)
	}
	if math.Abs(p.PowerOfTwoShare-0.75) > 1e-12 {
		t.Errorf("pow2 share = %v, want 0.75", p.PowerOfTwoShare)
	}
	if p.RuntimeP50 < 100 || p.RuntimeP50 > 300 {
		t.Errorf("p50 = %v", p.RuntimeP50)
	}
	// Top 1% rounds up to one job: the 40000-node-s giant out of 42000.
	if math.Abs(p.WorkTop1Share-40000.0/42000.0) > 1e-9 {
		t.Errorf("top-1%% share = %v", p.WorkTop1Share)
	}
}

func TestBuildProfileEmpty(t *testing.T) {
	p := BuildProfile(&Log{})
	if p.WorkTop1Share != 0 || len(p.SizeCounts) != 0 {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestProfileWriteTo(t *testing.T) {
	log := GenerateNASA(GenConfig{Jobs: 500, Seed: 8})
	p := BuildProfile(log)
	var sb strings.Builder
	if _, err := p.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"jobs:", "avg size:", "runtime:", "total work:"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "100% power-of-two") {
		t.Errorf("NASA profile should be 100%% power-of-two:\n%s", out)
	}
}

func TestProfileTailConcentration(t *testing.T) {
	// The SDSC regime must concentrate a large share of work in few jobs;
	// that concentration is what makes its failures expensive.
	p := BuildProfile(GenerateSDSC(GenConfig{Jobs: 5000, Seed: 9}))
	if p.WorkTop1Share < 0.10 {
		t.Errorf("SDSC top-1%% work share = %.3f, expected a heavy tail", p.WorkTop1Share)
	}
	nasa := BuildProfile(GenerateNASA(GenConfig{Jobs: 5000, Seed: 9}))
	if nasa.WorkTop1Share <= 0 {
		t.Errorf("NASA top share = %v", nasa.WorkTop1Share)
	}
}
