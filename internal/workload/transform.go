package workload

import (
	"fmt"
	"sort"

	"probqos/internal/units"
)

// The transforms below derive new logs from existing ones without mutating
// the input — the standard toolkit for what-if studies on real archive
// logs (densify the arrivals, take a busy window, combine machine logs).

// ScaleArrivals returns a copy of the log with every arrival time
// multiplied by factor, compressing (factor < 1) or stretching the offered
// load while keeping job shapes intact. Factor must be positive.
func (l *Log) ScaleArrivals(factor float64) (*Log, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: arrival scale factor must be positive, got %v", factor)
	}
	out := &Log{Name: l.Name, Jobs: make([]Job, len(l.Jobs))}
	copy(out.Jobs, l.Jobs)
	for i := range out.Jobs {
		out.Jobs[i].Arrival = units.Time(float64(out.Jobs[i].Arrival) * factor)
	}
	return out, nil
}

// Window returns the jobs arriving in [from, to), re-based so the window
// start is time zero and renumbered from 1.
func (l *Log) Window(from, to units.Time) *Log {
	out := &Log{Name: l.Name}
	for _, j := range l.Jobs {
		if j.Arrival >= from && j.Arrival < to {
			j.Arrival -= from
			out.Jobs = append(out.Jobs, j)
		}
	}
	for i := range out.Jobs {
		out.Jobs[i].ID = i + 1
	}
	return out
}

// FilterJobs returns the jobs satisfying keep, renumbered from 1.
func (l *Log) FilterJobs(keep func(Job) bool) *Log {
	out := &Log{Name: l.Name}
	for _, j := range l.Jobs {
		if keep(j) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	for i := range out.Jobs {
		out.Jobs[i].ID = i + 1
	}
	return out
}

// Merge interleaves several logs by arrival time into one log named name,
// renumbering jobs from 1.
func Merge(name string, logs ...*Log) *Log {
	out := &Log{Name: name}
	for _, l := range logs {
		out.Jobs = append(out.Jobs, l.Jobs...)
	}
	sort.SliceStable(out.Jobs, func(i, j int) bool { return out.Jobs[i].Arrival < out.Jobs[j].Arrival })
	for i := range out.Jobs {
		out.Jobs[i].ID = i + 1
	}
	return out
}
