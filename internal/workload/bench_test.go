package workload

import "testing"

// BenchmarkGenerateSDSC measures synthesis of the paper-scale SDSC log.
func BenchmarkGenerateSDSC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateSDSC(GenConfig{Jobs: 10000, Seed: int64(i)})
	}
}

// BenchmarkGenerateNASA measures synthesis of the paper-scale NASA log.
func BenchmarkGenerateNASA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenerateNASA(GenConfig{Jobs: 10000, Seed: int64(i)})
	}
}
