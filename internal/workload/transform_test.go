package workload

import (
	"math"
	"testing"
)

func sampleLog() *Log {
	return &Log{Name: "sample", Jobs: []Job{
		{ID: 1, Arrival: 0, Nodes: 2, Exec: 100},
		{ID: 2, Arrival: 1000, Nodes: 8, Exec: 200},
		{ID: 3, Arrival: 2000, Nodes: 4, Exec: 300},
	}}
}

func TestScaleArrivals(t *testing.T) {
	l := sampleLog()
	compressed, err := l.ScaleArrivals(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if compressed.Jobs[2].Arrival != 1000 {
		t.Errorf("scaled arrival = %v, want 1000", compressed.Jobs[2].Arrival)
	}
	// Offered load doubles when the span halves.
	if got, want := compressed.OfferedLoad(8), 2*l.OfferedLoad(8); math.Abs(got-want) > 1e-9 {
		t.Errorf("load = %v, want %v", got, want)
	}
	// Original untouched.
	if l.Jobs[2].Arrival != 2000 {
		t.Error("input mutated")
	}
	if _, err := l.ScaleArrivals(0); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestWindow(t *testing.T) {
	w := sampleLog().Window(500, 2000)
	if len(w.Jobs) != 1 {
		t.Fatalf("window kept %d jobs, want 1", len(w.Jobs))
	}
	if w.Jobs[0].Arrival != 500 || w.Jobs[0].ID != 1 {
		t.Errorf("window job = %+v, want rebased arrival 500, ID 1", w.Jobs[0])
	}
}

func TestFilterJobs(t *testing.T) {
	wide := sampleLog().FilterJobs(func(j Job) bool { return j.Nodes >= 4 })
	if len(wide.Jobs) != 2 {
		t.Fatalf("filter kept %d jobs", len(wide.Jobs))
	}
	if wide.Jobs[0].ID != 1 || wide.Jobs[1].ID != 2 {
		t.Errorf("renumbering wrong: %+v", wide.Jobs)
	}
}

func TestMerge(t *testing.T) {
	a := &Log{Jobs: []Job{{ID: 1, Arrival: 100, Nodes: 1, Exec: 10}}}
	b := &Log{Jobs: []Job{{ID: 1, Arrival: 50, Nodes: 2, Exec: 20}}}
	m := Merge("both", a, b)
	if m.Name != "both" || len(m.Jobs) != 2 {
		t.Fatalf("merge = %+v", m)
	}
	if m.Jobs[0].Arrival != 50 || m.Jobs[0].ID != 1 || m.Jobs[1].ID != 2 {
		t.Errorf("merge ordering wrong: %+v", m.Jobs)
	}
	if err := m.Validate(8); err != nil {
		t.Fatal(err)
	}
}
