package workload

import (
	"bytes"
	"testing"
)

func FuzzParseSWF(f *testing.F) {
	f.Add([]byte("; header\n1 0 -1 600 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("2 50 0 200 8 -1 -1 8 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte(""))
	f.Add([]byte("1 2 3\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		log, err := ParseSWF("fuzz", bytes.NewReader(raw))
		if err != nil {
			return
		}
		for _, j := range log.Jobs {
			if j.Nodes <= 0 || j.Exec <= 0 || j.Arrival < 0 {
				t.Fatalf("parser accepted invalid job %+v", j)
			}
		}
		// Accepted logs must round-trip through the writer without error.
		var buf bytes.Buffer
		if err := log.WriteSWF(&buf); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
	})
}
