package workload

import (
	"bytes"
	"math"
	"testing"
)

// Table 1 of the paper. The synthetic generators must land near these
// aggregates; tolerances are moderate because the point is reproducing the
// regime, not the exact archive bytes.
func TestGenerateNASAMatchesTable1(t *testing.T) {
	log := GenerateNASA(GenConfig{})
	c := log.Characteristics()
	t.Logf("NASA: jobs=%d avgNodes=%.2f avgExec=%.0f maxExec=%.1fh span=%.1fd load=%.3f",
		c.Jobs, c.AvgNodes, c.AvgExec, c.MaxExec.Hours(), c.Span.Hours()/24, log.OfferedLoad(128))
	if c.Jobs != 10000 {
		t.Fatalf("jobs = %d, want 10000", c.Jobs)
	}
	if math.Abs(c.AvgNodes-6.3) > 0.7 {
		t.Errorf("avg nodes = %.2f, want 6.3 +/- 0.7", c.AvgNodes)
	}
	if math.Abs(c.AvgExec-381)/381 > 0.15 {
		t.Errorf("avg exec = %.0f, want 381 +/- 15%%", c.AvgExec)
	}
	if c.MaxExec.Hours() > 12.01 {
		t.Errorf("max exec = %.1fh, want <= 12h", c.MaxExec.Hours())
	}
	if c.MaxExec.Hours() < 6 {
		t.Errorf("max exec = %.1fh; the 12h cap should nearly bind", c.MaxExec.Hours())
	}
	for _, j := range log.Jobs {
		if j.Nodes&(j.Nodes-1) != 0 {
			t.Fatalf("NASA job %d has non-power-of-two size %d", j.ID, j.Nodes)
		}
	}
	if err := log.Validate(128); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSDSCMatchesTable1(t *testing.T) {
	log := GenerateSDSC(GenConfig{})
	c := log.Characteristics()
	t.Logf("SDSC: jobs=%d avgNodes=%.2f avgExec=%.0f maxExec=%.1fh span=%.1fd load=%.3f",
		c.Jobs, c.AvgNodes, c.AvgExec, c.MaxExec.Hours(), c.Span.Hours()/24, log.OfferedLoad(128))
	if c.Jobs != 10000 {
		t.Fatalf("jobs = %d, want 10000", c.Jobs)
	}
	if math.Abs(c.AvgNodes-9.7) > 1.0 {
		t.Errorf("avg nodes = %.2f, want 9.7 +/- 1.0", c.AvgNodes)
	}
	if math.Abs(c.AvgExec-7722)/7722 > 0.15 {
		t.Errorf("avg exec = %.0f, want 7722 +/- 15%%", c.AvgExec)
	}
	if c.MaxExec.Hours() > 132.01 {
		t.Errorf("max exec = %.1fh, want <= 132h", c.MaxExec.Hours())
	}
	if c.MaxExec.Hours() < 80 {
		t.Errorf("max exec = %.1fh; the 132h cap should nearly bind", c.MaxExec.Hours())
	}
	odd := 0
	for _, j := range log.Jobs {
		if j.Nodes&(j.Nodes-1) != 0 {
			odd++
		}
	}
	if odd < 1000 {
		t.Errorf("SDSC log has only %d non-power-of-two jobs; fragmentation regime needs many", odd)
	}
	if err := log.Validate(128); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := GenerateSDSC(GenConfig{Jobs: 500, Seed: 3})
	b := GenerateSDSC(GenConfig{Jobs: 500, Seed: 3})
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	c := GenerateSDSC(GenConfig{Jobs: 500, Seed: 4})
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Exec == c.Jobs[i].Exec {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds produced %d/500 identical runtimes", same)
	}
}

func TestGenerateLoadTarget(t *testing.T) {
	for _, load := range []float64{0.4, 0.8} {
		log := GenerateNASA(GenConfig{Jobs: 2000, Load: load})
		got := log.OfferedLoad(128)
		if math.Abs(got-load)/load > 0.05 {
			t.Errorf("offered load = %.3f, want %.3f", got, load)
		}
	}
}

func TestGenerateByName(t *testing.T) {
	for _, name := range []string{"NASA", "nasa", "SDSC", "sdsc"} {
		log, err := Generate(name, GenConfig{Jobs: 10})
		if err != nil {
			t.Fatalf("Generate(%q): %v", name, err)
		}
		if len(log.Jobs) != 10 {
			t.Errorf("Generate(%q) produced %d jobs", name, len(log.Jobs))
		}
	}
	if _, err := Generate("LLNL", GenConfig{}); err == nil {
		t.Error("expected error for unknown log name")
	}
}

func TestDiurnalArrivals(t *testing.T) {
	flat := GenerateSDSC(GenConfig{Jobs: 5000, Seed: 6})
	cyclic := GenerateSDSC(GenConfig{Jobs: 5000, Seed: 6, Diurnal: 0.9})

	// The cycle must not break the load calibration.
	if got, want := cyclic.OfferedLoad(128), flat.OfferedLoad(128); math.Abs(got-want)/want > 0.02 {
		t.Errorf("diurnal load = %.3f, want ~%.3f", got, want)
	}

	// Hour-of-day concentration: compare the busiest vs quietest 6-hour
	// phase of the day; the cyclic log must be far more lopsided.
	phaseSpread := func(l *Log) float64 {
		counts := make([]int, 4)
		for _, j := range l.Jobs {
			secOfDay := int64(j.Arrival) % 86400
			counts[secOfDay/21600]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(min+1)
	}
	if phaseSpread(cyclic) < 1.5*phaseSpread(flat) {
		t.Errorf("diurnal concentration too weak: cyclic %.2f vs flat %.2f",
			phaseSpread(cyclic), phaseSpread(flat))
	}
}

func TestEstimateInflation(t *testing.T) {
	exact := GenerateSDSC(GenConfig{Jobs: 1000, Seed: 12})
	for _, j := range exact.Jobs {
		if j.Estimate != 0 {
			t.Fatalf("default generation must keep exact estimates: %+v", j)
		}
	}
	inflated := GenerateSDSC(GenConfig{Jobs: 1000, Seed: 12, EstimateInflation: 0.8})
	var sumFactor float64
	for _, j := range inflated.Jobs {
		if j.Estimate != 0 && j.Estimate <= j.Exec {
			t.Fatalf("non-exact estimate at or below runtime: %+v", j)
		}
		if j.Estimate > 8*j.Exec+1 {
			t.Fatalf("estimate beyond cap: %+v", j)
		}
		sumFactor += float64(j.PlanExec()) / float64(j.Exec)
	}
	mean := sumFactor / float64(len(inflated.Jobs))
	if mean < 1.5 || mean > 2.2 {
		t.Errorf("mean inflation factor = %.2f, want ~1.8", mean)
	}
	if err := inflated.Validate(128); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateSWFRoundTrip(t *testing.T) {
	orig := GenerateNASA(GenConfig{Jobs: 200, Seed: 13, EstimateInflation: 1.0})
	var buf bytes.Buffer
	if err := orig.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSWF("NASA", &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Jobs {
		if parsed.Jobs[i] != orig.Jobs[i] {
			t.Fatalf("job %d: %+v != %+v", i, parsed.Jobs[i], orig.Jobs[i])
		}
	}
}

func TestUnderestimateRejected(t *testing.T) {
	j := Job{ID: 1, Nodes: 2, Exec: 100, Estimate: 50}
	if err := j.Validate(128); err == nil {
		t.Error("underestimate must be rejected")
	}
	exactish := Job{ID: 1, Nodes: 2, Exec: 100, Estimate: 100}
	if err := exactish.Validate(128); err != nil {
		t.Errorf("estimate == runtime should be fine: %v", err)
	}
}
