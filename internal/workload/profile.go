package workload

import (
	"fmt"
	"io"
	"sort"

	"probqos/internal/stats"
)

// Profile is a distributional summary of a job log, beyond the Table 1
// aggregates: size mix, runtime percentiles, and the work concentration
// that determines how much is at stake when large jobs fail.
type Profile struct {
	Characteristics Characteristics
	// SizeCounts maps job size to its frequency.
	SizeCounts map[int]int
	// PowerOfTwoShare is the fraction of jobs with power-of-two sizes.
	PowerOfTwoShare float64
	// RuntimeP50, P90, P99 are runtime percentiles in seconds.
	RuntimeP50, RuntimeP90, RuntimeP99 float64
	// WorkTop1Share is the fraction of total work contributed by the 1% of
	// jobs with the most node-seconds: the tail concentration.
	WorkTop1Share float64
}

// BuildProfile computes the distributional summary of a log.
func BuildProfile(l *Log) Profile {
	p := Profile{
		Characteristics: l.Characteristics(),
		SizeCounts:      make(map[int]int),
	}
	if len(l.Jobs) == 0 {
		return p
	}
	runtimes := make([]float64, len(l.Jobs))
	works := make([]float64, len(l.Jobs))
	pow2 := 0
	var totalWork float64
	for i, j := range l.Jobs {
		p.SizeCounts[j.Nodes]++
		if j.Nodes&(j.Nodes-1) == 0 {
			pow2++
		}
		runtimes[i] = j.Exec.Seconds()
		works[i] = j.Work().NodeSeconds()
		totalWork += works[i]
	}
	p.PowerOfTwoShare = float64(pow2) / float64(len(l.Jobs))
	p.RuntimeP50 = stats.Percentile(runtimes, 50)
	p.RuntimeP90 = stats.Percentile(runtimes, 90)
	p.RuntimeP99 = stats.Percentile(runtimes, 99)

	sort.Sort(sort.Reverse(sort.Float64Slice(works)))
	top := len(works) / 100
	if top < 1 {
		top = 1
	}
	var topWork float64
	for _, w := range works[:top] {
		topWork += w
	}
	if totalWork > 0 {
		p.WorkTop1Share = topWork / totalWork
	}
	return p
}

// WriteTo renders the profile as a human-readable report.
func (p Profile) WriteTo(w io.Writer) (int64, error) {
	c := p.Characteristics
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := write("jobs:              %d\n", c.Jobs); err != nil {
		return total, err
	}
	if err := write("avg size:          %.2f nodes (%.0f%% power-of-two)\n",
		c.AvgNodes, 100*p.PowerOfTwoShare); err != nil {
		return total, err
	}
	if err := write("runtime:           avg %.0fs  p50 %.0fs  p90 %.0fs  p99 %.0fs  max %.1fh\n",
		c.AvgExec, p.RuntimeP50, p.RuntimeP90, p.RuntimeP99, c.MaxExec.Hours()); err != nil {
		return total, err
	}
	if err := write("arrival span:      %.1f days\n", c.Span.Hours()/24); err != nil {
		return total, err
	}
	if err := write("total work:        %.3e node-s (top 1%% of jobs hold %.0f%%)\n",
		c.TotalWork.NodeSeconds(), 100*p.WorkTop1Share); err != nil {
		return total, err
	}
	return total, nil
}
