package experiment

import (
	"testing"
)

// These tests pin the paper-shape properties EXPERIMENTS.md claims, at a
// medium scale (2500 jobs) that keeps the suite fast while leaving enough
// failures in the window for the trends to be real.

func shapeEnv() *Env {
	e := NewEnv()
	e.JobCount = 2500
	return e
}

func TestShapeQoSImprovesWithAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape test")
	}
	e := shapeEnv()
	for _, log := range []string{"SDSC", "NASA"} {
		base, err := e.Point(log, 0, 0.9, "")
		if err != nil {
			t.Fatal(err)
		}
		best, err := e.Point(log, 1, 0.9, "")
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: QoS %.4f -> %.4f, util %.4f -> %.4f, lost %.3g -> %.3g",
			log, base.QoS, best.QoS, base.Utilization, best.Utilization,
			base.LostWork.NodeSeconds(), best.LostWork.NodeSeconds())
		if best.QoS <= base.QoS {
			t.Errorf("%s: QoS did not improve with accuracy: %.4f -> %.4f", log, base.QoS, best.QoS)
		}
		if best.Utilization < base.Utilization-0.01 {
			t.Errorf("%s: guarantees cost utilization: %.4f -> %.4f",
				log, base.Utilization, best.Utilization)
		}
		if best.LostWork >= base.LostWork {
			t.Errorf("%s: lost work did not fall: %v -> %v", log, base.LostWork, best.LostWork)
		}
		// QoS stays in the plausible band of the paper's plots.
		if base.QoS < 0.6 || best.QoS > 1 {
			t.Errorf("%s: QoS band [%v, %v] implausible", log, base.QoS, best.QoS)
		}
	}
}

func TestShapePerfectPredictionPerfectUsersGiveQoSOne(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape test")
	}
	e := shapeEnv()
	for _, log := range []string{"SDSC", "NASA"} {
		r, err := e.Point(log, 1, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		if r.QoS != 1 {
			t.Errorf("%s: QoS at a=1,U=1 = %v, want exactly 1 (idealized predictor)", log, r.QoS)
		}
		if r.LostWork != 0 {
			t.Errorf("%s: lost work at a=1,U=1 = %v, want 0", log, r.LostWork)
		}
		if r.DeadlineMissRate != 0 {
			t.Errorf("%s: misses at a=1,U=1 = %v, want 0", log, r.DeadlineMissRate)
		}
	}
}

func TestShapeSDSCLosesMoreWorkThanNASA(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape test")
	}
	e := shapeEnv()
	sdsc, err := e.Point("SDSC", 0, 0.5, "")
	if err != nil {
		t.Fatal(err)
	}
	nasa, err := e.Point("NASA", 0, 0.5, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lost work: SDSC %.3g, NASA %.3g (ratio %.1f)",
		sdsc.LostWork.NodeSeconds(), nasa.LostWork.NodeSeconds(),
		sdsc.LostWork.NodeSeconds()/nasa.LostWork.NodeSeconds())
	if sdsc.LostWork.NodeSeconds() < 3*nasa.LostWork.NodeSeconds() {
		t.Errorf("SDSC should lose several times NASA's work: %v vs %v",
			sdsc.LostWork, nasa.LostWork)
	}
}

func TestShapeInsensitiveRegimeFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape test")
	}
	e := shapeEnv()
	// At a = 0.5 the predictor caps pf at 0.5, so promises never fall
	// below 0.5 and all users with U <= 0.5 behave identically.
	var prev *float64
	for _, u := range []float64{0, 0.25, 0.5} {
		r, err := e.Point("SDSC", 0.5, u, "")
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && r.QoS != *prev {
			t.Errorf("U=%v: QoS %.6f differs inside the insensitive regime (%.6f)", u, r.QoS, *prev)
		}
		q := r.QoS
		prev = &q
	}
}

func TestShapeQoSRisesWithUserStrictnessAtPerfectAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale shape test")
	}
	e := shapeEnv()
	lo, err := e.Point("SDSC", 1, 0.1, "")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := e.Point("SDSC", 1, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if hi.QoS <= lo.QoS {
		t.Errorf("QoS should rise with U at a=1: %.4f -> %.4f", lo.QoS, hi.QoS)
	}
	if hi.LostWork > lo.LostWork {
		t.Errorf("lost work should fall with U at a=1: %v -> %v", lo.LostWork, hi.LostWork)
	}
}
