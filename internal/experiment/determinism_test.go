package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"probqos/internal/table"
)

// TestGoldenScenarioByteIdenticalAcrossRuns is the runtime backstop behind
// the qoslint detwallclock/detrand analyzers: it executes the golden-corpus
// scenario twice in one process, each time from a fresh Env, and demands
// byte-identical rendered output. A wall-clock read or global-PRNG draw
// that slips past the static checks (through an interface, reflection, or
// an allow directive with a wrong justification) shows up here as a diff
// between two runs of the very experiments the corpus pins.
func TestGoldenScenarioByteIdenticalAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenario recomputation is not short")
	}
	byID := make(map[string]Experiment)
	for _, exp := range All() {
		byID[exp.ID] = exp
	}
	runAll := func() []byte {
		t.Helper()
		// A fresh Env per run: the memoized traces, logs, and points must be
		// rebuilt from the seed alone, or they are not reproducible state.
		e := NewEnv()
		e.JobCount = goldenJobCount
		e.Seed = goldenSeed
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, id := range goldenExperiments {
			exp, ok := byID[id]
			if !ok {
				t.Fatalf("golden experiment %q is not registered", id)
			}
			tables, err := exp.Run(e)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if err := enc.Encode(struct {
				ID     string         `json:"id"`
				Tables []*table.Table `json:"tables"`
			}{id, tables}); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	first := runAll()
	second := runAll()
	if !bytes.Equal(first, second) {
		t.Fatalf("two in-process runs of the golden scenario diverged:\nfirst run:  %d bytes\nsecond run: %d bytes\n%s",
			len(first), len(second), firstDiff(first, second))
	}
}

// firstDiff points at the first byte where two renderings diverge, with a
// little context, so a nondeterminism failure is debuggable from the log.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(0, i-80)
			return fmt.Sprintf("first divergence at byte %d:\n  first:  …%s\n  second: …%s",
				i, a[lo:min(len(a), i+40)], b[lo:min(len(b), i+40)])
		}
	}
	return fmt.Sprintf("one rendering is a prefix of the other (lengths %d vs %d)", len(a), len(b))
}
