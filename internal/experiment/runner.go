package experiment

import (
	"sync"

	"probqos/internal/table"
)

// RunResult is one experiment's outcome from RunAll, in input order.
type RunResult struct {
	Exp    Experiment
	Tables []*table.Table
	Err    error
}

// RunAll executes the experiments across a pool of workers sharing one Env
// and returns their results indexed like the input. Experiments overlap
// freely: the Env memoizes and single-flights every simulation point, so
// shared (log, a, U) points are still computed exactly once, and the Env's
// simulation semaphore bounds the machine-wide concurrency even though each
// experiment also parallelizes internally (Prefetch).
//
// Determinism: every table is a pure function of memoized point results,
// which are themselves deterministic per point key, so the returned tables
// are identical whatever the worker count or completion order — rendering
// results in input order reproduces the serial output byte for byte.
//
// An experiment's error does not stop the others (their points are often
// shared, and results report per-experiment); callers that want serial
// error semantics stop at the first Err in input order.
func RunAll(env *Env, exps []Experiment, workers int) []RunResult {
	if workers <= 0 {
		workers = env.workers()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]RunResult, len(exps))
	if len(exps) == 0 {
		return results
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				tables, err := exps[i].Run(env)
				results[i] = RunResult{Exp: exps[i], Tables: tables, Err: err}
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
