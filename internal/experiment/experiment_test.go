package experiment

import (
	"strings"
	"testing"
)

// testEnv is scaled down so the whole suite stays fast while still
// exercising every experiment end to end.
func testEnv() *Env {
	e := NewEnv()
	e.JobCount = 400
	e.Seed = 11
	return e
}

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, exp := range All() {
		if exp.ID == "" || exp.Title == "" || exp.Paper == "" || exp.Run == nil {
			t.Errorf("experiment %q is incomplete", exp.ID)
		}
		if seen[exp.ID] {
			t.Errorf("duplicate experiment ID %q", exp.ID)
		}
		seen[exp.ID] = true
	}
	// Every paper artifact must be covered.
	for _, want := range []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "headline",
	} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig1"); !ok {
		t.Error("fig1 not found")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("nonsense should not resolve")
	}
}

func TestTable1SmallScale(t *testing.T) {
	e := testEnv()
	exp, _ := ByID("table1")
	tables, err := exp.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 2 {
		t.Fatalf("table1 output: %+v", tables)
	}
	out := tables[0].String()
	if !strings.Contains(out, "NASA") || !strings.Contains(out, "SDSC") {
		t.Errorf("table1 missing logs:\n%s", out)
	}
}

func TestTable2MatchesPaperConstants(t *testing.T) {
	e := testEnv()
	exp, _ := ByID("table2")
	tables, err := exp.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	for _, want := range []string{"128", "720", "3600", "120"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestPointMemoization(t *testing.T) {
	e := testEnv()
	a, err := e.Point("NASA", 0.5, 0.5, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Point("NASA", 0.5, 0.5, "")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized point differs from first computation")
	}
	if _, err := e.Point("NASA", 0.5, 0.5, "bogus-variant"); err == nil {
		t.Error("unknown variant must error")
	}
}

func TestPrefetchParallelMatchesSerial(t *testing.T) {
	serial := testEnv()
	serial.Workers = 1
	parallel := testEnv()
	parallel.Workers = 4
	specs := []PointSpec{
		{Log: "NASA", A: 0, U: 0.5},
		{Log: "NASA", A: 1, U: 0.5},
		{Log: "NASA", A: 0.5, U: 0.9},
		{Log: "NASA", A: 0.5, U: 0.9}, // duplicate on purpose
	}
	if err := serial.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		a, err := serial.Point(s.Log, s.A, s.U, s.Variant)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Point(s.Log, s.A, s.U, s.Variant)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("parallel point %+v differs from serial", s)
		}
	}
}

func TestVariantNamesStable(t *testing.T) {
	names := VariantNames()
	if len(names) != 12 {
		t.Errorf("variants = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("variant names not sorted: %v", names)
		}
	}
}

func TestEveryExperimentRunsSmallScale(t *testing.T) {
	// Execute every experiment definition end to end at small scale; the
	// full-scale versions are exercised by cmd/qossweep and the benchmark
	// harness. The shared env memoizes points across experiments exactly
	// as the CLI does.
	e := testEnv()
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tables, err := exp.Run(e)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %q has no rows", tbl.Title)
				}
				if len(tbl.Columns) == 0 {
					t.Fatalf("table %q has no columns", tbl.Title)
				}
			}
		})
	}
}
