package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	"probqos/internal/table"
)

// renderResults encodes RunAll output the way a caller would consume it:
// in input order, stopping at the first error. Byte-comparing two renderings
// is exactly the qossweep guarantee under test.
func renderResults(t *testing.T, results []RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Exp.ID, res.Err)
		}
		if err := enc.Encode(struct {
			ID     string         `json:"id"`
			Tables []*table.Table `json:"tables"`
		}{res.Exp.ID, res.Tables}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestRunAllByteIdenticalToSerial is the tentpole determinism gate: the same
// experiments through RunAll at one worker and at NumCPU workers (each from a
// fresh Env, so every memo is rebuilt under a different interleaving) must
// render byte-identically. Run it under -race to also exercise the worker
// pool, the Env singleflight, and the simulation semaphore for data races.
func TestRunAllByteIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenario recomputation is not short")
	}
	byID := make(map[string]Experiment)
	for _, exp := range All() {
		byID[exp.ID] = exp
	}
	// The golden corpus plus fig1 — the ISSUE's named sweep — so the gate
	// covers both the memoized grids and the headline figure.
	var exps []Experiment
	for _, id := range append([]string{"fig1"}, goldenExperiments...) {
		exp, ok := byID[id]
		if !ok {
			t.Fatalf("experiment %q is not registered", id)
		}
		exps = append(exps, exp)
	}
	run := func(workers int) []byte {
		t.Helper()
		e := NewEnv()
		e.JobCount = goldenJobCount
		e.Seed = goldenSeed
		e.Workers = workers
		return renderResults(t, RunAll(e, exps, workers))
	}
	serial := run(1)
	parallel := run(max(4, runtime.NumCPU()))
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel RunAll diverged from serial:\nserial:   %d bytes\nparallel: %d bytes\n%s",
			len(serial), len(parallel), firstDiff(serial, parallel))
	}
}

// TestRunAllOrderAndErrors pins the contract qossweep depends on: results
// come back indexed like the input, and one experiment's failure leaves the
// others' results intact.
func TestRunAllOrderAndErrors(t *testing.T) {
	boom := errors.New("boom")
	mk := func(id string, tables []*table.Table, err error) Experiment {
		return Experiment{ID: id, Run: func(*Env) ([]*table.Table, error) {
			return tables, err
		}}
	}
	okTable := []*table.Table{table.New("ok", "col")}
	exps := []Experiment{
		mk("first", okTable, nil),
		mk("failing", nil, boom),
		mk("last", okTable, nil),
	}
	results := RunAll(NewEnv(), exps, 3)
	if len(results) != len(exps) {
		t.Fatalf("got %d results, want %d", len(results), len(exps))
	}
	for i, res := range results {
		if res.Exp.ID != exps[i].ID {
			t.Errorf("result %d is %q, want %q", i, res.Exp.ID, exps[i].ID)
		}
	}
	if results[1].Err != boom {
		t.Errorf("failing experiment: Err = %v, want %v", results[1].Err, boom)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("sibling experiments inherited an error: %v, %v", results[0].Err, results[2].Err)
	}
	if len(results[2].Tables) != 1 {
		t.Errorf("experiment after the failure lost its tables: %v", results[2].Tables)
	}
}

// TestRunAllEmpty pins the edge: no experiments, no goroutines, no panic.
func TestRunAllEmpty(t *testing.T) {
	if got := RunAll(NewEnv(), nil, 0); len(got) != 0 {
		t.Fatalf("RunAll(nil) = %v, want empty", got)
	}
}
