package experiment

import (
	"fmt"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/metrics"
	"probqos/internal/sim"
	"probqos/internal/table"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// Experiment regenerates one table or figure of the paper (or one ablation
// from DESIGN.md §6).
type Experiment struct {
	// ID is the short name used by cmd/qossweep -exp and the bench names
	// (e.g. "fig1", "table2", "ablation-checkpoint").
	ID string
	// Title describes what is produced.
	Title string
	// Paper states what the paper reports for this artifact, for
	// side-by-side comparison in EXPERIMENTS.md.
	Paper string
	// Run produces the output tables.
	Run func(e *Env) ([]*table.Table, error)
}

// sweep values 0.0 .. 1.0 in steps of 0.1, as in §4.4.
var sweep = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// figureUs are the three user strategies highlighted in Figures 1-6.
var figureUs = []float64{0.1, 0.5, 0.9}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		table1Exp(),
		table2Exp(),
		accuracyFigure("fig1", "QoS vs. prediction accuracy, SDSC log", "SDSC",
			"QoS rises from ~0.90 toward ~0.99; benefits visible even at a=0.1",
			func(r metrics.Report) string { return table.Float(r.QoS, 4) }),
		accuracyFigure("fig2", "QoS vs. prediction accuracy, NASA log", "NASA",
			"QoS in 0.93-0.99; little benefit until a >= U; nondecreasing at U=0.9",
			func(r metrics.Report) string { return table.Float(r.QoS, 4) }),
		accuracyFigure("fig3", "Average utilization vs. prediction accuracy, SDSC log", "SDSC",
			"utilization ~0.64-0.71, increasing with a",
			func(r metrics.Report) string { return table.Float(r.Utilization, 4) }),
		accuracyFigure("fig4", "Average utilization vs. prediction accuracy, NASA log", "NASA",
			"utilization ~0.55-0.59, increasing with a",
			func(r metrics.Report) string { return table.Float(r.Utilization, 4) }),
		accuracyFigure("fig5", "Total work lost vs. prediction accuracy, SDSC log", "SDSC",
			"lost work falls from ~4.5e7 toward ~0.5e7 node-s as a rises",
			func(r metrics.Report) string { return table.Sci(r.LostWork.NodeSeconds()) }),
		accuracyFigure("fig6", "Total work lost vs. prediction accuracy, NASA log", "NASA",
			"lost work falls from ~4.5e6 toward ~0.5e6 node-s; ~10x below SDSC",
			func(r metrics.Report) string { return table.Sci(r.LostWork.NodeSeconds()) }),
		fig7Exp(),
		fig8Exp(),
		userFigure("fig9", "Average utilization vs. user behavior, SDSC log, a=1", "SDSC",
			"utilization ~0.685-0.72, increasing with U",
			func(r metrics.Report) string { return table.Float(r.Utilization, 4) }),
		userFigure("fig10", "Average utilization vs. user behavior, NASA log, a=1", "NASA",
			"utilization ~0.555-0.595, increasing with U",
			func(r metrics.Report) string { return table.Float(r.Utilization, 4) }),
		userFigure("fig11", "Total work lost vs. user behavior, SDSC log, a=1", "SDSC",
			"lost work decreasing with U, ~2.5e7 -> ~0",
			func(r metrics.Report) string { return table.Sci(r.LostWork.NodeSeconds()) }),
		userFigure("fig12", "Total work lost vs. user behavior, NASA log, a=1", "NASA",
			"lost work decreasing with U, ~4.5e6 -> ~0",
			func(r metrics.Report) string { return table.Sci(r.LostWork.NodeSeconds()) }),
		headlineExp(),
		ablationNodeSelection(),
		ablationCheckpointPolicy(),
		ablationDeadlineSkip(),
		ablationNegotiation(),
		ablationBaseRate(),
		ablationFailureModel(),
		ablationHorizon(),
		ablationEstimates(),
		ablationMonitor(),
		sweepCheckpointParams(),
		sweepClusterSize(),
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, exp := range All() {
		if exp.ID == id {
			return exp, true
		}
	}
	return Experiment{}, false
}

func table1Exp() Experiment {
	return Experiment{
		ID:    "table1",
		Title: "Table 1: job log characteristics",
		Paper: "NASA: avg 6.3 nodes, avg 381 s, max 12 h; SDSC: avg 9.7 nodes, avg 7722 s, max 132 h",
		Run: func(e *Env) ([]*table.Table, error) {
			t := table.New("Table 1: Job log characteristics",
				"Job Log", "Avg nj (nodes)", "Avg ej (s)", "Max ej (hr)",
				"Paper Avg nj", "Paper Avg ej", "Paper Max ej")
			paper := map[string][3]string{
				"NASA": {"6.3", "381", "12"},
				"SDSC": {"9.7", "7722", "132"},
			}
			for _, name := range []string{"NASA", "SDSC"} {
				log, err := e.Log(name)
				if err != nil {
					return nil, err
				}
				c := log.Characteristics()
				p := paper[name]
				t.Add(name,
					table.Float(c.AvgNodes, 1),
					table.Float(c.AvgExec, 0),
					table.Float(c.MaxExec.Hours(), 0),
					p[0], p[1], p[2])
			}
			return []*table.Table{t}, nil
		},
	}
}

func table2Exp() Experiment {
	return Experiment{
		ID:    "table2",
		Title: "Table 2: simulation parameters",
		Paper: "N=128, C=720 s, I=3600 s, a,U in [0,1], downtime 120 s",
		Run: func(e *Env) ([]*table.Table, error) {
			p := checkpoint.DefaultParams()
			t := table.New("Table 2: Simulation parameters",
				"N (nodes)", "C (s)", "I (s)", "a", "U", "downtime (s)")
			t.Add("128",
				fmt.Sprintf("%d", int64(p.Overhead)),
				fmt.Sprintf("%d", int64(p.Interval)),
				"[0,1]", "[0,1]",
				fmt.Sprintf("%d", int64(2*units.Minute)))
			return []*table.Table{t}, nil
		},
	}
}

// accuracyFigure builds a "metric vs a" figure with curves for U = 0.1,
// 0.5, 0.9 (Figures 1-6).
func accuracyFigure(id, title, log, paper string, cell func(metrics.Report) string) Experiment {
	return Experiment{
		ID:    id,
		Title: title + ", U=0.1/0.5/0.9",
		Paper: paper,
		Run: func(e *Env) ([]*table.Table, error) {
			var specs []PointSpec
			for _, a := range sweep {
				for _, u := range figureUs {
					specs = append(specs, PointSpec{Log: log, A: a, U: u})
				}
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New(title, "Accuracy (a)", "U=0.1", "U=0.5", "U=0.9")
			for _, a := range sweep {
				row := []string{table.Float(a, 1)}
				for _, u := range figureUs {
					r, err := e.Point(log, a, u, "")
					if err != nil {
						return nil, err
					}
					row = append(row, cell(r))
				}
				t.Add(row...)
			}
			return []*table.Table{t}, nil
		},
	}
}

// userFigure builds a "metric vs U" figure at a = 1 (Figures 9-12).
func userFigure(id, title, log, paper string, cell func(metrics.Report) string) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: paper,
		Run: func(e *Env) ([]*table.Table, error) {
			var specs []PointSpec
			for _, u := range sweep {
				specs = append(specs, PointSpec{Log: log, A: 1, U: u})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New(title, "User Parameter (U)", "value")
			for _, u := range sweep {
				r, err := e.Point(log, 1, u, "")
				if err != nil {
					return nil, err
				}
				t.Add(table.Float(u, 1), cell(r))
			}
			return []*table.Table{t}, nil
		},
	}
}

func fig7Exp() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Figure 7: QoS vs. user behavior, SDSC log, a=0.5",
		Paper: "QoS varies with U only below the point where the accuracy cap binds, then is flat",
		Run: func(e *Env) ([]*table.Table, error) {
			var specs []PointSpec
			for _, u := range sweep {
				specs = append(specs, PointSpec{Log: "SDSC", A: 0.5, U: u})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Figure 7: QoS vs. user behavior, SDSC log, a=0.5",
				"User Parameter (U)", "QoS")
			for _, u := range sweep {
				r, err := e.Point("SDSC", 0.5, u, "")
				if err != nil {
					return nil, err
				}
				t.Add(table.Float(u, 1), table.Float(r.QoS, 4))
			}
			return []*table.Table{t}, nil
		},
	}
}

func fig8Exp() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "Figure 8: QoS vs. user behavior, both logs, a=1",
		Paper: "QoS increases with U for both logs, reaching ~0.99-1.0 at U=1",
		Run: func(e *Env) ([]*table.Table, error) {
			var specs []PointSpec
			for _, u := range sweep {
				specs = append(specs,
					PointSpec{Log: "SDSC", A: 1, U: u},
					PointSpec{Log: "NASA", A: 1, U: u})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Figure 8: QoS vs. user behavior, flat cluster, a=1",
				"User Parameter (U)", "SDSC", "NASA")
			for _, u := range sweep {
				sdsc, err := e.Point("SDSC", 1, u, "")
				if err != nil {
					return nil, err
				}
				nasa, err := e.Point("NASA", 1, u, "")
				if err != nil {
					return nil, err
				}
				t.Add(table.Float(u, 1), table.Float(sdsc.QoS, 4), table.Float(nasa.QoS, 4))
			}
			return []*table.Table{t}, nil
		},
	}
}

func headlineExp() Experiment {
	return Experiment{
		ID:    "headline",
		Title: "Headline improvements vs. the no-forecasting baseline",
		Paper: "QoS/utilization up by as much as 6% (accuracy sweep) and 4%/3% (user sweep); lost work reduced ~9x (89%)",
		Run: func(e *Env) ([]*table.Table, error) {
			var specs []PointSpec
			for _, log := range []string{"NASA", "SDSC"} {
				for _, u := range []float64{0, 0.9, 1} {
					specs = append(specs,
						PointSpec{Log: log, A: 0, U: u},
						PointSpec{Log: log, A: 1, U: u})
				}
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Headline: a=0 (no forecasting) vs a=1 (perfect prediction), and U=0 vs U=1 at a=1",
				"Log", "Comparison", "QoS delta", "Util delta", "Lost work ratio", "Paper")
			for _, log := range []string{"NASA", "SDSC"} {
				base, err := e.Point(log, 0, 0.9, "")
				if err != nil {
					return nil, err
				}
				best, err := e.Point(log, 1, 0.9, "")
				if err != nil {
					return nil, err
				}
				t.Add(log, "a: 0 -> 1 (U=0.9)",
					"+"+table.Float(100*(best.QoS-base.QoS), 1)+"%",
					"+"+table.Float(100*(best.Utilization-base.Utilization), 1)+"%",
					lostRatio(base.LostWork, best.LostWork),
					"+6% QoS/util, /9 lost work")

				loose, err := e.Point(log, 1, 0, "")
				if err != nil {
					return nil, err
				}
				strict, err := e.Point(log, 1, 1, "")
				if err != nil {
					return nil, err
				}
				t.Add(log, "U: 0 -> 1 (a=1)",
					"+"+table.Float(100*(strict.QoS-loose.QoS), 1)+"%",
					"+"+table.Float(100*(strict.Utilization-loose.Utilization), 1)+"%",
					lostRatio(loose.LostWork, strict.LostWork),
					"+4% QoS, +3% util, /9 lost work")
			}
			return []*table.Table{t}, nil
		},
	}
}

func lostRatio(base, best units.Work) string {
	if best == 0 {
		if base == 0 {
			return "1.0x"
		}
		return "inf (to zero)"
	}
	return table.Float(base.NodeSeconds()/best.NodeSeconds(), 1) + "x"
}

// ablation builds a full-system vs variant comparison at representative
// operating points.
func ablation(id, title, paper, variant string) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Paper: paper,
		Run: func(e *Env) ([]*table.Table, error) {
			points := []struct {
				log  string
				a, u float64
			}{
				{log: "SDSC", a: 0.5, u: 0.5},
				{log: "SDSC", a: 1, u: 0.9},
				{log: "NASA", a: 0.5, u: 0.5},
			}
			var specs []PointSpec
			for _, p := range points {
				specs = append(specs,
					PointSpec{Log: p.log, A: p.a, U: p.u},
					PointSpec{Log: p.log, A: p.a, U: p.u, Variant: variant})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New(title,
				"Log", "a", "U", "System", "QoS", "Utilization", "Lost work")
			for _, p := range points {
				full, err := e.Point(p.log, p.a, p.u, "")
				if err != nil {
					return nil, err
				}
				alt, err := e.Point(p.log, p.a, p.u, variant)
				if err != nil {
					return nil, err
				}
				t.Add(p.log, table.Float(p.a, 1), table.Float(p.u, 1), "full",
					table.Float(full.QoS, 4), table.Float(full.Utilization, 4),
					table.Sci(full.LostWork.NodeSeconds()))
				t.Add(p.log, table.Float(p.a, 1), table.Float(p.u, 1), variant,
					table.Float(alt.QoS, 4), table.Float(alt.Utilization, 4),
					table.Sci(alt.LostWork.NodeSeconds()))
			}
			return []*table.Table{t}, nil
		},
	}
}

func ablationNodeSelection() Experiment {
	return ablation("ablation-nodesel",
		"Ablation: fault-aware node selection vs first fit",
		"fault-aware tie-breaking is the scheduler half of the paper's mechanism",
		"first-fit")
}

func ablationCheckpointPolicy() Experiment {
	return Experiment{
		ID:    "ablation-checkpoint",
		Title: "Ablation: risk-based vs periodic vs no checkpointing",
		Paper: "risk-based cooperative checkpointing performs only the checkpoints that matter",
		Run: func(e *Env) ([]*table.Table, error) {
			var specs []PointSpec
			for _, v := range []string{"", "periodic", "no-checkpoint"} {
				specs = append(specs, PointSpec{Log: "SDSC", A: 0.5, U: 0.5, Variant: v})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Ablation: checkpoint policy, SDSC log, a=0.5, U=0.5",
				"Policy", "QoS", "Utilization", "Lost work", "Checkpoints done", "Skipped")
			for _, v := range []string{"", "periodic", "no-checkpoint"} {
				r, err := e.Point("SDSC", 0.5, 0.5, v)
				if err != nil {
					return nil, err
				}
				name := v
				if name == "" {
					name = "risk-based"
				}
				t.Add(name, table.Float(r.QoS, 4), table.Float(r.Utilization, 4),
					table.Sci(r.LostWork.NodeSeconds()),
					fmt.Sprintf("%d", r.CheckpointsDone), fmt.Sprintf("%d", r.CheckpointsSkipped))
			}
			return []*table.Table{t}, nil
		},
	}
}

func ablationDeadlineSkip() Experiment {
	return ablation("ablation-deadlineskip",
		"Ablation: deadline-driven checkpoint skipping on vs off",
		"skipping checkpoints is a strategy for meeting deadlines (§3.4)",
		"no-skip")
}

func ablationNegotiation() Experiment {
	return ablation("ablation-negotiation",
		"Ablation: negotiation on vs users always taking the first quote",
		"the market-based dialog is the paper's central contribution",
		"no-negotiate")
}

func ablationBaseRate() Experiment {
	return ablation("ablation-baserate",
		"Ablation: MTBF-floored risk estimate vs pure forecast",
		"DESIGN.md: Equation 1 with pf = forecast alone skips every checkpoint at low a",
		"pure-forecast")
}

func ablationHorizon() Experiment {
	return Experiment{
		ID:    "ablation-horizon",
		Title: "Ablation: prediction horizon (accuracy decays with forecast distance)",
		Paper: "§3.3: in practice, predictions are less accurate as they stretch further into the future; the paper's simulator idealizes this away",
		Run: func(e *Env) ([]*table.Table, error) {
			horizons := []struct{ variant, label string }{
				{variant: "", label: "static (paper)"},
				{variant: "horizon-48h", label: "48h half-life"},
				{variant: "horizon-6h", label: "6h half-life"},
			}
			var specs []PointSpec
			for _, h := range horizons {
				specs = append(specs,
					PointSpec{Log: "SDSC", A: 1, U: 0.9, Variant: h.variant},
					PointSpec{Log: "SDSC", A: 0.5, U: 0.5, Variant: h.variant})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Ablation: prediction horizon, SDSC log",
				"Horizon", "a", "U", "QoS", "Utilization", "Lost work")
			for _, h := range horizons {
				for _, p := range []struct{ a, u float64 }{{1, 0.9}, {0.5, 0.5}} {
					r, err := e.Point("SDSC", p.a, p.u, h.variant)
					if err != nil {
						return nil, err
					}
					t.Add(h.label, table.Float(p.a, 1), table.Float(p.u, 1),
						table.Float(r.QoS, 4), table.Float(r.Utilization, 4),
						table.Sci(r.LostWork.NodeSeconds()))
				}
			}
			return []*table.Table{t}, nil
		},
	}
}

// runCustom executes one simulation outside the (a, U, variant) point cache
// for experiments that vary other configuration dimensions.
func runCustom(e *Env, logName string, a, u float64, mutate func(*sim.Config)) (metrics.Report, error) {
	log, err := e.Log(logName)
	if err != nil {
		return metrics.Report{}, err
	}
	tr, err := e.Trace()
	if err != nil {
		return metrics.Report{}, err
	}
	cfg := sim.DefaultConfig(log, tr)
	cfg.Accuracy = a
	cfg.UserRisk = u
	if mutate != nil {
		mutate(&cfg)
	}
	release := e.acquireSim()
	res, err := simRun(cfg)
	release()
	if err != nil {
		return metrics.Report{}, err
	}
	return metrics.Compute(res), nil
}

func sweepCheckpointParams() Experiment {
	return Experiment{
		ID:    "sweep-checkpoint",
		Title: "Sweep: checkpoint interval I and overhead C around the Table 2 point",
		Paper: "Table 2 fixes I=3600 s, C=720 s; the companion periodic-checkpointing study (Oliner et al., IPDPS 2005 workshop) motivates the sensitivity question",
		Run: func(e *Env) ([]*table.Table, error) {
			t := table.New("Sweep: checkpoint parameters, SDSC log, a=0.5, U=0.5",
				"I (s)", "C (s)", "QoS", "Utilization", "Lost work", "Ckpts done")
			for _, params := range []checkpoint.Params{
				{Interval: 1800, Overhead: 720},
				{Interval: 3600, Overhead: 360},
				{Interval: 3600, Overhead: 720}, // Table 2
				{Interval: 3600, Overhead: 1440},
				{Interval: 7200, Overhead: 720},
				{Interval: 14400, Overhead: 720},
			} {
				params := params
				r, err := runCustom(e, "SDSC", 0.5, 0.5, func(c *sim.Config) { c.Checkpoint = params })
				if err != nil {
					return nil, err
				}
				t.Add(
					fmt.Sprintf("%d", int64(params.Interval)),
					fmt.Sprintf("%d", int64(params.Overhead)),
					table.Float(r.QoS, 4), table.Float(r.Utilization, 4),
					table.Sci(r.LostWork.NodeSeconds()),
					fmt.Sprintf("%d", r.CheckpointsDone))
			}
			return []*table.Table{t}, nil
		},
	}
}

func sweepClusterSize() Experiment {
	return Experiment{
		ID:    "sweep-clustersize",
		Title: "Sweep: cluster size N with proportional workload and failure rate",
		Paper: "beyond the paper (capacity planning): the paper fixes N=128",
		Run: func(e *Env) ([]*table.Table, error) {
			t := table.New("Sweep: cluster size, SDSC-regime workload, a=0.7, U=0.5",
				"N (nodes)", "Failures", "QoS", "Utilization", "Lost work")
			jobs := e.JobCount
			if jobs == 0 {
				jobs = 10000
			}
			for _, n := range []int{64, 128, 256} {
				log := workload.GenerateSDSC(workload.GenConfig{
					Jobs: jobs, Seed: e.Seed, ClusterNodes: n,
				})
				// Hold the per-node failure rate constant: episodes scale
				// with the node count.
				tr, err := failure.GenerateTrace(failure.RawConfig{
					Nodes: n, Seed: e.Seed, Episodes: 1021 * n / 128,
				}, failure.FilterConfig{Seed: e.Seed})
				if err != nil {
					return nil, err
				}
				cfg := sim.DefaultConfig(log, tr)
				cfg.Nodes = n
				cfg.Accuracy = 0.7
				cfg.UserRisk = 0.5
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				r := metrics.Compute(res)
				t.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", tr.Len()),
					table.Float(r.QoS, 4), table.Float(r.Utilization, 4),
					table.Sci(r.LostWork.NodeSeconds()))
			}
			return []*table.Table{t}, nil
		},
	}
}

func ablationEstimates() Experiment {
	return ablation("ablation-estimates",
		"Ablation: exact runtime estimates vs ~1.8x user overestimation",
		"§3.3: the simulations assume exact estimates, which 'is not always true in practice'",
		"inflated-estimates")
}

func ablationMonitor() Experiment {
	return Experiment{
		ID:    "ablation-monitor",
		Title: "Ablation: idealized trace predictor vs working health monitor",
		Paper: "§3.1/§3.2 describe the real mechanism (time-series + event-correlation models, ~70% detection, negligible false positives); the paper's sweeps idealize it as the px<=a oracle",
		Run: func(e *Env) ([]*table.Table, error) {
			predictors := []struct {
				variant, label string
				a              float64
			}{
				{variant: "", label: "oracle a=0.7", a: 0.7},
				{variant: "monitor-predictor", label: "health monitor", a: 0},
				{variant: "", label: "no forecasting", a: 0},
			}
			var specs []PointSpec
			for _, p := range predictors {
				specs = append(specs, PointSpec{Log: "SDSC", A: p.a, U: 0.5, Variant: p.variant})
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Ablation: predictor realism, SDSC log, U=0.5",
				"Predictor", "QoS", "Utilization", "Lost work", "Job failures")
			for _, p := range predictors {
				r, err := e.Point("SDSC", p.a, 0.5, p.variant)
				if err != nil {
					return nil, err
				}
				t.Add(p.label, table.Float(r.QoS, 4), table.Float(r.Utilization, 4),
					table.Sci(r.LostWork.NodeSeconds()), fmt.Sprintf("%d", r.JobFailures))
			}
			return []*table.Table{t}, nil
		},
	}
}

func ablationFailureModel() Experiment {
	return Experiment{
		ID:    "ablation-failuremodel",
		Title: "Ablation: trace-driven failures vs stochastic models (Poisson, Weibull)",
		Paper: "§5.1: typical statistical failure models are poor indicators of actual system behavior; a stochastic model is suggested follow-up work",
		Run: func(e *Env) ([]*table.Table, error) {
			models := []struct{ variant, label string }{
				{variant: "", label: "trace-driven"},
				{variant: "weibull-failures", label: "weibull model"},
				{variant: "poisson-failures", label: "poisson model"},
			}
			var specs []PointSpec
			for _, m := range models {
				for _, a := range []float64{0, 0.5, 1} {
					specs = append(specs, PointSpec{Log: "SDSC", A: a, U: 0.5, Variant: m.variant})
				}
			}
			if err := e.Prefetch(specs); err != nil {
				return nil, err
			}
			t := table.New("Ablation: failure model, SDSC log, U=0.5 (equal mean failure rate)",
				"Failure model", "a", "QoS", "Utilization", "Lost work", "Job failures")
			for _, m := range models {
				for _, a := range []float64{0, 0.5, 1} {
					r, err := e.Point("SDSC", a, 0.5, m.variant)
					if err != nil {
						return nil, err
					}
					t.Add(m.label, table.Float(a, 1),
						table.Float(r.QoS, 4), table.Float(r.Utilization, 4),
						table.Sci(r.LostWork.NodeSeconds()), fmt.Sprintf("%d", r.JobFailures))
				}
			}
			return []*table.Table{t}, nil
		},
	}
}
