package experiment

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probqos/internal/health"
	"probqos/internal/sim"
)

// stubSimRun replaces the simulator with a counter that holds every call
// long enough that concurrent requests for the same point overlap unless a
// singleflight layer dedupes them.
func stubSimRun(t *testing.T, calls *atomic.Int32, hold time.Duration) {
	t.Helper()
	old := simRun
	simRun = func(cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		time.Sleep(hold)
		return &sim.Result{}, nil
	}
	t.Cleanup(func() { simRun = old })
}

// TestConcurrentPointsRunSimulationOnce pins the singleflight contract:
// many concurrent Point calls for one key run the simulation once, everyone
// gets the shared result, and the progress tally counts the point once —
// not once per caller.
func TestConcurrentPointsRunSimulationOnce(t *testing.T) {
	var calls atomic.Int32
	stubSimRun(t, &calls, 50*time.Millisecond)
	e := testEnv()

	const callers = 8
	var start, done sync.WaitGroup
	start.Add(callers)
	done.Add(callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			start.Wait() // release all callers at once
			_, errs[i] = e.Point("SDSC", 0.5, 0.5, "")
		}(i)
	}
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("sim ran %d times for one point under %d concurrent callers, want 1", n, callers)
	}
	e.mu.Lock()
	doneN, queued := e.progressDone, e.progressQueued
	e.mu.Unlock()
	if doneN != 1 || queued != 1 {
		t.Errorf("progress done=%d queued=%d, want 1/1 (the shared point counted once)", doneN, queued)
	}
}

// TestPointJoinsPrefetchInFlight overlaps Point and Prefetch requests for
// the same grid: each distinct key must be simulated exactly once no matter
// which caller gets there first.
func TestPointJoinsPrefetchInFlight(t *testing.T) {
	var calls atomic.Int32
	stubSimRun(t, &calls, 50*time.Millisecond)
	e := testEnv()
	e.Workers = 2

	specs := []PointSpec{
		{Log: "SDSC", A: 0.3, U: 0.5},
		{Log: "SDSC", A: 0.7, U: 0.5},
	}
	var wg sync.WaitGroup
	wg.Add(3)
	errs := make([]error, 3)
	go func() { defer wg.Done(); errs[0] = e.Prefetch(specs) }()
	go func() { defer wg.Done(); errs[1] = e.Prefetch(specs) }()
	go func() { defer wg.Done(); _, errs[2] = e.Point("SDSC", 0.3, 0.5, "") }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("sim ran %d times for two distinct points, want 2", n)
	}
	e.mu.Lock()
	doneN, queued := e.progressDone, e.progressQueued
	e.mu.Unlock()
	if doneN != 2 || queued != 2 {
		t.Errorf("progress done=%d queued=%d, want 2/2", doneN, queued)
	}
}

// TestSharedResourcesBuildOnce hammers the shared-resource memoizers with
// concurrent first callers: every caller must receive the same instance.
// Before the once-gating, each first caller built its own monitor/log/trace
// outside the mutex and the last writer won, so callers could hold an
// instance the cache later disagreed with (and the race detector flags the
// duplicated generator work touching shared state).
func TestSharedResourcesBuildOnce(t *testing.T) {
	e := testEnv()
	const callers = 4
	var wg sync.WaitGroup
	monitors := make([]*health.Monitor, callers)
	logs := make([]any, callers)
	traces := make([]any, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			m, err := e.Monitor()
			if err != nil {
				t.Errorf("Monitor: %v", err)
				return
			}
			monitors[i] = m
			l, err := e.inflatedLog("SDSC")
			if err != nil {
				t.Errorf("inflatedLog: %v", err)
				return
			}
			logs[i] = l
			tr, err := e.stochasticTrace("poisson-failures")
			if err != nil {
				t.Errorf("stochasticTrace: %v", err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if monitors[i] != monitors[0] {
			t.Errorf("caller %d got a different monitor instance", i)
		}
		if logs[i] != logs[0] {
			t.Errorf("caller %d got a different inflated log instance", i)
		}
		if traces[i] != traces[0] {
			t.Errorf("caller %d got a different stochastic trace instance", i)
		}
	}
}
