package experiment

import (
	"sync/atomic"
	"testing"

	"probqos/internal/sim"
)

// TestPrefetchAbortsAfterFirstError pins the documented contract: the
// first error aborts remaining work. A failing variant counts its compute
// calls; with one worker and four points, only the first may run.
func TestPrefetchAbortsAfterFirstError(t *testing.T) {
	const name = "test-failing-variant"
	var calls atomic.Int32
	variants[name] = func(c *sim.Config) {
		calls.Add(1)
		c.Accuracy = 7 // invalid on purpose: sim.Run must reject the point
	}
	t.Cleanup(func() { delete(variants, name) })

	e := testEnv()
	e.Workers = 1
	specs := []PointSpec{
		{Log: "NASA", A: 0.1, U: 0.5, Variant: name},
		{Log: "NASA", A: 0.2, U: 0.5, Variant: name},
		{Log: "NASA", A: 0.3, U: 0.5, Variant: name},
		{Log: "NASA", A: 0.4, U: 0.5, Variant: name},
	}
	if err := e.Prefetch(specs); err == nil {
		t.Fatal("Prefetch returned nil for a failing variant")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d points, want 1 (work handed out after the first error)", n)
	}

	// Every abandoned point must leave the progress tally, so nothing is
	// counted as forever-pending — or counted again on retry.
	e.mu.Lock()
	done, queued := e.progressDone, e.progressQueued
	e.mu.Unlock()
	if done != 0 || queued != 0 {
		t.Errorf("progress done=%d queued=%d after abort, want 0/0", done, queued)
	}

	// A retry re-queues the same (uncached) points; the tally must balance
	// again rather than accumulate the abandoned first round.
	calls.Store(0)
	if err := e.Prefetch(specs); err == nil {
		t.Fatal("second Prefetch returned nil")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("retry ran %d points, want 1", n)
	}
	e.mu.Lock()
	done, queued = e.progressDone, e.progressQueued
	e.mu.Unlock()
	if done != 0 || queued != 0 {
		t.Errorf("progress done=%d queued=%d after retry, want 0/0", done, queued)
	}
}

// TestPrefetchComputesAllWithoutError guards the other side: a clean run
// still computes and caches every point.
func TestPrefetchComputesAllWithoutError(t *testing.T) {
	const name = "test-counting-variant"
	var calls atomic.Int32
	variants[name] = func(c *sim.Config) { calls.Add(1) }
	t.Cleanup(func() { delete(variants, name) })

	e := testEnv()
	e.Workers = 2
	specs := []PointSpec{
		{Log: "NASA", A: 0.1, U: 0.5, Variant: name},
		{Log: "NASA", A: 0.9, U: 0.5, Variant: name},
	}
	if err := e.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("computed %d points, want 2", n)
	}
	e.mu.Lock()
	done, queued := e.progressDone, e.progressQueued
	e.mu.Unlock()
	if done != 2 || queued != 2 {
		t.Errorf("progress done=%d queued=%d, want 2/2", done, queued)
	}
}
