package experiment

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"probqos/internal/table"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden corpus under testdata/golden")

// goldenJobCount and goldenSeed pin the corpus scale: large enough that
// the headline effects show, small enough that regenerating all four
// snapshots stays in test-suite territory.
const (
	goldenJobCount = 400
	goldenSeed     = 11
)

// goldenExperiments names the snapshots: the headline claim, both paper
// tables, and one ablation, all sharing a single Env so the workload and
// trace caches are reused across them.
var goldenExperiments = []string{"headline", "table1", "table2", "ablation-checkpoint"}

// goldenFile is the on-disk snapshot of one experiment's output.
type goldenFile struct {
	ID       string         `json:"id"`
	JobCount int            `json:"job_count"`
	Seed     int64          `json:"seed"`
	Tables   []*table.Table `json:"tables"`
}

// goldenTolerance is the relative tolerance for numeric cells. The runs
// are deterministic, so the corpus reproduces exactly today; the headroom
// exists for legitimate refactors that reorder float arithmetic without
// changing results materially (e.g. vectorizing an accumulation).
const goldenTolerance = 1e-9

// TestGoldenCorpus recomputes the pinned experiments and diffs every cell
// against testdata/golden. Run with -update to regenerate after an
// intentional change — and justify the diff in the commit.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus recomputation is not short")
	}
	e := NewEnv()
	e.JobCount = goldenJobCount
	e.Seed = goldenSeed

	byID := make(map[string]Experiment)
	for _, exp := range All() {
		byID[exp.ID] = exp
	}
	for _, id := range goldenExperiments {
		exp, ok := byID[id]
		if !ok {
			t.Fatalf("golden experiment %q is not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			tables, err := exp.Run(e)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenFile{ID: id, JobCount: goldenJobCount, Seed: goldenSeed, Tables: tables}
			path := filepath.Join("testdata", "golden", id+".json")
			if *updateGolden {
				writeGolden(t, path, got)
				return
			}
			want := readGolden(t, path)
			diffGolden(t, want, got)
		})
	}
}

func writeGolden(t *testing.T, path string, g goldenFile) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func readGolden(t *testing.T, path string) goldenFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate the corpus)", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return g
}

// diffGolden compares snapshots cell by cell: numeric cells within the
// relative tolerance, everything else exactly.
func diffGolden(t *testing.T, want, got goldenFile) {
	t.Helper()
	if want.JobCount != got.JobCount || want.Seed != got.Seed {
		t.Fatalf("corpus pinned at jobs=%d seed=%d but test ran jobs=%d seed=%d; regenerate with -update",
			want.JobCount, want.Seed, got.JobCount, got.Seed)
	}
	if len(want.Tables) != len(got.Tables) {
		t.Fatalf("%d tables, want %d", len(got.Tables), len(want.Tables))
	}
	for ti, wt := range want.Tables {
		gt := got.Tables[ti]
		if gt.Title != wt.Title {
			t.Errorf("table %d title %q, want %q", ti, gt.Title, wt.Title)
		}
		if fmt.Sprint(gt.Columns) != fmt.Sprint(wt.Columns) {
			t.Errorf("table %q columns %v, want %v", wt.Title, gt.Columns, wt.Columns)
			continue
		}
		if len(gt.Rows) != len(wt.Rows) {
			t.Errorf("table %q has %d rows, want %d", wt.Title, len(gt.Rows), len(wt.Rows))
			continue
		}
		for ri, wrow := range wt.Rows {
			grow := gt.Rows[ri]
			if len(grow) != len(wrow) {
				t.Errorf("table %q row %d has %d cells, want %d", wt.Title, ri, len(grow), len(wrow))
				continue
			}
			for ci, wcell := range wrow {
				if !cellsMatch(wcell, grow[ci]) {
					t.Errorf("table %q row %d col %q: %q, want %q",
						wt.Title, ri, wt.Columns[min(ci, len(wt.Columns)-1)], grow[ci], wcell)
				}
			}
		}
	}
}

// cellsMatch compares two cells, parsing decorated numerics ("+6.0%",
// "1.2x", "3.4e-02") when both sides parse; otherwise it requires exact
// string equality.
func cellsMatch(want, got string) bool {
	if want == got {
		return true
	}
	w, okW := parseCell(want)
	g, okG := parseCell(got)
	if !okW || !okG {
		return false
	}
	if w == g {
		return true
	}
	scale := math.Max(math.Abs(w), math.Abs(g))
	return math.Abs(w-g) <= goldenTolerance*scale
}

// parseCell extracts the numeric value from a table cell, stripping the
// report decorations ("+", "%", "x" suffix).
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "+")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}
