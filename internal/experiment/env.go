// Package experiment defines the paper's evaluation: one experiment per
// table and figure (Table 1, Table 2, Figures 1-12), the headline-numbers
// summary, and the ablations of DESIGN.md §6. cmd/qossweep and the
// benchmark harness both execute these definitions, so the CLI output and
// the bench output are the same rows the paper reports.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/health"
	"probqos/internal/metrics"
	"probqos/internal/sim"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// simRun indirects sim.Run so tests can count or stub point computations.
var simRun = sim.Run

// Env carries the shared inputs (workloads, failure trace) and memoizes
// simulation points, since the figures share many (log, a, U) runs.
// An Env is safe for concurrent use.
type Env struct {
	// JobCount scales the workloads; 0 means the paper's 10,000 jobs.
	JobCount int
	// Seed selects the synthetic trace streams.
	Seed int64
	// Workers bounds parallel point evaluation; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, observes sweep progress: it is called with the
	// cumulative number of points computed and the cumulative number queued
	// so far (the total grows as experiments prefetch their grids). Calls
	// may come from concurrent workers. Set it before running experiments.
	Progress func(done, queued int)

	// sem bounds concurrently *running* simulations across every caller —
	// Prefetch pools, direct Point calls, custom runs, and RunAll's
	// experiment workers — so stacked parallelism (experiments × points)
	// cannot oversubscribe the machine. Sized to workers() on first use;
	// set Workers before the first simulation runs.
	semOnce sync.Once
	sem     chan struct{}

	mu             sync.Mutex
	progressDone   int
	progressQueued int
	logs           map[string]*memo[*workload.Log]
	traceMemo      memo[*failure.Trace]
	altTraces      map[string]*memo[*failure.Trace]
	monitorMemo    memo[*health.Monitor]
	points         map[pointKey]metrics.Report
	inflight       map[pointKey]*inflightPoint
}

type pointKey struct {
	log     string
	a, u    float64
	variant string
}

// memo gates one expensive shared resource behind a sync.Once so concurrent
// first callers build it exactly once and everyone waits on the same build
// instead of racing to be the last writer. A failed build is memoized too:
// these generators fail only on invalid configuration, which retrying
// cannot fix.
type memo[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (m *memo[T]) get(build func() (T, error)) (T, error) {
	m.once.Do(func() { m.val, m.err = build() })
	return m.val, m.err
}

// inflightPoint is one simulation point being computed right now: waiters
// block on done instead of recomputing. The fields are written only by the
// owner before it closes done.
type inflightPoint struct {
	done chan struct{}
	r    metrics.Report
	err  error
}

// errAbandoned marks an inflight point whose owning Prefetch aborted before
// computing it; waiters claim the key and compute it themselves.
var errAbandoned = errors.New("experiment: inflight point abandoned")

// NewEnv returns an Env at the paper's full scale.
func NewEnv() *Env {
	return &Env{
		logs:      make(map[string]*memo[*workload.Log]),
		altTraces: make(map[string]*memo[*failure.Trace]),
		points:    make(map[pointKey]metrics.Report),
		inflight:  make(map[pointKey]*inflightPoint),
	}
}

func (e *Env) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// acquireSim claims one machine-wide simulation slot and returns its
// release. Hold the slot only around the simulation itself — never while
// blocking on a memo or an inflight point, so slot holders always make
// progress and the semaphore cannot deadlock.
func (e *Env) acquireSim() func() {
	e.semOnce.Do(func() { e.sem = make(chan struct{}, e.workers()) })
	e.sem <- struct{}{}
	return func() { <-e.sem }
}

// logMemo returns the memo cell for a workload key, creating it on first
// use. Only the map access holds the mutex; generation runs outside it so
// workers building different logs do not serialize.
func (e *Env) logMemo(key string) *memo[*workload.Log] {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.logs[key]
	if !ok {
		m = &memo[*workload.Log]{}
		e.logs[key] = m
	}
	return m
}

// Log returns the named synthetic workload, generating it on first use.
func (e *Env) Log(name string) (*workload.Log, error) {
	return e.logMemo(name).get(func() (*workload.Log, error) {
		return workload.Generate(name, workload.GenConfig{Jobs: e.JobCount, Seed: e.Seed})
	})
}

// Trace returns the shared failure trace, generating it on first use.
func (e *Env) Trace() (*failure.Trace, error) {
	return e.traceMemo.get(func() (*failure.Trace, error) {
		return failure.GenerateTrace(failure.RawConfig{Seed: e.Seed}, failure.FilterConfig{})
	})
}

// Variants are the named configuration ablations. The empty name is the
// full system.
var variants = map[string]func(*sim.Config){
	"":              nil,
	"first-fit":     func(c *sim.Config) { c.FaultAware = false },
	"no-skip":       func(c *sim.Config) { c.DeadlineSkip = false },
	"no-negotiate":  func(c *sim.Config) { c.Negotiate = false },
	"pure-forecast": func(c *sim.Config) { c.BaseRateFloor = false },
	"periodic":      func(c *sim.Config) { c.Policy = checkpoint.Periodic{} },
	"no-checkpoint": func(c *sim.Config) { c.Policy = checkpoint.Never{} },
	// Failure-model variants swap the failure trace itself (handled in
	// compute, not by mutating the config): the stochastic-model follow-up
	// study the paper suggests.
	"poisson-failures": nil,
	"weibull-failures": nil,
	// Horizon variants degrade prediction accuracy with forecast distance
	// (§3.3: "predictions are less accurate as they stretch further into
	// the future").
	"horizon-6h":  func(c *sim.Config) { c.PredictionHalfLife = 6 * units.Hour },
	"horizon-48h": func(c *sim.Config) { c.PredictionHalfLife = 48 * units.Hour },
	// inflated-estimates swaps the workload for one whose users
	// overestimate runtimes ~1.8x on average (§3.3 notes exact estimates
	// are "not always true in practice"). Handled in compute.
	"inflated-estimates": nil,
	// monitor-predictor replaces the idealized trace predictor with the
	// working health monitor built from telemetry and precursor events
	// (§3.1/§3.2). Handled in compute.
	"monitor-predictor": nil,
}

// Monitor returns the shared health-monitoring predictor, building the raw
// log and telemetry on first use. The raw log uses the same configuration
// as Trace(), so the monitor's ground truth is the trace the simulator
// replays. Concurrent first callers share one build: the generation used to
// run outside the mutex, so each caller built its own monitor and the last
// writer won.
func (e *Env) Monitor() (*health.Monitor, error) {
	return e.monitorMemo.get(func() (*health.Monitor, error) {
		raw := failure.GenerateRawLog(failure.RawConfig{Seed: e.Seed})
		telemetry, err := health.Generate(health.TelemetryConfig{Seed: e.Seed}, raw)
		if err != nil {
			return nil, err
		}
		return health.NewMonitor(telemetry, raw, health.MonitorConfig{})
	})
}

// inflatedLog returns the memoized estimate-inflated twin of a workload.
func (e *Env) inflatedLog(name string) (*workload.Log, error) {
	return e.logMemo("inflated/" + name).get(func() (*workload.Log, error) {
		return workload.Generate(name, workload.GenConfig{
			Jobs: e.JobCount, Seed: e.Seed, EstimateInflation: 0.8,
		})
	})
}

// stochasticTrace returns the memoized statistical-model trace for a
// failure-model variant, matched to the real trace's rate.
func (e *Env) stochasticTrace(variant string) (*failure.Trace, error) {
	e.mu.Lock()
	m, ok := e.altTraces[variant]
	if !ok {
		m = &memo[*failure.Trace]{}
		e.altTraces[variant] = m
	}
	e.mu.Unlock()
	return m.get(func() (*failure.Trace, error) {
		kind := failure.Exponential
		if variant == "weibull-failures" {
			kind = failure.WeibullDecreasing
		}
		return failure.GenerateStochastic(failure.StochasticConfig{Kind: kind, Seed: e.Seed})
	})
}

// VariantNames lists the ablation variants in a stable order.
func VariantNames() []string {
	names := make([]string, 0, len(variants))
	for n := range variants {
		if n != "" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// noteQueued adds n newly queued points to the progress tally and notifies
// Progress, if set.
func (e *Env) noteQueued(n int) {
	if n == 0 {
		return
	}
	e.mu.Lock()
	e.progressQueued += n
	done, queued, cb := e.progressDone, e.progressQueued, e.Progress
	e.mu.Unlock()
	if cb != nil {
		cb(done, queued)
	}
}

// noteDone records one computed point and notifies Progress, if set.
func (e *Env) noteDone() {
	e.mu.Lock()
	e.progressDone++
	done, queued, cb := e.progressDone, e.progressQueued, e.Progress
	e.mu.Unlock()
	if cb != nil {
		cb(done, queued)
	}
}

// noteSkipped removes n abandoned points from the progress tally and
// notifies Progress, if set. Work dropped after an error is no longer
// queued; leaving it counted would overstate the remaining work — and
// count it twice if a later Prefetch queues it again.
func (e *Env) noteSkipped(n int) {
	if n == 0 {
		return
	}
	e.mu.Lock()
	e.progressQueued -= n
	done, queued, cb := e.progressDone, e.progressQueued, e.Progress
	e.mu.Unlock()
	if cb != nil {
		cb(done, queued)
	}
}

// Point runs (or recalls) one simulation at (log, a, u) under the named
// variant and returns its metrics. A point already being computed — by a
// concurrent Point call or a Prefetch worker — is joined, not recomputed:
// the caller waits on the in-flight result instead of running the
// simulation a second time (and double-counting it in the progress tally).
func (e *Env) Point(log string, a, u float64, variant string) (metrics.Report, error) {
	key := pointKey{log: log, a: a, u: u, variant: variant}
	for {
		e.mu.Lock()
		if r, ok := e.points[key]; ok {
			e.mu.Unlock()
			return r, nil
		}
		if c, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			<-c.done
			if c.err == errAbandoned {
				continue // the owner bailed before computing; claim the key
			}
			return c.r, c.err
		}
		c := &inflightPoint{done: make(chan struct{})}
		e.inflight[key] = c
		e.mu.Unlock()
		e.noteQueued(1)
		e.computePoint(key, c)
		return c.r, c.err
	}
}

// computePoint runs the simulation for an inflight entry the caller owns,
// publishes the result, settles the progress tally, and wakes waiters.
func (e *Env) computePoint(key pointKey, c *inflightPoint) {
	c.r, c.err = e.compute(key)
	e.mu.Lock()
	if c.err == nil {
		e.points[key] = c.r
	}
	delete(e.inflight, key)
	e.mu.Unlock()
	if c.err == nil {
		e.noteDone()
	} else {
		e.noteSkipped(1)
	}
	close(c.done)
}

// abandonPoint releases an owned inflight entry without computing it (its
// Prefetch aborted); waiters retry and take over the key.
func (e *Env) abandonPoint(key pointKey, c *inflightPoint) {
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	c.err = errAbandoned
	e.noteSkipped(1)
	close(c.done)
}

func (e *Env) compute(key pointKey) (metrics.Report, error) {
	mutate, ok := variants[key.variant]
	if !ok {
		return metrics.Report{}, fmt.Errorf("experiment: unknown variant %q", key.variant)
	}
	log, err := e.Log(key.log)
	if err != nil {
		return metrics.Report{}, err
	}
	tr, err := e.Trace()
	if err != nil {
		return metrics.Report{}, err
	}
	switch key.variant {
	case "poisson-failures", "weibull-failures":
		if tr, err = e.stochasticTrace(key.variant); err != nil {
			return metrics.Report{}, err
		}
	case "inflated-estimates":
		if log, err = e.inflatedLog(key.log); err != nil {
			return metrics.Report{}, err
		}
	}
	var monitorPred *health.Monitor
	if key.variant == "monitor-predictor" {
		if monitorPred, err = e.Monitor(); err != nil {
			return metrics.Report{}, err
		}
	}
	cfg := sim.DefaultConfig(log, tr)
	cfg.Accuracy = key.a
	cfg.UserRisk = key.u
	if monitorPred != nil {
		cfg.Predictor = monitorPred
	}
	if mutate != nil {
		mutate(&cfg)
	}
	release := e.acquireSim()
	res, err := simRun(cfg)
	release()
	if err != nil {
		return metrics.Report{}, fmt.Errorf("experiment: %s a=%.1f U=%.1f %q: %w",
			key.log, key.a, key.u, key.variant, err)
	}
	return metrics.Compute(res), nil
}

// PointSpec names one simulation point for prefetching.
type PointSpec struct {
	Log     string
	A, U    float64
	Variant string
}

// Prefetch evaluates the points concurrently (bounded by Workers) so later
// Point calls hit the cache. The first error aborts remaining work. Points
// another caller is already computing are joined rather than recomputed.
func (e *Env) Prefetch(specs []PointSpec) error {
	// Deduplicate, drop cached points, and claim ownership of the rest;
	// keys already in flight elsewhere are collected to join afterwards.
	type ownedPoint struct {
		key pointKey
		c   *inflightPoint
	}
	e.mu.Lock()
	seen := make(map[pointKey]bool, len(specs))
	var todo []ownedPoint
	var joins []pointKey
	for _, s := range specs {
		key := pointKey{log: s.Log, a: s.A, u: s.U, variant: s.Variant}
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := e.points[key]; ok {
			continue
		}
		if _, ok := e.inflight[key]; ok {
			joins = append(joins, key)
			continue
		}
		c := &inflightPoint{done: make(chan struct{})}
		e.inflight[key] = c
		todo = append(todo, ownedPoint{key: key, c: c})
	}
	e.mu.Unlock()
	if len(todo) == 0 && len(joins) == 0 {
		return nil
	}
	e.noteQueued(len(todo))

	var (
		wg       sync.WaitGroup
		work     = make(chan ownedPoint)
		errOnce  sync.Once
		firstErr error
		aborted  = make(chan struct{})
	)
	abort := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(aborted)
		})
	}
	for i := 0; i < e.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range work {
				select {
				case <-aborted:
					// A key handed over in the same select round as the
					// abort: drop it uncomputed.
					e.abandonPoint(op.key, op.c)
					continue
				default:
				}
				e.computePoint(op.key, op.c)
				if op.c.err != nil {
					abort(op.c.err)
				}
			}
		}()
	}
	dispatched := len(todo)
dispatch:
	for i, op := range todo {
		// The non-blocking check makes the cutoff deterministic once the
		// abort lands; the blocking select alone could keep picking the
		// send branch while workers drain.
		select {
		case <-aborted:
			dispatched = i
			break dispatch
		default:
		}
		select {
		case <-aborted:
			dispatched = i
			break dispatch
		case work <- op:
		}
	}
	// Everything not handed out is abandoned; each key leaves the progress
	// tally exactly once (here, or in the worker that received it), and its
	// waiters — if any — are released to claim the key themselves.
	for _, op := range todo[dispatched:] {
		e.abandonPoint(op.key, op.c)
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Join points other callers were computing; Point waits on the live
	// entry (or recomputes if its owner abandoned it).
	for _, key := range joins {
		if _, err := e.Point(key.log, key.a, key.u, key.variant); err != nil {
			return err
		}
	}
	return nil
}
