// Package experiment defines the paper's evaluation: one experiment per
// table and figure (Table 1, Table 2, Figures 1-12), the headline-numbers
// summary, and the ablations of DESIGN.md §6. cmd/qossweep and the
// benchmark harness both execute these definitions, so the CLI output and
// the bench output are the same rows the paper reports.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/health"
	"probqos/internal/metrics"
	"probqos/internal/sim"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// Env carries the shared inputs (workloads, failure trace) and memoizes
// simulation points, since the figures share many (log, a, U) runs.
// An Env is safe for concurrent use.
type Env struct {
	// JobCount scales the workloads; 0 means the paper's 10,000 jobs.
	JobCount int
	// Seed selects the synthetic trace streams.
	Seed int64
	// Workers bounds parallel point evaluation; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, observes sweep progress: it is called with the
	// cumulative number of points computed and the cumulative number queued
	// so far (the total grows as experiments prefetch their grids). Calls
	// may come from concurrent workers. Set it before running experiments.
	Progress func(done, queued int)

	mu             sync.Mutex
	progressDone   int
	progressQueued int
	logs           map[string]*workload.Log
	trace          *failure.Trace
	altTraces      map[string]*failure.Trace
	rawLog         []failure.RawEvent
	monitor        *health.Monitor
	points         map[pointKey]metrics.Report
}

type pointKey struct {
	log     string
	a, u    float64
	variant string
}

// NewEnv returns an Env at the paper's full scale.
func NewEnv() *Env {
	return &Env{
		logs:      make(map[string]*workload.Log),
		altTraces: make(map[string]*failure.Trace),
		points:    make(map[pointKey]metrics.Report),
	}
}

func (e *Env) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Log returns the named synthetic workload, generating it on first use.
func (e *Env) Log(name string) (*workload.Log, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if l, ok := e.logs[name]; ok {
		return l, nil
	}
	l, err := workload.Generate(name, workload.GenConfig{Jobs: e.JobCount, Seed: e.Seed})
	if err != nil {
		return nil, err
	}
	e.logs[name] = l
	return l, nil
}

// Trace returns the shared failure trace, generating it on first use.
func (e *Env) Trace() (*failure.Trace, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trace != nil {
		return e.trace, nil
	}
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: e.Seed}, failure.FilterConfig{})
	if err != nil {
		return nil, err
	}
	e.trace = tr
	return tr, nil
}

// Variants are the named configuration ablations. The empty name is the
// full system.
var variants = map[string]func(*sim.Config){
	"":              nil,
	"first-fit":     func(c *sim.Config) { c.FaultAware = false },
	"no-skip":       func(c *sim.Config) { c.DeadlineSkip = false },
	"no-negotiate":  func(c *sim.Config) { c.Negotiate = false },
	"pure-forecast": func(c *sim.Config) { c.BaseRateFloor = false },
	"periodic":      func(c *sim.Config) { c.Policy = checkpoint.Periodic{} },
	"no-checkpoint": func(c *sim.Config) { c.Policy = checkpoint.Never{} },
	// Failure-model variants swap the failure trace itself (handled in
	// compute, not by mutating the config): the stochastic-model follow-up
	// study the paper suggests.
	"poisson-failures": nil,
	"weibull-failures": nil,
	// Horizon variants degrade prediction accuracy with forecast distance
	// (§3.3: "predictions are less accurate as they stretch further into
	// the future").
	"horizon-6h":  func(c *sim.Config) { c.PredictionHalfLife = 6 * units.Hour },
	"horizon-48h": func(c *sim.Config) { c.PredictionHalfLife = 48 * units.Hour },
	// inflated-estimates swaps the workload for one whose users
	// overestimate runtimes ~1.8x on average (§3.3 notes exact estimates
	// are "not always true in practice"). Handled in compute.
	"inflated-estimates": nil,
	// monitor-predictor replaces the idealized trace predictor with the
	// working health monitor built from telemetry and precursor events
	// (§3.1/§3.2). Handled in compute.
	"monitor-predictor": nil,
}

// Monitor returns the shared health-monitoring predictor, building the raw
// log and telemetry on first use. The raw log uses the same configuration
// as Trace(), so the monitor's ground truth is the trace the simulator
// replays.
func (e *Env) Monitor() (*health.Monitor, error) {
	e.mu.Lock()
	if e.monitor != nil {
		m := e.monitor
		e.mu.Unlock()
		return m, nil
	}
	e.mu.Unlock()
	raw := failure.GenerateRawLog(failure.RawConfig{Seed: e.Seed})
	telemetry, err := health.Generate(health.TelemetryConfig{Seed: e.Seed}, raw)
	if err != nil {
		return nil, err
	}
	m, err := health.NewMonitor(telemetry, raw, health.MonitorConfig{})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.rawLog = raw
	e.monitor = m
	e.mu.Unlock()
	return m, nil
}

// inflatedLog returns the memoized estimate-inflated twin of a workload.
func (e *Env) inflatedLog(name string) (*workload.Log, error) {
	key := "inflated/" + name
	e.mu.Lock()
	if l, ok := e.logs[key]; ok {
		e.mu.Unlock()
		return l, nil
	}
	e.mu.Unlock()
	l, err := workload.Generate(name, workload.GenConfig{
		Jobs: e.JobCount, Seed: e.Seed, EstimateInflation: 0.8,
	})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.logs[key] = l
	e.mu.Unlock()
	return l, nil
}

// stochasticTrace returns the memoized statistical-model trace for a
// failure-model variant, matched to the real trace's rate.
func (e *Env) stochasticTrace(variant string) (*failure.Trace, error) {
	kind := failure.Exponential
	if variant == "weibull-failures" {
		kind = failure.WeibullDecreasing
	}
	e.mu.Lock()
	if tr, ok := e.altTraces[variant]; ok {
		e.mu.Unlock()
		return tr, nil
	}
	e.mu.Unlock()
	tr, err := failure.GenerateStochastic(failure.StochasticConfig{Kind: kind, Seed: e.Seed})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.altTraces[variant] = tr
	e.mu.Unlock()
	return tr, nil
}

// VariantNames lists the ablation variants in a stable order.
func VariantNames() []string {
	names := make([]string, 0, len(variants))
	for n := range variants {
		if n != "" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// noteQueued adds n newly queued points to the progress tally and notifies
// Progress, if set.
func (e *Env) noteQueued(n int) {
	if n == 0 {
		return
	}
	e.mu.Lock()
	e.progressQueued += n
	done, queued, cb := e.progressDone, e.progressQueued, e.Progress
	e.mu.Unlock()
	if cb != nil {
		cb(done, queued)
	}
}

// noteDone records one computed point and notifies Progress, if set.
func (e *Env) noteDone() {
	e.mu.Lock()
	e.progressDone++
	done, queued, cb := e.progressDone, e.progressQueued, e.Progress
	e.mu.Unlock()
	if cb != nil {
		cb(done, queued)
	}
}

// noteSkipped removes n abandoned points from the progress tally and
// notifies Progress, if set. Work dropped after an error is no longer
// queued; leaving it counted would overstate the remaining work — and
// count it twice if a later Prefetch queues it again.
func (e *Env) noteSkipped(n int) {
	if n == 0 {
		return
	}
	e.mu.Lock()
	e.progressQueued -= n
	done, queued, cb := e.progressDone, e.progressQueued, e.Progress
	e.mu.Unlock()
	if cb != nil {
		cb(done, queued)
	}
}

// Point runs (or recalls) one simulation at (log, a, u) under the named
// variant and returns its metrics.
func (e *Env) Point(log string, a, u float64, variant string) (metrics.Report, error) {
	key := pointKey{log: log, a: a, u: u, variant: variant}
	e.mu.Lock()
	if r, ok := e.points[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()

	e.noteQueued(1)
	r, err := e.compute(key)
	if err != nil {
		return metrics.Report{}, err
	}
	e.mu.Lock()
	e.points[key] = r
	e.mu.Unlock()
	e.noteDone()
	return r, nil
}

func (e *Env) compute(key pointKey) (metrics.Report, error) {
	mutate, ok := variants[key.variant]
	if !ok {
		return metrics.Report{}, fmt.Errorf("experiment: unknown variant %q", key.variant)
	}
	log, err := e.Log(key.log)
	if err != nil {
		return metrics.Report{}, err
	}
	tr, err := e.Trace()
	if err != nil {
		return metrics.Report{}, err
	}
	switch key.variant {
	case "poisson-failures", "weibull-failures":
		if tr, err = e.stochasticTrace(key.variant); err != nil {
			return metrics.Report{}, err
		}
	case "inflated-estimates":
		if log, err = e.inflatedLog(key.log); err != nil {
			return metrics.Report{}, err
		}
	}
	var monitorPred *health.Monitor
	if key.variant == "monitor-predictor" {
		if monitorPred, err = e.Monitor(); err != nil {
			return metrics.Report{}, err
		}
	}
	cfg := sim.DefaultConfig(log, tr)
	cfg.Accuracy = key.a
	cfg.UserRisk = key.u
	if monitorPred != nil {
		cfg.Predictor = monitorPred
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return metrics.Report{}, fmt.Errorf("experiment: %s a=%.1f U=%.1f %q: %w",
			key.log, key.a, key.u, key.variant, err)
	}
	return metrics.Compute(res), nil
}

// PointSpec names one simulation point for prefetching.
type PointSpec struct {
	Log     string
	A, U    float64
	Variant string
}

// Prefetch evaluates the points concurrently (bounded by Workers) so later
// Point calls hit the cache. The first error aborts remaining work.
func (e *Env) Prefetch(specs []PointSpec) error {
	// Deduplicate and drop already-cached points.
	e.mu.Lock()
	seen := make(map[pointKey]bool, len(specs))
	var todo []pointKey
	for _, s := range specs {
		key := pointKey{log: s.Log, a: s.A, u: s.U, variant: s.Variant}
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := e.points[key]; !ok {
			todo = append(todo, key)
		}
	}
	e.mu.Unlock()
	if len(todo) == 0 {
		return nil
	}
	e.noteQueued(len(todo))

	var (
		wg       sync.WaitGroup
		work     = make(chan pointKey)
		errOnce  sync.Once
		firstErr error
		aborted  = make(chan struct{})
	)
	abort := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(aborted)
		})
	}
	for i := 0; i < e.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range work {
				select {
				case <-aborted:
					// A key handed over in the same select round as the
					// abort: drop it uncomputed.
					e.noteSkipped(1)
					continue
				default:
				}
				r, err := e.compute(key)
				if err != nil {
					abort(err)
					e.noteSkipped(1)
					continue
				}
				e.mu.Lock()
				e.points[key] = r
				e.mu.Unlock()
				e.noteDone()
			}
		}()
	}
	dispatched := len(todo)
dispatch:
	for i, key := range todo {
		// The non-blocking check makes the cutoff deterministic once the
		// abort lands; the blocking select alone could keep picking the
		// send branch while workers drain.
		select {
		case <-aborted:
			dispatched = i
			break dispatch
		default:
		}
		select {
		case <-aborted:
			dispatched = i
			break dispatch
		case work <- key:
		}
	}
	// Everything not handed out is abandoned; each key leaves the progress
	// tally exactly once (here, or in the worker that received it).
	e.noteSkipped(len(todo) - dispatched)
	close(work)
	wg.Wait()
	return firstErr
}
