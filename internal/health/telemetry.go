// Package health implements the §3.1 substrate the idealized predictor
// abstracts away: per-node telemetry (temperature, load) and a monitoring
// model that turns telemetry plus low-severity RAS events into failure-risk
// estimates. The paper's §3.2 describes the real mechanism as "linear time
// series models for the roughly continuous variables (e.g. node temperature
// and load) and Bayesian correlation models to recognize patterns in
// preceding system events"; this package provides a working (synthetic)
// version of that pipeline, auditable against the ground-truth trace.
package health

import (
	"fmt"
	"math"
	"sort"

	"probqos/internal/failure"
	"probqos/internal/stats"
	"probqos/internal/units"
)

// Sample is one telemetry reading from one node.
type Sample struct {
	Time units.Time
	// Temperature in °C.
	Temperature float64
	// Load is the node's utilization-ish signal in [0, 1].
	Load float64
}

// Telemetry holds regularly sampled per-node signals.
type Telemetry struct {
	interval units.Duration
	perNode  [][]Sample // ascending in time
}

// TelemetryConfig parameterizes the synthetic telemetry generator.
type TelemetryConfig struct {
	// Nodes is the cluster size. Defaults to 128.
	Nodes int
	// Span is the covered duration. Defaults to one year.
	Span units.Duration
	// Interval is the sampling period. Defaults to 10 minutes.
	Interval units.Duration
	// Seed selects the random stream.
	Seed int64
	// RampLead is how long before a critical event its thermal ramp
	// builds. Defaults to 2 hours, matching the precursor lead times of
	// the raw-log generator.
	RampLead units.Duration
}

func (c TelemetryConfig) withDefaults() TelemetryConfig {
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	if c.Span == 0 {
		c.Span = units.Year
	}
	if c.Interval == 0 {
		c.Interval = 10 * units.Minute
	}
	if c.RampLead == 0 {
		c.RampLead = 2 * units.Hour
	}
	return c
}

// Generate synthesizes telemetry consistent with a raw RAS log: each
// node's temperature is a noisy diurnal baseline, with a thermal ramp
// building toward every critical event on the node (failures physically
// announce themselves in the continuous signals — that is what makes
// §3.2's time-series models work at all).
func Generate(cfg TelemetryConfig, raw []failure.RawEvent) (*Telemetry, error) {
	cfg = cfg.withDefaults()
	if cfg.Interval <= 0 || cfg.Span <= 0 {
		return nil, fmt.Errorf("health: telemetry needs positive span and interval")
	}
	src := stats.NewSource(cfg.Seed ^ 0x11c3a97)
	noise := src.Split("noise")
	base := src.Split("base")

	// Critical instants per node drive the ramps.
	criticalAt := make([][]units.Time, cfg.Nodes)
	for _, e := range raw {
		if e.Severity >= failure.Fatal && e.Node >= 0 && e.Node < cfg.Nodes {
			criticalAt[e.Node] = append(criticalAt[e.Node], e.Time)
		}
	}
	for n := range criticalAt {
		sort.Slice(criticalAt[n], func(i, j int) bool { return criticalAt[n][i] < criticalAt[n][j] })
	}

	t := &Telemetry{interval: cfg.Interval, perNode: make([][]Sample, cfg.Nodes)}
	samples := int(cfg.Span / cfg.Interval)
	day := units.Day.Seconds()
	for n := 0; n < cfg.Nodes; n++ {
		baseTemp := 42 + base.Norm(0, 2)
		series := make([]Sample, 0, samples)
		next := 0
		for k := 0; k < samples; k++ {
			at := units.Time(k) * units.Time(cfg.Interval)
			for next < len(criticalAt[n]) && criticalAt[n][next] < at {
				next++
			}
			temp := baseTemp +
				1.5*math.Sin(2*math.Pi*float64(at)/day) + // machine-room diurnal cycle
				noise.Norm(0, 0.6)
			load := 0.55 + 0.25*math.Sin(2*math.Pi*float64(at)/day+1) + noise.Norm(0, 0.08)
			if load < 0 {
				load = 0
			}
			if load > 1 {
				load = 1
			}
			// Thermal ramp toward the next critical event on this node.
			if next < len(criticalAt[n]) {
				lead := criticalAt[n][next].Sub(at)
				if lead >= 0 && lead <= cfg.RampLead {
					frac := 1 - lead.Seconds()/cfg.RampLead.Seconds()
					temp += 9 * frac
				}
			}
			series = append(series, Sample{Time: at, Temperature: temp, Load: load})
		}
		t.perNode[n] = series
	}
	return t, nil
}

// Nodes returns the number of nodes covered.
func (t *Telemetry) Nodes() int { return len(t.perNode) }

// Interval returns the sampling period.
func (t *Telemetry) Interval() units.Duration { return t.interval }

// Window returns the node's samples with Time in [from, to).
func (t *Telemetry) Window(node int, from, to units.Time) []Sample {
	series := t.perNode[node]
	lo := sort.Search(len(series), func(i int) bool { return series[i].Time >= from })
	hi := sort.Search(len(series), func(i int) bool { return series[i].Time >= to })
	return series[lo:hi]
}

// Slope returns the least-squares temperature slope (°C per hour) of the
// node's samples in [from, to), and false if fewer than three samples are
// available.
func (t *Telemetry) Slope(node int, from, to units.Time) (float64, bool) {
	window := t.Window(node, from, to)
	if len(window) < 3 {
		return 0, false
	}
	var sx, sy, sxx, sxy float64
	for _, s := range window {
		x := s.Time.Sub(from).Hours()
		sx += x
		sy += s.Temperature
		sxx += x * x
		sxy += x * s.Temperature
	}
	n := float64(len(window))
	// den is nonnegative up to rounding (Cauchy–Schwarz); treat cancellation
	// noise below zero as the same degenerate window as exact zero.
	den := n*sxx - sx*sx
	if den <= 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}
