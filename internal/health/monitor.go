package health

import (
	"fmt"
	"math"
	"sort"

	"probqos/internal/failure"
	"probqos/internal/units"
)

// Monitor is a working (non-oracle) failure predictor in the style the
// paper describes in §3.2: it combines a linear time-series signal (the
// recent temperature slope) with an event-correlation signal (the recent
// rate of WARNING/ERROR events) into a per-node hazard score, and converts
// scores into a partition failure probability.
//
// Unlike the idealized trace predictor, the Monitor only looks at
// telemetry and events before the queried window's start: it has a real
// forecast horizon, produces false positives, and misses failures without
// precursors. It implements predict.Predictor.
//
// One idealization remains, shared with the paper's own simulator: a quote
// for a reservation starting in the future is evaluated against the
// history available just before that start, standing in for the
// re-evaluation a live system would perform as the start approaches. (The
// paper: "In practice, predictions are less accurate as they stretch
// further into the future ... the simulator, however, suffers from no such
// problem.")
type Monitor struct {
	telemetry *Telemetry
	// warnings[node] holds the times of non-critical precursor events.
	warnings [][]units.Time

	lookback     units.Duration
	slopeWeight  float64
	warnWeight   float64
	minSlope     float64
	horizon      units.Duration
	maxPrognosis float64
}

// MonitorConfig tunes the monitoring model.
type MonitorConfig struct {
	// Lookback is how much history before a window's start feeds the
	// model. Defaults to 4 hours.
	Lookback units.Duration
	// Horizon is the decay scale of the model's confidence with forecast
	// distance: risk halves every Horizon between the last observable
	// instant and the window start. Defaults to 6 hours.
	Horizon units.Duration
	// SlopeWeight and WarnWeight scale the two signals. Defaults 0.35 per
	// °C/hour of slope above MinSlope and 0.30 per precursor event beyond
	// the first.
	SlopeWeight, WarnWeight float64
	// MinSlope is the alarm threshold in °C/hour: slopes below it are
	// treated as noise (sampling noise and the diurnal cycle produce
	// slopes up to ~0.5 °C/h). Defaults to 1.5.
	MinSlope float64
	// MaxPrognosis caps the per-node probability; a monitoring model
	// should not claim certainty. Defaults to 0.95.
	MaxPrognosis float64
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Lookback == 0 {
		c.Lookback = 4 * units.Hour
	}
	if c.Horizon == 0 {
		c.Horizon = 6 * units.Hour
	}
	if c.SlopeWeight <= 0 {
		c.SlopeWeight = 0.35
	}
	if c.WarnWeight <= 0 {
		c.WarnWeight = 0.30
	}
	if c.MinSlope <= 0 {
		c.MinSlope = 1.5
	}
	if c.MaxPrognosis <= 0 {
		c.MaxPrognosis = 0.95
	}
	return c
}

// NewMonitor builds the monitoring model over telemetry and the raw RAS
// log (from which only non-critical events are consumed — the monitor must
// not see the failures it is trying to predict).
func NewMonitor(t *Telemetry, raw []failure.RawEvent, cfg MonitorConfig) (*Monitor, error) {
	if t == nil {
		return nil, fmt.Errorf("health: monitor needs telemetry")
	}
	cfg = cfg.withDefaults()
	m := &Monitor{
		telemetry:    t,
		warnings:     make([][]units.Time, t.Nodes()),
		lookback:     cfg.Lookback,
		slopeWeight:  cfg.SlopeWeight,
		warnWeight:   cfg.WarnWeight,
		minSlope:     cfg.MinSlope,
		horizon:      cfg.Horizon,
		maxPrognosis: cfg.MaxPrognosis,
	}
	for _, e := range raw {
		if e.Severity == failure.Warning || e.Severity == failure.Error {
			if e.Node >= 0 && e.Node < t.Nodes() {
				m.warnings[e.Node] = append(m.warnings[e.Node], e.Time)
			}
		}
	}
	for n := range m.warnings {
		sort.Slice(m.warnings[n], func(i, j int) bool { return m.warnings[n][i] < m.warnings[n][j] })
	}
	return m, nil
}

// nodeScore is the raw hazard score of one node using only data in
// [asOf-lookback, asOf).
func (m *Monitor) nodeScore(node int, asOf units.Time) float64 {
	from := asOf.Add(-m.lookback)
	score := 0.0
	if slope, ok := m.telemetry.Slope(node, from, asOf); ok && slope > m.minSlope {
		score += m.slopeWeight * (slope - m.minSlope)
	}
	warns := m.warnings[node]
	lo := sort.Search(len(warns), func(i int) bool { return warns[i] >= from })
	hi := sort.Search(len(warns), func(i int) bool { return warns[i] >= asOf })
	// A single warning in four hours is background chatter; the
	// correlation signal is a burst of them.
	if count := hi - lo; count > 1 {
		score += m.warnWeight * float64(count-1)
	}
	return score
}

// PFail implements predict.Predictor: the probability that some node in
// the set fails during [from, to), estimated from the observable history
// before from and discounted by forecast distance. The last telemetry
// sample before from is the model's "now"; risk decays with how far past
// it the window reaches.
func (m *Monitor) PFail(nodes []int, from, to units.Time) float64 {
	if to <= from {
		return 0
	}
	survive := 1.0
	for _, n := range nodes {
		if n < 0 || n >= m.telemetry.Nodes() {
			continue
		}
		survive *= 1 - m.nodeRisk(n, from)
	}
	return m.decayRisk(1-survive, from, to)
}

// PFailNode implements predict.NodePredictor: the single-node estimate the
// scheduler's scoring loop asks for, without the partition loop.
func (m *Monitor) PFailNode(node int, from, to units.Time) float64 {
	if to <= from {
		return 0
	}
	survive := 1.0
	if node >= 0 && node < m.telemetry.Nodes() {
		survive = 1 - m.nodeRisk(node, from)
	}
	return m.decayRisk(1-survive, from, to)
}

// nodeRisk converts one node's hazard score into a capped probability.
func (m *Monitor) nodeRisk(node int, asOf units.Time) float64 {
	p := 1 - math.Exp(-m.nodeScore(node, asOf))
	if p > m.maxPrognosis {
		p = m.maxPrognosis
	}
	return p
}

// decayRisk applies the forecast-distance discount: confidence decays for
// windows far from the observed signal — a prognosis is about the near
// future.
func (m *Monitor) decayRisk(risk float64, from, to units.Time) float64 {
	width := to.Sub(from)
	if width > m.horizon {
		risk *= math.Exp2(-float64(width-m.horizon) / float64(m.horizon))
	}
	return risk
}
