package health

import (
	"math"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/predict"
	"probqos/internal/units"
)

func generateScenario(t *testing.T) ([]failure.RawEvent, *failure.Trace, *Telemetry) {
	t.Helper()
	rawCfg := failure.RawConfig{Nodes: 32, Span: 60 * units.Day, Episodes: 120, Seed: 3}
	raw := failure.GenerateRawLog(rawCfg)
	trace, err := failure.Filter(raw, 32, failure.FilterConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	telemetry, err := Generate(TelemetryConfig{Nodes: 32, Span: 60 * units.Day, Seed: 3}, raw)
	if err != nil {
		t.Fatal(err)
	}
	return raw, trace, telemetry
}

func TestGenerateTelemetryShape(t *testing.T) {
	_, _, telemetry := generateScenario(t)
	if telemetry.Nodes() != 32 {
		t.Fatalf("nodes = %d", telemetry.Nodes())
	}
	window := telemetry.Window(0, 0, units.Time(units.Day))
	if len(window) != int(units.Day/(10*units.Minute)) {
		t.Fatalf("one day of samples = %d", len(window))
	}
	for i, s := range window {
		if s.Temperature < 20 || s.Temperature > 80 {
			t.Fatalf("sample %d temperature %v out of physical range", i, s.Temperature)
		}
		if s.Load < 0 || s.Load > 1 {
			t.Fatalf("sample %d load %v out of range", i, s.Load)
		}
		if i > 0 && s.Time <= window[i-1].Time {
			t.Fatal("samples not strictly increasing in time")
		}
	}
}

func TestTemperatureRampPrecedesFailures(t *testing.T) {
	raw, trace, telemetry := generateScenario(t)
	_ = raw
	if trace.Len() == 0 {
		t.Fatal("no failures to check")
	}
	var rampSlopes, quietSlopes []float64
	for i := 0; i < trace.Len(); i++ {
		e := trace.At(i)
		if slope, ok := telemetry.Slope(e.Node, e.Time.Add(-2*units.Hour), e.Time); ok {
			rampSlopes = append(rampSlopes, slope)
		}
		quietAt := e.Time.Add(-2 * units.Day)
		if quietAt > 0 {
			if slope, ok := telemetry.Slope(e.Node, quietAt.Add(-2*units.Hour), quietAt); ok {
				quietSlopes = append(quietSlopes, slope)
			}
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(rampSlopes) == 0 || len(quietSlopes) == 0 {
		t.Fatal("not enough slope samples")
	}
	if mean(rampSlopes) < mean(quietSlopes)+1 {
		t.Errorf("pre-failure slope %.2f should clearly exceed quiet slope %.2f",
			mean(rampSlopes), mean(quietSlopes))
	}
}

func TestSlopeDegenerate(t *testing.T) {
	_, _, telemetry := generateScenario(t)
	if _, ok := telemetry.Slope(0, 0, 60); ok {
		t.Error("slope over <3 samples should be unavailable")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, nil, MonitorConfig{}); err == nil {
		t.Error("nil telemetry accepted")
	}
	if _, err := Generate(TelemetryConfig{Interval: -1}, nil); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestMonitorDetectsImminentFailures(t *testing.T) {
	raw, trace, telemetry := generateScenario(t)
	m, err := NewMonitor(telemetry, raw, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	audit := predict.Run(m, trace, 2*units.Hour)
	t.Logf("monitor audit: detection %.2f, FP rate %.4f, mean confidence %.2f",
		audit.DetectionRate(), audit.FalsePositiveRate(), audit.MeanConfidence)
	// Sahoo et al. report ~70% detection for the real algorithms; the
	// synthetic monitor should land in a believable band, not at the
	// oracle's extremes.
	if audit.DetectionRate() < 0.4 || audit.DetectionRate() > 0.999 {
		t.Errorf("detection rate = %.2f, want a realistic mid-to-high band", audit.DetectionRate())
	}
	// A real monitor produces SOME false positives (unlike the idealized
	// predictor) but must not fire everywhere.
	if audit.FalsePositiveRate() > 0.10 {
		t.Errorf("false positive rate = %.4f, too noisy", audit.FalsePositiveRate())
	}
}

func TestMonitorHorizonDecay(t *testing.T) {
	raw, trace, telemetry := generateScenario(t)
	m, err := NewMonitor(telemetry, raw, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e := trace.At(trace.Len() / 2)
	from := e.Time.Add(-30 * units.Minute)
	near := m.PFail([]int{e.Node}, from, from.Add(2*units.Hour))
	far := m.PFail([]int{e.Node}, from, from.Add(3*units.Day))
	if near <= 0 {
		t.Skip("this failure had no precursor signal; acceptable for a real monitor")
	}
	if far >= near {
		t.Errorf("risk should decay with window width: near %.3f, far %.3f", near, far)
	}
	if got := m.PFail([]int{e.Node}, from, from); got != 0 {
		t.Errorf("empty window risk = %v", got)
	}
}

func TestMonitorRisksAreProbabilities(t *testing.T) {
	raw, _, telemetry := generateScenario(t)
	m, err := NewMonitor(telemetry, raw, MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for w := 0; w < 200; w++ {
		from := units.Time(w) * units.Time(6*units.Hour)
		pf := m.PFail(nodes, from, from.Add(4*units.Hour))
		if pf < 0 || pf > 1 || math.IsNaN(pf) {
			t.Fatalf("window %d: pf = %v", w, pf)
		}
	}
}
