package sim

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/workload"
)

// BenchmarkRunSDSC measures a complete simulation of a 1000-job SDSC-regime
// log at the paper's operating point.
func BenchmarkRunSDSC(b *testing.B) {
	log := workload.GenerateSDSC(workload.GenConfig{Jobs: 1000, Seed: 1})
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 1}, failure.FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(log, tr)
		cfg.Accuracy = 0.7
		cfg.UserRisk = 0.5
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNASA measures the denser short-job regime.
func BenchmarkRunNASA(b *testing.B) {
	log := workload.GenerateNASA(workload.GenConfig{Jobs: 1000, Seed: 1})
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 1}, failure.FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(log, tr)
		cfg.Accuracy = 0.7
		cfg.UserRisk = 0.5
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
