package sim

import (
	"container/heap"
	"testing"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// The simulator's tie-breaking rules at equal timestamps are semantic
// decisions; these tests pin them.

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	heap.Init(&q)
	push := func(tm units.Time, k Kind, seq int64) {
		heap.Push(&q, &event{time: tm, kind: k, seq: seq})
	}
	// Same timestamp, shuffled kinds.
	push(100, KindStart, 1)
	push(100, KindFailure, 2)
	push(100, KindArrival, 3)
	push(100, KindFinish, 4)
	push(100, KindRecovery, 5)
	push(50, KindCheckpointRequest, 6)
	push(100, KindCheckpointFinish, 7)

	var got []Kind
	for q.Len() > 0 {
		got = append(got, heap.Pop(&q).(*event).kind)
	}
	want := []Kind{
		KindCheckpointRequest, // earlier time wins regardless of kind
		KindFailure, KindRecovery, KindFinish, KindCheckpointFinish,
		KindArrival, KindStart,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v (full order %v)", i, got[i], want[i], got)
		}
	}
}

func TestEventQueueSeqBreaksTies(t *testing.T) {
	var q eventQueue
	heap.Init(&q)
	heap.Push(&q, &event{time: 10, kind: KindArrival, seq: 2, jobID: 2})
	heap.Push(&q, &event{time: 10, kind: KindArrival, seq: 1, jobID: 1})
	first := heap.Pop(&q).(*event)
	if first.jobID != 1 {
		t.Errorf("insertion order not respected: job %d first", first.jobID)
	}
}

func TestFailureAtFinishInstantKillsJob(t *testing.T) {
	// Failure and finish at the same timestamp: failures are processed
	// first (the conservative reading of "nodes may fail at any time").
	events := []failure.Event{{Time: 500, Node: 0, Detectability: 0.9}}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 500}}, events)
	cfg.Accuracy = 0 // invisible
	res := run(t, cfg)
	j := res.Jobs[0]
	if j.FailuresSuffered != 1 {
		t.Fatalf("boundary failure did not kill the job: %+v", j)
	}
	// The job reruns completely: 500 lost + 120 downtime + 500 redo.
	if j.Finish != 1120 {
		t.Errorf("finish = %v, want 1120", j.Finish)
	}
}

func TestArrivalSeesFinishAtSameInstant(t *testing.T) {
	// Job 2 arrives exactly when job 1 finishes: finish is processed first,
	// so job 2's quote can start immediately.
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 8, Exec: 1000},
		{ID: 2, Arrival: 1000, Nodes: 8, Exec: 100},
	}
	cfg := smallConfig(t, jobs, nil)
	res := run(t, cfg)
	for _, j := range res.Jobs {
		if j.ID == 2 && j.FirstStart != 1000 {
			t.Errorf("job 2 start = %v, want 1000 (immediately after job 1)", j.FirstStart)
		}
	}
}

func TestRecoveryBeforeStartAtSameInstant(t *testing.T) {
	// A node fails at t=880 (down until 1000). A full-machine job is
	// reserved from t=1000. Recovery sorts before Start at t=1000 and IsUp
	// is inclusive, so the job starts exactly on time.
	events := []failure.Event{{Time: 880, Node: 3, Detectability: 0.99}}
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 8, Exec: 1000},
		{ID: 2, Arrival: 10, Nodes: 8, Exec: 500},
	}
	cfg := smallConfig(t, jobs, events)
	cfg.Accuracy = 0.5
	res := run(t, cfg)
	var j2 JobRecord
	for _, j := range res.Jobs {
		if j.ID == 2 {
			j2 = j
		}
	}
	// Job 1 dies at 880 and restarts elsewhere... it needs all 8 nodes, so
	// it restarts at 1000 after downtime, pushing job 2. What matters here:
	// nothing deadlocks and the slip accounting stays consistent.
	if j2.Finish < j2.LastStart {
		t.Fatalf("job 2 timeline broken: %+v", j2)
	}
}

func TestSimultaneousArrivalsProcessedInIDOrder(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Arrival: 100, Nodes: 8, Exec: 1000},
		{ID: 2, Arrival: 100, Nodes: 8, Exec: 1000},
		{ID: 3, Arrival: 100, Nodes: 8, Exec: 1000},
	}
	cfg := smallConfig(t, jobs, nil)
	res := run(t, cfg)
	byID := make(map[int]JobRecord)
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	// FCFS among simultaneous arrivals falls back to submission (ID) order.
	if !(byID[1].FirstStart < byID[2].FirstStart && byID[2].FirstStart < byID[3].FirstStart) {
		t.Errorf("simultaneous arrivals out of order: %v / %v / %v",
			byID[1].FirstStart, byID[2].FirstStart, byID[3].FirstStart)
	}
}

func TestCheckpointFinishExactlyAtFailureInstant(t *testing.T) {
	// Checkpoint completes at the same instant a failure hits: the
	// checkpoint-finish is processed after the failure (Failure < Finish <
	// CheckpointFinish in kind order), so the checkpoint is lost and the
	// rollback reference stays at the attempt start.
	// Timeline: request at 3600, checkpoint [3600, 4320); failure at 4320.
	events := []failure.Event{{Time: 4320, Node: 0, Detectability: 0.9}}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 9000}}, events)
	cfg.Accuracy = 0
	cfg.Policy = checkpoint.Periodic{}
	res := run(t, cfg)
	j := res.Jobs[0]
	if j.FailuresSuffered != 1 {
		t.Fatalf("expected the boundary failure to kill the job: %+v", j)
	}
	// Lost work measured from attempt start (checkpoint did not complete):
	// 4320 s on 8 nodes.
	if want := units.WorkFor(8, 4320); j.LostWork != want {
		t.Errorf("lost work = %v, want %v (checkpoint must not count)", j.LostWork, want)
	}
}

// recordingObserver captures the journal for delivery-order assertions.
type recordingObserver struct{ notes []Note }

func (o *recordingObserver) Observe(n Note) { o.notes = append(o.notes, n) }

// TestObserverDeliveryOrder pins the journal contract: notes arrive in
// nondecreasing simulation time even through failures, checkpoints, requeues,
// and recoveries, and every lifecycle kind the scenario exercises shows up.
func TestObserverDeliveryOrder(t *testing.T) {
	events := []failure.Event{
		{Time: 5000, Node: 0, Detectability: 0.9},
		{Time: 6000, Node: 7, Detectability: 0.5},
	}
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 4, Exec: 9000},
		{ID: 2, Arrival: 50, Nodes: 2, Exec: 5000},
		{ID: 3, Arrival: 4000, Nodes: 8, Exec: 1000},
	}
	cfg := smallConfig(t, jobs, events)
	cfg.Accuracy = 0 // failures invisible: job 1 dies and requeues
	cfg.Policy = checkpoint.Periodic{}
	rec := &recordingObserver{}
	cfg.Observer = rec
	res := run(t, cfg)

	if len(rec.notes) == 0 {
		t.Fatal("no notes delivered")
	}
	kinds := make(map[string]int)
	for i, n := range rec.notes {
		kinds[n.Kind]++
		if i > 0 && n.Time < rec.notes[i-1].Time {
			t.Fatalf("note %d (%s) at t=%v after note %d at t=%v",
				i, n.Kind, n.Time, i-1, rec.notes[i-1].Time)
		}
	}
	for _, want := range []string{
		"arrival", "start", "checkpoint-request", "checkpoint-finish",
		"failure", "recovery", "finish",
	} {
		if kinds[want] == 0 {
			t.Errorf("journal missing kind %q (saw %v)", want, kinds)
		}
	}
	// Every lifecycle edge is journaled: one arrival and one finish per job,
	// one failure and recovery note per trace event.
	if kinds["arrival"] != len(jobs) || kinds["finish"] != len(jobs) {
		t.Errorf("arrivals/finishes = %d/%d, want %d each", kinds["arrival"], kinds["finish"], len(jobs))
	}
	if kinds["failure"] != len(res.Failures) || kinds["recovery"] != len(res.Failures) {
		t.Errorf("failures/recoveries = %d/%d, want %d each", kinds["failure"], kinds["recovery"], len(res.Failures))
	}
	if res.JobFailures() == 0 {
		t.Fatal("scenario produced no job-killing failure; requeue path not exercised")
	}
	// A requeued job starts more than once: starts exceed jobs.
	if kinds["start"] <= len(jobs) {
		t.Errorf("starts = %d, want > %d (requeue restart)", kinds["start"], len(jobs))
	}
}

// TestMultiObserver pins the fan-out semantics: nil entries are dropped, a
// single live observer is returned unwrapped, and fan-out preserves order.
func TestMultiObserver(t *testing.T) {
	if MultiObserver(nil, nil) != nil {
		t.Error("all-nil fan-out should collapse to nil")
	}
	a := &recordingObserver{}
	if got := MultiObserver(nil, a); got != Observer(a) {
		t.Error("single live observer should be returned unwrapped")
	}
	b := &recordingObserver{}
	m := MultiObserver(a, nil, b)
	m.Observe(Note{Time: 7, Kind: "x"})
	if len(a.notes) != 1 || len(b.notes) != 1 || a.notes[0].Time != 7 {
		t.Errorf("fan-out failed: a=%v b=%v", a.notes, b.notes)
	}
}
