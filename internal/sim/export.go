package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteJobsCSV writes one CSV row per completed job, for external analysis
// of a run (cmd/qossim -perjob). A nil receiver is an error, not a panic:
// callers often hold a (*Result, error) pair.
func (r *Result) WriteJobsCSV(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("sim: write jobs csv: nil result")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "id,nodes,exec_s,arrival,first_start,last_start,finish,"+
		"deadline,promised,met_deadline,quotes,attempts,failures,ckpts_done,ckpts_skipped,"+
		"deadline_skips,start_slips,lost_node_s,ckpt_overhead_s"); err != nil {
		return fmt.Errorf("sim: write jobs csv: %w", err)
	}
	for _, j := range r.Jobs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%s,%t,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			j.ID, j.Nodes, int64(j.Exec),
			int64(j.Arrival), int64(j.FirstStart), int64(j.LastStart), int64(j.Finish),
			int64(j.Deadline), strconv.FormatFloat(j.Promised, 'f', 6, 64), j.MetDeadline,
			j.Quotes, j.Attempts, j.FailuresSuffered,
			j.CheckpointsDone, j.CheckpointsSkipped, j.DeadlineSkips, j.StartSlips,
			int64(j.LostWork), int64(j.CheckpointOverheads)); err != nil {
			return fmt.Errorf("sim: write jobs csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sim: write jobs csv: %w", err)
	}
	return nil
}

// WriteFailuresCSV writes one CSV row per processed failure. A nil receiver
// is an error, not a panic.
func (r *Result) WriteFailuresCSV(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("sim: write failures csv: nil result")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,node,job,lost_node_s"); err != nil {
		return fmt.Errorf("sim: write failures csv: %w", err)
	}
	for _, f := range r.Failures {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d\n",
			int64(f.Time), f.Node, f.JobID, int64(f.LostWork)); err != nil {
			return fmt.Errorf("sim: write failures csv: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sim: write failures csv: %w", err)
	}
	return nil
}
