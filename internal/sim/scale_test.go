package sim

import (
	"testing"
	"time"

	"probqos/internal/failure"
	"probqos/internal/workload"
)

func TestFullScaleProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale probe")
	}
	for _, name := range []string{"NASA", "SDSC"} {
		log, err := workload.Generate(name, workload.GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := failure.GenerateTrace(failure.RawConfig{}, failure.FilterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []struct{ a, u float64 }{{0, 0.5}, {0.5, 0.5}, {1, 0.9}, {1, 0.1}} {
			cfg := DefaultConfig(log, tr)
			cfg.Accuracy = p.a
			cfg.UserRisk = p.u
			start := time.Now()
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s a=%v u=%v: %v", name, p.a, p.u, err)
			}
			var qosNum, work, missWork float64
			var missJobs, missWithFail, missNoFail int
			var missBySec, missByWorkSec float64
			for _, j := range res.Jobs {
				w := j.Exec.Seconds() * float64(j.Nodes)
				work += w
				if j.MetDeadline {
					qosNum += w * j.Promised
				} else {
					missWork += w
					missJobs++
					if j.FailuresSuffered > 0 {
						missWithFail++
					} else {
						missNoFail++
					}
					missAmt := j.Finish.Sub(j.Deadline).Seconds()
					missBySec += missAmt
					missByWorkSec += missAmt * w
				}
			}
			util := work / (res.Span().Seconds() * 128)
			t.Logf("%s a=%.1f U=%.1f: %v qos=%.4f util=%.4f lost=%.3g jobfail=%d span=%.1fd",
				name, p.a, p.u, time.Since(start).Round(time.Millisecond), qosNum/work, util,
				res.TotalLostWork().NodeSeconds(), res.JobFailures(), res.Span().Hours()/24)
			if missJobs > 0 {
				t.Logf("   missed: %d jobs (%.1f%% of work), withFail=%d noFail=%d, avgMissBy=%.1fh workWeightedMissBy=%.1fh",
					missJobs, 100*missWork/work, missWithFail, missNoFail,
					missBySec/float64(missJobs)/3600, missByWorkSec/missWork/3600)
			}
		}
	}
}
