package sim

import (
	"container/heap"

	"probqos/internal/units"
)

// Kind enumerates the seven event types of §4.1.
type Kind int

// Event kinds, in the order they are processed when timestamps tie:
// failures and recoveries first (the machine's state changes before any
// scheduling decision at the same instant), then completions (freeing
// resources), then arrivals, starts, and checkpoint requests.
const (
	KindFailure Kind = iota + 1
	KindRecovery
	KindFinish
	KindCheckpointFinish
	KindArrival
	KindStart
	KindCheckpointRequest
)

var kindNames = map[Kind]string{
	KindFailure:           "failure",
	KindRecovery:          "recovery",
	KindFinish:            "finish",
	KindCheckpointFinish:  "checkpoint-finish",
	KindArrival:           "arrival",
	KindStart:             "start",
	KindCheckpointRequest: "checkpoint-request",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "unknown"
}

// event is one entry in the simulation's event queue. Job events carry the
// job's attempt epoch so that events scheduled for an attempt that has since
// failed are recognized as stale and dropped.
type event struct {
	time  units.Time
	kind  Kind
	seq   int64 // tie-breaker: insertion order
	jobID int   // job events
	epoch int   // job events: attempt number the event belongs to
	node  int   // failure/recovery events
	index int   // failure events: index into the trace
}

// arenaChunk is how many events an arena allocates at once. A chunk is one
// backing array, so the steady-state cost of a simulation run is a handful of
// chunk allocations instead of one per event.
const arenaChunk = 256

// eventArena recycles event records. The engine allocates one event per
// queue push — the largest allocation count in a run after reservations —
// and never retains an event past its dispatch, so step can return each
// popped event to the free list. Chunks keep the backing arrays alive while
// the free list is rebuilt between pooled runs.
type eventArena struct {
	free   []*event
	chunks [][]event
}

// get returns a zeroed event, growing the arena by one chunk when the free
// list is empty.
func (a *eventArena) get() *event {
	if n := len(a.free); n > 0 {
		ev := a.free[n-1]
		a.free = a.free[:n-1]
		*ev = event{}
		return ev
	}
	chunk := make([]event, arenaChunk)
	a.chunks = append(a.chunks, chunk)
	for i := 1; i < len(chunk); i++ {
		a.free = append(a.free, &chunk[i])
	}
	return &chunk[0]
}

// put returns a dispatched event to the free list. The caller must not
// touch it afterwards.
func (a *eventArena) put(ev *event) { a.free = append(a.free, ev) }

// reset rebuilds the free list from the chunks. Only call when no event from
// this arena is still queued — i.e. after a drained run, before reuse.
func (a *eventArena) reset() {
	a.free = a.free[:0]
	for _, c := range a.chunks {
		for i := range c {
			a.free = append(a.free, &c[i])
		}
	}
}

// eventQueue is a deterministic min-heap over (time, kind, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

var _ heap.Interface = (*eventQueue)(nil)
