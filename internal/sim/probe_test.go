package sim

import (
	"testing"
	"time"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/workload"
)

// stubProbe records everything the simulator reports and checks state
// invariants as samples stream in.
type stubProbe struct {
	t         *testing.T
	nodes     int
	states    []State
	decisions map[DecisionKind]int
	phases    map[Phase]int
}

func newStubProbe(t *testing.T, nodes int) *stubProbe {
	return &stubProbe{
		t: t, nodes: nodes,
		decisions: make(map[DecisionKind]int),
		phases:    make(map[Phase]int),
	}
}

func (p *stubProbe) Decision(d Decision) { p.decisions[d.Kind] += d.N }

func (p *stubProbe) Phase(ph Phase, _ time.Duration) { p.phases[ph]++ }

func (p *stubProbe) Sample(st State) {
	if st.BusyNodes < 0 || st.BusyNodes > p.nodes {
		p.t.Errorf("busy nodes %d outside [0, %d] at t=%v", st.BusyNodes, p.nodes, st.Time)
	}
	if st.QueueDepth < 0 || st.RunningJobs < 0 {
		p.t.Errorf("negative queue/running at t=%v: %+v", st.Time, st)
	}
	if len(p.states) > 0 {
		prev := p.states[len(p.states)-1]
		if st.Time < prev.Time || st.EventsProcessed != prev.EventsProcessed+1 {
			p.t.Errorf("sample stream broken: %+v -> %+v", prev, st)
		}
		if st.LostWork < prev.LostWork {
			p.t.Errorf("lost work decreased: %v -> %v", prev.LostWork, st.LostWork)
		}
	}
	p.states = append(p.states, st)
}

func TestProbeSeesConsistentRun(t *testing.T) {
	events := []failure.Event{
		{Time: 5000, Node: 0, Detectability: 0.9},
		{Time: 6000, Node: 7, Detectability: 0.5},
	}
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 4, Exec: 9000},
		{ID: 2, Arrival: 50, Nodes: 2, Exec: 5000},
	}
	cfg := smallConfig(t, jobs, events)
	cfg.Accuracy = 0
	cfg.Policy = checkpoint.Periodic{}
	probe := newStubProbe(t, cfg.Nodes)
	cfg.Probe = probe
	res := run(t, cfg)

	if len(probe.states) != res.EventsProcessed {
		t.Fatalf("samples = %d, want one per event (%d)", len(probe.states), res.EventsProcessed)
	}
	final := probe.states[len(probe.states)-1]
	if final.QueueDepth != 0 || final.RunningJobs != 0 || final.BusyNodes != 0 {
		t.Errorf("run did not drain: %+v", final)
	}
	if final.LostWork != res.TotalLostWork() {
		t.Errorf("lost work = %v, want %v", final.LostWork, res.TotalLostWork())
	}
	if final.PromisedJobs != len(jobs) {
		t.Errorf("promised jobs = %d, want %d", final.PromisedJobs, len(jobs))
	}

	if got := probe.decisions[DecisionReserve]; got != len(jobs) {
		t.Errorf("reserves = %d, want %d", got, len(jobs))
	}
	if got := probe.decisions[DecisionBackfill]; got != res.JobFailures() {
		t.Errorf("backfills = %d, want %d", got, res.JobFailures())
	}
	kills := probe.decisions[DecisionFailureKill]
	idles := probe.decisions[DecisionFailureIdle]
	if kills != res.JobFailures() || kills+idles != len(res.Failures) {
		t.Errorf("failure decisions = %d kill + %d idle, want %d/%d",
			kills, idles, res.JobFailures(), len(res.Failures))
	}
	totalQuotes := 0
	for _, j := range res.Jobs {
		totalQuotes += j.Quotes
	}
	if got := probe.decisions[DecisionQuote]; got != totalQuotes {
		t.Errorf("quote offers = %d, want %d", got, totalQuotes)
	}

	if got := probe.phases[PhaseDispatch]; got != res.EventsProcessed {
		t.Errorf("dispatch phases = %d, want %d", got, res.EventsProcessed)
	}
	if probe.phases[PhaseNegotiate] != len(jobs) {
		t.Errorf("negotiate phases = %d, want %d", probe.phases[PhaseNegotiate], len(jobs))
	}
	// Schedule is timed at arrival and again on every requeue.
	if want := len(jobs) + res.JobFailures(); probe.phases[PhaseSchedule] != want {
		t.Errorf("schedule phases = %d, want %d", probe.phases[PhaseSchedule], want)
	}
}
