package sim

import (
	"strings"
	"testing"
)

func TestResultHelpers(t *testing.T) {
	var empty Result
	if empty.Span() != 0 {
		t.Errorf("empty span = %v", empty.Span())
	}
	if empty.OccupiedFraction() != 0 {
		t.Errorf("empty occupancy = %v", empty.OccupiedFraction())
	}
	res := Result{
		ClusterNodes: 4,
		Jobs: []JobRecord{
			{ID: 1, CheckpointsDone: 3, CheckpointsSkipped: 5},
			{ID: 2, CheckpointsDone: 1, CheckpointsSkipped: 0},
		},
		Start: 100, End: 600, BusyNodeSeconds: 1000,
	}
	if got := res.Span(); got != 500 {
		t.Errorf("span = %v", got)
	}
	done, skipped := res.TotalCheckpoints()
	if done != 4 || skipped != 5 {
		t.Errorf("checkpoints = %d/%d", done, skipped)
	}
	if got := res.OccupiedFraction(); got != 0.5 {
		t.Errorf("occupancy = %v", got)
	}
}

func TestKindStringNames(t *testing.T) {
	for k, want := range map[Kind]string{
		KindFailure:           "failure",
		KindRecovery:          "recovery",
		KindFinish:            "finish",
		KindCheckpointFinish:  "checkpoint-finish",
		KindArrival:           "arrival",
		KindStart:             "start",
		KindCheckpointRequest: "checkpoint-request",
		Kind(99):              "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

type failAfterWriter struct {
	budget int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.budget -= len(p); w.budget < 0 {
		return 0, errShortDisk
	}
	return len(p), nil
}

var errShortDisk = &diskError{}

type diskError struct{}

func (*diskError) Error() string { return "disk full" }

func TestCSVExportPropagatesWriteErrors(t *testing.T) {
	res := &Result{ClusterNodes: 4}
	for i := 0; i < 600; i++ {
		res.Jobs = append(res.Jobs, JobRecord{ID: i + 1, Nodes: 1, Exec: 10})
		res.Failures = append(res.Failures, FailureRecord{Time: 1, Node: 0})
	}
	if err := res.WriteJobsCSV(&failAfterWriter{budget: 64}); err == nil {
		t.Error("jobs CSV write error swallowed")
	}
	if err := res.WriteFailuresCSV(&failAfterWriter{budget: 64}); err == nil {
		t.Error("failures CSV write error swallowed")
	}
	if err := res.WriteJobsCSV(&strings.Builder{}); err != nil {
		t.Errorf("healthy write failed: %v", err)
	}
}
