// Package sim is the event-driven simulator of §4.1: a 128-node cluster
// processes a job log under a failure trace, with negotiation-driven
// deadlines, fault-aware conservative backfilling, and cooperative
// checkpointing. The simulator is single-threaded and fully deterministic.
package sim

import (
	"fmt"
	"math"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/predict"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// Note is one line of the simulation journal, delivered to an Observer.
type Note struct {
	Time  units.Time `json:"time"`
	Kind  string     `json:"kind"`
	JobID int        `json:"job,omitempty"`
	Node  int        `json:"node,omitempty"`
	// Width is the node count of the job the event concerns, for start,
	// finish, and job-killing failure events; occupancy analysis sums it.
	Width  int    `json:"width,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Observer receives journal notes as the simulation executes. Observers
// must not retain the Note's backing memory across calls.
type Observer interface {
	Observe(Note)
}

// Config assembles one simulation run. The zero value is not runnable; use
// DefaultConfig and override fields, then pass to Run.
type Config struct {
	// Workload is the job log to replay.
	Workload *workload.Log
	// Failures is the filtered failure trace driving node failures.
	Failures *failure.Trace
	// Nodes is the cluster size N. Defaults to 128 (Table 2).
	Nodes int
	// Accuracy is the event-prediction accuracy a in [0, 1].
	Accuracy float64
	// UserRisk is the user strategy U in [0, 1] (Equation 3).
	UserRisk float64
	// Checkpoint holds I and C. Defaults to Table 2 (I=3600s, C=720s).
	Checkpoint checkpoint.Params
	// Downtime is the per-failure node restart time. Defaults to 120 s.
	Downtime units.Duration
	// Policy decides checkpoint requests. Defaults to the paper's
	// risk-based rule (Equation 1).
	Policy checkpoint.Policy
	// DeadlineSkip enables the rule that skips an otherwise-performed
	// checkpoint when skipping might save the job's deadline. Default on.
	DeadlineSkip bool
	// FaultAware enables prediction-driven node selection. Default on;
	// turning it off gives the non-fault-aware scheduling baseline.
	FaultAware bool
	// Negotiate enables the user dialog. Default on; off means every user
	// takes the first quote regardless of UserRisk (negotiation ablation).
	Negotiate bool
	// Predictor, when non-nil, replaces the idealized trace predictor for
	// quoting, node selection, and checkpoint decisions — e.g. the working
	// health.Monitor. If it also locates failures (FirstDetectable), the
	// negotiator uses that; otherwise deadline extension falls back to
	// exponential deferral. Accuracy and PredictionHalfLife are ignored
	// when a Predictor is supplied.
	Predictor predict.Predictor
	// PredictionHalfLife, when positive, degrades prediction accuracy for
	// failures further in the future (a_eff = a * 2^(-distance/halfLife)),
	// modelling §3.3's remark that real predictions lose accuracy with
	// horizon. Zero keeps the paper's idealized static predictor.
	PredictionHalfLife units.Duration
	// BaseRateFloor blends the trace predictor with the MTBF hazard for
	// checkpoint decisions (pf = max(prediction, base rate)), giving jobs a
	// periodic-like safety net when nothing specific is forecast. Default
	// on: reading Equation 1 with pf = forecast alone would skip every
	// checkpoint whenever no failure is predicted, and long jobs would
	// thrash at low accuracy far beyond the paper's reported lost-work
	// regime (see DESIGN.md §3); the floor restores the paper's baseline
	// behaviour. Turning it off gives the pure-forecast ablation.
	BaseRateFloor bool
	// Observer, when non-nil, receives the event journal.
	Observer Observer
	// Probe, when non-nil, receives fine-grained instrumentation callbacks:
	// per-event cluster-state samples, control-plane decisions, and
	// wall-clock phase timings. internal/obs provides the standard
	// implementation. A nil Probe costs the run nothing.
	Probe Probe
}

// DefaultConfig returns the paper's Table 2 operating point for the given
// workload and failure trace, with a and U to be chosen by the caller.
func DefaultConfig(w *workload.Log, f *failure.Trace) Config {
	return Config{
		Workload:      w,
		Failures:      f,
		Nodes:         128,
		Checkpoint:    checkpoint.DefaultParams(),
		Downtime:      2 * units.Minute,
		Policy:        checkpoint.RiskBased{},
		DeadlineSkip:  true,
		FaultAware:    true,
		Negotiate:     true,
		BaseRateFloor: true,
	}
}

// Validate reports configuration errors for a batch run, which needs a
// non-empty workload to replay.
func (c Config) Validate() error {
	return c.validate(true)
}

// validate checks the configuration. NewEngine passes requireWorkload =
// false: the online service starts with an empty cluster and admits jobs
// through the API instead of replaying a log.
func (c Config) validate(requireWorkload bool) error {
	switch {
	case requireWorkload && (c.Workload == nil || len(c.Workload.Jobs) == 0):
		return fmt.Errorf("sim: config needs a non-empty workload")
	case c.Failures == nil:
		return fmt.Errorf("sim: config needs a failure trace (it may be empty)")
	case c.Nodes <= 0:
		return fmt.Errorf("sim: cluster size must be positive, got %d", c.Nodes)
	case c.Failures.Nodes() != c.Nodes:
		return fmt.Errorf("sim: failure trace covers %d nodes but the cluster has %d", c.Failures.Nodes(), c.Nodes)
	case c.Accuracy < 0 || c.Accuracy > 1 || math.IsNaN(c.Accuracy):
		return fmt.Errorf("sim: accuracy %v outside [0,1]", c.Accuracy)
	case c.UserRisk < 0 || c.UserRisk > 1 || math.IsNaN(c.UserRisk):
		return fmt.Errorf("sim: user risk %v outside [0,1]", c.UserRisk)
	case c.Downtime < 0:
		return fmt.Errorf("sim: downtime must be non-negative, got %v", c.Downtime)
	case c.PredictionHalfLife < 0:
		return fmt.Errorf("sim: prediction half-life must be non-negative, got %v", c.PredictionHalfLife)
	case c.Policy == nil:
		return fmt.Errorf("sim: config needs a checkpoint policy")
	}
	if err := c.Checkpoint.Validate(); err != nil {
		return err
	}
	if c.Workload == nil {
		return nil
	}
	return c.Workload.Validate(c.Nodes)
}

// plannedDuration returns E_j for the remaining execution time rem: the
// wall time the job needs if every checkpoint request is performed
// (rem + C per request, with requests after each full interval of progress
// that still leaves work to do).
func plannedDuration(rem units.Duration, p checkpoint.Params) units.Duration {
	if rem <= 0 {
		return 0
	}
	requests := (rem - 1) / p.Interval // requests at I, 2I, ... < rem
	return rem + units.Duration(requests)*p.Overhead
}
