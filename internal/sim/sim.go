package sim

import (
	"container/heap"
	"fmt"
	"strconv"
	"sync"
	"time"

	"probqos/internal/checkpoint"
	"probqos/internal/cluster"
	"probqos/internal/failure"
	"probqos/internal/negotiate"
	"probqos/internal/predict"
	"probqos/internal/sched"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// forecaster is the predictor capability set the simulator wires together:
// risk estimates plus failure location for the negotiator.
type forecaster interface {
	predict.Predictor
	FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool)
}

// jobState tracks one job through negotiation, (re)scheduling, execution,
// checkpointing, and failures.
type jobState struct {
	job   workload.Job
	rec   JobRecord
	epoch int

	deadline units.Time
	promised float64

	// doneWork is the checkpointed execution baseline carried across
	// attempts: a restart resumes from here.
	doneWork units.Duration

	// Fields below describe the current attempt and are reset on restart.
	running      bool
	nodes        []int
	attemptStart units.Time
	lastMark     units.Time     // when progress accounting last advanced
	curProgress  units.Duration // execution progress within this attempt
	skippedSince int            // requests skipped since the last performed checkpoint
	inCheckpoint bool
	ckptStarted  units.Time
	hasCkpt      bool       // a checkpoint completed in this attempt
	lastCkptAt   units.Time // start instant of that checkpoint (c_j reference)
	completed    bool
}

// remaining returns the execution time still owed after the attempt's
// current progress.
func (js *jobState) remaining() units.Duration {
	return js.job.Exec - js.doneWork - js.curProgress
}

// rollbackRef returns c_j: the instant the job's work would roll back to if
// its partition failed now (§3.5 lost-work accounting).
func (js *jobState) rollbackRef() units.Time {
	if js.hasCkpt {
		return js.lastCkptAt
	}
	return js.attemptStart
}

// Engine is the live cluster state machine shared by the batch simulator
// and the online negotiation service (internal/service): a cluster, a
// scheduler profile, a negotiator, and an event queue advancing on a
// virtual clock. Run drives an Engine to exhaustion over a workload log;
// the service drives one incrementally with AdvanceTo, Admit, and
// InjectFailure. An Engine is not safe for concurrent use: callers must
// serialize access (the service routes every request through a single
// state-machine goroutine).
type Engine struct {
	cfg       Config
	cluster   *cluster.Cluster
	scheduler *sched.Scheduler
	// quotePred prices reservations; ckptPred prices checkpoint decisions
	// (the same trace predictor, optionally floored by the MTBF hazard).
	quotePred  predict.Predictor
	ckptPred   predict.Predictor
	negotiator *negotiate.Negotiator
	user       negotiate.User

	queue      eventQueue
	arena      *eventArena
	seq        int64
	now        units.Time
	dispatched int // events dispatched, for periodic profile GC
	jobs       map[int]*jobState
	res        Result

	// Occupancy integration: busy node count and the instant it last
	// changed.
	busyNodes  int
	busyMarkAt units.Time
	busyAccum  units.Work

	// history journals every external mutation (Admit, InjectFailure) for
	// ExportState. The batch simulator drives arrivals internally and never
	// appends to it, so Run pays nothing for it.
	history []Op

	// Instrumentation. The counters below are plain integer bookkeeping and
	// are maintained unconditionally; the probe itself is only consulted
	// when non-nil, so an uninstrumented run never reads the wall clock.
	probe        Probe
	queueDepth   int
	runningJobs  int
	lostWork     units.Work
	promiseSum   float64
	promisedJobs int
}

// arenaPool recycles event arenas across Run calls. A sweep executes
// thousands of runs (often concurrently); reusing the chunk arrays keeps the
// per-run event cost at a free-list rebuild instead of re-allocating every
// chunk. Pool reuse never reaches simulation state, so determinism holds.
var arenaPool = sync.Pool{New: func() any { return &eventArena{} }}

// Run executes the configured simulation to completion and returns the
// collected result. The run is deterministic: equal configs yield equal
// results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arena := arenaPool.Get().(*eventArena)
	arena.reset()
	s, err := newEngineWithArena(cfg, arena)
	if err != nil {
		arenaPool.Put(arena)
		return nil, err
	}
	if err := s.Drain(); err != nil {
		// Events may still be queued; let this arena go instead of pooling it.
		return nil, err
	}
	res, err := s.collect()
	if err != nil {
		return nil, err
	}
	// The queue drained, so every arena event is back on the free list and
	// the result holds no reference into it.
	arenaPool.Put(arena)
	return res, nil
}

// NewEngine builds the state machine for cfg without running it: the
// workload's arrivals (if any) and the failure trace are enqueued, and the
// clock sits at zero. Unlike Run, a nil or empty Workload is accepted —
// the online service admits jobs one at a time instead of replaying a log.
func NewEngine(cfg Config) (*Engine, error) {
	return newEngineWithArena(cfg, &eventArena{})
}

// newEngineWithArena is NewEngine with a caller-supplied event arena. Run
// passes a pooled arena it reclaims after the drain; long-lived service
// engines keep a private one for their whole life.
func newEngineWithArena(cfg Config, arena *eventArena) (*Engine, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	var (
		pred    predict.Predictor
		locator interface {
			FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool)
		}
	)
	if cfg.Predictor != nil {
		pred = cfg.Predictor
		if l, ok := cfg.Predictor.(interface {
			FirstDetectable(nodes []int, from, to units.Time) (failure.Event, bool)
		}); ok {
			locator = l
		}
	} else {
		var (
			tracePred forecaster
			err       error
		)
		if cfg.PredictionHalfLife > 0 {
			tracePred, err = predict.NewDecaying(cfg.Failures, cfg.Accuracy, cfg.PredictionHalfLife)
		} else {
			tracePred, err = predict.NewTrace(cfg.Failures, cfg.Accuracy)
		}
		if err != nil {
			return nil, err
		}
		pred = tracePred
		locator = tracePred
	}
	jobCount := 0
	if cfg.Workload != nil {
		jobCount = len(cfg.Workload.Jobs)
	}
	s := &Engine{
		cfg:       cfg,
		cluster:   cluster.New(cfg.Nodes),
		quotePred: pred,
		ckptPred:  pred,
		arena:     arena,
		queue:     make(eventQueue, 0, jobCount+cfg.Failures.Len()),
		jobs:      make(map[int]*jobState, jobCount),
		probe:     cfg.Probe,
	}
	if cfg.BaseRateFloor {
		if base, err := predict.NewBaseRateFromTrace(cfg.Failures); err == nil {
			if s.ckptPred, err = predict.NewMax(pred, base); err != nil {
				return nil, err
			}
		}
		// An empty or degenerate trace has no estimable MTBF; the forecast
		// alone is then the best available hazard.
	}
	s.scheduler = sched.New(cfg.Nodes, s.quotePred,
		sched.WithFaultAware(cfg.FaultAware),
		sched.WithQuoteSlack(cfg.Downtime),
	)
	negOpts := []negotiate.Option{negotiate.WithFailureSlack(cfg.Downtime)}
	if locator != nil {
		negOpts = append(negOpts, negotiate.WithLocator(locator))
	}
	s.negotiator = negotiate.New(s.scheduler, negOpts...)
	s.user = negotiate.User{U: cfg.UserRisk}
	if !cfg.Negotiate {
		s.user = negotiate.User{U: 0} // every first quote accepted
	}

	if cfg.Workload != nil {
		// One slab for every job state: the map's values all point into it,
		// replacing a per-job allocation. Jobs admitted later (online
		// service) still allocate individually.
		states := make([]jobState, len(cfg.Workload.Jobs))
		for i, j := range cfg.Workload.Jobs {
			if _, dup := s.jobs[j.ID]; dup {
				return nil, fmt.Errorf("sim: duplicate job ID %d in workload", j.ID)
			}
			states[i].job = j
			s.jobs[j.ID] = &states[i]
			s.push(event{time: j.Arrival, kind: KindArrival, jobID: j.ID})
		}
	}
	for i := 0; i < cfg.Failures.Len(); i++ {
		e := cfg.Failures.At(i)
		s.push(event{time: e.Time, kind: KindFailure, node: e.Node, index: i})
	}
	heap.Init(&s.queue)
	return s, nil
}

// push enqueues the event, stamping its insertion order. The queued record
// comes from the engine's arena; step returns it there after dispatch.
func (s *Engine) push(ev event) {
	p := s.arena.get()
	*p = ev
	p.seq = s.seq
	s.seq++
	heap.Push(&s.queue, p)
}

func (s *Engine) observe(kind Kind, jobID, node int, detail string) {
	s.observeWidth(kind, jobID, node, 0, detail)
}

func (s *Engine) observeWidth(kind Kind, jobID, node, width int, detail string) {
	if s.cfg.Observer == nil {
		return
	}
	s.cfg.Observer.Observe(Note{
		Time: s.now, Kind: kind.String(), JobID: jobID, Node: node,
		Width: width, Detail: detail,
	})
}

// Drain processes events until the queue is empty, however far into the
// future that reaches. Run uses it to replay a whole workload log.
func (s *Engine) Drain() error {
	for s.queue.Len() > 0 {
		if err := s.step(); err != nil {
			return err
		}
	}
	return nil
}

// step pops and dispatches the next event, advancing the clock to it.
func (s *Engine) step() error {
	ev := heap.Pop(&s.queue).(*event)
	if ev.time < s.now {
		return fmt.Errorf("sim: time went backwards: %v -> %v (%v)", s.now, ev.time, ev.kind)
	}
	s.now = ev.time
	s.res.EventsProcessed++
	s.dispatched++
	if s.dispatched%512 == 0 {
		s.scheduler.GC(s.now)
	}

	t0 := s.phaseStart()
	var err error
	switch ev.kind {
	case KindArrival:
		err = s.onArrival(ev)
	case KindStart:
		err = s.onStart(ev)
	case KindCheckpointRequest:
		err = s.onCheckpointRequest(ev)
	case KindCheckpointFinish:
		err = s.onCheckpointFinish(ev)
	case KindFinish:
		err = s.onFinish(ev)
	case KindFailure:
		err = s.onFailure(ev)
	case KindRecovery:
		s.observe(KindRecovery, 0, ev.node, "")
	default:
		err = fmt.Errorf("sim: unknown event kind %d", ev.kind)
	}
	if err != nil {
		return err
	}
	// No handler retains the event past its dispatch, so it can go straight
	// back to the arena.
	s.arena.put(ev)
	if s.probe != nil {
		//qoslint:allow detwallclock profiling boundary; feeds obs phase timings, never simulation state
		s.probe.Phase(PhaseDispatch, time.Since(t0))
		s.probe.Sample(s.state())
	}
	return nil
}

// stale reports whether a job event belongs to a superseded attempt.
func (s *Engine) stale(ev *event) bool {
	js, ok := s.jobs[ev.jobID]
	if !ok || js.epoch != ev.epoch || js.completed {
		s.res.StaleEventsDropped++
		return true
	}
	return false
}

func (s *Engine) onArrival(ev *event) error {
	js := s.jobs[ev.jobID]
	duration := plannedDuration(js.job.PlanExec(), s.cfg.Checkpoint)
	t0 := s.phaseStart()
	quote, offers, err := s.negotiator.Negotiate(s.now, js.job.Nodes, duration, s.user)
	s.phaseEnd(PhaseNegotiate, t0)
	if err != nil {
		return fmt.Errorf("sim: job %d: %w", js.job.ID, err)
	}
	s.decide(DecisionQuote, js.job.ID, offers)
	t0 = s.phaseStart()
	_, err = s.scheduler.Reserve(js.job.ID, quote.Candidate, duration)
	s.phaseEnd(PhaseSchedule, t0)
	if err != nil {
		return fmt.Errorf("sim: job %d: %w", js.job.ID, err)
	}
	s.decide(DecisionReserve, js.job.ID, 1)
	js.deadline = quote.Deadline
	js.promised = quote.Success
	js.rec.Quotes = offers
	s.queueDepth++
	s.promiseSum += quote.Success
	s.promisedJobs++
	s.push(event{time: quote.Candidate.Start, kind: KindStart, jobID: js.job.ID, epoch: js.epoch})
	if s.cfg.Observer != nil {
		s.observe(KindArrival, js.job.ID, -1,
			"deadline="+quote.Deadline.String()+" p="+strconv.FormatFloat(quote.Success, 'f', 3, 64))
	}
	return nil
}

func (s *Engine) onStart(ev *event) error {
	if s.stale(ev) {
		return nil
	}
	js := s.jobs[ev.jobID]
	r, ok := s.scheduler.Reservation(js.job.ID)
	if !ok {
		return fmt.Errorf("sim: job %d has a start event but no reservation", js.job.ID)
	}

	// A node may be down (recent failure) or still running a slipped
	// predecessor; in either case the start slips — there is no dynamic
	// re-optimization of placements (§3.3).
	retry := s.now
	for _, n := range r.Nodes {
		if up := s.cluster.UpAt(n, s.now); up > retry {
			retry = up
		}
		if occ := s.cluster.Occupant(n); occ != cluster.NoJob {
			if est := s.estimateFinish(s.jobs[occ]); est > retry {
				retry = est
			}
		}
	}
	if retry > s.now {
		if err := s.scheduler.Slip(js.job.ID, retry); err != nil {
			return err
		}
		js.rec.StartSlips++
		s.decide(DecisionStartSlip, js.job.ID, 1)
		s.push(event{time: retry, kind: KindStart, jobID: js.job.ID, epoch: js.epoch})
		if s.cfg.Observer != nil {
			s.observe(KindStart, js.job.ID, -1, "slip to "+retry.String())
		}
		return nil
	}

	if err := s.cluster.Occupy(r.Nodes, js.job.ID); err != nil {
		return err
	}
	s.accountOccupancy(len(r.Nodes))
	s.queueDepth--
	s.runningJobs++
	js.running = true
	js.nodes = r.Nodes
	js.attemptStart = s.now
	js.lastMark = s.now
	js.curProgress = 0
	js.skippedSince = 0
	js.inCheckpoint = false
	js.hasCkpt = false
	js.rec.Attempts++
	if js.rec.Attempts == 1 {
		js.rec.FirstStart = s.now
	}
	js.rec.LastStart = s.now
	s.observeWidth(KindStart, js.job.ID, -1, len(js.nodes), "")
	s.scheduleNextWork(js)
	return nil
}

// estimateFinish returns a lower bound on a running job's completion
// instant: the end of any in-flight checkpoint plus its remaining
// execution. Start-slip retries use it; if the job performs further
// checkpoints the retry simply re-estimates, each time strictly later.
func (s *Engine) estimateFinish(js *jobState) units.Time {
	base := s.now
	if js.inCheckpoint {
		base = js.ckptStarted.Add(s.cfg.Checkpoint.Overhead)
	}
	est := base.Add(js.remaining())
	if !est.After(s.now) {
		est = s.now.Add(1)
	}
	return est
}

// scheduleNextWork schedules the job's next progress milestone: its finish,
// if no more checkpoint requests intervene, or the next checkpoint request
// after a full interval of progress.
func (s *Engine) scheduleNextWork(js *jobState) {
	rem := js.remaining()
	if rem <= s.cfg.Checkpoint.Interval {
		s.push(event{time: s.now.Add(rem), kind: KindFinish, jobID: js.job.ID, epoch: js.epoch})
		return
	}
	s.push(event{
		time: s.now.Add(s.cfg.Checkpoint.Interval), kind: KindCheckpointRequest,
		jobID: js.job.ID, epoch: js.epoch,
	})
}

func (s *Engine) onCheckpointRequest(ev *event) error {
	if s.stale(ev) {
		return nil
	}
	js := s.jobs[ev.jobID]
	js.curProgress += s.now.Sub(js.lastMark)
	js.lastMark = s.now

	p := s.cfg.Checkpoint
	rem := js.remaining()
	estSkip := s.now.Add(plannedDuration(rem, p))
	estPerform := estSkip.Add(p.Overhead)
	t0 := s.phaseStart()
	req := checkpoint.Request{
		Now:                s.now,
		PFail:              s.ckptPred.PFail(js.nodes, s.now, s.now.Add(p.Interval+p.Overhead)),
		Params:             p,
		AtRiskIntervals:    js.skippedSince + 1,
		Deadline:           js.deadline,
		EstFinishIfPerform: estPerform,
		EstFinishIfSkip:    estSkip,
	}
	perform := s.cfg.Policy.ShouldCheckpoint(req)
	deadlineSkip := perform && s.cfg.DeadlineSkip && estPerform.After(js.deadline) && !estSkip.After(js.deadline)
	s.phaseEnd(PhaseCheckpoint, t0)
	if deadlineSkip {
		perform = false
		js.rec.DeadlineSkips++
		s.decide(DecisionCheckpointDeadlineSkip, js.job.ID, 1)
	}
	if perform {
		s.decide(DecisionCheckpointGrant, js.job.ID, 1)
		js.inCheckpoint = true
		js.ckptStarted = s.now
		s.push(event{time: s.now.Add(p.Overhead), kind: KindCheckpointFinish, jobID: js.job.ID, epoch: js.epoch})
		if s.cfg.Observer != nil {
			s.observe(KindCheckpointRequest, js.job.ID, -1, "perform d="+strconv.Itoa(req.AtRiskIntervals))
		}
		return nil
	}
	s.decide(DecisionCheckpointSkip, js.job.ID, 1)
	js.rec.CheckpointsSkipped++
	js.skippedSince++
	if s.cfg.Observer != nil {
		s.observe(KindCheckpointRequest, js.job.ID, -1, "skip d="+strconv.Itoa(req.AtRiskIntervals))
	}
	s.scheduleNextWork(js)
	return nil
}

func (s *Engine) onCheckpointFinish(ev *event) error {
	if s.stale(ev) {
		return nil
	}
	js := s.jobs[ev.jobID]
	js.doneWork += js.curProgress
	js.curProgress = 0
	js.hasCkpt = true
	js.lastCkptAt = js.ckptStarted
	js.skippedSince = 0
	js.inCheckpoint = false
	js.lastMark = s.now
	js.rec.CheckpointsDone++
	js.rec.CheckpointOverheads += s.cfg.Checkpoint.Overhead
	s.observe(KindCheckpointFinish, js.job.ID, -1, "")
	s.scheduleNextWork(js)
	return nil
}

func (s *Engine) onFinish(ev *event) error {
	if s.stale(ev) {
		return nil
	}
	js := s.jobs[ev.jobID]
	js.curProgress += s.now.Sub(js.lastMark)
	js.lastMark = s.now
	if got := js.remaining(); got != 0 {
		return fmt.Errorf("sim: job %d finished with %v work remaining", js.job.ID, got)
	}
	js.completed = true
	js.running = false
	js.rec.Finish = s.now
	js.rec.MetDeadline = !s.now.After(js.deadline)
	if err := s.cluster.Release(js.nodes, js.job.ID); err != nil {
		return err
	}
	s.accountOccupancy(-len(js.nodes))
	s.runningJobs--
	s.scheduler.CompleteEarly(js.job.ID, s.now)
	if s.cfg.Observer != nil {
		s.observeWidth(KindFinish, js.job.ID, -1, len(js.nodes), "met="+strconv.FormatBool(js.rec.MetDeadline))
	}
	return nil
}

func (s *Engine) onFailure(ev *event) error {
	node := ev.node
	s.cluster.Fail(node, s.now, s.cfg.Downtime)
	s.scheduler.AddDowntime(node, s.now, s.now.Add(s.cfg.Downtime))
	s.push(event{time: s.now.Add(s.cfg.Downtime), kind: KindRecovery, node: node})

	frec := FailureRecord{Time: s.now, Node: node}
	if occ := s.cluster.Occupant(node); occ != cluster.NoJob {
		js := s.jobs[occ]
		lost := units.WorkFor(js.job.Nodes, s.now.Sub(js.rollbackRef()))
		frec.JobID = occ
		frec.LostWork = lost
		js.rec.LostWork += lost
		js.rec.FailuresSuffered++
		s.lostWork += lost
		s.decide(DecisionFailureKill, occ, 1)
		if err := s.cluster.Release(js.nodes, occ); err != nil {
			return err
		}
		s.accountOccupancy(-len(js.nodes))
		s.runningJobs--
		s.queueDepth++
		s.scheduler.Release(occ)
		js.epoch++
		js.running = false
		js.inCheckpoint = false
		js.curProgress = 0
		if err := s.requeue(js); err != nil {
			return err
		}
	} else {
		s.decide(DecisionFailureIdle, 0, 1)
	}
	s.res.Failures = append(s.res.Failures, frec)
	if s.cfg.Observer != nil {
		width := 0
		if frec.JobID != 0 {
			width = s.jobs[frec.JobID].job.Nodes
		}
		s.observeWidth(KindFailure, frec.JobID, node, width, "lost="+strconv.FormatInt(int64(frec.LostWork), 10))
	}
	return nil
}

// requeue reschedules a failed job from its last completed checkpoint. The
// original deadline and promise stand — there is no renegotiation — and
// existing reservations are not disturbed ("jobs that have already been
// scheduled for later execution retain their scheduled partition"): the
// restarted job takes the earliest slot the profile offers, which is
// usually the tail of its own just-vacated reservation plus any backfill
// hole it fits.
func (s *Engine) requeue(js *jobState) error {
	duration := plannedDuration(js.job.PlanExec()-js.doneWork, s.cfg.Checkpoint)
	t0 := s.phaseStart()
	c, ok := s.scheduler.EarliestCandidate(s.now, js.job.Nodes, duration)
	if !ok {
		s.phaseEnd(PhaseSchedule, t0)
		return fmt.Errorf("sim: job %d cannot be rescheduled after failure", js.job.ID)
	}
	_, err := s.scheduler.Reserve(js.job.ID, c, duration)
	s.phaseEnd(PhaseSchedule, t0)
	if err != nil {
		return fmt.Errorf("sim: job %d: %w", js.job.ID, err)
	}
	s.decide(DecisionBackfill, js.job.ID, 1)
	s.push(event{time: c.Start, kind: KindStart, jobID: js.job.ID, epoch: js.epoch})
	return nil
}

// accountOccupancy integrates busy node-seconds up to now, then applies a
// change in the number of occupied nodes.
func (s *Engine) accountOccupancy(delta int) {
	s.busyAccum += units.WorkFor(s.busyNodes, s.now.Sub(s.busyMarkAt))
	s.busyNodes += delta
	s.busyMarkAt = s.now
}

func (s *Engine) collect() (*Result, error) {
	s.accountOccupancy(0) // flush the final busy stretch
	s.res.BusyNodeSeconds = s.busyAccum
	s.res.ClusterNodes = s.cfg.Nodes
	s.res.Jobs = make([]JobRecord, 0, len(s.jobs))
	for _, j := range s.cfg.Workload.Jobs {
		js := s.jobs[j.ID]
		if !js.completed {
			return nil, fmt.Errorf("sim: job %d never completed", j.ID)
		}
		js.rec.ID = j.ID
		js.rec.Nodes = j.Nodes
		js.rec.Exec = j.Exec
		js.rec.Arrival = j.Arrival
		js.rec.Deadline = js.deadline
		js.rec.Promised = js.promised
		s.res.Jobs = append(s.res.Jobs, js.rec)
	}
	s.res.Start = s.res.Jobs[0].Arrival
	s.res.End = s.res.Jobs[0].Finish
	for _, r := range s.res.Jobs {
		s.res.Start = s.res.Start.Min(r.Arrival)
		s.res.End = s.res.End.Max(r.Finish)
	}
	return &s.res, nil
}
