package sim

import (
	"time"

	"probqos/internal/units"
)

// State is the cluster-level snapshot the simulator hands to a Probe after
// every processed event. All fields are cumulative or instantaneous values
// the simulator maintains anyway; building a State is a handful of copies.
type State struct {
	// Time is the simulation clock at the snapshot.
	Time units.Time
	// EventsProcessed counts all events dispatched so far.
	EventsProcessed int
	// QueueDepth is the number of jobs that have negotiated a deadline but
	// are not executing: waiting for their reserved start, slipped, or
	// requeued after a failure.
	QueueDepth int
	// RunningJobs is the number of jobs currently executing.
	RunningJobs int
	// BusyNodes is the number of nodes occupied by running jobs.
	BusyNodes int
	// LostWork is the cumulative work destroyed by failures so far.
	LostWork units.Work
	// PromiseSum and PromisedJobs accumulate promised success probabilities
	// over arrivals so far; their ratio is the running mean promise.
	PromiseSum   float64
	PromisedJobs int
}

// MeanPromise returns the mean promised success probability over jobs quoted
// so far, or zero before the first arrival.
func (st State) MeanPromise() float64 {
	if st.PromisedJobs == 0 {
		return 0
	}
	return st.PromiseSum / float64(st.PromisedJobs)
}

// DecisionKind enumerates the control-plane decisions the simulator reports
// to a Probe.
type DecisionKind int

const (
	// DecisionQuote reports the offers extended during one negotiation
	// (Decision.N is the offer count).
	DecisionQuote DecisionKind = iota + 1
	// DecisionReserve is a reservation placed at arrival.
	DecisionReserve
	// DecisionBackfill is a post-failure requeue placement: the restarted
	// job takes the earliest hole the profile offers.
	DecisionBackfill
	// DecisionStartSlip is a reserved start delayed by a node outage or a
	// slipped predecessor.
	DecisionStartSlip
	// DecisionCheckpointGrant and DecisionCheckpointSkip are the two
	// outcomes of a checkpoint request.
	DecisionCheckpointGrant
	DecisionCheckpointSkip
	// DecisionCheckpointDeadlineSkip is a grant overridden because skipping
	// might save the job's deadline (also reported as a skip).
	DecisionCheckpointDeadlineSkip
	// DecisionFailureKill is a failure that destroyed a running job;
	// DecisionFailureIdle hit an unoccupied node.
	DecisionFailureKill
	DecisionFailureIdle
)

var decisionNames = map[DecisionKind]string{
	DecisionQuote:                  "quote",
	DecisionReserve:                "reserve",
	DecisionBackfill:               "backfill",
	DecisionStartSlip:              "start-slip",
	DecisionCheckpointGrant:        "checkpoint-grant",
	DecisionCheckpointSkip:         "checkpoint-skip",
	DecisionCheckpointDeadlineSkip: "checkpoint-deadline-skip",
	DecisionFailureKill:            "failure-kill",
	DecisionFailureIdle:            "failure-idle",
}

func (k DecisionKind) String() string {
	if n, ok := decisionNames[k]; ok {
		return n
	}
	return "unknown"
}

// Decision is one control-plane decision as reported to a Probe.
type Decision struct {
	Kind  DecisionKind
	Time  units.Time
	JobID int
	// N is the decision's multiplicity: the offer count for DecisionQuote,
	// 1 for everything else.
	N int
}

// Phase enumerates the simulator's hot wall-clock phases. PhaseDispatch
// covers whole-event processing; the other phases are timed sections nested
// inside it.
type Phase int

const (
	PhaseDispatch Phase = iota + 1
	PhaseNegotiate
	PhaseSchedule
	PhaseCheckpoint
)

var phaseNames = map[Phase]string{
	PhaseDispatch:   "dispatch",
	PhaseNegotiate:  "negotiate",
	PhaseSchedule:   "schedule",
	PhaseCheckpoint: "checkpoint",
}

func (p Phase) String() string {
	if n, ok := phaseNames[p]; ok {
		return n
	}
	return "unknown"
}

// AllPhases lists the phases in display order (dispatch first).
func AllPhases() []Phase {
	return []Phase{PhaseDispatch, PhaseNegotiate, PhaseSchedule, PhaseCheckpoint}
}

// Probe receives fine-grained instrumentation callbacks from the simulator:
// per-event cluster-state samples, control-plane decisions, and wall-clock
// phase timings. internal/obs provides the standard implementation. Probes
// run on the simulator goroutine and must not block; a nil Config.Probe
// costs the run nothing.
type Probe interface {
	// Decision reports one control-plane decision as it is made.
	Decision(Decision)
	// Sample receives the cluster state after every processed event;
	// implementations downsample as they see fit.
	Sample(State)
	// Phase reports the wall-clock spent in one hot phase occurrence.
	Phase(p Phase, elapsed time.Duration)
}

// MultiObserver fans the journal out to several observers in order. Nil
// entries are skipped; with zero or one live observers no fan-out wrapper is
// allocated.
func MultiObserver(obs ...Observer) Observer {
	live := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiObserver []Observer

func (m multiObserver) Observe(n Note) {
	for _, o := range m {
		o.Observe(n)
	}
}

// phaseStart opens a wall-clock phase timer: it returns time.Now() when a
// probe is attached and the zero Time otherwise, so the uninstrumented path
// never reads the clock.
func (s *Engine) phaseStart() time.Time {
	if s.probe == nil {
		return time.Time{}
	}
	//qoslint:allow detwallclock profiling boundary; feeds obs phase timings, never simulation state
	return time.Now()
}

// phaseEnd closes a timer opened by phaseStart.
func (s *Engine) phaseEnd(p Phase, t0 time.Time) {
	if s.probe == nil {
		return
	}
	//qoslint:allow detwallclock profiling boundary; feeds obs phase timings, never simulation state
	s.probe.Phase(p, time.Since(t0))
}

// decide reports one decision to the probe, if any.
func (s *Engine) decide(kind DecisionKind, jobID, n int) {
	if s.probe == nil {
		return
	}
	s.probe.Decision(Decision{Kind: kind, Time: s.now, JobID: jobID, N: n})
}

// state snapshots the cluster-level counters for Probe.Sample.
func (s *Engine) state() State {
	return State{
		Time:            s.now,
		EventsProcessed: s.res.EventsProcessed,
		QueueDepth:      s.queueDepth,
		RunningJobs:     s.runningJobs,
		BusyNodes:       s.busyNodes,
		LostWork:        s.lostWork,
		PromiseSum:      s.promiseSum,
		PromisedJobs:    s.promisedJobs,
	}
}
