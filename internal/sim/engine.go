package sim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"probqos/internal/negotiate"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// ErrStaleQuote is returned by Admit when the accepted quote's start lies
// in the engine's past: the client held the offer across a clock advance
// and must renegotiate.
var ErrStaleQuote = errors.New("sim: quote start is in the past")

// Now returns the engine's virtual clock.
func (s *Engine) Now() units.Time { return s.now }

// Nodes returns the cluster size.
func (s *Engine) Nodes() int { return s.cfg.Nodes }

// AdvanceTo processes every event due at or before t, then moves the clock
// to t. Advancing to the past is a no-op (the clock never goes backwards).
func (s *Engine) AdvanceTo(t units.Time) error {
	for s.queue.Len() > 0 && s.queue[0].time <= t {
		if err := s.step(); err != nil {
			return err
		}
	}
	if t > s.now {
		s.now = t
	}
	return nil
}

// PlannedDuration returns E_j: the wall time reserved for a job with
// checkpoint-free execution time exec, assuming every checkpoint runs.
func (s *Engine) PlannedDuration(exec units.Duration) units.Duration {
	return plannedDuration(exec, s.cfg.Checkpoint)
}

// Quotes previews up to max successive offers for a job of the given size
// and execution time submitted now, without reserving anything: the system
// side of the §3.5 dialog, quote k+1 trading a later deadline for a higher
// promised success probability.
func (s *Engine) Quotes(size int, exec units.Duration, max int) []negotiate.Quote {
	return s.negotiator.Quotes(s.now, size, s.PlannedDuration(exec), max)
}

// Admit turns an accepted quote into a live job: the reservation is
// committed and the job will start, checkpoint, fail, and restart exactly
// as a workload-log job would. offers records how many quotes the dialog
// took (the accepted quote's 1-based rank). Admission fails if the quote's
// node set has since been claimed by another reservation (the caller
// should renegotiate) or if the quote's start is already in the past.
func (s *Engine) Admit(job workload.Job, q negotiate.Quote, offers int) error {
	if err := job.Validate(s.cfg.Nodes); err != nil {
		return err
	}
	if _, dup := s.jobs[job.ID]; dup {
		return fmt.Errorf("sim: job %d already admitted", job.ID)
	}
	if len(q.Candidate.Nodes) != job.Nodes {
		return fmt.Errorf("sim: quote reserves %d nodes but job %d needs %d",
			len(q.Candidate.Nodes), job.ID, job.Nodes)
	}
	if q.Candidate.Start < s.now {
		return fmt.Errorf("%w: start %v, now %v", ErrStaleQuote, q.Candidate.Start, s.now)
	}
	duration := s.PlannedDuration(job.PlanExec())
	if _, err := s.scheduler.Reserve(job.ID, q.Candidate, duration); err != nil {
		return err
	}
	js := &jobState{job: job}
	s.jobs[job.ID] = js
	js.deadline = q.Deadline
	js.promised = q.Success
	js.rec.Quotes = offers
	s.queueDepth++
	s.promiseSum += q.Success
	s.promisedJobs++
	s.push(event{time: q.Candidate.Start, kind: KindStart, jobID: job.ID, epoch: js.epoch})
	s.observe(KindArrival, job.ID, -1,
		"deadline="+q.Deadline.String()+" p="+strconv.FormatFloat(q.Success, 'f', 3, 64))
	jc, qc := job, q
	s.record(Op{Kind: OpAdmit, Job: &jc, Quote: &qc, Offers: offers})
	return nil
}

// InjectFailure schedules a node failure at the given instant, no earlier
// than now. Injected failures behave exactly like trace failures — they
// kill the occupying job, cost the downtime, and trigger a restart from
// the last checkpoint — but the predictor cannot see them, so no quote
// priced them in.
func (s *Engine) InjectFailure(node int, at units.Time) error {
	if node < 0 || node >= s.cfg.Nodes {
		return fmt.Errorf("sim: node %d outside [0,%d)", node, s.cfg.Nodes)
	}
	if at < s.now {
		return fmt.Errorf("sim: cannot inject a failure at %v, clock is at %v", at, s.now)
	}
	s.push(event{time: at, kind: KindFailure, node: node})
	s.record(Op{Kind: OpFault, Node: node, At: at})
	return nil
}

// JobState is the lifecycle position of one admitted job.
type JobState int

// Lifecycle states. A job is Checkpointed while executing with completed
// checkpoint work behind it (a failure now would not lose everything).
// Missed is sticky from the instant the deadline passes unmet: a job that
// finishes late stays Missed, its promise already broken.
const (
	JobQueued JobState = iota + 1
	JobRunning
	JobCheckpointed
	JobCompleted
	JobMissed
)

var jobStateNames = map[JobState]string{
	JobQueued:       "queued",
	JobRunning:      "running",
	JobCheckpointed: "checkpointed",
	JobCompleted:    "completed",
	JobMissed:       "missed",
}

func (st JobState) String() string {
	if n, ok := jobStateNames[st]; ok {
		return n
	}
	return "unknown"
}

// MarshalJSON renders the state as its lowercase name.
func (st JobState) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(st.String())), nil
}

// UnmarshalJSON parses the lowercase state name, for API clients decoding
// a JobStatus.
func (st *JobState) UnmarshalJSON(data []byte) error {
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("sim: job state %s is not a JSON string", data)
	}
	for s, n := range jobStateNames {
		if n == name {
			*st = s
			return nil
		}
	}
	return fmt.Errorf("sim: unknown job state %q", name)
}

// Terminal reports whether the state is an endpoint of the promise: the
// job completed on time, or its deadline passed.
func (st JobState) Terminal() bool { return st == JobCompleted || st == JobMissed }

// JobStatus is the externally visible state of one job.
type JobStatus struct {
	ID       int            `json:"id"`
	State    JobState       `json:"state"`
	Nodes    int            `json:"nodes"`
	Exec     units.Duration `json:"exec_seconds"`
	Arrival  units.Time     `json:"arrival"`
	Deadline units.Time     `json:"deadline"`
	Promised float64        `json:"promised"`

	Attempts           int        `json:"attempts"`
	FailuresSuffered   int        `json:"failures_suffered"`
	CheckpointsDone    int        `json:"checkpoints_done"`
	CheckpointsSkipped int        `json:"checkpoints_skipped"`
	StartSlips         int        `json:"start_slips"`
	LostWork           units.Work `json:"lost_work"`
	Finish             units.Time `json:"finish,omitempty"`
	MetDeadline        bool       `json:"met_deadline"`
}

// Job reports the status of one admitted job.
func (s *Engine) Job(id int) (JobStatus, bool) {
	js, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	st := JobStatus{
		ID:       id,
		Nodes:    js.job.Nodes,
		Exec:     js.job.Exec,
		Arrival:  js.job.Arrival,
		Deadline: js.deadline,
		Promised: js.promised,

		Attempts:           js.rec.Attempts,
		FailuresSuffered:   js.rec.FailuresSuffered,
		CheckpointsDone:    js.rec.CheckpointsDone,
		CheckpointsSkipped: js.rec.CheckpointsSkipped,
		StartSlips:         js.rec.StartSlips,
		LostWork:           js.rec.LostWork,
		Finish:             js.rec.Finish,
		MetDeadline:        js.rec.MetDeadline,
	}
	switch {
	case js.completed && js.rec.MetDeadline:
		st.State = JobCompleted
	case js.completed || s.now.After(js.deadline):
		st.State = JobMissed
	case js.running && (js.hasCkpt || js.doneWork > 0):
		st.State = JobCheckpointed
	case js.running:
		st.State = JobRunning
	default:
		st.State = JobQueued
	}
	return st, true
}

// JobIDs lists every admitted job in ascending ID order.
func (s *Engine) JobIDs() []int {
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Stats is a cluster-level snapshot for dashboards and admission control.
type Stats struct {
	Now             units.Time `json:"now"`
	Nodes           int        `json:"nodes"`
	BusyNodes       int        `json:"busy_nodes"`
	Jobs            int        `json:"jobs"`
	Queued          int        `json:"queued"`
	Running         int        `json:"running"` // includes checkpointed
	Completed       int        `json:"completed"`
	Missed          int        `json:"missed"`
	LostWork        units.Work `json:"lost_work"`
	EventsProcessed int        `json:"events_processed"`
	PendingEvents   int        `json:"pending_events"`
	MeanPromise     float64    `json:"mean_promise"`
}

// Outstanding returns the number of admitted jobs whose promise is still
// open (neither completed nor missed).
func (st Stats) Outstanding() int { return st.Queued + st.Running }

// Stats snapshots the engine. It walks the jobs map, so it is meant for
// request-rate use, not the event hot path (the Probe serves that).
func (s *Engine) Stats() Stats {
	st := Stats{
		Now:             s.now,
		Nodes:           s.cfg.Nodes,
		BusyNodes:       s.busyNodes,
		Jobs:            len(s.jobs),
		LostWork:        s.lostWork,
		EventsProcessed: s.res.EventsProcessed,
		PendingEvents:   s.queue.Len(),
	}
	if s.promisedJobs > 0 {
		st.MeanPromise = s.promiseSum / float64(s.promisedJobs)
	}
	for id := range s.jobs {
		j, _ := s.Job(id)
		switch j.State {
		case JobQueued:
			st.Queued++
		case JobRunning, JobCheckpointed:
			st.Running++
		case JobCompleted:
			st.Completed++
		case JobMissed:
			st.Missed++
		}
	}
	return st
}
