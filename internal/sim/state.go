package sim

import (
	"fmt"

	"probqos/internal/negotiate"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// Engine state export/import for the durability layer (internal/durability,
// used by qosd). The engine is deterministic: given the same Config — same
// cluster, failure trace, predictor accuracy, and policies — the same
// sequence of external mutations applied at the same virtual instants
// reproduces the same state bit for bit. The exported state is therefore
// the minimal operation journal: every Admit and InjectFailure, each
// tagged with the clock value it was applied at, plus the final clock.
// Everything else — running jobs, reservations, checkpoints, lost work —
// is rederived by replay.

// Op kinds in an engine journal.
const (
	OpAdmit = "admit"
	OpFault = "fault"
)

// Op is one external mutation applied to an Engine.
type Op struct {
	// Now is the virtual clock at the instant the operation was applied.
	Now  units.Time `json:"now"`
	Kind string     `json:"kind"`

	// Admit fields.
	Job    *workload.Job    `json:"job,omitempty"`
	Quote  *negotiate.Quote `json:"quote,omitempty"`
	Offers int              `json:"offers,omitempty"`

	// Fault fields. Node is meaningful only when Kind is OpFault (node 0
	// is valid, so it carries no omitempty).
	Node int        `json:"node"`
	At   units.Time `json:"at,omitempty"`
}

// EngineState is a deterministic export of an Engine built without a workload
// log: the operation journal and the clock. Restore on a fresh Engine
// with an identical Config reconstructs the exact state.
type EngineState struct {
	Now units.Time `json:"now"`
	Ops []Op       `json:"ops"`
}

// ExportState captures the engine's operation journal. Only engines
// driven through Admit/InjectFailure (no workload log) export faithfully;
// NewEngine rejects Restore onto a workload-driven engine for the same
// reason.
func (s *Engine) ExportState() EngineState {
	st := EngineState{Now: s.now, Ops: make([]Op, len(s.history))}
	copy(st.Ops, s.history)
	return st
}

// Restore replays an exported journal onto a freshly constructed engine,
// reproducing the exact state the journal was exported from. The engine
// must be untouched (clock at zero, nothing admitted) and configured
// identically to the exporter — callers guard the latter with a config
// fingerprint. Admit rejections during replay are forwarded: they cannot
// happen for a journal exported by a compatible engine, so one means the
// configs diverged.
func (s *Engine) Restore(st EngineState) error {
	if s.cfg.Workload != nil && len(s.cfg.Workload.Jobs) > 0 {
		return fmt.Errorf("sim: cannot restore onto a workload-driven engine")
	}
	if s.now != 0 || len(s.history) != 0 || len(s.jobs) != 0 {
		return fmt.Errorf("sim: cannot restore onto a used engine (now=%v, %d ops, %d jobs)",
			s.now, len(s.history), len(s.jobs))
	}
	for i, op := range st.Ops {
		// Advance only when the op is in the future: AdvanceTo(now) would
		// process events at t == now that the live engine, which only moves
		// the clock strictly forward between ops, left pending. Replay must
		// leave them pending too or the states diverge.
		if op.Now > s.now {
			if err := s.AdvanceTo(op.Now); err != nil {
				return fmt.Errorf("sim: restore op %d: advance to %v: %w", i, op.Now, err)
			}
		}
		switch op.Kind {
		case OpAdmit:
			if op.Job == nil || op.Quote == nil {
				return fmt.Errorf("sim: restore op %d: admit without job/quote", i)
			}
			if err := s.Admit(*op.Job, *op.Quote, op.Offers); err != nil {
				return fmt.Errorf("sim: restore op %d: admit job %d: %w", i, op.Job.ID, err)
			}
		case OpFault:
			if err := s.InjectFailure(op.Node, op.At); err != nil {
				return fmt.Errorf("sim: restore op %d: fault: %w", i, err)
			}
		default:
			return fmt.Errorf("sim: restore op %d: unknown kind %q", i, op.Kind)
		}
	}
	if st.Now > s.now {
		if err := s.AdvanceTo(st.Now); err != nil {
			return fmt.Errorf("sim: restore final advance to %v: %w", st.Now, err)
		}
	}
	return nil
}

// record appends one applied mutation to the journal. The batch simulator
// never calls Admit/InjectFailure, so its hot path carries no journal.
func (s *Engine) record(op Op) {
	op.Now = s.now
	s.history = append(s.history, op)
}
