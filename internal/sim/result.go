package sim

import (
	"probqos/internal/units"
)

// JobRecord is the per-job outcome the metrics layer consumes.
type JobRecord struct {
	ID    int
	Nodes int            // n_j
	Exec  units.Duration // e_j, checkpoint-free execution time

	Arrival    units.Time // v_j
	FirstStart units.Time // first time the job began executing
	LastStart  units.Time // s_j, start of the final (successful) attempt
	Finish     units.Time // f_j

	Deadline    units.Time // negotiated deadline d
	Promised    float64    // p_j, promised probability of success
	Quotes      int        // offers made during negotiation
	MetDeadline bool       // q_j

	Attempts            int // 1 + number of failures suffered
	FailuresSuffered    int
	CheckpointsDone     int
	CheckpointsSkipped  int
	DeadlineSkips       int // checkpoints skipped specifically to save the deadline
	StartSlips          int // reservation starts delayed by node outages
	LostWork            units.Work
	CheckpointOverheads units.Duration // total overhead time paid
}

// FailureRecord is one trace failure as it played out in the simulation.
type FailureRecord struct {
	Time     units.Time
	Node     int
	JobID    int        // job killed by the failure, 0 if the node was not running one
	LostWork units.Work // (t_x - c_jx) * n_jx
}

// Result is everything a simulation run produces.
type Result struct {
	// ClusterNodes is N.
	ClusterNodes int
	// Jobs holds one record per completed job, in job-ID order.
	Jobs []JobRecord
	// Failures holds one record per trace failure processed.
	Failures []FailureRecord
	// Start and End bound the run: min arrival and max finish over jobs.
	Start, End units.Time
	// BusyNodeSeconds integrates node occupancy over the run: every second
	// a node spends assigned to a job, including checkpoint overhead and
	// work later lost to failures. The gap between this and the sum of
	// e_j*n_j is the run's overhead-plus-rework bill.
	BusyNodeSeconds units.Work
	// EventsProcessed counts all simulator events.
	EventsProcessed int
	// StaleEventsDropped counts job events invalidated by failures.
	StaleEventsDropped int
}

// Span returns T = max_j f_j - min_j v_j, the denominator time span of the
// paper's utilization metric.
func (r *Result) Span() units.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	return r.End.Sub(r.Start)
}

// TotalLostWork sums lost work over all failures.
func (r *Result) TotalLostWork() units.Work {
	var w units.Work
	for _, f := range r.Failures {
		w += f.LostWork
	}
	return w
}

// JobFailures counts failures that killed a running job.
func (r *Result) JobFailures() int {
	n := 0
	for _, f := range r.Failures {
		if f.JobID != 0 {
			n++
		}
	}
	return n
}

// OccupiedFraction returns BusyNodeSeconds over the run's total capacity
// T*N: the raw occupancy, as opposed to the paper's useful-work
// utilization.
func (r *Result) OccupiedFraction() float64 {
	span := r.Span()
	if span <= 0 || r.ClusterNodes == 0 {
		return 0
	}
	return r.BusyNodeSeconds.NodeSeconds() / (span.Seconds() * float64(r.ClusterNodes))
}

// TotalCheckpoints returns performed and skipped checkpoint counts.
func (r *Result) TotalCheckpoints() (performed, skipped int) {
	for _, j := range r.Jobs {
		performed += j.CheckpointsDone
		skipped += j.CheckpointsSkipped
	}
	return performed, skipped
}
