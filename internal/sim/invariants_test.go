package sim

import (
	"testing"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/stats"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// randomScenario builds a random small workload and failure trace from a
// seed. The job mix and failure density are deliberately hostile: tight
// windows, large jobs, frequent failures.
func randomScenario(seed int64) (*workload.Log, []failure.Event) {
	src := stats.NewSource(seed)
	nJobs := 20 + src.Intn(60)
	jobs := make([]workload.Job, nJobs)
	arrival := units.Time(0)
	for i := range jobs {
		arrival = arrival.Add(units.Duration(src.Intn(1800)))
		jobs[i] = workload.Job{
			ID:      i + 1,
			Arrival: arrival,
			Nodes:   1 + src.Intn(8),
			Exec:    units.Duration(60 + src.Intn(20000)),
		}
	}
	nFail := 5 + src.Intn(40)
	events := make([]failure.Event, nFail)
	for i := range events {
		events[i] = failure.Event{
			Time:          units.Time(src.Intn(400000)),
			Node:          src.Intn(8),
			Detectability: src.Float64(),
		}
	}
	return &workload.Log{Name: "random", Jobs: jobs}, events
}

// checkInvariants asserts the properties every completed run must satisfy.
func checkInvariants(t *testing.T, cfg Config, res *Result) {
	t.Helper()
	if len(res.Jobs) != len(cfg.Workload.Jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Jobs), len(cfg.Workload.Jobs))
	}
	for _, j := range res.Jobs {
		if j.FirstStart < j.Arrival {
			t.Fatalf("job %d started before arriving: %+v", j.ID, j)
		}
		if j.LastStart < j.FirstStart {
			t.Fatalf("job %d last start precedes first: %+v", j.ID, j)
		}
		// The final attempt runs uninterrupted: finish >= last start + the
		// remaining execution, and can exceed it only by checkpoint time.
		if j.Finish < j.LastStart {
			t.Fatalf("job %d finished before starting: %+v", j.ID, j)
		}
		if j.Promised < 0 || j.Promised > 1 {
			t.Fatalf("job %d promise out of range: %v", j.ID, j.Promised)
		}
		if j.MetDeadline != (j.Finish <= j.Deadline) {
			t.Fatalf("job %d deadline flag inconsistent: %+v", j.ID, j)
		}
		if j.Attempts != j.FailuresSuffered+1 {
			t.Fatalf("job %d attempts %d != failures %d + 1", j.ID, j.Attempts, j.FailuresSuffered)
		}
		// Failures are the only reason a deadline is missed (§4.3).
		if !j.MetDeadline && j.FailuresSuffered == 0 && j.StartSlips == 0 {
			t.Fatalf("job %d missed its deadline without failures or slips: %+v", j.ID, j)
		}
		if j.LostWork < 0 {
			t.Fatalf("job %d negative lost work", j.ID)
		}
		if j.FailuresSuffered == 0 && j.LostWork != 0 {
			t.Fatalf("job %d lost work without failures: %+v", j.ID, j)
		}
	}
	// Lost-work totals agree between the job and failure views.
	var fromJobs, fromFailures units.Work
	for _, j := range res.Jobs {
		fromJobs += j.LostWork
	}
	for _, f := range res.Failures {
		fromFailures += f.LostWork
		if f.JobID == 0 && f.LostWork != 0 {
			t.Fatalf("failure with no victim lost work: %+v", f)
		}
	}
	if fromJobs != fromFailures {
		t.Fatalf("lost work mismatch: jobs say %v, failures say %v", fromJobs, fromFailures)
	}
	if len(res.Failures) != cfg.Failures.Len() {
		t.Fatalf("processed %d failures, trace has %d", len(res.Failures), cfg.Failures.Len())
	}
}

func TestInvariantsUnderRandomFailureInjection(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		log, events := randomScenario(seed)
		tr, err := failure.NewTrace(8, events)
		if err != nil {
			t.Fatal(err)
		}
		for _, point := range []struct {
			a, u float64
		}{{0, 0}, {0.5, 0.5}, {1, 0.9}} {
			cfg := DefaultConfig(log, tr)
			cfg.Nodes = 8
			cfg.Accuracy = point.a
			cfg.UserRisk = point.u
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d a=%v u=%v: %v", seed, point.a, point.u, err)
			}
			checkInvariants(t, cfg, res)
		}
	}
}

func TestInvariantsAcrossPolicies(t *testing.T) {
	log, events := randomScenario(99)
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []checkpoint.Policy{
		checkpoint.RiskBased{}, checkpoint.Periodic{}, checkpoint.Never{},
	} {
		cfg := DefaultConfig(log, tr)
		cfg.Nodes = 8
		cfg.Accuracy = 0.6
		cfg.UserRisk = 0.4
		cfg.Policy = policy
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("policy %s: %v", policy.Name(), err)
		}
		checkInvariants(t, cfg, res)
	}
}

func TestInvariantsWithVariantsDisabled(t *testing.T) {
	log, events := randomScenario(7)
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.FaultAware = false },
		func(c *Config) { c.Negotiate = false },
		func(c *Config) { c.DeadlineSkip = false },
		func(c *Config) { c.BaseRateFloor = false },
		func(c *Config) { c.Downtime = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig(log, tr)
		cfg.Nodes = 8
		cfg.Accuracy = 0.7
		cfg.UserRisk = 0.6
		mutate(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		checkInvariants(t, cfg, res)
	}
}

func TestHeavyFailureStorm(t *testing.T) {
	// Every node fails every ~2000 s: pathological, but the simulator must
	// still terminate with consistent accounting.
	var events []failure.Event
	src := stats.NewSource(123)
	for tm := int64(1000); tm < 200000; tm += 500 + int64(src.Intn(3000)) {
		events = append(events, failure.Event{
			Time: units.Time(tm), Node: src.Intn(8), Detectability: src.Float64(),
		})
	}
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 8, Exec: 30000},
		{ID: 2, Arrival: 100, Nodes: 4, Exec: 20000},
		{ID: 3, Arrival: 200, Nodes: 2, Exec: 10000},
	}
	cfg := DefaultConfig(&workload.Log{Name: "storm", Jobs: jobs}, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 0.3
	cfg.UserRisk = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, cfg, res)
	if res.JobFailures() == 0 {
		t.Error("the storm should have killed at least one attempt")
	}
}

func TestEmptyFailureTrace(t *testing.T) {
	tr, err := failure.NewTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	log, _ := randomScenario(5)
	cfg := DefaultConfig(log, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 1
	cfg.UserRisk = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, cfg, res)
	for _, j := range res.Jobs {
		if !j.MetDeadline || j.Promised != 1 {
			t.Fatalf("with no failures every promise is 1 and kept: %+v", j)
		}
	}
}

func TestInvariantsWithPredictionHorizon(t *testing.T) {
	log, events := randomScenario(17)
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(log, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 0.8
	cfg.UserRisk = 0.7
	cfg.PredictionHalfLife = 6 * units.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, cfg, res)

	bad := cfg
	bad.PredictionHalfLife = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative half-life must fail validation")
	}
}
