package sim

import (
	"errors"
	"strings"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/workload"
)

func TestWriteJobsCSV(t *testing.T) {
	events := []failure.Event{{Time: 5000, Node: 0, Detectability: 0.9}}
	cfg := smallConfig(t, []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 8, Exec: 9000},
		{ID: 2, Arrival: 10, Nodes: 2, Exec: 100},
	}, events)
	cfg.Accuracy = 0
	res := run(t, cfg)

	var sb strings.Builder
	if err := res.WriteJobsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 jobs:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "id,nodes,exec_s,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,8,9000,") {
		t.Errorf("job row = %q", lines[1])
	}
	// Every row has the full column count.
	want := len(strings.Split(lines[0], ","))
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != want {
			t.Errorf("row %q has %d fields, want %d", line, got, want)
		}
	}
}

func TestWriteFailuresCSV(t *testing.T) {
	events := []failure.Event{
		{Time: 5000, Node: 0, Detectability: 0.9},
		{Time: 99999, Node: 7, Detectability: 0.1},
	}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 9000}}, events)
	cfg.Accuracy = 0
	res := run(t, cfg)

	var sb strings.Builder
	if err := res.WriteFailuresCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 failures:\n%s", len(lines), sb.String())
	}
	if lines[0] != "time,node,job,lost_node_s" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "5000,0,1,") {
		t.Errorf("failure row = %q", lines[1])
	}
	if lines[2] != "99999,7,0,0" {
		t.Errorf("idle-node failure row = %q", lines[2])
	}
}

func TestWriteCSVNilResult(t *testing.T) {
	var r *Result
	if err := r.WriteJobsCSV(&strings.Builder{}); err == nil {
		t.Error("WriteJobsCSV on nil result must error")
	}
	if err := r.WriteFailuresCSV(&strings.Builder{}); err == nil {
		t.Error("WriteFailuresCSV on nil result must error")
	}
}

// failWriter fails every write, to exercise the CSV error paths.
type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestWriteCSVPropagatesWriteError(t *testing.T) {
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 100}}, nil)
	res := run(t, cfg)
	wantErr := errors.New("disk full")
	if err := res.WriteJobsCSV(failWriter{wantErr}); !errors.Is(err, wantErr) {
		t.Errorf("WriteJobsCSV err = %v, want wrapped %v", err, wantErr)
	}
	if err := res.WriteFailuresCSV(failWriter{wantErr}); !errors.Is(err, wantErr) {
		t.Errorf("WriteFailuresCSV err = %v, want wrapped %v", err, wantErr)
	}
}
