// Instrumented benchmarks live in an external test package: obs implements
// sim's Probe interface, so importing it from package sim would cycle.
package sim_test

import (
	"testing"

	"probqos/internal/failure"
	"probqos/internal/obs"
	"probqos/internal/sim"
	"probqos/internal/workload"
)

// BenchmarkRunSDSCInstrumented is BenchmarkRunSDSC with the full instrument
// attached (sampler + profiler as probe and observer); the delta against the
// uninstrumented run is the observability overhead.
func BenchmarkRunSDSCInstrumented(b *testing.B) {
	log := workload.GenerateSDSC(workload.GenConfig{Jobs: 1000, Seed: 1})
	tr, err := failure.GenerateTrace(failure.RawConfig{Seed: 1}, failure.FilterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(log, tr)
		cfg.Accuracy = 0.7
		cfg.UserRisk = 0.5
		ins := obs.NewInstrument(obs.NewRegistry(), 0)
		cfg.Probe = ins
		cfg.Observer = ins
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
		ins.Flush()
	}
}
