package sim

import (
	"errors"
	"fmt"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/negotiate"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// edgeTestEngine builds a small interactive engine with no background
// failures, advanced to a known non-zero instant so "the past" exists.
func edgeTestEngine(t *testing.T) *Engine {
	t.Helper()
	tr, err := failure.NewTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(nil, tr)
	cfg.Nodes = 8
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AdvanceTo(units.Time(1 * units.Hour)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestInjectFailureEdges pins the exact rejection (and acceptance)
// behavior of InjectFailure at the boundaries a scenario runner hits:
// instants in the past, nodes off either end of the cluster, and repeat
// injections on a node that is already down.
func TestInjectFailureEdges(t *testing.T) {
	now := units.Time(1 * units.Hour)
	cases := []struct {
		name    string
		node    int
		at      units.Time
		wantErr string // "" means the injection must be accepted
	}{
		{
			name:    "past instant",
			node:    2,
			at:      now.Add(-1 * units.Minute),
			wantErr: fmt.Sprintf("sim: cannot inject a failure at %v, clock is at %v", now.Add(-1*units.Minute), now),
		},
		{
			name:    "negative node",
			node:    -1,
			at:      now,
			wantErr: "sim: node -1 outside [0,8)",
		},
		{
			name:    "node one past the end",
			node:    8,
			at:      now,
			wantErr: "sim: node 8 outside [0,8)",
		},
		{name: "node zero at now", node: 0, at: now},
		{name: "last node in range", node: 7, at: now.Add(1 * units.Hour)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := edgeTestEngine(t)
			err := eng.InjectFailure(tc.node, tc.at)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("InjectFailure(%d, %v) = %v, want accepted", tc.node, tc.at, err)
				}
				return
			}
			if err == nil || err.Error() != tc.wantErr {
				t.Fatalf("InjectFailure(%d, %v) = %v, want %q", tc.node, tc.at, err, tc.wantErr)
			}
		})
	}
}

// TestInjectFailureOnDownNode documents that a second failure on a node
// already in its downtime window is accepted, not an error: the node
// stays dark for the union of the outages (this is how the scenario
// runner models maintenance windows, re-failing nodes back to back).
func TestInjectFailureOnDownNode(t *testing.T) {
	eng := edgeTestEngine(t)
	now := eng.Now()
	if err := eng.InjectFailure(3, now); err != nil {
		t.Fatalf("first failure: %v", err)
	}
	// Re-fail the node while the first outage's downtime is still running.
	if err := eng.InjectFailure(3, now.Add(1*units.Minute)); err != nil {
		t.Fatalf("duplicate failure on down node: %v", err)
	}
	if err := eng.AdvanceTo(now.Add(10 * units.Minute)); err != nil {
		t.Fatal(err)
	}
	// Both injections must be journaled: a restore has to replay the
	// union of the outages, not just the first.
	var faults int
	for _, op := range eng.ExportState().Ops {
		if op.Kind == OpFault {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("journaled %d fault ops, want 2", faults)
	}
}

// TestAdmitEdges pins the exact errors Admit returns for the ways an
// interactive client can present a bad (job, quote) pair.
func TestAdmitEdges(t *testing.T) {
	now := units.Time(1 * units.Hour)
	goodJob := func(id int) workload.Job {
		return workload.Job{ID: id, Arrival: now, Nodes: 2, Exec: 1 * units.Hour}
	}
	cases := []struct {
		name    string
		setup   func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote)
		wantErr string
		wantIs  error // additionally assert errors.Is against this sentinel
	}{
		{
			name: "stale quote",
			setup: func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote) {
				q := liveQuote(t, eng, 2)
				if err := eng.AdvanceTo(eng.Now().Add(2 * units.Hour)); err != nil {
					t.Fatal(err)
				}
				j := goodJob(1)
				j.Arrival = eng.Now()
				return j, q
			},
			wantErr: fmt.Sprintf("sim: quote start is in the past: start %v, now %v",
				now, now.Add(2*units.Hour)),
			wantIs: ErrStaleQuote,
		},
		{
			name: "duplicate job ID",
			setup: func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote) {
				q := liveQuote(t, eng, 2)
				if err := eng.Admit(goodJob(1), q, 1); err != nil {
					t.Fatal(err)
				}
				return goodJob(1), liveQuote(t, eng, 2)
			},
			wantErr: "sim: job 1 already admitted",
		},
		{
			name: "quote sized for a different job",
			setup: func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote) {
				q := liveQuote(t, eng, 3)
				return goodJob(1), q // job wants 2 nodes, quote reserves 3
			},
			wantErr: "sim: quote reserves 3 nodes but job 1 needs 2",
		},
		{
			name: "job larger than the cluster",
			setup: func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote) {
				j := goodJob(1)
				j.Nodes = 9
				return j, liveQuote(t, eng, 2)
			},
			wantErr: "workload: job 1 needs 9 nodes but the cluster has 8",
		},
		{
			name: "non-positive size",
			setup: func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote) {
				j := goodJob(1)
				j.Nodes = 0
				return j, liveQuote(t, eng, 2)
			},
			wantErr: "workload: job 1 has non-positive size 0",
		},
		{
			name: "non-positive runtime",
			setup: func(t *testing.T, eng *Engine) (workload.Job, negotiate.Quote) {
				j := goodJob(1)
				j.Exec = 0
				return j, liveQuote(t, eng, 2)
			},
			wantErr: "workload: job 1 has non-positive runtime 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := edgeTestEngine(t)
			job, q := tc.setup(t, eng)
			err := eng.Admit(job, q, 1)
			if err == nil || err.Error() != tc.wantErr {
				t.Fatalf("Admit = %v, want %q", err, tc.wantErr)
			}
			if tc.wantIs != nil && !errors.Is(err, tc.wantIs) {
				t.Fatalf("Admit error %v does not wrap %v", err, tc.wantIs)
			}
			// A rejected admission must leave no trace: no job record,
			// and nothing in the replay journal.
			if _, ok := eng.Job(job.ID); ok && tc.wantErr != "sim: job 1 already admitted" {
				t.Fatalf("rejected job %d is tracked", job.ID)
			}
		})
	}
}

// liveQuote fetches the first current quote for a job of the given size.
func liveQuote(t *testing.T, eng *Engine, size int) negotiate.Quote {
	t.Helper()
	qs := eng.Quotes(size, 1*units.Hour, 1)
	if len(qs) == 0 {
		t.Fatalf("no quotes for size %d", size)
	}
	return qs[0]
}
