package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"probqos/internal/failure"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// stateTestEngine builds a small interactive engine over a fixed failure
// trace, the same shape qosd runs.
func stateTestEngine(t *testing.T) *Engine {
	t.Helper()
	tr, err := failure.NewTrace(8, []failure.Event{
		{Time: units.Time(2 * units.Hour), Node: 1, Detectability: 1},
		{Time: units.Time(30 * units.Hour), Node: 5, Detectability: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(nil, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 1
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// driveWorkload runs a deterministic interactive session: admissions from
// live quotes, an injected fault, and clock advances in between.
func driveWorkload(t *testing.T, eng *Engine) {
	t.Helper()
	admit := func(id, size int, exec units.Duration) {
		t.Helper()
		qs := eng.Quotes(size, exec, 3)
		if len(qs) == 0 {
			t.Fatalf("no quotes for job %d", id)
		}
		job := workload.Job{ID: id, Arrival: eng.Now(), Nodes: size, Exec: exec}
		if err := eng.Admit(job, qs[0], 1); err != nil {
			t.Fatalf("admit job %d: %v", id, err)
		}
	}
	admit(1, 2, 4*units.Hour)
	if err := eng.AdvanceTo(units.Time(30 * units.Minute)); err != nil {
		t.Fatal(err)
	}
	admit(2, 4, 10*units.Hour)
	if err := eng.InjectFailure(3, eng.Now().Add(1*units.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := eng.AdvanceTo(units.Time(3 * units.Hour)); err != nil {
		t.Fatal(err)
	}
	admit(3, 1, 2*units.Hour)
	if err := eng.AdvanceTo(units.Time(6 * units.Hour)); err != nil {
		t.Fatal(err)
	}
}

// engineFingerprint captures everything externally observable about an
// engine: aggregate stats and every job's full status.
func engineFingerprint(t *testing.T, eng *Engine) string {
	t.Helper()
	type fp struct {
		Stats Stats
		Jobs  []JobStatus
	}
	v := fp{Stats: eng.Stats()}
	for _, id := range eng.JobIDs() {
		j, ok := eng.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		v.Jobs = append(v.Jobs, j)
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestExportRestoreReproducesState(t *testing.T) {
	ref := stateTestEngine(t)
	driveWorkload(t, ref)

	st := ref.ExportState()
	if len(st.Ops) != 4 { // 3 admits + 1 fault
		t.Fatalf("exported %d ops, want 4", len(st.Ops))
	}

	// The state survives a JSON round trip, which is how the snapshot
	// stores it.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded EngineState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	restored := stateTestEngine(t)
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if got, want := engineFingerprint(t, restored), engineFingerprint(t, ref); got != want {
		t.Fatalf("restored state diverges:\n got %s\nwant %s", got, want)
	}
	// The restored journal must match too, so a snapshot of the restored
	// engine is a snapshot of the original.
	if !reflect.DeepEqual(restored.ExportState(), ref.ExportState()) {
		t.Fatal("restored engine exports a different journal")
	}
}

// TestRestoredEngineEvolvesIdentically is the property recovery actually
// relies on: not just equal state at the restore point, but equal futures.
func TestRestoredEngineEvolvesIdentically(t *testing.T) {
	ref := stateTestEngine(t)
	driveWorkload(t, ref)
	restored := stateTestEngine(t)
	if err := restored.Restore(ref.ExportState()); err != nil {
		t.Fatal(err)
	}

	for _, eng := range []*Engine{ref, restored} {
		qs := eng.Quotes(2, 3*units.Hour, 2)
		if len(qs) == 0 {
			t.Fatal("no quotes after restore point")
		}
		job := workload.Job{ID: 9, Arrival: eng.Now(), Nodes: 2, Exec: 3 * units.Hour}
		if err := eng.Admit(job, qs[0], 1); err != nil {
			t.Fatal(err)
		}
		if err := eng.AdvanceTo(units.Time(40 * units.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := engineFingerprint(t, restored), engineFingerprint(t, ref); got != want {
		t.Fatalf("futures diverge:\n got %s\nwant %s", got, want)
	}
}

func TestRestoreRefusesUsedEngine(t *testing.T) {
	ref := stateTestEngine(t)
	driveWorkload(t, ref)
	st := ref.ExportState()

	used := stateTestEngine(t)
	if err := used.AdvanceTo(units.Time(1 * units.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := used.Restore(st); err == nil {
		t.Fatal("restore onto an advanced engine succeeded")
	}
}

func TestRestoreRejectsMalformedOps(t *testing.T) {
	cases := map[string]EngineState{
		"unknown kind":      {Ops: []Op{{Kind: "teleport"}}},
		"admit without job": {Ops: []Op{{Kind: OpAdmit}}},
	}
	for name, st := range cases {
		t.Run(name, func(t *testing.T) {
			eng := stateTestEngine(t)
			if err := eng.Restore(st); err == nil {
				t.Fatal("malformed journal accepted")
			}
		})
	}
}

// TestBatchRunRecordsNoHistory pins the bench-parity guarantee: the batch
// simulator's arrival path must not touch the journal.
func TestBatchRunRecordsNoHistory(t *testing.T) {
	tr, err := failure.NewTrace(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	log := &workload.Log{Jobs: []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 2, Exec: 1 * units.Hour},
		{ID: 2, Arrival: units.Time(10 * units.Minute), Nodes: 1, Exec: 2 * units.Hour},
	}}
	cfg := DefaultConfig(log, tr)
	cfg.Nodes = 4
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := eng.ExportState(); len(st.Ops) != 0 {
		t.Fatalf("batch run journaled %d ops", len(st.Ops))
	}
}
