package sim

import (
	"testing"

	"probqos/internal/checkpoint"
	"probqos/internal/failure"
	"probqos/internal/units"
	"probqos/internal/workload"
)

// smallConfig builds a runnable config over an 8-node cluster.
func smallConfig(t *testing.T, jobs []workload.Job, events []failure.Event) Config {
	t.Helper()
	tr, err := failure.NewTrace(8, events)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(&workload.Log{Name: "test", Jobs: jobs}, tr)
	cfg.Nodes = 8
	return cfg
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config must fail validation")
	}
	tr, err := failure.NewTrace(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(&workload.Log{Jobs: []workload.Job{{ID: 1, Nodes: 4, Exec: 100}}}, tr)
	cfg.Nodes = 16 // mismatch with trace
	if _, err := Run(cfg); err == nil {
		t.Error("node-count mismatch must fail validation")
	}
	for _, bad := range []func(*Config){
		func(c *Config) { c.Accuracy = 1.5 },
		func(c *Config) { c.UserRisk = -0.1 },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Downtime = -5 },
	} {
		cfg := DefaultConfig(&workload.Log{Jobs: []workload.Job{{ID: 1, Nodes: 4, Exec: 100}}}, tr)
		cfg.Nodes = 8
		bad(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Error("invalid config accepted")
		}
	}
}

func TestSingleJobNoFailures(t *testing.T) {
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 10, Nodes: 4, Exec: 500}}, nil)
	res := run(t, cfg)
	if len(res.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	j := res.Jobs[0]
	// Exec 500 < I: no checkpoints, finish = start + exec.
	if j.FirstStart != 10 || j.Finish != 510 {
		t.Errorf("start=%v finish=%v, want 10/510", j.FirstStart, j.Finish)
	}
	if !j.MetDeadline || j.Deadline != 510 || j.Promised != 1 {
		t.Errorf("deadline record = %+v", j)
	}
	if j.Attempts != 1 || j.CheckpointsDone != 0 || j.LostWork != 0 {
		t.Errorf("counters = %+v", j)
	}
	if res.Span() != 500 {
		t.Errorf("span = %v, want 500", res.Span())
	}
}

func TestPeriodicCheckpointingTimeline(t *testing.T) {
	// Exec = 2.5 intervals: requests at +3600 and +7200 of progress.
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 9000}}, nil)
	cfg.Policy = checkpoint.Periodic{}
	res := run(t, cfg)
	j := res.Jobs[0]
	if j.CheckpointsDone != 2 || j.CheckpointsSkipped != 0 {
		t.Fatalf("checkpoints = %d done, %d skipped; want 2/0", j.CheckpointsDone, j.CheckpointsSkipped)
	}
	// Finish = 9000 exec + 2*720 overhead.
	if want := units.Time(9000 + 2*720); j.Finish != want {
		t.Errorf("finish = %v, want %v", j.Finish, want)
	}
	if j.CheckpointOverheads != 1440 {
		t.Errorf("overheads = %v, want 1440", j.CheckpointOverheads)
	}
	// The deadline was quoted assuming all checkpoints run, so it is met.
	if !j.MetDeadline {
		t.Error("deadline should be met")
	}
}

func TestRiskBasedSkipsWithoutPrediction(t *testing.T) {
	// No failures in the trace: pf = 0 everywhere, Equation 1 skips all.
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 9000}}, nil)
	res := run(t, cfg)
	j := res.Jobs[0]
	if j.CheckpointsDone != 0 || j.CheckpointsSkipped != 2 {
		t.Fatalf("checkpoints = %d done, %d skipped; want 0/2", j.CheckpointsDone, j.CheckpointsSkipped)
	}
	if j.Finish != 9000 {
		t.Errorf("finish = %v, want 9000 (no overheads paid)", j.Finish)
	}
}

func TestFailureRollsBackToLastCheckpoint(t *testing.T) {
	// Periodic checkpointing; failure lands mid-third-interval.
	// Timeline: req@3600, ckpt [3600,4320), req@7920 (3600 progress later),
	// ckpt [7920,8640), failure at 9000.
	events := []failure.Event{{Time: 9000, Node: 0, Detectability: 0.5}}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 10000}}, events)
	cfg.Policy = checkpoint.Periodic{}
	cfg.Accuracy = 0 // failure invisible to the predictor
	res := run(t, cfg)
	j := res.Jobs[0]
	if j.FailuresSuffered != 1 || j.Attempts != 2 {
		t.Fatalf("attempts=%d failures=%d, want 2/1", j.Attempts, j.FailuresSuffered)
	}
	// Lost work: from the last completed checkpoint's start (7920) to the
	// failure (9000) on 8 nodes.
	if want := units.WorkFor(8, 9000-7920); j.LostWork != want {
		t.Errorf("lost work = %v, want %v", j.LostWork, want)
	}
	if res.TotalLostWork() != j.LostWork {
		t.Errorf("result lost work = %v", res.TotalLostWork())
	}
	if res.JobFailures() != 1 {
		t.Errorf("job failures = %d", res.JobFailures())
	}
	// The job resumes from 7200 progress (checkpointed at request 2): it
	// still owes 2800 exec. It restarts after the 120 s downtime.
	if j.LastStart < 9000+120 {
		t.Errorf("last start = %v, want >= 9120", j.LastStart)
	}
	if j.MetDeadline {
		t.Error("the failure must cost the deadline")
	}
	if !res.Jobs[0].MetDeadline == j.MetDeadline && j.Finish <= j.Deadline {
		t.Error("inconsistent deadline accounting")
	}
}

func TestFailureWithoutCheckpointLosesEverything(t *testing.T) {
	events := []failure.Event{{Time: 5000, Node: 0, Detectability: 0.9}}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 9000}}, events)
	cfg.Accuracy = 0 // risk-based skips everything, failure invisible
	res := run(t, cfg)
	j := res.Jobs[0]
	if want := units.WorkFor(8, 5000); j.LostWork != want {
		t.Errorf("lost work = %v, want %v (rollback to start)", j.LostWork, want)
	}
	// Restart redoes the full 9000 s of work.
	if want := units.Time(5000 + 120 + 9000); j.Finish != want {
		t.Errorf("finish = %v, want %v", j.Finish, want)
	}
}

func TestPerfectPredictionAvoidsFailure(t *testing.T) {
	// One detectable failure on node 0; the job needs 4 of 8 nodes, so the
	// fault-aware scheduler simply avoids node 0 and nothing is lost.
	events := []failure.Event{{Time: 1000, Node: 0, Detectability: 0.5}}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 4, Exec: 3000}}, events)
	cfg.Accuracy = 1
	cfg.UserRisk = 0.9
	res := run(t, cfg)
	j := res.Jobs[0]
	if j.FailuresSuffered != 0 || !j.MetDeadline || j.Promised != 1 {
		t.Errorf("job = %+v, want clean run with p=1", j)
	}
	if res.TotalLostWork() != 0 {
		t.Errorf("lost work = %v", res.TotalLostWork())
	}
}

func TestNegotiationDefersFullMachineJob(t *testing.T) {
	// The job needs all 8 nodes and a failure is predicted mid-run. A
	// demanding user waits; an indifferent one goes first and fails.
	events := []failure.Event{{Time: 1000, Node: 3, Detectability: 0.4}}
	jobs := []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 3000}}

	eager := smallConfig(t, jobs, events)
	eager.Accuracy = 1
	eager.UserRisk = 0.1
	eagerRes := run(t, eager)
	if eagerRes.Jobs[0].FailuresSuffered != 1 {
		t.Errorf("eager user should hit the failure: %+v", eagerRes.Jobs[0])
	}
	if eagerRes.Jobs[0].Promised != 0.6 {
		t.Errorf("eager promise = %v, want 0.6", eagerRes.Jobs[0].Promised)
	}

	careful := smallConfig(t, jobs, events)
	careful.Accuracy = 1
	careful.UserRisk = 0.9
	carefulRes := run(t, careful)
	j := carefulRes.Jobs[0]
	if j.FailuresSuffered != 0 || !j.MetDeadline {
		t.Errorf("careful user should dodge the failure: %+v", j)
	}
	if j.FirstStart <= 1000 {
		t.Errorf("careful start = %v, want after the predicted failure", j.FirstStart)
	}
	if j.Quotes < 2 {
		t.Errorf("careful user accepted after %d quotes, want renegotiation", j.Quotes)
	}
}

func TestDeadlineSkipSavesDeadlineAfterSlip(t *testing.T) {
	// Job 2 is reserved behind job 1. An undetectable failure just before
	// job 2's start kills job 1 AND knocks a node down past t=1000, so job
	// 2's start slips by up to 120 s. Skipping one checkpoint (720 s)
	// recovers the slip, saving job 2's deadline.
	events := []failure.Event{{Time: 950, Node: 3, Detectability: 0.99}}
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 8, Exec: 1000},
		{ID: 2, Arrival: 10, Nodes: 8, Exec: 5000},
	}
	cfg := smallConfig(t, jobs, events)
	cfg.Accuracy = 0.5 // px=0.99 > a: invisible, no warning in the quote
	cfg.Policy = checkpoint.Periodic{}
	res := run(t, cfg)
	var j JobRecord
	for _, r := range res.Jobs {
		if r.ID == 2 {
			j = r
		}
	}
	if j.StartSlips == 0 {
		t.Fatalf("expected a start slip: %+v", j)
	}
	if !j.MetDeadline {
		t.Errorf("deadline skip should have saved the deadline: %+v", j)
	}
	if j.DeadlineSkips == 0 {
		t.Errorf("expected a deadline-driven skip: %+v", j)
	}

	// Without the deadline rule the slip costs the deadline.
	rigid := smallConfig(t, jobs, events)
	rigid.Accuracy = 0.5
	rigid.Policy = checkpoint.Periodic{}
	rigid.DeadlineSkip = false
	rigidRes := run(t, rigid)
	for _, r := range rigidRes.Jobs {
		if r.ID == 2 && r.MetDeadline {
			t.Errorf("without deadline skips the deadline should be missed: %+v", r)
		}
	}
}

func TestFCFSWithBackfilling(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Arrival: 0, Nodes: 8, Exec: 1000},  // takes the machine
		{ID: 2, Arrival: 10, Nodes: 8, Exec: 1000}, // must wait for 1
		{ID: 3, Arrival: 20, Nodes: 2, Exec: 100},  // too wide to backfill? no: fits nothing free
	}
	cfg := smallConfig(t, jobs, nil)
	res := run(t, cfg)
	byID := make(map[int]JobRecord)
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if byID[1].FirstStart != 0 {
		t.Errorf("job 1 start = %v", byID[1].FirstStart)
	}
	if byID[2].FirstStart != 1000 {
		t.Errorf("job 2 start = %v, want 1000", byID[2].FirstStart)
	}
	// Job 3 cannot run before job 2 finishes (no free nodes until then).
	if byID[3].FirstStart != 2000 {
		t.Errorf("job 3 start = %v, want 2000", byID[3].FirstStart)
	}

	// With a narrow job 2, job 3 backfills into the leftover nodes.
	jobs[1].Nodes = 4
	cfg2 := smallConfig(t, jobs, nil)
	res2 := run(t, cfg2)
	for _, j := range res2.Jobs {
		if j.ID == 3 && j.FirstStart != 1000 {
			t.Errorf("narrow job 3 start = %v, want 1000 (backfilled)", j.FirstStart)
		}
	}
}

func TestAllJobsComplete(t *testing.T) {
	log := workload.GenerateNASA(workload.GenConfig{Jobs: 300, Seed: 7, ClusterNodes: 8, Load: 0.6})
	// Scale sizes down to the 8-node test cluster.
	for i := range log.Jobs {
		if log.Jobs[i].Nodes > 8 {
			log.Jobs[i].Nodes = 8
		}
	}
	tr, err := failure.GenerateTrace(failure.RawConfig{Nodes: 8, Episodes: 40, Span: 60 * units.Day, Seed: 3}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(log, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 0.7
	cfg.UserRisk = 0.5
	res := run(t, cfg)
	if len(res.Jobs) != 300 {
		t.Fatalf("completed %d jobs, want 300", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Finish < j.FirstStart || j.FirstStart < j.Arrival {
			t.Fatalf("job %d has impossible timeline: %+v", j.ID, j)
		}
		if j.Promised < 0 || j.Promised > 1 {
			t.Fatalf("job %d promise out of range: %v", j.ID, j.Promised)
		}
		// Equation 3: accepted promise meets U unless negotiation was
		// bypassed.
		if j.Promised < cfg.UserRisk {
			t.Fatalf("job %d promised %v < U=%v", j.ID, j.Promised, cfg.UserRisk)
		}
	}
}

func TestDeterminism(t *testing.T) {
	log := workload.GenerateSDSC(workload.GenConfig{Jobs: 150, Seed: 1, ClusterNodes: 8})
	for i := range log.Jobs {
		if log.Jobs[i].Nodes > 8 {
			log.Jobs[i].Nodes = 8
		}
	}
	tr, err := failure.GenerateTrace(failure.RawConfig{Nodes: 8, Episodes: 30, Span: 120 * units.Day, Seed: 9}, failure.FilterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(log, tr)
	cfg.Nodes = 8
	cfg.Accuracy = 0.6
	cfg.UserRisk = 0.7
	a := run(t, cfg)
	b := run(t, cfg)
	if a.EventsProcessed != b.EventsProcessed || len(a.Jobs) != len(b.Jobs) {
		t.Fatal("runs differ in shape")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job record %d differs:\n%+v\n%+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
}

func TestObserverReceivesJournal(t *testing.T) {
	var notes []Note
	obs := observerFunc(func(n Note) { notes = append(notes, n) })
	cfg := smallConfig(t,
		[]workload.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 5000}},
		[]failure.Event{{Time: 100000, Node: 7, Detectability: 0.5}},
	)
	cfg.Policy = checkpoint.Periodic{}
	cfg.Observer = obs
	run(t, cfg)
	kinds := make(map[string]int)
	for _, n := range notes {
		kinds[n.Kind]++
	}
	for _, want := range []string{"arrival", "start", "checkpoint-request", "checkpoint-finish", "finish", "failure", "recovery"} {
		if kinds[want] == 0 {
			t.Errorf("journal missing %q events: %v", want, kinds)
		}
	}
}

type observerFunc func(Note)

func (f observerFunc) Observe(n Note) { f(n) }

func TestOccupancyAccounting(t *testing.T) {
	// One 2-node job, 9000 s exec, periodic checkpointing: occupancy is
	// exec + 2 checkpoints of overhead, times 2 nodes.
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 2, Exec: 9000}}, nil)
	cfg.Policy = checkpoint.Periodic{}
	res := run(t, cfg)
	if want := units.WorkFor(2, 9000+2*720); res.BusyNodeSeconds != want {
		t.Errorf("busy node-seconds = %v, want %v", res.BusyNodeSeconds, want)
	}
	if f := res.OccupiedFraction(); f <= 0 || f > 1 {
		t.Errorf("occupied fraction = %v", f)
	}
}

func TestOccupancyIncludesLostAttempts(t *testing.T) {
	// A failure forces a rerun: raw occupancy counts both attempts, while
	// the useful-work numerator counts the job once.
	events := []failure.Event{{Time: 5000, Node: 0, Detectability: 0.9}}
	cfg := smallConfig(t, []workload.Job{{ID: 1, Arrival: 0, Nodes: 8, Exec: 9000}}, events)
	cfg.Accuracy = 0
	res := run(t, cfg)
	// Attempt 1: [0, 5000) on 8 nodes; attempt 2: [5120, 14120) on 8.
	if want := units.WorkFor(8, 5000+9000); res.BusyNodeSeconds != want {
		t.Errorf("busy node-seconds = %v, want %v", res.BusyNodeSeconds, want)
	}
	useful := units.WorkFor(8, 9000)
	if res.BusyNodeSeconds <= useful {
		t.Error("occupancy must exceed useful work after a failure")
	}
}
