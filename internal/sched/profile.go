// Package sched implements the fault-aware job scheduler of §3.3: FCFS with
// conservative backfilling over concrete node sets. Every job receives a
// reservation (start time + node set) when it is scheduled and keeps it
// ("jobs that have already been scheduled for later execution retain their
// scheduled partition"); event prediction breaks ties among candidate node
// sets by minimizing the predicted probability that the partition fails
// during the reservation.
package sched

import (
	"fmt"
	"sort"

	"probqos/internal/units"
)

// DowntimeOwner marks profile intervals that represent node outages rather
// than job reservations.
const DowntimeOwner = -1

// interval is one busy span [start, end) on one node, owned by a job
// reservation or by a node outage.
type interval struct {
	start, end units.Time
	owner      int
}

// profile tracks every node's future busy intervals: running jobs, pending
// reservations, and known outages. Intervals of different owners never
// overlap (the scheduler guarantees it for jobs; outages may overlap job
// intervals because failures are not known in advance).
type profile struct {
	nodes [][]interval
}

func newProfile(n int) *profile {
	return &profile{nodes: make([][]interval, n)}
}

// insert adds a busy interval to a node, keeping the list sorted by start.
func (p *profile) insert(node int, iv interval) {
	if iv.end <= iv.start {
		return
	}
	list := p.nodes[node]
	i := searchStartAfter(list, iv.start)
	list = append(list, interval{})
	copy(list[i+1:], list[i:])
	list[i] = iv
	p.nodes[node] = list
}

// searchStartAfter returns the first position whose interval starts strictly
// after t. Manual binary search: the closure-based sort.Search shows up in
// profiles on the candidate walk, where these lookups run once per node per
// examined start.
func searchStartAfter(list []interval, t units.Time) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].start <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchEndAfter returns the first position whose interval ends strictly
// after t. Interval ends are not sorted (an outage inserted under a long
// reservation can end before it), but every position before the returned
// one ends at or before t only when ends are nondecreasing — which holds
// for the job intervals the scheduler places (they never overlap) and is
// conservative for outages: see freeDuring.
func searchEndAfter(list []interval, t units.Time) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// freeDuring reports whether the node has no busy interval overlapping
// [from, to).
func (p *profile) freeDuring(node int, from, to units.Time) bool {
	list := p.nodes[node]
	// First interval with end > from is the only one that could overlap
	// first; walk forward while intervals start before to.
	i := searchEndAfter(list, from)
	for ; i < len(list); i++ {
		if list[i].start >= to {
			return true
		}
		if list[i].end > from {
			return false
		}
	}
	return true
}

// busyUntil returns the instant the node becomes free again, starting at at:
// the end of the (possibly chained) busy intervals covering at. If the node
// is free at at, it returns at.
func (p *profile) busyUntil(node int, at units.Time) units.Time {
	list := p.nodes[node]
	t := at
	i := searchEndAfter(list, t)
	for ; i < len(list); i++ {
		if list[i].start > t {
			break
		}
		if list[i].end > t {
			t = list[i].end
		}
	}
	return t
}

// removeOwner deletes all intervals of the owner on the node.
func (p *profile) removeOwner(node, owner int) {
	list := p.nodes[node][:0]
	for _, iv := range p.nodes[node] {
		if iv.owner != owner {
			list = append(list, iv)
		}
	}
	p.nodes[node] = list
}

// truncateOwner cuts the owner's intervals on the node so that nothing
// extends past at; intervals entirely past at are removed.
func (p *profile) truncateOwner(node, owner int, at units.Time) {
	list := p.nodes[node][:0]
	for _, iv := range p.nodes[node] {
		if iv.owner == owner {
			if iv.start >= at {
				continue
			}
			if iv.end > at {
				iv.end = at
			}
		}
		list = append(list, iv)
	}
	p.nodes[node] = list
}

// shiftOwner moves the owner's interval on the node to start at newStart,
// preserving its length, and re-sorts.
func (p *profile) shiftOwner(node, owner int, newStart units.Time) {
	var moved []interval
	list := p.nodes[node][:0]
	for _, iv := range p.nodes[node] {
		if iv.owner == owner {
			length := iv.end.Sub(iv.start)
			moved = append(moved, interval{start: newStart, end: newStart.Add(length), owner: owner})
			continue
		}
		list = append(list, iv)
	}
	p.nodes[node] = list
	for _, iv := range moved {
		p.insert(node, iv)
	}
}

// gc drops intervals that ended at or before now.
func (p *profile) gc(now units.Time) {
	for n := range p.nodes {
		list := p.nodes[n][:0]
		for _, iv := range p.nodes[n] {
			if iv.end > now {
				list = append(list, iv)
			}
		}
		p.nodes[n] = list
	}
}

// candidateTimes lazily enumerates, in ascending de-duplicated order, the
// instants after from at which node availability can change: every profile
// interval end strictly after from. A feasible start for any request always
// lies in {from} ∪ this set.
//
// Most candidate walks stop after one or two starts, so the iterator does no
// up-front work at all: each of the first few pops is a direct min-scan over
// the profile (one sequential O(E) pass). A walk that keeps going past
// ctScanCutoff pops switches to a binary min-heap built in one pass, which
// bounds a long walk at O(E + k·log E) where the old eager path paid a full
// O(E·log E) sort every walk. The heap buffer is reused across walks, so a
// warm walk allocates nothing.
type candidateTimes struct {
	p      *profile
	from   units.Time
	last   units.Time // most recent value returned, for de-duplication
	some   bool       // whether any value has been returned yet
	max    units.Time // largest end in the profile; from when there are none
	scans  int        // direct min-scans done since collect
	inHeap bool       // the walk graduated to the heap
	heap   []units.Time
}

// ctScanCutoff is how many direct min-scans a walk gets before the iterator
// builds the heap. Scans beat the heap while the walk is short; past a few
// pops the one-time heapify amortizes better.
const ctScanCutoff = 4

// collectCandidateTimes points ct at the profile for a walk starting at
// from. All real work is deferred to next; a walk whose first candidate is
// accepted never pays anything.
func (p *profile) collectCandidateTimes(ct *candidateTimes, from units.Time) {
	ct.p = p
	ct.from = from
	ct.some = false
	ct.max = from
	ct.scans = 0
	ct.inHeap = false
	ct.heap = ct.heap[:0]
}

// next returns the smallest not-yet-returned instant, skipping duplicates.
// The second return is false when the set is exhausted.
func (ct *candidateTimes) next() (units.Time, bool) {
	if ct.inHeap {
		return ct.popHeap()
	}
	if ct.scans >= ctScanCutoff {
		ct.buildHeap()
		return ct.popHeap()
	}
	threshold := ct.from
	if ct.some {
		threshold = ct.last
	}
	first := ct.scans == 0
	ct.scans++
	var best units.Time
	found := false
	for _, list := range ct.p.nodes {
		for _, iv := range list {
			if iv.end > threshold && (!found || iv.end < best) {
				best = iv.end
				found = true
			}
			if first && iv.end > ct.max {
				ct.max = iv.end
			}
		}
	}
	if !found {
		return 0, false
	}
	ct.some, ct.last = true, best
	return best, true
}

// buildHeap loads every end beyond the walk's position into a min-heap in
// one pass, for walks long enough that repeated scans would lose.
func (ct *candidateTimes) buildHeap() {
	threshold := ct.from
	if ct.some {
		threshold = ct.last
	}
	h := ct.heap[:0]
	for _, list := range ct.p.nodes {
		for _, iv := range list {
			if iv.end > threshold {
				h = append(h, iv.end)
			}
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		timeSiftDown(h, i)
	}
	ct.heap = h
	ct.inHeap = true
}

// popHeap pops the smallest remaining instant off the heap, skipping
// duplicates.
func (ct *candidateTimes) popHeap() (units.Time, bool) {
	for len(ct.heap) > 0 {
		t := ct.heap[0]
		n := len(ct.heap) - 1
		ct.heap[0] = ct.heap[n]
		ct.heap = ct.heap[:n]
		if n > 0 {
			timeSiftDown(ct.heap, 0)
		}
		if ct.some && t == ct.last {
			continue
		}
		ct.some, ct.last = true, t
		return t, true
	}
	return 0, false
}

// timeSiftDown restores the min-heap property below index i.
func timeSiftDown(h []units.Time, i int) {
	for {
		smallest := i
		if l := 2*i + 1; l < len(h) && h[l] < h[smallest] {
			smallest = l
		}
		if r := 2*i + 2; r < len(h) && h[r] < h[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// appendCandidateTimes drains a full walk into buf: from itself plus every
// de-duplicated end after from, ascending. Tests use it to pin the sequence
// the lazy iterator yields; the scheduler consumes candidateTimes directly.
func (p *profile) appendCandidateTimes(buf []units.Time, from units.Time) []units.Time {
	buf = append(buf, from)
	var ct candidateTimes
	p.collectCandidateTimes(&ct, from)
	for {
		t, ok := ct.next()
		if !ok {
			return buf
		}
		buf = append(buf, t)
	}
}

// validate is a debugging aid: it returns an error if any node's job-owned
// intervals overlap each other.
func (p *profile) validate() error {
	for n, list := range p.nodes {
		var jobs []interval
		for _, iv := range list {
			if iv.owner != DowntimeOwner {
				jobs = append(jobs, iv)
			}
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].start < jobs[j].start })
		for i := 1; i < len(jobs); i++ {
			if jobs[i].start < jobs[i-1].end {
				return fmt.Errorf("sched: node %d: job %d interval [%v,%v) overlaps job %d [%v,%v)",
					n, jobs[i].owner, jobs[i].start, jobs[i].end,
					jobs[i-1].owner, jobs[i-1].start, jobs[i-1].end)
			}
		}
	}
	return nil
}
