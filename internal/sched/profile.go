// Package sched implements the fault-aware job scheduler of §3.3: FCFS with
// conservative backfilling over concrete node sets. Every job receives a
// reservation (start time + node set) when it is scheduled and keeps it
// ("jobs that have already been scheduled for later execution retain their
// scheduled partition"); event prediction breaks ties among candidate node
// sets by minimizing the predicted probability that the partition fails
// during the reservation.
package sched

import (
	"fmt"
	"slices"
	"sort"

	"probqos/internal/units"
)

// DowntimeOwner marks profile intervals that represent node outages rather
// than job reservations.
const DowntimeOwner = -1

// interval is one busy span [start, end) on one node, owned by a job
// reservation or by a node outage.
type interval struct {
	start, end units.Time
	owner      int
}

// profile tracks every node's future busy intervals: running jobs, pending
// reservations, and known outages. Intervals of different owners never
// overlap (the scheduler guarantees it for jobs; outages may overlap job
// intervals because failures are not known in advance).
type profile struct {
	nodes [][]interval
}

func newProfile(n int) *profile {
	return &profile{nodes: make([][]interval, n)}
}

// insert adds a busy interval to a node, keeping the list sorted by start.
func (p *profile) insert(node int, iv interval) {
	if iv.end <= iv.start {
		return
	}
	list := p.nodes[node]
	i := sort.Search(len(list), func(k int) bool { return list[k].start > iv.start })
	list = append(list, interval{})
	copy(list[i+1:], list[i:])
	list[i] = iv
	p.nodes[node] = list
}

// freeDuring reports whether the node has no busy interval overlapping
// [from, to).
func (p *profile) freeDuring(node int, from, to units.Time) bool {
	list := p.nodes[node]
	// First interval with end > from is the only one that could overlap
	// first; walk forward while intervals start before to.
	i := sort.Search(len(list), func(k int) bool { return list[k].end > from })
	for ; i < len(list); i++ {
		if list[i].start >= to {
			return true
		}
		if list[i].end > from {
			return false
		}
	}
	return true
}

// busyUntil returns the instant the node becomes free again, starting at at:
// the end of the (possibly chained) busy intervals covering at. If the node
// is free at at, it returns at.
func (p *profile) busyUntil(node int, at units.Time) units.Time {
	list := p.nodes[node]
	t := at
	i := sort.Search(len(list), func(k int) bool { return list[k].end > t })
	for ; i < len(list); i++ {
		if list[i].start > t {
			break
		}
		if list[i].end > t {
			t = list[i].end
		}
	}
	return t
}

// removeOwner deletes all intervals of the owner on the node.
func (p *profile) removeOwner(node, owner int) {
	list := p.nodes[node][:0]
	for _, iv := range p.nodes[node] {
		if iv.owner != owner {
			list = append(list, iv)
		}
	}
	p.nodes[node] = list
}

// truncateOwner cuts the owner's intervals on the node so that nothing
// extends past at; intervals entirely past at are removed.
func (p *profile) truncateOwner(node, owner int, at units.Time) {
	list := p.nodes[node][:0]
	for _, iv := range p.nodes[node] {
		if iv.owner == owner {
			if iv.start >= at {
				continue
			}
			if iv.end > at {
				iv.end = at
			}
		}
		list = append(list, iv)
	}
	p.nodes[node] = list
}

// shiftOwner moves the owner's interval on the node to start at newStart,
// preserving its length, and re-sorts.
func (p *profile) shiftOwner(node, owner int, newStart units.Time) {
	var moved []interval
	list := p.nodes[node][:0]
	for _, iv := range p.nodes[node] {
		if iv.owner == owner {
			length := iv.end.Sub(iv.start)
			moved = append(moved, interval{start: newStart, end: newStart.Add(length), owner: owner})
			continue
		}
		list = append(list, iv)
	}
	p.nodes[node] = list
	for _, iv := range moved {
		p.insert(node, iv)
	}
}

// gc drops intervals that ended at or before now.
func (p *profile) gc(now units.Time) {
	for n := range p.nodes {
		list := p.nodes[n][:0]
		for _, iv := range p.nodes[n] {
			if iv.end > now {
				list = append(list, iv)
			}
		}
		p.nodes[n] = list
	}
}

// appendCandidateTimes appends to buf the sorted, de-duplicated set of
// instants at or after from at which node availability can change: from
// itself plus every interval end after from. A feasible start for any
// request always lies in this set. Collecting into the caller's buffer and
// de-duplicating in place keeps the per-walk cost at one sort with no map
// and (after warm-up) no allocation.
func (p *profile) appendCandidateTimes(buf []units.Time, from units.Time) []units.Time {
	buf = append(buf, from)
	for _, list := range p.nodes {
		for _, iv := range list {
			if iv.end > from {
				buf = append(buf, iv.end)
			}
		}
	}
	slices.Sort(buf)
	return slices.Compact(buf)
}

// validate is a debugging aid: it returns an error if any node's job-owned
// intervals overlap each other.
func (p *profile) validate() error {
	for n, list := range p.nodes {
		var jobs []interval
		for _, iv := range list {
			if iv.owner != DowntimeOwner {
				jobs = append(jobs, iv)
			}
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].start < jobs[j].start })
		for i := 1; i < len(jobs); i++ {
			if jobs[i].start < jobs[i-1].end {
				return fmt.Errorf("sched: node %d: job %d interval [%v,%v) overlaps job %d [%v,%v)",
					n, jobs[i].owner, jobs[i].start, jobs[i].end,
					jobs[i-1].owner, jobs[i-1].start, jobs[i-1].end)
			}
		}
	}
	return nil
}
