package sched

import (
	"testing"
)

// TestEarliestCandidateAllocationBounds pins the scratch-buffer reuse in the
// candidate walk: after warm-up, a full EarliestCandidate against a deep
// backlog may only allocate the candidate's result node slice (which escapes
// to the caller) — never the free list, the scored-node heap, or the
// candidate-time set.
func TestEarliestCandidateAllocationBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a failure trace")
	}
	s := benchScheduler(t, 300)

	cases := []struct {
		size int
		max  float64 // result slice + sort.Ints interface boxing headroom
	}{
		{1, 1},
		{8, 2},
		{16, 2},
	}
	for _, tc := range cases {
		// Warm up so the scratch buffers reach their steady-state capacity.
		for i := 0; i < 3; i++ {
			if _, ok := s.EarliestCandidate(0, tc.size, 3600); !ok {
				t.Fatalf("size %d: no candidate", tc.size)
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if _, ok := s.EarliestCandidate(0, tc.size, 3600); !ok {
				t.Fatalf("size %d: no candidate", tc.size)
			}
		})
		if avg > tc.max {
			t.Errorf("EarliestCandidate(size=%d) allocates %.1f/op, want <= %v", tc.size, avg, tc.max)
		}
	}
}

// TestPFailNodeFastPathAllocationFree pins that the scheduler's per-node
// risk query never falls back to building a fresh []int per call when the
// predictor implements NodePredictor.
func TestPFailNodeFastPathAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a failure trace")
	}
	s := benchScheduler(t, 0)
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		s.pfailNode(i%128, 0, 3600)
		i++
	})
	if avg != 0 {
		t.Errorf("pfailNode allocates %.1f/op, want 0", avg)
	}
}
